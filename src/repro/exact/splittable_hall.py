"""Exact splittable OPT via configuration enumeration + Hall's condition.

In the splittable model only class-level loads matter: a *configuration*
assigns each class ``i`` a non-empty machine set ``M_i`` (the machines that
carry a setup of ``i``).  Given a configuration, class loads are fully
divisible, so a makespan ``T`` is feasible iff the transportation problem
with machine capacities ``T − setups(u)`` is — by Hall's theorem exactly
when for every subset ``C`` of classes

    Σ_{i∈C} P(C_i)  ≤  Σ_{u ∈ ∪_{i∈C} M_i} (T − setups(u)).

Solving for ``T`` gives the closed form

    T(config) = max( max_u setups(u) + [u carries load > 0 forced? 0],
                     max_{∅≠C} (Σ_{i∈C} P_i + Σ_{u∈U(C)} setups(u)) / |U(C)| )

and ``OPT = min over configurations``.  Enumeration is ``(2^m−1)^c`` — use
only for tiny instances (the exactness, not speed, is the point).
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations, product

from ..core.instance import Instance
from ..core.numeric import Time

MAX_CONFIGS = 2_000_000


def exact_splittable_opt(instance: Instance) -> Time:
    """Exact ``OPT_split`` (a rational) for tiny instances."""
    m, c = instance.m, instance.c
    machine_sets = []
    for k in range(1, m + 1):
        machine_sets.extend(frozenset(s) for s in combinations(range(m), k))
    if len(machine_sets) ** c > MAX_CONFIGS:
        raise ValueError(
            f"too many configurations ({len(machine_sets)}^{c}); exact solver "
            "is for tiny instances only"
        )
    P = [Fraction(p) for p in instance.class_processing]
    best: Time | None = None
    class_subsets = [
        [i for i in range(c) if sel >> i & 1] for sel in range(1, 1 << c)
    ]
    for config in product(machine_sets, repeat=c):
        setups_on = [Fraction(0)] * m
        for i, ms in enumerate(config):
            for u in ms:
                setups_on[u] += instance.setups[i]
        T_cfg = max(setups_on)  # every machine must finish its setups
        for members in class_subsets:
            union: set[int] = set()
            demand = Fraction(0)
            for i in members:
                union |= config[i]
                demand += P[i]
            need = (demand + sum(setups_on[u] for u in union)) / len(union)
            if need > T_cfg:
                T_cfg = need
        if best is None or T_cfg < best:
            best = T_cfg
    assert best is not None
    return best


def single_class_splittable_opt(instance: Instance) -> Time:
    """Closed form for ``c = 1``: use all machines, ``OPT = s + P/m``."""
    if instance.c != 1:
        raise ValueError("closed form requires exactly one class")
    return Fraction(instance.setups[0]) + Fraction(instance.processing(0), instance.m)
