"""Exact preemptive OPT for special families.

``P|pmtn,setup=s_i|Cmax`` is NP-hard already for ``m = 2`` (Monma & Potts),
and unlike the non-preemptive case there is no finite candidate set of
makespans to search, so the library provides exact optima only where closed
forms exist; ratio experiments on general instances fall back to the dual
lower bounds (which is how the paper itself argues).

* one machine: ``OPT = N`` (all three variants);
* one class: McNaughton with a setup prefix on each of ``k ≤ m`` machines
  gives ``s + max(t_max, P/k)``, minimized at ``k = m``;
* ``m ≥ n``: one job per machine, ``OPT = max_i (s_i + t^(i)_max)``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from ..core.bounds import setup_plus_tmax
from ..core.instance import Instance
from ..core.numeric import Time


def exact_preemptive_opt_special(instance: Instance) -> Optional[Time]:
    """Exact ``OPT_pmtn`` if the instance lies in a solved family, else None."""
    if instance.m == 1:
        return Fraction(instance.total_load)
    if instance.m >= instance.n:
        return Fraction(setup_plus_tmax(instance))
    if instance.c == 1:
        s = Fraction(instance.setups[0])
        P = Fraction(instance.processing(0))
        tmax = Fraction(instance.class_tmax[0])
        return s + max(tmax, P / instance.m)
    return None


def exact_nonpreemptive_opt_special(instance: Instance) -> Optional[Time]:
    """Closed-form non-preemptive optima (cross-checks for the DP)."""
    if instance.m == 1:
        return Fraction(instance.total_load)
    if instance.m >= instance.n:
        return Fraction(setup_plus_tmax(instance))
    return None
