"""Exact reference solvers for small instances (ratio experiments, tests)."""

from .nonpreemptive_dp import (
    MAX_JOBS,
    brute_force_opt,
    exact_nonpreemptive_opt,
    exact_nonpreemptive_schedule,
)
from .preemptive_special import (
    exact_nonpreemptive_opt_special,
    exact_preemptive_opt_special,
)
from .splittable_hall import exact_splittable_opt, single_class_splittable_opt

__all__ = [
    "MAX_JOBS",
    "brute_force_opt",
    "exact_nonpreemptive_opt",
    "exact_nonpreemptive_schedule",
    "exact_nonpreemptive_opt_special",
    "exact_preemptive_opt_special",
    "exact_splittable_opt",
    "single_class_splittable_opt",
]
