"""Exact non-preemptive OPT via bitmask dynamic programming.

``P|setup=s_i|Cmax`` is strongly NP-hard, but ratio experiments need the
true optimum on small instances.  For ``n ≤ ~14``:

* ``load[mask]`` — the single-machine load of the job set ``mask`` (its
  processing plus one setup per distinct class), computed incrementally;
* feasibility of a makespan ``T``: can ``[n]`` be covered by ≤ m masks
  with ``load ≤ T``?  Subset DP ``bins[mask] = min bins`` over submask
  enumeration (O(3^n));
* ``OPT`` equals some ``load[mask]`` (the bottleneck machine's load), so a
  binary search over the sorted distinct load values finds it exactly.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.instance import Instance, JobRef
from ..core.schedule import Schedule

#: guard: 3^18 submask enumerations is already ~0.4G — refuse bigger inputs.
MAX_JOBS = 16


def _loads(instance: Instance) -> list[int]:
    """``load[mask]`` for every subset of jobs (one setup per class present)."""
    jobs = [(job, t) for job, t in instance.iter_jobs()]
    n = len(jobs)
    class_mask = [0] * instance.c
    for k, (job, _) in enumerate(jobs):
        class_mask[job.cls] |= 1 << k
    load = [0] * (1 << n)
    for mask in range(1, 1 << n):
        k = (mask & -mask).bit_length() - 1
        rest = mask ^ (1 << k)
        job, t = jobs[k]
        extra = t
        if not rest & class_mask[job.cls]:
            extra += instance.setups[job.cls]
        load[mask] = load[rest] + extra
    return load


def _min_bins(n: int, fits: list[bool]) -> list[int]:
    """``bins[mask]`` = minimal number of feasible machines covering mask."""
    INF = 10**9
    bins = [INF] * (1 << n)
    bins[0] = 0
    for mask in range(1, 1 << n):
        low = mask & -mask
        sub = mask
        best = INF
        while sub:
            if sub & low and fits[sub]:
                cand = bins[mask ^ sub]
                if cand + 1 < best:
                    best = cand + 1
            sub = (sub - 1) & mask
        bins[mask] = best
    return bins


def exact_nonpreemptive_opt(instance: Instance) -> int:
    """The exact optimal makespan (an integer, Theorem 8's observation)."""
    n = instance.n
    if n > MAX_JOBS:
        raise ValueError(f"exact DP limited to n <= {MAX_JOBS}, got {n}")
    load = _loads(instance)
    full = (1 << n) - 1
    candidates = sorted(set(load[1:]))

    def feasible(T: int) -> bool:
        fits = [l <= T for l in load]
        return _min_bins(n, fits)[full] <= instance.m

    lo, hi = 0, len(candidates) - 1
    if feasible(candidates[0]):
        return candidates[0]
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if feasible(candidates[mid]):
            hi = mid
        else:
            lo = mid
    return candidates[hi]


def exact_nonpreemptive_schedule(instance: Instance) -> tuple[int, Schedule]:
    """OPT plus one optimal schedule (reconstructed from the DP)."""
    opt = exact_nonpreemptive_opt(instance)
    jobs = [(job, t) for job, t in instance.iter_jobs()]
    n = len(jobs)
    load = _loads(instance)
    fits = [l <= opt for l in load]
    bins = _min_bins(n, fits)
    schedule = Schedule(instance)
    mask = (1 << n) - 1
    machine = 0
    while mask:
        low = mask & -mask
        sub = mask
        chosen = None
        while sub:
            if sub & low and fits[sub] and bins[mask ^ sub] == bins[mask] - 1:
                chosen = sub
                break
            sub = (sub - 1) & mask
        assert chosen is not None
        t = Fraction(0)
        state = None
        members = [jobs[k] for k in range(n) if chosen >> k & 1]
        members.sort(key=lambda jt: jt[0].cls)
        for job, length in members:
            if state != job.cls:
                schedule.add_setup(machine, t, job.cls)
                t += instance.setups[job.cls]
                state = job.cls
            schedule.add_job(machine, t, job)
            t += length
        machine += 1
        mask ^= chosen
    return opt, schedule


def brute_force_opt(instance: Instance) -> int:
    """Independent reference: try every assignment of jobs to machines.

    Exponential (m^n) — only for cross-checking the DP on tiny inputs.
    """
    jobs = [(job, t) for job, t in instance.iter_jobs()]
    n = len(jobs)
    if n > 8 or instance.m ** n > 3_000_000:
        raise ValueError("brute force limited to m^n <= 3e6")
    best = instance.total_load
    assignment = [0] * n

    def machine_load(u: int) -> int:
        total = 0
        classes = set()
        for k in range(n):
            if assignment[k] == u:
                total += jobs[k][1]
                classes.add(jobs[k][0].cls)
        return total + sum(instance.setups[i] for i in classes)

    def rec(k: int) -> None:
        nonlocal best
        if k == n:
            cmax = max(machine_load(u) for u in range(instance.m))
            best = min(best, cmax)
            return
        # symmetry breaking: job k may only open machine max_used+1
        used = max(assignment[:k], default=-1)
        for u in range(min(used + 2, instance.m)):
            assignment[k] = u
            rec(k + 1)
        assignment[k] = 0

    rec(0)
    return best
