"""Table 1 reproduction — the paper's result landscape, measured.

Table 1 of the paper is a survey: per variant, the known guarantees and
running times, with this paper's rows marked *.  The reproduction runs
every implementable cell over fixed suites and reports

* the *guaranteed* ratio (from the theorem),
* the *measured worst* and mean ratio against the best available
  reference (exact OPT on the small suite, dual/input lower bound
  elsewhere — a conservative over-estimate of the true ratio),
* the mean wall time.

Rows of Table 1 that are PTAS/EPTAS/FPTAS families or restricted special
cases are listed with their guarantee and the reason they are quoted, not
executed (see DESIGN.md, substitutions).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Optional

from ..algos.api import solve
from ..baselines import (
    full_split_schedule,
    grouped_lpt_schedule,
    job_lpt_schedule,
    monma_potts_schedule,
    next_fit_schedule,
)
from ..core.bounds import Variant, lower_bound
from ..core.instance import Instance
from ..core.schedule import Schedule
from ..core.validate import validate_schedule
from ..exact import MAX_JOBS, exact_nonpreemptive_opt, exact_splittable_opt
from ..generators import adversarial_suite, medium_suite, small_exact_suite
from ..analysis.reporting import fmt_ratio, fmt_time, format_table


@dataclass(frozen=True)
class Table1Row:
    variant: str
    algorithm: str
    guarantee: str
    measured_max: Optional[float]
    measured_mean: Optional[float]
    mean_seconds: Optional[float]
    note: str = ""

    def cells(self) -> list[str]:
        return [
            self.variant,
            self.algorithm,
            self.guarantee,
            fmt_ratio(self.measured_max) if self.measured_max is not None else "—",
            fmt_ratio(self.measured_mean) if self.measured_mean is not None else "—",
            fmt_time(self.mean_seconds) if self.mean_seconds is not None else "—",
            self.note,
        ]


Runner = Callable[[Instance], Schedule]


def _runners() -> list[tuple[Variant, str, str, Runner, str]]:
    """(variant, name, guarantee, runner, note) for every executable cell."""

    def ours(algorithm):
        return lambda variant: (lambda inst: solve(inst, variant, algorithm).schedule)

    rows: list[tuple[Variant, str, str, Runner, str]] = []
    for variant in Variant:
        rows.append((variant, "2-approx [*Thm 1]", "2", ours("two")(variant), "O(n)"))
        rows.append(
            (variant, "3/2+eps [*Thm 2]", "1.515", ours("eps")(variant), "O(n log 1/eps)")
        )
    rows.append(
        (Variant.SPLITTABLE, "3/2 ClassJump [*Thm 3]", "1.5",
         ours("three_halves")(Variant.SPLITTABLE), "O(n + c log(c+m))")
    )
    rows.append(
        (Variant.NONPREEMPTIVE, "3/2 int-search [*Thm 8]", "1.5",
         ours("three_halves")(Variant.NONPREEMPTIVE), "O(n log(n+Delta))")
    )
    rows.append(
        (Variant.PREEMPTIVE, "3/2 ClassJump [*Thm 6]", "1.5",
         ours("three_halves")(Variant.PREEMPTIVE), "O(n log n), main result")
    )
    rows.append(
        (Variant.PREEMPTIVE, "Monma-Potts wrap [10]", "2-(floor(m/2)+1)^-1",
         monma_potts_schedule, "previous best, O(n)")
    )
    rows.append(
        (Variant.NONPREEMPTIVE, "next-fit [6]", "3", next_fit_schedule, "O(n)")
    )
    rows.append(
        (Variant.NONPREEMPTIVE, "grouped LPT", "none", grouped_lpt_schedule, "heuristic")
    )
    rows.append(
        (Variant.NONPREEMPTIVE, "job LPT", "none", job_lpt_schedule, "heuristic")
    )
    rows.append(
        (Variant.SPLITTABLE, "full split", "none", full_split_schedule, "naive")
    )
    rows.append(
        (Variant.SPLITTABLE, "no split (LPT)", "none", grouped_lpt_schedule, "naive")
    )
    return rows


#: Table-1 rows quoted but not executed, with the reason.
QUOTED_ROWS: list[tuple[str, str, str, str]] = [
    ("splittable", "5/3 Chen-Ye-Zhang [12]", "5/3", "poly; superseded by *Thm 3"),
    ("splittable", "EPTAS [5]", "1+eps", "2^O(1/eps^4 log^6 1/eps) n^4 log m — impractical by the paper's own account"),
    ("nonpreemptive", "PTAS [6]", "1+eps", "n^O(1/eps) — impractical"),
    ("nonpreemptive", "EPTAS [5]", "1+eps", "n-fold IP — impractical"),
    ("preemptive", "4/3+eps [11]", "4/3+eps", "restricted to |C_i| = 1"),
    ("preemptive", "EPTAS [5]", "1+eps", "restricted to |C_i| = 1"),
    ("*", "FPTAS [7,12]", "1+eps", "fixed m only"),
]


def best_reference(inst: Instance, variant: Variant) -> tuple[Fraction, str]:
    """Strongest certified lower bound on OPT for ratio measurement.

    Exact OPT where the reference solvers reach; otherwise the max of the
    input-only bound and the dual acceptance flip point ``T*`` (rejection
    certifies ``T < OPT``, so ``T* ≤ OPT`` — Theorems 5/7/9).
    """
    try:
        if variant is Variant.NONPREEMPTIVE and inst.n <= MAX_JOBS - 2:
            return Fraction(exact_nonpreemptive_opt(inst)), "opt"
        if variant is Variant.SPLITTABLE and inst.m <= 3 and inst.c <= 3:
            return Fraction(exact_splittable_opt(inst)), "opt"
    except ValueError:
        pass
    lb = Fraction(solve(inst, variant, "three_halves").opt_lower_bound)
    if variant is Variant.PREEMPTIVE:
        # the α'-counted dual (used by the ε-search) rejects more points than
        # the γ-counted one (α' ≥ γ), so its certificate can be tighter
        lb = max(lb, Fraction(solve(inst, variant, "eps", eps=Fraction(1, 64)).opt_lower_bound))
    return lb, "dual-LB"


def run_table1(
    include_small: bool = True,
    include_medium: bool = True,
    include_adversarial: bool = True,
) -> list[Table1Row]:
    suites: list[tuple[str, Instance]] = []
    if include_small:
        suites += small_exact_suite()
    if include_medium:
        suites += medium_suite()
    if include_adversarial:
        suites += adversarial_suite()

    # one reference per (instance, variant), shared by all algorithm rows
    references: dict[tuple[int, Variant], Fraction] = {}
    for k, (_, inst) in enumerate(suites):
        for variant in Variant:
            references[(k, variant)] = best_reference(inst, variant)[0]

    rows: list[Table1Row] = []
    for variant, name, guarantee, runner, note in _runners():
        ratios: list[Fraction] = []
        seconds: list[float] = []
        for k, (_, inst) in enumerate(suites):
            t0 = time.perf_counter()
            schedule = runner(inst)
            seconds.append(time.perf_counter() - t0)
            cmax = validate_schedule(schedule, variant)
            ratios.append(Fraction(cmax) / references[(k, variant)])
        rows.append(
            Table1Row(
                variant=str(variant),
                algorithm=name,
                guarantee=guarantee,
                measured_max=float(max(ratios)),
                measured_mean=float(sum(ratios) / len(ratios)),
                mean_seconds=sum(seconds) / len(seconds),
                note=note,
            )
        )
    for variant, name, guarantee, why in QUOTED_ROWS:
        rows.append(
            Table1Row(
                variant=variant, algorithm=name, guarantee=guarantee,
                measured_max=None, measured_mean=None, mean_seconds=None,
                note=f"quoted: {why}",
            )
        )
    return rows


def render_table1(rows: Optional[list[Table1Row]] = None) -> str:
    rows = rows if rows is not None else run_table1()
    return format_table(
        ["variant", "algorithm", "guaranteed", "worst meas.", "mean meas.", "mean time", "note"],
        [r.cells() for r in rows],
        title="Table 1 (reproduction): guarantees vs measured ratios.\n"
              "References: exact OPT on small instances, else certified dual lower bounds\n"
              "(measured ratios can exceed the guarantee only by the LB-to-OPT gap, never vs exact OPT).",
    )
