"""CLI: ``python -m repro.experiments <command>`` — see package docstring."""

from __future__ import annotations

import argparse
import sys

from . import (
    render_all,
    render_construction_scaling,
    render_counting_ablation,
    render_figure,
    render_grid_crossover,
    render_jump_ablation,
    render_kernel_scaling,
    render_machine_sweep,
    render_obs_summary,
    render_ratio_study,
    render_scaling,
    render_service_throughput,
    render_table1,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1", help="Table 1: guarantees vs measured ratios")
    fig = sub.add_parser("figures", help="Figures 1-13 as ASCII Gantt charts")
    fig.add_argument("--fig", default="all", help="figure id (1, 1a, 1b, 2..13) or 'all'")
    scal = sub.add_parser("scaling", help="Experiment S1: runtime scaling")
    scal.add_argument("--sizes", type=int, nargs="*", default=None)
    scal.add_argument(
        "--kernel", choices=["fast", "fraction", "both"], default="fast",
        help="numeric tier to time ('both' renders the side-by-side fits)",
    )
    swp = sub.add_parser(
        "sweep", help="Experiment S2: machine sweeps via the batched engine"
    )
    swp.add_argument("--kernel", choices=["fast", "fraction"], default="fast")
    sub.add_parser(
        "gridcross",
        help="Experiment S3: non-preemptive grid tier vs scalar probes over c",
    )
    con = sub.add_parser(
        "construct",
        help="Experiment S4: Algorithm 6 construction — ItemStore vs reference",
    )
    con.add_argument("--sizes", type=int, nargs="*", default=None)
    svc = sub.add_parser(
        "service",
        help="Experiment S5: service throughput vs shard count (repro.service)",
    )
    svc.add_argument("--shards", type=int, nargs="*", default=None)
    sub.add_parser("ratio", help="Experiment R1: ratio study")
    sub.add_parser("ablation", help="Experiments A1/A2: jumping + counting ablations")
    obs = sub.add_parser(
        "obs",
        help="summarize a service trace file (python -m repro.service "
             "--trace FILE): batch latency + solver counters",
    )
    obs.add_argument("trace", help="JSONL span file written by --trace")
    args = parser.parse_args(argv)

    if args.command == "table1":
        print(render_table1())
    elif args.command == "figures":
        print(render_all() if args.fig == "all" else render_figure(args.fig))
    elif args.command == "scaling":
        if args.kernel == "both":
            print(render_kernel_scaling(sizes=args.sizes))
        else:
            print(render_scaling(sizes=args.sizes, kernel=args.kernel))
    elif args.command == "sweep":
        print(render_machine_sweep(kernel=args.kernel))
    elif args.command == "gridcross":
        print(render_grid_crossover())
    elif args.command == "construct":
        print(render_construction_scaling(sizes=args.sizes))
    elif args.command == "service":
        print(
            render_service_throughput(
                shard_counts=tuple(args.shards) if args.shards else (1, 2, 4, 8)
            )
        )
    elif args.command == "ratio":
        print(render_ratio_study())
    elif args.command == "ablation":
        print(render_jump_ablation())
        print()
        print(render_counting_ablation())
    elif args.command == "obs":
        print(render_obs_summary(args.trace))
    return 0


if __name__ == "__main__":
    sys.exit(main())
