"""Experiment S1 — near-linear runtime scaling of all six algorithms.

Two extensions beyond the original experiment:

* every timed solve can run on either numeric tier (``kernel="fast"`` /
  ``"fraction"``), and :func:`render_kernel_scaling` reports the fitted
  exponents of both tiers side by side — the near-linear claim should
  (and does) hold for the scaled-integer kernel and the exact-rational
  reference alike;
* Experiment S2 (:func:`run_machine_sweep` / :func:`render_machine_sweep`)
  exercises the batched solve engine: one instance swept across machine
  counts through :func:`repro.algos.batch_api.sweep_machines`, timed
  against the equivalent loop of ``solve()`` calls.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Sequence

from ..algos.api import solve
from ..algos.batch_api import SweepPoint, sweep_machines
from ..analysis.complexity import ScalingFit, fit_loglog, time_algorithm
from ..analysis.reporting import fmt_time, format_table
from ..core.bounds import Variant
from ..core.instance import Instance
from ..generators import scaling_suite, uniform_instance

DEFAULT_SIZES = [100, 200, 400, 800, 1600]
KERNELS = ("fast", "fraction")


@dataclass(frozen=True)
class ScalingRow:
    label: str
    fit: ScalingFit


def algorithms(kernel: str = "fast") -> list[tuple[str, Callable[[Instance], object]]]:
    """The six timed algorithms, each solving on the requested kernel."""
    out: list[tuple[str, Callable[[Instance], object]]] = []
    for variant in Variant:
        out.append(
            (f"{variant}/two", lambda i, v=variant: solve(i, v, "two"))
        )
        out.append(
            (
                f"{variant}/eps",
                lambda i, v=variant, k=kernel: solve(i, v, "eps", kernel=k),
            )
        )
        out.append(
            (
                f"{variant}/three_halves",
                lambda i, v=variant, k=kernel: solve(i, v, "three_halves", kernel=k),
            )
        )
    return out


def run_scaling(
    sizes: list[int] | None = None, repeats: int = 2, kernel: str = "fast"
) -> list[ScalingRow]:
    sizes = sizes or DEFAULT_SIZES
    suite = scaling_suite(sizes)
    rows = []
    for label, fn in algorithms(kernel):
        points = time_algorithm(fn, suite, repeats=repeats)
        rows.append(ScalingRow(label=label, fit=fit_loglog(points)))
    return rows


def render_scaling(rows: list[ScalingRow] | None = None,
                   sizes: list[int] | None = None,
                   kernel: str = "fast") -> str:
    rows = rows if rows is not None else run_scaling(sizes, kernel=kernel)
    table_rows = []
    for r in rows:
        times = "  ".join(f"n={p.n}:{fmt_time(p.seconds)}" for p in r.fit.points)
        table_rows.append(
            [r.label, f"{r.fit.exponent:.2f}", f"{r.fit.r_squared:.3f}",
             "yes" if r.fit.is_near_linear() else "NO", times]
        )
    return format_table(
        ["algorithm", "fit exp b", "R^2", "near-linear?", "timings"],
        table_rows,
        title="Experiment S1: runtime scaling (time ~ a*n^b; paper claims b ≈ 1 "
              f"up to log factors for all six algorithms; kernel={kernel})",
    )


def run_scaling_kernels(
    sizes: list[int] | None = None, repeats: int = 2
) -> dict[str, list[ScalingRow]]:
    """S1 on both numeric tiers (same instances, same algorithms)."""
    return {kernel: run_scaling(sizes, repeats, kernel) for kernel in KERNELS}


def render_kernel_scaling(sizes: list[int] | None = None, repeats: int = 2) -> str:
    """Fast-vs-fraction fit exponents side by side (Experiment S1, both tiers)."""
    by_kernel = run_scaling_kernels(sizes, repeats)
    table_rows = []
    for fast_row, frac_row in zip(by_kernel["fast"], by_kernel["fraction"]):
        assert fast_row.label == frac_row.label
        fast_total = sum(p.seconds for p in fast_row.fit.points)
        frac_total = sum(p.seconds for p in frac_row.fit.points)
        speedup = frac_total / fast_total if fast_total else float("inf")
        table_rows.append(
            [
                fast_row.label,
                f"{fast_row.fit.exponent:.2f}",
                f"{frac_row.fit.exponent:.2f}",
                "yes" if fast_row.fit.is_near_linear() else "NO",
                "yes" if frac_row.fit.is_near_linear() else "NO",
                f"{speedup:.2f}x",
            ]
        )
    return format_table(
        ["algorithm", "b (fast)", "b (fraction)", "lin? (fast)",
         "lin? (fraction)", "fast speedup"],
        table_rows,
        title="Experiment S1b: fit exponents per numeric tier "
              "(both kernels must stay near-linear; speedup = Σt_fraction/Σt_fast)",
    )


# --------------------------------------------------------------------------- #
# Experiment S2 — machine-count sweeps through the batched engine
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class SweepTiming:
    variant: Variant
    points: tuple[SweepPoint, ...]
    sweep_seconds: float    # sweep_machines(..., schedules=False)
    loop_seconds: float     # equivalent loop of full solve() calls

    @property
    def speedup(self) -> float:
        return self.loop_seconds / self.sweep_seconds if self.sweep_seconds else float("inf")


def run_machine_sweep(
    instance: Instance | None = None,
    ms: Sequence[int] | None = None,
    repeats: int = 2,
    kernel: str = "fast",
) -> list[SweepTiming]:
    """Time ``sweep_machines`` (bounds mode) against looped ``solve()``.

    The loop constructs a fresh instance per machine count — exactly what
    a caller without the sweep engine does via ``with_machines`` — while
    the sweep shares one cache/context set and skips schedule
    construction (the certified ``T*``/bound curve is the output).
    """
    instance = instance or uniform_instance(m=16, c=40, n_per_class=20, seed=202)
    ms = list(ms) if ms is not None else list(range(2, 2 * instance.m + 1, 2))
    out = []
    for variant in Variant:
        sweep_best = float("inf")
        loop_best = float("inf")
        points: tuple[SweepPoint, ...] = ()
        for _ in range(repeats):
            fresh = Instance(m=instance.m, setups=instance.setups, jobs=instance.jobs)
            t0 = time.perf_counter()
            points = tuple(
                sweep_machines(fresh, ms, variant, schedules=False, kernel=kernel)
            )
            sweep_best = min(sweep_best, time.perf_counter() - t0)
            t0 = time.perf_counter()
            for m in ms:
                solve(
                    Instance(m=m, setups=instance.setups, jobs=instance.jobs),
                    variant, "three_halves", kernel=kernel,
                )
            loop_best = min(loop_best, time.perf_counter() - t0)
        out.append(
            SweepTiming(
                variant=variant, points=points,
                sweep_seconds=sweep_best, loop_seconds=loop_best,
            )
        )
    return out


def render_machine_sweep(
    timings: list[SweepTiming] | None = None,
    instance: Instance | None = None,
    ms: Sequence[int] | None = None,
    kernel: str = "fast",
) -> str:
    timings = timings if timings is not None else run_machine_sweep(instance, ms, kernel=kernel)
    table_rows = []
    for t in timings:
        lo = min(p.m for p in t.points)
        hi = max(p.m for p in t.points)
        curve = "  ".join(
            f"m={p.m}:{p.T}" for p in t.points[:: max(1, len(t.points) // 4)]
        )
        table_rows.append(
            [
                str(t.variant),
                f"{lo}..{hi}",
                fmt_time(t.sweep_seconds),
                fmt_time(t.loop_seconds),
                f"{t.speedup:.2f}x",
                curve,
            ]
        )
    return format_table(
        ["variant", "machines", "sweep (bounds)", "looped solve()", "speedup",
         "T* curve (sampled)"],
        table_rows,
        title="Experiment S2: machine-count sweeps — batched engine vs looped solve "
              f"(kernel={kernel}; sweep returns certified T*/bound curves)",
    )


# --------------------------------------------------------------------------- #
# Experiment S3 — the flattened non-preemptive grid vs scalar probes
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class GridTiming:
    shape: str            # "<variant>/<algorithm>" search shape
    c: int
    block: int            # candidates per batched grid call for this shape
    scalar_seconds: float
    grid_seconds: float

    @property
    def speedup(self) -> float:
        return self.scalar_seconds / self.grid_seconds if self.grid_seconds else float("inf")

    @property
    def work(self) -> int:
        """The auto-policy gate product ``block × c``."""
        return self.block * self.c


#: The search shapes the auto policy distinguishes: every variant's
#: Class-Jumping / integer flip search plus the dyadic ε-search.
GRID_SHAPES: tuple[tuple[Variant, str], ...] = tuple(
    (variant, algorithm) for variant in Variant for algorithm in ("three_halves", "eps")
)


def run_grid_crossover(
    cs: Sequence[int] = (12, 40, 100, 200, 400),
    m: int = 24,
    repeats: int = 3,
    shapes: Sequence[tuple[Variant, str]] = GRID_SHAPES,
) -> list[GridTiming]:
    """Bounds-only sweeps per search shape: grid evaluator off vs forced on.

    PR 3 flattened the grid's per-class ``searchsorted`` loop into one
    concatenated-keys query (:func:`repro.core.batchdual._np_flat`) and
    measured the non-preemptive crossover; PR 5's ``class_tmax``
    short-circuit moved that crossover past every measured ``c``.  PR 9
    made the auto policy *shape-aware* — gated per probe kind on the
    product of candidate-block size and class count (see
    :data:`repro.algos.batch_api.GRID_POLICY`) — so this
    experiment now times every ``variant × algorithm`` search shape: the
    flip searches probe candidate lists of ≤ c + 2 points, the ε-search
    one dyadic grid of ~129 points, and the block×c column is exactly
    the quantity the policy gates on.  Re-run after touching either tier
    and recalibrate the ceilings from the winner column.  Requires numpy
    (the ``[batch]`` extra).
    """
    from ..algos.batch_api import _grid_block_estimate
    from ..core import batchdual

    if not batchdual.HAVE_NUMPY:
        raise RuntimeError("Experiment S3 requires numpy (pip install '.[batch]')")
    eps = Fraction(1, 100)
    out = []
    for variant, algorithm in shapes:
        for c in cs:
            inst = uniform_instance(m=m, c=c, n_per_class=2, seed=404)
            ms = list(range(2, 2 * m + 1, 3))
            best = {False: float("inf"), True: float("inf")}
            for grid in (False, True):
                for _ in range(repeats):
                    fresh = Instance(
                        m=inst.m, setups=inst.setups, jobs=inst.jobs
                    )
                    t0 = time.perf_counter()
                    sweep_machines(
                        fresh, ms, variant, algorithm, eps,
                        schedules=False, use_grid=grid,
                    )
                    best[grid] = min(best[grid], time.perf_counter() - t0)
            out.append(
                GridTiming(
                    shape=f"{variant}/{algorithm}",
                    c=c,
                    block=_grid_block_estimate(algorithm, eps, c),
                    scalar_seconds=best[False],
                    grid_seconds=best[True],
                )
            )
    return out


def render_grid_crossover(timings: list[GridTiming] | None = None) -> str:
    timings = timings if timings is not None else run_grid_crossover()
    table_rows = [
        [
            t.shape,
            str(t.c),
            str(t.block),
            f"{t.work:,}",
            fmt_time(t.scalar_seconds),
            fmt_time(t.grid_seconds),
            f"{t.speedup:.2f}x",
            "grid" if t.speedup >= 1 else "scalar",
        ]
        for t in timings
    ]
    return format_table(
        ["search shape", "classes c", "block", "block×c", "scalar probes",
         "flattened grid", "grid speedup", "winner"],
        table_rows,
        title="Experiment S3: grid tier vs scalar probes per search shape "
              "(bounds-only machine sweeps; the auto policy gates on block×c "
              "per probe kind — repro.algos.batch_api.GRID_POLICY)",
    )


# --------------------------------------------------------------------------- #
# Experiment S4 — Algorithm 6's construction tiers (ItemStore vs reference)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ConstructTiming:
    n: int
    fast_seconds: float       # index-based ItemStore tier (PR 4)
    fraction_seconds: float   # per-item _It/Fraction reference

    @property
    def speedup(self) -> float:
        return (
            self.fraction_seconds / self.fast_seconds
            if self.fast_seconds
            else float("inf")
        )


def run_construction_scaling(
    sizes: Sequence[int] | None = None, repeats: int = 3
) -> list[ConstructTiming]:
    """Time ``nonp_dual_schedule`` at the accepted ``T*`` on both tiers.

    Isolates exactly the work PR 4 flattened — Algorithm 6's steps 1-4
    plus materialization (``rows()`` forces the lazily adopted columns)
    — with warmed caches, like one point of a full-schedule sweep.  The
    object-free :class:`~repro.core.itemstore.ItemStore` tier must stay
    near-linear *and* a large constant factor ahead of the per-item
    reference; ``benchmarks/run_bench.py`` pins the same quantity as the
    ``speedup/nonp-construct`` family.
    """
    from ..algos.nonpreemptive import nonp_dual_schedule, three_halves_nonpreemptive

    sizes = list(sizes) if sizes is not None else [100, 200, 400, 800, 1600]
    out = []
    for n in sizes:
        c = max(2, n // 20)
        inst = uniform_instance(m=max(2, n // 50), c=c, n_per_class=n // c, seed=500 + n)
        T = three_halves_nonpreemptive(inst, build_schedule=False).T
        best = {"fast": float("inf"), "fraction": float("inf")}
        for kernel in KERNELS:
            for _ in range(repeats):
                t0 = time.perf_counter()
                nonp_dual_schedule(inst, T, kernel=kernel).rows()
                best[kernel] = min(best[kernel], time.perf_counter() - t0)
        out.append(
            ConstructTiming(
                n=inst.n, fast_seconds=best["fast"], fraction_seconds=best["fraction"]
            )
        )
    return out


def render_construction_scaling(
    timings: list[ConstructTiming] | None = None,
    sizes: Sequence[int] | None = None,
) -> str:
    timings = timings if timings is not None else run_construction_scaling(sizes)
    table_rows = [
        [
            str(t.n),
            fmt_time(t.fast_seconds),
            fmt_time(t.fraction_seconds),
            f"{t.speedup:.2f}x",
        ]
        for t in timings
    ]
    return format_table(
        ["jobs n", "ItemStore (fast)", "reference (fraction)", "speedup"],
        table_rows,
        title="Experiment S4: Algorithm 6 construction tiers at T* — "
              "index-based ItemStore vs per-item Fraction objects (PR 4)",
    )


# --------------------------------------------------------------------------- #
# Experiment S5 — service throughput vs shard count (repro.service)
# --------------------------------------------------------------------------- #


def service_pool(instance: Instance, distinct: int = 4) -> list[Instance]:
    """``distinct`` same-scale instances with distinct fingerprints.

    A service burst against a single instance exercises exactly one
    shard (fingerprint affinity); deriving a few perturbed siblings —
    every setup bumped, resp. every class's first job lengthened — keeps
    the workload at the fixture's size while spreading it across the
    shard ring the way distinct tenants would.
    """
    out = [instance]
    for bump in range(1, distinct):
        if bump % 2:
            nxt = Instance(
                m=instance.m,
                setups=tuple(s + bump for s in instance.setups),
                jobs=instance.jobs,
            )
        else:
            nxt = Instance(
                m=instance.m,
                setups=instance.setups,
                jobs=tuple((ts[0] + bump,) + ts[1:] for ts in instance.jobs),
            )
        out.append(nxt)
    return out


def service_stream_ms(m: int) -> list[int]:
    """The service-shaped machine-count stream used by every bench.

    Repeated and related counts around ``m`` — the request pattern of a
    tenant re-asking about the same fleet.  Single source for the
    ``many/`` bench family (``benchmarks/run_bench.py``) and the S5
    burst, so the families compare like-for-like streams.
    """
    half = max(1, m // 2)
    return [m, half, m, m + 4, m, half, m + 4, m, m, half, m, m + 4]


def service_burst(pool: Sequence[Instance], rounds: int = 2):
    """The deterministic *mixed* request burst of the service benches.

    Per round and pool instance: twelve single-solve requests over a
    service-shaped machine stream (repeats + related counts, all three
    variants, alternating full-schedule / bounds-only), plus one
    bounds-only machine-range request per variant (the capacity-planning
    sweep shape the ``ms`` field exists for — a naive server answers it
    with one full solve per machine count).  Requests carry fresh
    instance copies — warming them is the service's job, not the
    caller's.
    """
    from ..service.protocol import SolveRequest

    reqs = []
    k = 0
    for _ in range(max(1, rounds)):
        for instance in pool:
            m = instance.m
            for mm in service_stream_ms(m):
                reqs.append(
                    SolveRequest(
                        instance=instance.with_machines(mm),
                        variant=list(Variant)[k % 3],
                        schedules=(k % 2 == 0),
                        id=k,
                    )
                )
                k += 1
            ms = tuple(range(2, 2 * m + 1, max(1, m // 4)))
            for variant in Variant:
                reqs.append(
                    SolveRequest(
                        instance=instance.with_machines(m),
                        variant=variant,
                        schedules=False,
                        ms=ms,
                        id=k,
                    )
                )
                k += 1
    return reqs


def naive_request_loop(requests) -> None:
    """The no-service baseline: one fresh full ``solve()`` per answer unit.

    A machine-range request is answered count by count; bounds-only
    requests still pay a full solve — without the engine there is no
    cheaper certified path (the long-standing ``loop`` convention of
    ``benchmarks/run_bench.py``).
    """
    for req in requests:
        ms = req.ms if req.ms is not None else (req.instance.m,)
        for m in ms:
            solve(
                Instance(m=m, setups=req.instance.setups, jobs=req.instance.jobs),
                req.variant,
                req.algorithm,
                req.eps,
            )


@dataclass(frozen=True)
class ServiceTiming:
    shards: int
    requests: int
    loop_seconds: float
    service_seconds: float
    peak_instances: int
    max_instances: int
    cache_hits: int
    evictions: int

    @property
    def speedup(self) -> float:
        return (
            self.loop_seconds / self.service_seconds
            if self.service_seconds
            else float("inf")
        )

    @property
    def requests_per_second(self) -> float:
        return (
            self.requests / self.service_seconds
            if self.service_seconds
            else float("inf")
        )


def run_service_throughput(
    instance: Instance | None = None,
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    rounds: int = 2,
    repeats: int = 3,
    max_instances: int = 2,
    workers: str = "thread",
) -> list[ServiceTiming]:
    """Experiment S5: the mixed burst through the service at each shard count.

    The loop baseline answers the identical burst with naive
    one-request-at-a-time ``solve()`` calls.  Each service measurement
    restarts the service (cold LRUs) and times the burst only — shard
    threads are started outside the clock.  Expect the shard dimension
    to be roughly flat on CPython under ``workers="thread"``: the solves
    hold the GIL, so thread shards buy cache *affinity* and eviction
    isolation, not core parallelism.  ``workers="process"`` runs each
    shard in a supervised child process — real multicore, at the price
    of the pipe round trip per micro-batch (child spawn happens outside
    the clock here too, same as thread start-up).
    """
    import asyncio

    from ..service.engine import ServiceConfig, SolveService

    instance = instance or uniform_instance(m=8, c=12, n_per_class=6, seed=101)
    pool = service_pool(instance)
    requests = service_burst(pool, rounds)

    loop_best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        naive_request_loop(service_burst(pool, rounds))
        loop_best = min(loop_best, time.perf_counter() - t0)

    out = []
    for shards in shard_counts:
        config = ServiceConfig(
            shards=shards, max_instances=max_instances, workers=workers
        )

        async def once(config=config):
            async with SolveService(config) as svc:
                burst = service_burst(pool, rounds)
                t0 = time.perf_counter()
                await svc.submit_many(burst)
                return time.perf_counter() - t0, svc.stats()

        best = float("inf")
        stats = None
        for _ in range(repeats):
            seconds, stats = asyncio.run(once())
            best = min(best, seconds)
        out.append(
            ServiceTiming(
                shards=shards,
                requests=len(requests),
                loop_seconds=loop_best,
                service_seconds=best,
                peak_instances=stats.peak_instances,
                max_instances=stats.max_instances,
                cache_hits=stats.cache_hits,
                evictions=stats.evictions,
            )
        )
    return out


def render_service_throughput(
    timings: list[ServiceTiming] | None = None,
    instance: Instance | None = None,
    shard_counts: Sequence[int] = (1, 2, 4, 8),
) -> str:
    timings = (
        timings
        if timings is not None
        else run_service_throughput(instance, shard_counts)
    )
    table_rows = [
        [
            str(t.shards),
            str(t.requests),
            fmt_time(t.loop_seconds),
            fmt_time(t.service_seconds),
            f"{t.speedup:.2f}x",
            f"{t.requests_per_second:,.0f}",
            f"{t.peak_instances}/{t.max_instances}",
            str(t.evictions),
        ]
        for t in timings
    ]
    return format_table(
        ["shards", "requests", "naive loop", "service", "speedup", "req/s",
         "peak/max warm", "evictions"],
        table_rows,
        title="Experiment S5: async sharded service vs naive per-request solve() "
              "(mixed burst: 3 variants, full + bounds-only + machine ranges; "
              "LRU-bounded warm instances)",
    )
