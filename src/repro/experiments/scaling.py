"""Experiment S1 — near-linear runtime scaling of all six algorithms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..algos.api import solve
from ..analysis.complexity import ScalingFit, fit_loglog, time_algorithm
from ..analysis.reporting import fmt_time, format_table
from ..core.bounds import Variant
from ..core.instance import Instance
from ..generators import scaling_suite

DEFAULT_SIZES = [100, 200, 400, 800, 1600]


@dataclass(frozen=True)
class ScalingRow:
    label: str
    fit: ScalingFit


def algorithms() -> list[tuple[str, Callable[[Instance], object]]]:
    out: list[tuple[str, Callable[[Instance], object]]] = []
    for variant in Variant:
        out.append((f"{variant}/two", lambda i, v=variant: solve(i, v, "two")))
        out.append((f"{variant}/eps", lambda i, v=variant: solve(i, v, "eps")))
        out.append(
            (f"{variant}/three_halves", lambda i, v=variant: solve(i, v, "three_halves"))
        )
    return out


def run_scaling(sizes: list[int] | None = None, repeats: int = 2) -> list[ScalingRow]:
    sizes = sizes or DEFAULT_SIZES
    suite = scaling_suite(sizes)
    rows = []
    for label, fn in algorithms():
        points = time_algorithm(fn, suite, repeats=repeats)
        rows.append(ScalingRow(label=label, fit=fit_loglog(points)))
    return rows


def render_scaling(rows: list[ScalingRow] | None = None,
                   sizes: list[int] | None = None) -> str:
    rows = rows if rows is not None else run_scaling(sizes)
    table_rows = []
    for r in rows:
        times = "  ".join(f"n={p.n}:{fmt_time(p.seconds)}" for p in r.fit.points)
        table_rows.append(
            [r.label, f"{r.fit.exponent:.2f}", f"{r.fit.r_squared:.3f}",
             "yes" if r.fit.is_near_linear() else "NO", times]
        )
    return format_table(
        ["algorithm", "fit exp b", "R^2", "near-linear?", "timings"],
        table_rows,
        title="Experiment S1: runtime scaling (time ~ a*n^b; paper claims b ≈ 1 "
              "up to log factors for all six algorithms)",
    )
