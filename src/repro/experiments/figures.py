"""Regeneration of the paper's Figures 1-13 from the actual algorithms.

Every figure is produced by *running the implemented algorithm* on an
instance shaped like the paper's example and rendering the resulting
schedule as ASCII art (``repro.analysis.gantt``).  Figure ids follow the
paper; see DESIGN.md §3 for the index.
"""

from __future__ import annotations

from fractions import Fraction

from ..algos.jumping_pmtn import three_halves_preemptive
from ..algos.nonpreemptive import nonp_dual_schedule
from ..algos.pmtn_general import pmtn_dual_schedule, pmtn_dual_test
from ..algos.pmtn_nice import full_view, nice_dual_schedule
from ..algos.splittable import split_dual_schedule, split_dual_test
from ..algos.twoapprox import two_approx_grouped
from ..analysis.gantt import render_gantt, render_template
from ..core.instance import Instance, JobRef
from ..core.schedule import Schedule

WIDTH = 96


def _row_filtered(sched: Schedule, keep, rows=None) -> Schedule:
    """A view schedule of the rows selected by ``keep(machine, start_num,
    length_num, cls, job_idx)`` — built through the bulk
    :meth:`~repro.core.schedule.Schedule.rows` reader and ``add_scaled``,
    so no :class:`Placement`/:class:`~fractions.Fraction` objects are
    materialized just to filter starts/lengths.  ``rows`` passes an
    already-built projection (callers that derived filter constants from
    it) so the schedule is projected once."""
    if rows is None:
        rows = sched.rows()
    view = Schedule(sched.instance)
    for k in range(len(rows)):
        u = int(rows.machine[k])
        sn = int(rows.start_num[k])
        ln = int(rows.length_num[k])
        cls = int(rows.cls[k])
        ji = int(rows.job_idx[k])
        if keep(u, sn, ln, cls, ji):
            view.add_scaled(
                u, sn, ln, rows.scale, cls, None if ji < 0 else JobRef(cls, ji)
            )
    return view


def _markers(T: Fraction) -> dict:
    return {"T/2": T / 2, "T": T, "3T/2": 3 * T / 2}


# --------------------------------------------------------------------------- #
# Figure 1 — splittable dual, steps (1) and (2)
# --------------------------------------------------------------------------- #

def fig1_instance() -> tuple[Instance, Fraction]:
    """Iexp = {0..3}, Ichp = {4..7} at T = 20, mirroring Figure 1."""
    inst = Instance.build(
        12,
        [
            (12, [15, 15]),
            (11, [12]),
            (14, [8]),
            (13, [10, 3]),
            (4, [5, 5]),
            (3, [6]),
            (5, [2, 2, 2]),
            (2, [7]),
        ],
    )
    return inst, Fraction(20)


def fig1a() -> str:
    """Situation after step (1): expensive classes only (cheap withheld)."""
    inst, T = fig1_instance()
    dual = split_dual_test(inst, T)
    exp_only = Instance.build(
        inst.m, [(inst.setups[i], list(inst.jobs[i])) for i in dual.exp]
    )
    sched = split_dual_schedule(exp_only, T)
    return render_gantt(
        sched, WIDTH, _markers(T),
        title="Figure 1(a): splittable, after step (1) — expensive classes on β_i machines",
        horizon=3 * T / 2,
    )


def fig1b() -> str:
    inst, T = fig1_instance()
    sched = split_dual_schedule(inst, T)
    return render_gantt(
        sched, WIDTH, _markers(T),
        title="Figure 1(b): splittable, after step (2) — cheap classes wrapped "
              "into [L(ū_i)+T/2, 3T/2] and [T/2, 3T/2]",
        horizon=3 * T / 2,
    )


# --------------------------------------------------------------------------- #
# Figure 2 — Algorithm 2 on a nice instance (I+exp = two classes)
# --------------------------------------------------------------------------- #

def fig2_instance() -> tuple[Instance, Fraction]:
    inst = Instance.build(
        8,
        [
            (12, [8, 8, 8]),   # I+exp, alpha' = 3
            (11, [9, 9]),      # I+exp, alpha' = 2
            (3, [5, 5]),
            (4, [2, 2, 2]),
        ],
    )
    return inst, Fraction(20)


def fig2() -> str:
    inst, T = fig2_instance()
    sched = nice_dual_schedule(inst, T, mode="alpha")
    return render_gantt(
        sched, WIDTH, _markers(T),
        title="Figure 2: Algorithm 2 on a nice instance — I+exp on α'_i machines, "
              "cheap load wrapped above T/2",
        horizon=3 * T / 2,
    )


# --------------------------------------------------------------------------- #
# Figures 3, 4 — Algorithm 3 (large machines; knapsack bottoms)
# --------------------------------------------------------------------------- #

def fig34_instance() -> tuple[Instance, Fraction]:
    """8 large machines + 5 star classes: accepted case 3a at T = 20."""
    classes = [(11, [5])] * 8 + [(3, [8])] * 5
    return Instance.build(10, classes), Fraction(20)


def fig3() -> str:
    inst, T = fig34_instance()
    d = pmtn_dual_test(inst, T)
    sched = pmtn_dual_schedule(inst, T)
    zero = set(d.partition.exp_zero)
    view = _row_filtered(sched, lambda u, sn, ln, cls, ji: cls in zero)
    return render_gantt(
        view, WIDTH, _markers(T),
        title="Figure 3: Algorithm 3 after step 1 — each I0exp class on its own "
              "large machine, starting at T/2 (bottoms still empty)",
        machines=range(d.l),
        horizon=3 * T / 2,
    )


def fig4() -> str:
    inst, T = fig34_instance()
    d = pmtn_dual_test(inst, T)
    sched = pmtn_dual_schedule(inst, T)
    rows = sched.rows()
    # end ≤ T/2  ⟺  (sn+ln)·2·T.den ≤ T.num·scale — exact, no Fractions
    lim_n, lim_d = T.numerator * rows.scale, 2 * T.denominator
    view = _row_filtered(
        sched,
        lambda u, sn, ln, cls, ji: u < d.l and (sn + ln) * lim_d <= lim_n,
        rows=rows,
    )
    return render_gantt(
        view, WIDTH, {"T/4": T / 4, "T/2": T / 2},
        title="Figure 4: bottoms of the large machines after the knapsack "
              f"decision (case 3a; unselected={list(d.unselected)}, split e={d.split_class})",
        machines=range(d.l),
        horizon=T / 2,
    )


# --------------------------------------------------------------------------- #
# Figure 5 — γ-modified Algorithm 2 (Class Jumping, preemptive)
# --------------------------------------------------------------------------- #

def fig5() -> str:
    inst, T = fig2_instance()
    sched = nice_dual_schedule(inst, T, mode="gamma")
    return render_gantt(
        sched, WIDTH, _markers(T),
        title="Figure 5: modified Algorithm 2 (γ_i machines, T/2 job quota above "
              "each setup) — the Class-Jumping variant",
        horizon=3 * T / 2,
    )


# --------------------------------------------------------------------------- #
# Figure 6 — a wrap template
# --------------------------------------------------------------------------- #

def fig6() -> str:
    gaps = [(0, 2, 9), (1, 5, 12), (2, 0, 7), (4, 6, 13)]
    return render_template(
        gaps, m=6, width=WIDTH,
        title="Figure 6: a wrap template ω with |ω| = 4 (gaps on increasing machines)",
    )


# --------------------------------------------------------------------------- #
# Figure 7 — next-fit 2-approximation before/after repair (m = c = 5)
# --------------------------------------------------------------------------- #

def fig7_instance() -> Instance:
    return Instance.build(
        5,
        [
            (3, [4, 4]),
            (2, [5, 3]),
            (4, [2, 2, 2]),
            (1, [6]),
            (2, [3, 3]),
        ],
    )


def fig7() -> str:
    inst = fig7_instance()
    stages: dict = {}
    res = two_approx_grouped(inst, stages_out=stages)
    tmin = res.t_min
    top = render_gantt(
        stages["phase1"], WIDTH, {"Tmin": tmin, "2Tmin": 2 * tmin},
        title="Figure 7 (left): next-fit with threshold T_min — crossing items hatched",
        horizon=2 * tmin,
    )
    bottom = render_gantt(
        stages["final"], WIDTH, {"Tmin": tmin, "2Tmin": 2 * tmin},
        title="Figure 7 (right): crossing items moved to the next machine "
              "(fresh setups added, trailing setups removed)",
        horizon=2 * tmin,
    )
    return top + "\n\n" + bottom


# --------------------------------------------------------------------------- #
# Figure 8 — Lemma 11: large-machine modification
# --------------------------------------------------------------------------- #

def fig8() -> str:
    """One machine before/after the Lemma-11 reorder (hand-laid demo)."""
    inst = Instance.build(
        2, [(11, [4]), (2, [3]), (3, [2])]
    )  # class 0 is the I0exp class (s+P = 15 ∈ (3T/4, T) at T = 20)
    T = Fraction(20)
    before = Schedule(inst)
    before.add_setup(0, 0, 1)                      # A_i: cheap batch below
    before.add_job(0, 2, inst.class_jobs(1)[0][0])
    before.add_setup(0, 5, 0)                      # the I0exp class mid-machine
    before.add_job(0, 16, inst.class_jobs(0)[0][0])
    # B_i: cheap batch above
    before.add_setup(1, 0, 2)
    before.add_job(1, 3, inst.class_jobs(2)[0][0])
    after = Schedule(inst)
    after.add_setup(0, 0, 1)                       # A_i stays at the bottom
    after.add_job(0, 2, inst.class_jobs(1)[0][0])
    after.add_setup(0, T / 2, 0)                   # s_i moved to start at T/2
    after.add_job(0, T / 2 + 11, inst.class_jobs(0)[0][0])
    after.add_setup(1, 0, 2)
    after.add_job(1, 3, inst.class_jobs(2)[0][0])
    return (
        render_gantt(before, WIDTH, _markers(T), title="Figure 8 (left): machine u_i before", horizon=3 * T / 2)
        + "\n\n"
        + render_gantt(after, WIDTH, _markers(T), title="Figure 8 (right): Lemma 11 — setup s_i moved to T/2, B_i moved down", horizon=3 * T / 2)
    )


# --------------------------------------------------------------------------- #
# Figure 9 — Lemma 10 shape (I0exp classes on single machines + nice rest)
# --------------------------------------------------------------------------- #

def fig9() -> str:
    inst = Instance.build(
        8,
        [(11, [5]), (11, [6])] + [(12, [8, 8])] + [(3, [4, 4]), (2, [3, 3, 3])],
    )
    T = Fraction(20)
    sched = pmtn_dual_schedule(inst, T)
    return render_gantt(
        sched, WIDTH, _markers(T),
        title="Figure 9: Lemma 10 — I0exp classes on exactly one machine each; "
              "the residual nice instance on the last machines",
        horizon=3 * T / 2,
    )


# --------------------------------------------------------------------------- #
# Figures 10-13 — Algorithm 6, after steps 1, 2, 3, 4
# --------------------------------------------------------------------------- #

def fig10_13_instance() -> tuple[Instance, Fraction]:
    inst = Instance.build(
        8,
        [
            (12, [6, 6, 6, 6]),      # expensive (class 1 of the paper)
            (4, [11, 9, 9, 3, 3]),   # cheap with J+ and K jobs (class 2)
            (3, [2, 2]),             # classes 3..5: residual load for step 3
            (2, [5, 4]),
            (1, [3, 3, 3]),
        ],
    )
    return inst, Fraction(20)


def _fig_nonp(stage: str, caption: str) -> str:
    inst, T = fig10_13_instance()
    stages: dict = {}
    nonp_dual_schedule(inst, T, stages_out=stages)
    return render_gantt(
        stages[stage], WIDTH, _markers(T), title=caption, horizon=3 * T / 2
    )


def fig10() -> str:
    return _fig_nonp(
        "step1",
        "Figure 10: Algorithm 6 after step 1 — L wrapped on m_i machines per "
        "class (J+ jobs alone, K preemptively)",
    )


def fig11() -> str:
    return _fig_nonp(
        "step2",
        "Figure 11: after step 2 — jobs of C_i \\ L filled onto class machines "
        "(split at T, parents remembered)",
    )


def fig12() -> str:
    return _fig_nonp(
        "step3",
        "Figure 12: after step 3 — residual Q streamed greedily; T-crossing "
        "items kept un-split",
    )


def fig13() -> str:
    return _fig_nonp(
        "step4",
        "Figure 13: after step 4 — parents re-homed (no preemption), crossing "
        "items moved below their Q-successor with fresh setups",
    )


FIGURES = {
    "1a": fig1a, "1b": fig1b, "2": fig2, "3": fig3, "4": fig4, "5": fig5,
    "6": fig6, "7": fig7, "8": fig8, "9": fig9, "10": fig10, "11": fig11,
    "12": fig12, "13": fig13,
}


def render_figure(fig_id: str) -> str:
    if fig_id == "1":
        return fig1a() + "\n\n" + fig1b()
    if fig_id not in FIGURES:
        raise KeyError(f"unknown figure {fig_id!r}; available: 1, {', '.join(FIGURES)}")
    return FIGURES[fig_id]()


def render_all() -> str:
    parts = [render_figure(k) for k in FIGURES]
    return "\n\n".join(parts)
