"""Experiments R1/A1/A2 — approximation-ratio studies and ablations.

* R1: ratio vs *exact OPT* on the small suite (non-preemptive DP,
  splittable Hall enumeration) and vs lower bounds on medium/adversarial
  suites, for the 2-approx, (3/2+ε) and 3/2 algorithms plus baselines.
* A1: Class Jumping vs the slow flip reference vs (3/2+ε) binary search —
  identical flip points, dual-test counts compared.
* A2: α vs γ machine counting in the preemptive dual — both are valid;
  γ (the Class-Jumping variant) may accept slightly earlier/later, the
  built schedules stay within 3T/2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..algos.api import solve
from ..algos.jumping_pmtn import find_flip_pmtn
from ..algos.jumping_split import find_flip_splittable
from ..algos.search import slow_flip_splittable
from ..analysis.reporting import fmt_ratio, format_table
from ..core.bounds import Variant, lower_bound
from ..core.instance import Instance
from ..core.validate import validate_schedule
from ..exact import MAX_JOBS, exact_nonpreemptive_opt, exact_splittable_opt
from ..generators import adversarial_suite, medium_suite, small_exact_suite


@dataclass(frozen=True)
class RatioRow:
    suite: str
    variant: str
    algorithm: str
    worst: Fraction
    mean: Fraction
    reference: str

    def cells(self):
        return [self.suite, self.variant, self.algorithm,
                fmt_ratio(self.worst), fmt_ratio(self.mean), self.reference]


def _reference(inst: Instance, variant: Variant) -> tuple[Fraction, str]:
    if variant is Variant.NONPREEMPTIVE and inst.n <= MAX_JOBS - 2:
        try:
            return Fraction(exact_nonpreemptive_opt(inst)), "exact OPT"
        except ValueError:
            pass
    if variant is Variant.SPLITTABLE and inst.m <= 3 and inst.c <= 3:
        try:
            return Fraction(exact_splittable_opt(inst)), "exact OPT"
        except ValueError:
            pass
    # the dual flip point T* is a certified lower bound on OPT
    dual_lb = Fraction(solve(inst, variant, "three_halves").opt_lower_bound)
    if variant is Variant.PREEMPTIVE:
        # α'-counted dual (ε-search) rejects more points than the γ one
        dual_lb = max(
            dual_lb,
            Fraction(solve(inst, variant, "eps", eps=Fraction(1, 64)).opt_lower_bound),
        )
    return max(Fraction(lower_bound(inst, variant)), dual_lb), "dual LB"


def run_ratio_study(algorithms: tuple[str, ...] = ("two", "eps", "three_halves")) -> list[RatioRow]:
    suites = [
        ("small-exact", small_exact_suite()),
        ("medium", medium_suite()),
        ("adversarial", adversarial_suite()),
    ]
    rows: list[RatioRow] = []
    for suite_name, suite in suites:
        for variant in Variant:
            for algorithm in algorithms:
                ratios = []
                kinds = set()
                for _, inst in suite:
                    res = solve(inst, variant, algorithm)
                    cmax = validate_schedule(res.schedule, variant)
                    ref, kind = _reference(inst, variant)
                    kinds.add(kind)
                    ratios.append(Fraction(cmax) / ref)
                rows.append(
                    RatioRow(
                        suite=suite_name, variant=str(variant), algorithm=algorithm,
                        worst=max(ratios), mean=sum(ratios) / len(ratios),
                        reference="/".join(sorted(kinds)),
                    )
                )
    return rows


def render_ratio_study() -> str:
    rows = run_ratio_study()
    return format_table(
        ["suite", "variant", "algorithm", "worst ratio", "mean ratio", "vs"],
        [r.cells() for r in rows],
        title="Experiment R1: measured approximation ratios "
              "(2-approx must stay ≤ 2, eps ≤ 1.515, three_halves ≤ 1.5 vs OPT)",
    )


# --------------------------------------------------------------------------- #
# A1: Class Jumping ablation
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class JumpAblationRow:
    label: str
    flip_fast: Fraction
    flip_slow: Fraction
    agree: bool
    calls_fast: int
    seconds_fast: float
    seconds_slow: float


def run_jump_ablation() -> list[JumpAblationRow]:
    rows = []
    for label, inst in medium_suite() + adversarial_suite():
        t0 = time.perf_counter()
        fast, calls = find_flip_splittable(inst)
        t1 = time.perf_counter()
        slow = slow_flip_splittable(inst)
        t2 = time.perf_counter()
        rows.append(
            JumpAblationRow(
                label=f"split/{label}", flip_fast=fast, flip_slow=slow,
                agree=fast == slow, calls_fast=calls,
                seconds_fast=t1 - t0, seconds_slow=t2 - t1,
            )
        )
    for label, inst in medium_suite()[:6]:
        t0 = time.perf_counter()
        fast_star, fast_wit, calls = find_flip_pmtn(inst, use_base_jump=True)
        t1 = time.perf_counter()
        slow_star, slow_wit, _ = find_flip_pmtn(inst, use_base_jump=False)
        t2 = time.perf_counter()
        rows.append(
            JumpAblationRow(
                label=f"pmtn/{label}", flip_fast=fast_star, flip_slow=slow_star,
                agree=(fast_star, fast_wit) == (slow_star, slow_wit),
                calls_fast=calls, seconds_fast=t1 - t0, seconds_slow=t2 - t1,
            )
        )
    return rows


def render_jump_ablation() -> str:
    rows = run_jump_ablation()
    return format_table(
        ["instance", "flip (jumping)", "flip (reference)", "agree", "dual tests", "t fast", "t slow"],
        [
            [r.label, str(r.flip_fast), str(r.flip_slow), "yes" if r.agree else "NO",
             r.calls_fast, f"{r.seconds_fast*1e3:.2f}ms", f"{r.seconds_slow*1e3:.2f}ms"]
            for r in rows
        ],
        title="Experiment A1: Class Jumping vs exhaustive flip search "
              "(identical flip points; far fewer dual tests)",
    )


# --------------------------------------------------------------------------- #
# A2: alpha vs gamma machine counting (preemptive dual)
# --------------------------------------------------------------------------- #


def run_counting_ablation() -> list[list[str]]:
    from ..algos.pmtn_general import pmtn_dual_schedule, pmtn_dual_test
    from ..core.bounds import t_min

    rows = []
    for label, inst in medium_suite():
        tmin = t_min(inst, Variant.PREEMPTIVE)
        for frac in (Fraction(0), Fraction(1, 4), Fraction(1, 2), Fraction(1)):
            T = tmin + tmin * frac
            da = pmtn_dual_test(inst, T, "alpha")
            dg = pmtn_dual_test(inst, T, "gamma")
            cm_a = cm_g = "—"
            if da.accepted:
                cm_a = str(validate_schedule(pmtn_dual_schedule(inst, T, "alpha"), Variant.PREEMPTIVE))
            if dg.accepted:
                cm_g = str(validate_schedule(pmtn_dual_schedule(inst, T, "gamma"), Variant.PREEMPTIVE))
            rows.append(
                [label, str(T), "acc" if da.accepted else "rej",
                 "acc" if dg.accepted else "rej", cm_a, cm_g]
            )
    return rows


def render_counting_ablation() -> str:
    return format_table(
        ["instance", "T", "alpha verdict", "gamma verdict", "Cmax(alpha)", "Cmax(gamma)"],
        run_counting_ablation(),
        title="Experiment A2: Theorem-5 dual with alpha' vs gamma machine counting",
    )
