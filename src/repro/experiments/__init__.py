"""Experiment harnesses regenerating every table and figure of the paper.

Run from the command line::

    python -m repro.experiments table1
    python -m repro.experiments figures --fig 1
    python -m repro.experiments scaling
    python -m repro.experiments ratio
    python -m repro.experiments ablation
"""

from .figures import FIGURES, render_all, render_figure
from .obs_report import render_obs_summary, summarize_trace
from .ratio_study import (
    render_counting_ablation,
    render_jump_ablation,
    render_ratio_study,
    run_jump_ablation,
    run_ratio_study,
)
from .scaling import (
    render_construction_scaling,
    render_grid_crossover,
    render_kernel_scaling,
    render_machine_sweep,
    render_scaling,
    render_service_throughput,
    run_construction_scaling,
    run_grid_crossover,
    run_machine_sweep,
    run_scaling,
    run_scaling_kernels,
    run_service_throughput,
)
from .table1 import QUOTED_ROWS, Table1Row, render_table1, run_table1

__all__ = [
    "FIGURES",
    "render_all",
    "render_figure",
    "render_counting_ablation",
    "render_jump_ablation",
    "render_obs_summary",
    "summarize_trace",
    "render_ratio_study",
    "run_jump_ablation",
    "run_ratio_study",
    "render_grid_crossover",
    "render_kernel_scaling",
    "render_machine_sweep",
    "render_scaling",
    "render_service_throughput",
    "run_grid_crossover",
    "run_machine_sweep",
    "run_scaling",
    "run_scaling_kernels",
    "run_service_throughput",
    "QUOTED_ROWS",
    "Table1Row",
    "render_table1",
    "run_table1",
]
