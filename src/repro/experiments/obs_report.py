"""Trace-file summarizer: ``python -m repro.experiments obs FILE``.

Reads the JSONL span summaries a service run dumps under
``python -m repro.service --trace FILE`` (one record per dispatched
micro-batch: wall time, item count, and the batch's solver counters —
see the glossary in :mod:`repro.obs.trace`) and renders an operator's
digest: batch volume and latency per span name, plus the merged solver
counters with per-request rates.
"""

from __future__ import annotations

import json

from ..obs.metrics import Histogram

__all__ = ["render_obs_summary", "summarize_trace"]


def summarize_trace(records) -> dict:
    """Aggregate span records (dicts) into one summary object.

    Returns ``{"groups": {name: {...}}, "counts": {...}, "items": n}``:
    per span name a batch count, item total, and a log-bucketed
    :class:`~repro.obs.metrics.Histogram` of batch durations; globally
    the merged solver counters and the overall item count.
    """
    groups: dict[str, dict] = {}
    counts: dict[str, int] = {}
    items = 0
    for rec in records:
        if not isinstance(rec, dict):
            continue
        name = str(rec.get("name", "?"))
        group = groups.get(name)
        if group is None:
            group = groups[name] = {"batches": 0, "items": 0,
                                    "hist": Histogram()}
        group["batches"] += 1
        n = int(rec.get("n", 0))
        group["items"] += n
        items += n
        dur = rec.get("dur")
        if isinstance(dur, (int, float)):
            group["hist"].observe(float(dur))
        for key, value in (rec.get("counts") or {}).items():
            counts[key] = counts.get(key, 0) + int(value)
    return {"groups": groups, "counts": counts, "items": items}


def _load_records(path: str) -> list:
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # a torn tail line from an interrupted run
    return records


def _fmt_ms(seconds_us: int) -> str:
    return f"{seconds_us / 1000.0:.3f}"


def render_obs_summary(path: str) -> str:
    """The ``obs`` subcommand body: one trace file as a readable digest."""
    summary = summarize_trace(_load_records(path))
    groups, counts, items = (
        summary["groups"], summary["counts"], summary["items"]
    )
    lines = [f"trace: {path}", ""]
    if not groups:
        lines.append("no span records found")
        return "\n".join(lines)
    lines.append(
        f"{'span':<24} {'batches':>8} {'items':>8} {'total_ms':>10} "
        f"{'p50_ms':>8} {'p99_ms':>8}"
    )
    for name in sorted(groups):
        group = groups[name]
        hist = group["hist"]
        p50 = hist.quantile_us(0.50)
        p99 = hist.quantile_us(0.99)
        lines.append(
            f"{name:<24} {group['batches']:>8} {group['items']:>8} "
            f"{_fmt_ms(hist.total_us):>10} "
            f"{_fmt_ms(p50) if p50 is not None else '-':>8} "
            f"{_fmt_ms(p99) if p99 is not None else '-':>8}"
        )
    lines.append("")
    if counts:
        lines.append(f"{'counter':<28} {'total':>12} {'per item':>10}")
        for key in sorted(counts):
            per = counts[key] / items if items else 0.0
            lines.append(f"{key:<28} {counts[key]:>12} {per:>10.2f}")
    else:
        lines.append("no solver counters recorded")
    return "\n".join(lines)
