"""Baselines and prior-work comparators (Table 1 reproduction).

See DESIGN.md §"Substitutions" for what is a faithful reimplementation
versus a guarantee-equivalent reconstruction.
"""

from .lpt import grouped_lpt_schedule, job_lpt_schedule
from .mcnaughton import mcnaughton_bound, mcnaughton_schedule, relaxed_instance
from .monma_potts import monma_potts_bound, monma_potts_schedule
from .naive_split import full_split_schedule, no_split_schedule
from .next_fit import next_fit_schedule, next_fit_threshold

__all__ = [
    "grouped_lpt_schedule",
    "job_lpt_schedule",
    "mcnaughton_bound",
    "mcnaughton_schedule",
    "relaxed_instance",
    "monma_potts_bound",
    "monma_potts_schedule",
    "full_split_schedule",
    "no_split_schedule",
    "next_fit_schedule",
    "next_fit_threshold",
]
