"""McNaughton's wrap-around rule for ``P|pmtn|Cmax`` (no setups) [8].

The 1959 classic the paper's Batch Wrapping generalizes: the optimal
preemptive makespan without setups is ``max(t_max, P(J)/m)``; wrapping the
job stream into ``m`` lanes of that height and splitting at the border
attains it.  Exposed both as a substrate (other baselines build on it) and
as an *idealized comparator*: the gap between McNaughton on the setup-free
relaxation and the setup-aware algorithms is exactly the price of setups.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.errors import InvalidInstanceError
from ..core.instance import Instance
from ..core.numeric import Time
from ..core.schedule import Schedule


def mcnaughton_bound(instance: Instance) -> Time:
    """``max(t_max, P(J)/m)`` — OPT of the setup-free relaxation."""
    return max(Fraction(instance.tmax), Fraction(instance.total_processing, instance.m))


def relaxed_instance(instance: Instance) -> Instance:
    """The setup-free relaxation (all ``s_i = 0``)."""
    return Instance(m=instance.m, setups=(0,) * instance.c, jobs=instance.jobs)


def mcnaughton_schedule(instance: Instance) -> Schedule:
    """Optimal wrap-around schedule for a zero-setup instance.

    Raises for instances with non-zero setups — apply
    :func:`relaxed_instance` first; the result is then the relaxation's
    (infeasible for the true model, but optimal for the relaxed one).
    """
    if any(instance.setups):
        raise InvalidInstanceError(
            "mcnaughton_schedule requires zero setups; use relaxed_instance()"
        )
    T = mcnaughton_bound(instance)
    schedule = Schedule(instance)
    u = 0
    t = Fraction(0)
    configured: set[int] = set()

    def ensure_setup(machine: int, at: Time, cls: int) -> None:
        key = machine * instance.c + cls
        if key not in configured:
            schedule.add_setup(machine, at, cls)  # zero-length marker
            configured.add(key)

    for job, length in instance.iter_jobs():
        remaining = Fraction(length)
        while remaining > 0:
            if t >= T:
                u += 1
                t = Fraction(0)
            ensure_setup(u, t, job.cls)
            piece = min(remaining, T - t)
            schedule.add_piece(u, t, job, piece)
            t += piece
            remaining -= piece
    return schedule
