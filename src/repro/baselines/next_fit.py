"""Jansen–Land next-fit 3-approximation for the non-preemptive case [6].

Jansen and Land (2016) open with "an approximation ratio 3 using a next-fit
strategy running in time O(n)".  Reconstruction with a proven ratio 3:
stream the batch sequence over machines with threshold ``θ = LB + s_max``
(``LB`` the non-preemptive lower bound); a job that would start at or above
``θ`` opens the next machine (with a fresh setup for its class).

* machines: every closed machine carries > ``θ − s_max = LB`` of *original*
  load (its extra setup not counted), so at most ``N/LB ≤ m`` machines;
* makespan ≤ ``θ + s_max + t_max ≤ 2·LB + (s_i+t_j) ≤ 3·LB ≤ 3·OPT``.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.bounds import Variant, lower_bound
from ..core.errors import ConstructionError
from ..core.instance import Instance
from ..core.numeric import Time
from ..core.schedule import Schedule


def next_fit_threshold(instance: Instance) -> Time:
    return lower_bound(instance, Variant.NONPREEMPTIVE) + instance.smax


def next_fit_schedule(instance: Instance) -> Schedule:
    """O(n) non-preemptive next-fit with ratio ≤ 3 (comparator for Table 1)."""
    theta = next_fit_threshold(instance)
    schedule = Schedule(instance)
    u = 0
    t = Fraction(0)
    state: int | None = None
    for cls in range(instance.c):
        for job, length in instance.class_jobs(cls):
            s = Fraction(instance.setups[cls])
            if t > theta:
                # the closed machine carries > θ, i.e. > LB of original load
                u += 1
                if u >= instance.m:
                    raise ConstructionError("next-fit exceeded m machines")
                t = Fraction(0)
                state = None
            if state != cls:
                schedule.add_setup(u, t, cls)
                t += s
                state = cls
            schedule.add_job(u, t, job)
            t += length
    return schedule
