"""Monma–Potts-style preemptive wrap heuristic — the previous best [10].

Monma and Potts (1993) gave an O(n) heuristic "resembling McNaughton's
wrap-around rule" with worst-case ratio ``2 − (⌊m/2⌋+1)^{-1}`` (→ 2 as
``m → ∞``); it was the best known unrestricted preemptive guarantee before
this paper's 3/2.  Their exact pseudo-code is not reproduced in the target
paper, so this module implements the natural reconstruction with a *proven*
ratio ≤ 2 (DESIGN.md, substitutions):

wrap the batch stream ``[s_1, C_1, s_2, C_2, …]`` into ``m`` lanes of
height ``H = max(N/m + s_max, max_i(s_i + t^(i)_max))``, re-paying a setup
whenever a batch crosses a lane border.  ``H`` is large enough for the ≤
``m−1`` extra setups (total ≤ ``N + (m−1)s_max ≤ mH``) and the border
splits are self-overlap free because ``s_i + t_j ≤ H``.  Since
``H ≤ 2·max(N/m, s_max, max(s_i+t^(i)_max)) ≤ 2·OPT``, the makespan is at
most ``2·OPT`` — the same guarantee envelope as [10], measured against the
same lower bounds.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.bounds import setup_plus_tmax
from ..core.instance import Instance
from ..core.numeric import Time
from ..core.schedule import Schedule


def monma_potts_bound(instance: Instance) -> Time:
    """The wrap height ``H`` (≤ 2·OPT_pmtn)."""
    return max(
        Fraction(instance.total_load, instance.m) + instance.smax,
        Fraction(setup_plus_tmax(instance)),
    )


def monma_potts_schedule(instance: Instance) -> Schedule:
    """O(n) preemptive wrap with ratio ≤ 2 (previous-best comparator)."""
    H = monma_potts_bound(instance)
    schedule = Schedule(instance)
    u = 0
    t = Fraction(0)

    def open_lane(cls: int) -> None:
        nonlocal u, t
        u += 1
        t = Fraction(0)
        schedule.add_setup(u, t, cls)
        t += instance.setups[cls]

    for cls in range(instance.c):
        s = Fraction(instance.setups[cls])
        if t + s > H:
            u += 1
            t = Fraction(0)
        schedule.add_setup(u, t, cls)
        t += s
        for job, length in instance.class_jobs(cls):
            remaining = Fraction(length)
            while remaining > 0:
                room = H - t
                if room <= 0:
                    open_lane(cls)
                    room = H - t
                piece = min(remaining, room)
                schedule.add_piece(u, t, job, piece)
                t += piece
                remaining -= piece
    return schedule
