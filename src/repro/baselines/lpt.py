"""List-scheduling baselines: grouped LPT and job-level LPT with setups.

Classic heuristics a practitioner would try first — no approximation
guarantee is claimed for the setup model (a single huge class defeats
grouped LPT; job-level LPT over-pays setups).  They anchor the empirical
comparison: the paper's algorithms should beat or match them on the
adversarial suites while carrying a proof.
"""

from __future__ import annotations

import heapq
from fractions import Fraction

from ..core.instance import Instance
from ..core.schedule import Schedule


def grouped_lpt_schedule(instance: Instance) -> Schedule:
    """Whole classes, largest total first, onto the least-loaded machine.

    Each class pays exactly one setup; a class never splits, so one giant
    class yields makespan ≈ s + P(C) regardless of m.
    """
    schedule = Schedule(instance)
    heap: list[tuple[Fraction, int]] = [(Fraction(0), u) for u in range(instance.m)]
    heapq.heapify(heap)
    order = sorted(
        range(instance.c),
        key=lambda i: instance.setups[i] + instance.processing(i),
        reverse=True,
    )
    for i in order:
        load, u = heapq.heappop(heap)
        t = load
        schedule.add_setup(u, t, i)
        t += instance.setups[i]
        for job, length in instance.class_jobs(i):
            schedule.add_job(u, t, job)
            t += length
        heapq.heappush(heap, (t, u))
    return schedule


def job_lpt_schedule(instance: Instance) -> Schedule:
    """Job-level LPT: longest job first onto the machine finishing earliest.

    A setup is inserted whenever the machine is not configured for the
    job's class — with many classes this pays up to one setup per job.
    """
    schedule = Schedule(instance)
    loads = [Fraction(0)] * instance.m
    state: list[int | None] = [None] * instance.m

    jobs = sorted(instance.iter_jobs(), key=lambda jt: jt[1], reverse=True)
    for job, length in jobs:
        s = instance.setups[job.cls]

        def completion(u: int) -> Fraction:
            extra = s if state[u] != job.cls else 0
            return loads[u] + extra + length

        u = min(range(instance.m), key=completion)
        if state[u] != job.cls:
            schedule.add_setup(u, loads[u], job.cls)
            loads[u] += s
            state[u] = job.cls
        schedule.add_job(u, loads[u], job)
        loads[u] += length
    return schedule
