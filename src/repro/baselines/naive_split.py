"""Naive splittable baselines (comparators for Theorem 3's algorithm).

* :func:`full_split_schedule` — split every class evenly over all ``m``
  machines, paying every setup on every machine.  Optimal for one class
  (``s + P/m``), pathological for many classes (``Σ s_i + P/m``).
* :func:`no_split_schedule` — grouped LPT (never split): optimal for many
  tiny classes, pathological for one big class.

The paper's splittable 3/2 dominates the *minimum* of the two up to its
guarantee, which the ratio benchmarks demonstrate.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.instance import Instance
from ..core.schedule import Schedule
from .lpt import grouped_lpt_schedule


def full_split_schedule(instance: Instance) -> Schedule:
    """Every class on every machine: makespan = Σ s_i + P(J)/m exactly."""
    schedule = Schedule(instance)
    share = [Fraction(instance.processing(i), instance.m) for i in range(instance.c)]
    for u in range(instance.m):
        t = Fraction(0)
        for i in range(instance.c):
            if share[i] == 0:
                continue
            schedule.add_setup(u, t, i)
            t += instance.setups[i]
            remaining = share[i]
            for job, length in instance.class_jobs(i):
                piece = Fraction(length, instance.m)
                schedule.add_piece(u, t, job, piece)
                t += piece
                remaining -= piece
            assert remaining == 0
    return schedule


def no_split_schedule(instance: Instance) -> Schedule:
    """Whole-class LPT — the never-split comparator."""
    return grouped_lpt_schedule(instance)
