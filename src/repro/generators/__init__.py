"""Deterministic instance generators: random, adversarial, schedule-first."""

from .adversarial import (
    expensive_heavy,
    giant_class,
    jump_dense,
    knapsack_critical,
    odd_exp_minus,
    sawtooth_ratio,
)
from .random_instances import (
    RandomSpec,
    bimodal_setup_instance,
    many_small_classes,
    random_instance,
    uniform_instance,
    unit_jobs_equal_setups,
    zipf_instance,
)
from .schedule_first import CertifiedInstance, schedule_first_instance
from .suites import SUITES, adversarial_suite, medium_suite, scaling_suite, small_exact_suite

__all__ = [
    "expensive_heavy",
    "giant_class",
    "jump_dense",
    "knapsack_critical",
    "odd_exp_minus",
    "sawtooth_ratio",
    "RandomSpec",
    "bimodal_setup_instance",
    "many_small_classes",
    "random_instance",
    "uniform_instance",
    "unit_jobs_equal_setups",
    "zipf_instance",
    "CertifiedInstance",
    "schedule_first_instance",
    "SUITES",
    "adversarial_suite",
    "medium_suite",
    "scaling_suite",
    "small_exact_suite",
]
