"""Named experiment suites — the workloads behind Table 1 and the studies.

A suite is a list of ``(label, Instance)`` pairs; all seeds are fixed so
EXPERIMENTS.md numbers are reproducible.
"""

from __future__ import annotations

from typing import Callable

from ..core.instance import Instance
from . import adversarial as adv
from . import random_instances as rnd


def small_exact_suite(seed: int = 7) -> list[tuple[str, Instance]]:
    """Instances small enough for the exact solvers (ratio-vs-OPT)."""
    out: list[tuple[str, Instance]] = []
    for k in range(12):
        spec = rnd.RandomSpec(
            m=2 + k % 3,
            c=1 + k % 3,
            jobs_per_class=(1, 3),
            job_time=(1, 12),
            setup_time=(1, 8),
        )
        out.append((f"small-uniform-{k}", rnd.random_instance(spec, seed + k)))
    out.append(("small-giant", Instance.build(3, [(2, [9, 9, 9]), (1, [2])])))
    out.append(("small-expensive", Instance.build(3, [(9, [3]), (8, [4]), (7, [2, 2])])))
    return out


def medium_suite(seed: int = 11) -> list[tuple[str, Instance]]:
    """Mid-size instances for ratio-vs-lower-bound studies."""
    out: list[tuple[str, Instance]] = []
    for k in range(6):
        out.append((f"uniform-{k}", rnd.uniform_instance(m=8, c=12, n_per_class=6, seed=seed + k)))
        out.append((f"zipf-{k}", rnd.zipf_instance(m=8, c=10, seed=seed + 100 + k)))
        out.append((f"bimodal-{k}", rnd.bimodal_setup_instance(m=6, c=10, seed=seed + 200 + k)))
    out.append(("single-job-batches", rnd.many_small_classes(m=6, c=30, seed=seed)))
    out.append(("unit-jobs", rnd.unit_jobs_equal_setups(m=6, c=8, n_per_class=10, s=5, seed=seed)))
    return out


def adversarial_suite(seed: int = 13) -> list[tuple[str, Instance]]:
    out = [
        ("expensive-heavy", adv.expensive_heavy(m=10, seed=seed)),
        ("jump-dense", adv.jump_dense(m=8, c=16, seed=seed)),
        ("knapsack-critical", adv.knapsack_critical(scale=3)),
        ("odd-exp-minus", adv.odd_exp_minus(m=12, pairs=3, seed=seed)),
        ("giant-class", adv.giant_class(m=8, seed=seed)),
        ("sawtooth", adv.sawtooth_ratio(m=8, seed=seed)),
    ]
    return out


def scaling_suite(sizes: list[int], seed: int = 17) -> list[tuple[str, Instance]]:
    """Growing-n instances for the near-linear runtime experiment (S1)."""
    out = []
    for n in sizes:
        c = max(2, n // 20)
        per = max(1, n // c)
        out.append(
            (f"n={n}", rnd.uniform_instance(m=max(2, n // 50), c=c, n_per_class=per, seed=seed))
        )
    return out


SUITES: dict[str, Callable[[], list[tuple[str, Instance]]]] = {
    "small-exact": small_exact_suite,
    "medium": medium_suite,
    "adversarial": adversarial_suite,
}
