"""Schedule-first generation: instances with a *known feasible makespan*.

For dual-contract tests ("rejection certifies ``T < OPT``") one needs
instances whose optimum is bounded from above by construction.  This
module draws a random feasible schedule first and reads the instance off
it: machines are packed with batches (setup + jobs) up to a target height
``T0``; the resulting instance provably has ``OPT ≤ T0`` for *all three*
variants (the generated schedule is non-preemptive), so every dual test
must accept every ``T ≥ T0``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.instance import Instance


@dataclass(frozen=True)
class CertifiedInstance:
    """An instance with a certificate ``OPT ≤ feasible_makespan``."""

    instance: Instance
    feasible_makespan: int


def schedule_first_instance(
    m: int,
    T0: int,
    seed: int,
    classes: int | None = None,
    reuse_classes: bool = True,
) -> CertifiedInstance:
    """Pack each machine up to height ``T0`` with random batches.

    ``reuse_classes`` lets a class appear on several machines (its setup
    paid once per machine), which makes the certificate non-trivial: the
    instance's lower bound can sit well below ``T0``.
    """
    if T0 < 4:
        raise ValueError("T0 must be at least 4")
    rng = random.Random(seed)
    n_classes = classes if classes is not None else max(2, m)
    setups = [rng.randint(1, max(1, T0 // 4)) for _ in range(n_classes)]
    jobs: list[list[int]] = [[] for _ in range(n_classes)]
    for _u in range(m):
        height = 0
        while True:
            i = rng.randrange(n_classes) if reuse_classes else _u % n_classes
            s = setups[i]
            if height + s + 1 > T0:
                break
            height += s
            batch = rng.randint(1, 4)
            placed_any = False
            for _ in range(batch):
                tmax_here = T0 - height
                if tmax_here < 1:
                    break
                t = rng.randint(1, tmax_here)
                jobs[i].append(t)
                height += t
                placed_any = True
            if not placed_any:
                break
            if rng.random() < 0.35:
                break
    # every class must be non-empty (model requirement)
    for i in range(n_classes):
        if not jobs[i]:
            jobs[i].append(1)
            setups[i] = min(setups[i], max(1, T0 - 1))
    inst = Instance(m=m, setups=tuple(setups), jobs=tuple(map(tuple, jobs)))
    return CertifiedInstance(instance=inst, feasible_makespan=T0 + _slack(jobs, setups, T0))


def _slack(jobs: list[list[int]], setups: list[int], T0: int) -> int:
    """Padding classes added for non-emptiness may exceed T0 on one machine.

    Each padding batch is at most ``s_i + 1``; stacking all of them on one
    machine after the packing keeps feasibility at ``T0 + Σ padding``.
    In practice padding is rare; the certificate stays tight.
    """
    pad = 0
    for i, js in enumerate(jobs):
        if js == [1]:
            pad += setups[i] + 1
    return pad
