"""Adversarial instance families targeting the algorithms' case analysis.

Each family stresses one mechanism DESIGN.md calls out:

* :func:`expensive_heavy` — every setup just above ``T/2``-scale: Lemma 2
  forces class-disjoint machines, ``m_exp`` dominates the dual test;
* :func:`jump_dense` — pairwise-coprime class loads put many β/γ jumps
  into the search window: worst case for Class Jumping's step 7;
* :func:`knapsack_critical` — scaled version of the accepted-3a family:
  large machines plus star classes make the continuous knapsack decide;
* :func:`odd_exp_minus` — odd ``|I⁻exp|`` exercises the lone-class machine
  ``µ`` and the first wrap gap ``(µ, T, 3T/2)`` of Algorithm 2;
* :func:`giant_class` — one class is ~everything: splitting is mandatory,
  grouped heuristics collapse;
* :func:`sawtooth_ratio` — drives the 2-approx toward its factor (big
  setup + big job pairs), separating it from the 3/2 algorithms.
"""

from __future__ import annotations

import random

from ..core.instance import Instance


def expensive_heavy(m: int, seed: int, base: int = 40) -> Instance:
    """~m expensive classes with loads filling their β_i machines."""
    rng = random.Random(seed)
    classes = []
    budget = max(2, m)
    for k in range(budget):
        s = base + rng.randint(0, base // 4)          # all ≈ equally expensive
        jobs = [rng.randint(base // 4, base // 2) for _ in range(rng.randint(1, 3))]
        classes.append((s, jobs))
    return Instance.build(m, classes)


def jump_dense(m: int, c: int, seed: int) -> Instance:
    """Class loads from distinct primes — β_i jumps rarely coincide."""
    primes = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
              59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113]
    rng = random.Random(seed)
    classes = []
    for k in range(c):
        p = primes[k % len(primes)]
        s = 2 * p + rng.randint(0, 3)
        jobs = [p] * (1 + rng.randint(1, 4))
        classes.append((s, jobs))
    return Instance.build(m, classes)


def knapsack_critical(scale: int, larges: int = 8, stars: int = 5) -> Instance:
    """The accepted-3a family of the tests, scaled by ``scale``.

    At ``T = 20·scale`` the knapsack selects some star classes, splits one
    and pushes the rest to the large-machine bottoms.
    """
    classes = [(11 * scale, [5 * scale])] * larges
    classes += [(3 * scale, [8 * scale])] * stars
    return Instance.build(larges + 2, classes)


def odd_exp_minus(m: int, pairs: int, seed: int, base: int = 20) -> Instance:
    """2·pairs+1 classes that land in I⁻exp at T ≈ 2·base − ε, plus filler."""
    rng = random.Random(seed)
    classes = []
    for _ in range(2 * pairs + 1):
        s = base + 1 + rng.randint(0, 2)              # s > T/2 for T ≈ 2·base
        jobs = [rng.randint(1, base // 4)]            # s + P ≤ 3T/4
        classes.append((s, jobs))
    classes.append((2, [rng.randint(1, 5) for _ in range(4)]))  # cheap filler
    return Instance.build(m, classes)


def giant_class(m: int, seed: int, total: int = 10_000) -> Instance:
    """One class holds ~95% of the work; must be split across machines."""
    rng = random.Random(seed)
    giant_jobs = []
    remaining = total
    while remaining > 0:
        t = min(remaining, rng.randint(total // 40, total // 20))
        giant_jobs.append(t)
        remaining -= t
    side = [(rng.randint(1, 5), [rng.randint(1, total // 100)]) for _ in range(3)]
    return Instance.build(m, [(rng.randint(1, 8), giant_jobs)] + side)


def sawtooth_ratio(m: int, seed: int, unit: int = 30) -> Instance:
    """m classes of (s = unit, one job of unit): OPT = 2·unit, but greedy
    orderings and the 2-approximations leave machines half idle."""
    rng = random.Random(seed)
    classes = [(unit, [unit + rng.randint(0, 1)]) for _ in range(m)]
    return Instance.build(m, classes)
