"""Seeded random instance generators.

Every generator takes an explicit ``seed`` and is deterministic, so
experiments are reproducible bit-for-bit.  Distributions are chosen to
cover the regimes the paper's case analysis distinguishes: cheap vs
expensive setups, small vs large batches, few vs many classes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.instance import Instance


@dataclass(frozen=True)
class RandomSpec:
    """Knobs for :func:`random_instance`."""

    m: int
    c: int
    jobs_per_class: tuple[int, int] = (1, 8)      # inclusive range
    job_time: tuple[int, int] = (1, 50)
    setup_time: tuple[int, int] = (1, 30)


def random_instance(spec: RandomSpec, seed: int) -> Instance:
    """Uniform baseline generator."""
    rng = random.Random(seed)
    classes = []
    for _ in range(spec.c):
        s = rng.randint(*spec.setup_time)
        k = rng.randint(*spec.jobs_per_class)
        jobs = [rng.randint(*spec.job_time) for _ in range(k)]
        classes.append((s, jobs))
    return Instance.build(spec.m, classes)


def uniform_instance(m: int, c: int, n_per_class: int, seed: int,
                     tmax: int = 50, smax: int = 30) -> Instance:
    """Convenience wrapper with a fixed class size."""
    return random_instance(
        RandomSpec(m=m, c=c, jobs_per_class=(n_per_class, n_per_class),
                   job_time=(1, tmax), setup_time=(1, smax)),
        seed,
    )


def zipf_instance(m: int, c: int, seed: int, alpha: float = 1.6,
                  scale: int = 40, max_jobs: int = 10) -> Instance:
    """Heavy-tailed job sizes and class sizes (Zipf/Pareto-like).

    A few huge jobs/classes dominate — the regime where batch splitting
    (splittable/preemptive) pays off most.
    """
    rng = random.Random(seed)

    def zipf_int(lo: int = 1) -> int:
        return lo + int(rng.paretovariate(alpha)) % (scale * 4)

    classes = []
    for _ in range(c):
        s = max(1, zipf_int() // 2)
        k = 1 + int(rng.paretovariate(alpha)) % max_jobs
        jobs = [zipf_int() for _ in range(k)]
        classes.append((s, jobs))
    return Instance.build(m, classes)


def bimodal_setup_instance(m: int, c: int, seed: int,
                           small: int = 2, big: int = 60,
                           p_big: float = 0.3) -> Instance:
    """Mix of near-free and very expensive setups.

    Exercises the expensive/cheap partition boundary (Section 2) — with
    suitable T both populations are non-trivial.
    """
    rng = random.Random(seed)
    classes = []
    for _ in range(c):
        s = big + rng.randint(0, 10) if rng.random() < p_big else small + rng.randint(0, 2)
        jobs = [rng.randint(1, big // 2) for _ in range(rng.randint(1, 6))]
        classes.append((s, jobs))
    return Instance.build(m, classes)


def many_small_classes(m: int, c: int, seed: int) -> Instance:
    """Many single-job batches — the Schuurman–Woeginger regime [11]."""
    rng = random.Random(seed)
    classes = [(rng.randint(1, 20), [rng.randint(1, 20)]) for _ in range(c)]
    return Instance.build(m, classes)


def unit_jobs_equal_setups(m: int, c: int, n_per_class: int, s: int, seed: int) -> Instance:
    """Unit processing times, one common setup — the Mäcker et al. regime [7]."""
    rng = random.Random(seed)
    classes = [(s, [1] * max(1, n_per_class + rng.randint(-1, 1))) for _ in range(c)]
    return Instance.build(m, classes)
