"""Mergeable service metrics: single-writer counters + log histograms.

The service needs per-stage latency evidence (where did this request's
40 ms go?) that survives three awkward boundaries: worker threads that
must not take locks on the solve path, child *processes* whose numbers
ride home on result frames, and a JSON wire that forbids floats-as-data
drift.  Three design rules fall out:

* **Single-writer.**  A :class:`Metrics` instance is written by exactly
  one thread (the shard worker, the event loop, or a child process) —
  the same convention as the shard counters in
  :mod:`repro.service.shards`.  Readers snapshot via :meth:`to_obj` and
  combine with :meth:`merge`; a torn read can at worst lag a counter,
  never corrupt one.
* **Log-bucketed histograms.**  Latencies land in power-of-two
  microsecond buckets (bucket ``k`` holds durations whose integer
  microsecond count has bit length ``k``, i.e. ``[2^(k-1), 2^k)`` µs;
  bucket 0 is sub-microsecond).  Buckets make histograms *mergeable* —
  across shards, across child generations, across processes — which
  exact quantiles are not.
* **Exact JSON.**  Everything serialized is an int (counts, bucket
  totals, microsecond sums), so a snapshot survives the JSON wire and
  re-merges without float drift — the same philosophy as the exact
  rational encoding in :mod:`repro.service.protocol`.

:class:`RequestTimes` is the per-request stage clock card threaded
through the service (submit → queue → batch assembly → solve → encode);
:func:`render_prometheus` renders a snapshot in the Prometheus text
exposition format for the ``metrics`` wire op.
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = [
    "STAGES",
    "Histogram",
    "Metrics",
    "RequestTimes",
    "render_prometheus",
]

#: Request lifecycle stages, in journey order.  ``total`` is submit ->
#: result (queue + assembly + solve inclusive; encode is wire-side and
#: tracked separately because the in-process API never encodes).
STAGES = ("admission", "queue", "assembly", "solve", "encode", "total")


class Histogram:
    """Log-bucketed latency histogram over integer microseconds.

    ``buckets[k]`` counts observations whose microsecond count has bit
    length ``k`` (``0`` µs lands in bucket 0).  ``total_us`` keeps the
    exact sum, so merged means stay exact.
    """

    __slots__ = ("buckets", "count", "total_us")

    def __init__(self) -> None:
        self.buckets: list[int] = []
        self.count = 0
        self.total_us = 0

    def observe_us(self, us: int) -> None:
        if us < 0:
            us = 0
        k = us.bit_length()
        buckets = self.buckets
        if k >= len(buckets):
            buckets.extend([0] * (k + 1 - len(buckets)))
        buckets[k] += 1
        self.count += 1
        self.total_us += us

    def observe(self, seconds: float) -> None:
        self.observe_us(int(seconds * 1e6))

    def merge(self, other: "Histogram") -> "Histogram":
        mine, theirs = self.buckets, other.buckets
        if len(theirs) > len(mine):
            mine.extend([0] * (len(theirs) - len(mine)))
        for k, n in enumerate(theirs):
            mine[k] += n
        self.count += other.count
        self.total_us += other.total_us
        return self

    def quantile_us(self, q: float) -> Optional[int]:
        """Upper bound (µs) of the bucket holding the q-quantile.

        None when empty.  The bound is ``2^k - 1`` for bucket ``k`` —
        conservative by at most one bucket width, which is the precision
        log bucketing buys its mergeability with.
        """
        if self.count == 0:
            return None
        rank = max(1, int(q * self.count + 0.5))
        seen = 0
        for k, n in enumerate(self.buckets):
            seen += n
            if seen >= rank:
                return (1 << k) - 1
        return (1 << len(self.buckets)) - 1  # pragma: no cover - defensive

    @staticmethod
    def bucket_le_us(k: int) -> int:
        """Inclusive upper bound of bucket ``k`` in microseconds."""
        return (1 << k) - 1

    def to_obj(self) -> dict:
        return {
            "count": self.count,
            "total_us": self.total_us,
            "buckets": list(self.buckets),
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "Histogram":
        hist = cls()
        hist.count = int(obj.get("count", 0))
        hist.total_us = int(obj.get("total_us", 0))
        hist.buckets = [int(n) for n in obj.get("buckets", ())]
        return hist


class Metrics:
    """One writer's counters + per-stage histograms (see module rules).

    ``counters`` holds monotonically increasing ints under the
    :mod:`repro.obs.trace` glossary keys (solver counters folded from
    per-batch scopes) plus whatever lifecycle counters the owner adds;
    ``stages`` maps each :data:`STAGES` name to a :class:`Histogram`.
    Every stage key exists from construction, so merged snapshots from
    thread and process backends expose identical shapes.
    """

    __slots__ = ("counters", "stages")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.stages: dict[str, Histogram] = {s: Histogram() for s in STAGES}

    def inc(self, key: str, n: int = 1) -> None:
        counters = self.counters
        counters[key] = counters.get(key, 0) + n

    def add_counts(self, counts: dict) -> None:
        counters = self.counters
        for key, n in counts.items():
            counters[key] = counters.get(key, 0) + n

    def observe(self, stage: str, seconds: float) -> None:
        self.stages[stage].observe(seconds)

    def observe_us(self, stage: str, us: int) -> None:
        self.stages[stage].observe_us(us)

    def merge(self, other: "Metrics") -> "Metrics":
        self.add_counts(other.counters)
        for stage, hist in other.stages.items():
            mine = self.stages.get(stage)
            if mine is None:
                mine = self.stages[stage] = Histogram()
            mine.merge(hist)
        return self

    @classmethod
    def merged(cls, parts: Iterable["Metrics"]) -> "Metrics":
        out = cls()
        for part in parts:
            out.merge(part)
        return out

    def to_obj(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "stages": {s: h.to_obj() for s, h in self.stages.items()},
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "Metrics":
        metrics = cls()
        for key, n in obj.get("counters", {}).items():
            metrics.counters[str(key)] = int(n)
        for stage, hist in obj.get("stages", {}).items():
            metrics.stages[str(stage)] = Histogram.from_obj(hist)
        return metrics


class RequestTimes:
    """Per-request stage timestamps (monotonic seconds) plus computed stages.

    Filled along the request's journey — ``submit``/``admitted`` on the
    event loop, ``enqueued`` at shard submit, ``dequeued`` when the
    worker drains it, ``solve_start``/``solve_end`` around the batch
    solve, ``done`` when the future resolves back on the loop.  Each
    field has exactly one writer; cross-thread visibility rides the
    same happens-before edges as the result itself.
    """

    __slots__ = (
        "submit", "admitted", "enqueued", "dequeued",
        "solve_start", "solve_end", "done",
    )

    def __init__(self) -> None:
        self.submit: Optional[float] = None
        self.admitted: Optional[float] = None
        self.enqueued: Optional[float] = None
        self.dequeued: Optional[float] = None
        self.solve_start: Optional[float] = None
        self.solve_end: Optional[float] = None
        self.done: Optional[float] = None

    def stage_ms(self) -> dict:
        """Per-stage durations in ms (only the stages that were reached)."""
        pairs = (
            ("admission", self.submit, self.admitted),
            ("queue", self.enqueued, self.dequeued),
            ("assembly", self.dequeued, self.solve_start),
            ("solve", self.solve_start, self.solve_end),
            ("total", self.submit, self.done),
        )
        out = {}
        for stage, t0, t1 in pairs:
            if t0 is not None and t1 is not None:
                out[stage] = round(max(0.0, t1 - t0) * 1000.0, 3)
        return out


def _prom_name(key: str) -> str:
    """A glossary key as a Prometheus metric name fragment."""
    out = []
    for ch in key:
        out.append(ch if ch.isalnum() else "_")
    name = "".join(out)
    if name and name[0].isdigit():  # pragma: no cover - no such keys today
        name = "_" + name
    return name


def render_prometheus(obj: dict, prefix: str = "repro") -> str:
    """A metrics snapshot (:meth:`Metrics.to_obj` shape) as Prometheus text.

    Counters render as ``<prefix>_<key>_total``; stage histograms as one
    ``<prefix>_stage_seconds`` histogram family with a ``stage`` label,
    cumulative ``le`` bounds at the log-bucket upper edges, and exact
    ``_sum`` converted from microseconds at the very last moment.
    """
    lines: list[str] = []
    counters = obj.get("counters", {})
    if counters:
        lines.append(f"# TYPE {prefix}_counter_total counter")
    for key in sorted(counters):
        lines.append(
            f"{prefix}_{_prom_name(key)}_total {int(counters[key])}"
        )
    family = f"{prefix}_stage_seconds"
    lines.append(f"# TYPE {family} histogram")
    for stage in sorted(obj.get("stages", {})):
        hist = obj["stages"][stage]
        cum = 0
        for k, n in enumerate(hist.get("buckets", ())):
            cum += n
            le = Histogram.bucket_le_us(k) / 1e6
            lines.append(
                f'{family}_bucket{{stage="{stage}",le="{le:.6f}"}} {cum}'
            )
        lines.append(
            f'{family}_bucket{{stage="{stage}",le="+Inf"}} '
            f"{int(hist.get('count', 0))}"
        )
        lines.append(
            f'{family}_sum{{stage="{stage}"}} '
            f"{int(hist.get('total_us', 0)) / 1e6:.6f}"
        )
        lines.append(
            f'{family}_count{{stage="{stage}"}} {int(hist.get("count", 0))}'
        )
    return "\n".join(lines) + "\n"
