"""Observability: zero-drift tracing and mergeable service metrics.

Two small modules, one contract (borrowed from :mod:`repro.core.cancel`):
instrumentation must be **bit-identity-invisible** — an armed scope never
changes a probe, a verdict, or a schedule — and near-zero-cost when
disarmed (one thread-local read per seam).

* :mod:`repro.obs.trace` — :class:`TraceScope` / :func:`span`: a
  thread-local counter+span scope with an injectable monotonic clock.
  The solver seams (probe plans, accept memos, grid dispatch, the
  xbatch lockstep coordinator, ItemStore bulk emits) report into the
  current scope when one is armed and do nothing otherwise.
* :mod:`repro.obs.metrics` — single-writer counters and log-bucketed
  latency :class:`Histogram`\\ s for the service request lifecycle
  (admission → queue → assembly → solve → encode).  Mergeable and
  JSON-exact, so process-shard children can piggyback their deltas on
  result frames and the parent can fold them into one backend-agnostic
  snapshot.
"""

from .metrics import (
    STAGES,
    Histogram,
    Metrics,
    RequestTimes,
    render_prometheus,
)
from .trace import (
    TraceScope,
    TraceWriter,
    count,
    count_probe,
    current_scope,
    span,
)

__all__ = [
    "STAGES",
    "Histogram",
    "Metrics",
    "RequestTimes",
    "TraceScope",
    "TraceWriter",
    "count",
    "count_probe",
    "current_scope",
    "render_prometheus",
    "span",
]
