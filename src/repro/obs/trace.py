"""Thread-local tracing scopes: solver counters and timed spans.

The design copies :mod:`repro.core.cancel` exactly, because it solves
the same problem — an orthogonal concern that must reach the probe loops
without signature churn and without perturbing them:

* **Bit-identity when disarmed (and when armed).**  A scope never
  changes a probe: the seams only *count* (``scope.count(...)``) or
  record wall-clock spans, never branch the numeric paths.  With no
  scope armed, every seam is a single thread-local read and a ``None``
  check — the same cost profile as :func:`repro.core.cancel.
  check_cancelled`.
* **No signature churn.**  The owner of a solve (a shard worker, a
  bench harness, a test) installs a :class:`TraceScope` with ``with``;
  the seams in :mod:`repro.algos.search`, :mod:`repro.algos.batch_api`,
  :mod:`repro.core.xbatch` and :mod:`repro.core.itemstore` report into
  whatever scope is current on their thread.  Solves run entirely on
  one thread, so a thread-local is exact.

Scopes nest: an inner scope shadows the outer one for its ``with`` body
and, by default, folds its counts and spans into the outer scope on
exit (``propagate=False`` keeps them separate).  ``clock`` is injectable
for deterministic tests.

Counter glossary (what the seams report):

=========================  ==============================================
``probe.<kind>.<mode>``    dual-test probe values requested per probe
                           kind/mode (``-`` where a plan left one blank)
``memo.hit``               accept-memo cache hits (no kernel call)
``memo.call``              distinct kernel accept evaluations
``dispatch.grid``          searches dispatched to the vectorized grid tier
``dispatch.scalar``        searches dispatched to scalar probing
``grid.rows_np``           grid candidates evaluated by the numpy tier
``grid.rows_scalar``       grid candidates that fell back to scalar calls
``xbatch.fused_rounds``    lockstep rounds that fused >= 1 probe group
``xbatch.straggler``       lockstep items that fell back to the
                           sequential per-item path
``xbatch.rows_fused``      probe rows evaluated by the fused numpy tier
``xbatch.rows_scalar``     probe rows evaluated by the scalar fallback
``itemstore.emit``         ItemStore bulk ``emit_window`` calls
=========================  ==============================================
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable, Optional

__all__ = [
    "TraceScope",
    "TraceWriter",
    "count",
    "count_probe",
    "current_scope",
    "span",
]


class _Scope(threading.local):
    scope: Optional["TraceScope"] = None


_scope = _Scope()


class TraceScope:
    """One armed tracing context (counters + spans) for a ``with`` body.

    ``counts`` maps counter keys (see the module glossary) to ints;
    ``spans`` is a list of dicts ``{"name", "t0", "dur", ...attrs}``
    in completion order.  Both are owned by the scope's thread — a
    scope must never be shared across threads (install one per worker).
    """

    __slots__ = ("name", "counts", "spans", "clock", "propagate", "_prev")

    def __init__(
        self,
        name: str = "trace",
        *,
        clock: Callable[[], float] = time.monotonic,
        propagate: bool = True,
    ) -> None:
        self.name = name
        self.counts: dict[str, int] = {}
        self.spans: list[dict] = []
        self.clock = clock
        self.propagate = propagate
        self._prev: Optional[TraceScope] = None

    def __enter__(self) -> "TraceScope":
        self._prev = _scope.scope
        _scope.scope = self
        return self

    def __exit__(self, *exc) -> None:
        _scope.scope = self._prev
        prev, self._prev = self._prev, None
        if self.propagate and prev is not None:
            prev.merge_counts(self.counts)
            prev.spans.extend(self.spans)

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def count(self, key: str, n: int = 1) -> None:
        counts = self.counts
        counts[key] = counts.get(key, 0) + n

    def merge_counts(self, counts: dict) -> None:
        mine = self.counts
        for key, n in counts.items():
            mine[key] = mine.get(key, 0) + n

    def add_span(self, name: str, t0: float, dur: float, **attrs) -> dict:
        record = {"name": name, "t0": t0, "dur": dur}
        if attrs:
            record.update(attrs)
        self.spans.append(record)
        return record

    def span(self, name: str, **attrs) -> "_Span":
        return _Span(self, name, attrs)

    def snapshot(self) -> dict:
        """JSON-shaped copy of this scope's counts and spans."""
        return {
            "name": self.name,
            "counts": dict(self.counts),
            "spans": list(self.spans),
        }


class _Span:
    """One timed region; records into its scope on exit (no-op unarmed)."""

    __slots__ = ("scope", "span_name", "attrs", "t0")

    def __init__(self, scope: Optional[TraceScope], name: str, attrs) -> None:
        self.scope = scope
        self.span_name = name
        self.attrs = attrs
        self.t0 = 0.0

    def __enter__(self) -> "_Span":
        if self.scope is not None:
            self.t0 = self.scope.clock()
        return self

    def __exit__(self, *exc) -> None:
        scope = self.scope
        if scope is not None:
            scope.add_span(
                self.span_name, self.t0, scope.clock() - self.t0,
                **self.attrs,
            )


def current_scope() -> Optional[TraceScope]:
    """The scope armed on this thread (None outside any scope)."""
    return _scope.scope


def count(key: str, n: int = 1) -> None:
    """Seam-side counter bump: one thread-local read when disarmed."""
    scope = _scope.scope
    if scope is not None:
        counts = scope.counts
        counts[key] = counts.get(key, 0) + n


def count_probe(kind: str, mode: str, n: int) -> None:
    """Count ``n`` probes under ``probe.<kind>.<mode>`` (blank -> ``-``).

    The key string is only built when a scope is armed, so the disarmed
    path stays a thread-local read and a ``None`` check.
    """
    scope = _scope.scope
    if scope is not None:
        key = f"probe.{kind or '-'}.{mode or '-'}"
        counts = scope.counts
        counts[key] = counts.get(key, 0) + n


def span(name: str, **attrs) -> _Span:
    """A timed region recorded into the current scope (no-op unarmed)."""
    return _Span(_scope.scope, name, attrs)


class TraceWriter:
    """Thread-safe JSONL span sink (``--trace FILE``).

    One JSON object per line; writes are serialized under a lock so
    shard workers (and the process-shard pumps relaying child span
    summaries) can share one file.  Flushes per record — trace volume
    is per *batch*, not per probe, so the syscall cost is negligible.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")
        self._lock = threading.Lock()

    def write(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            if self._fh.closed:  # late batch racing close(): drop, don't die
                return
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
