"""repro — reproduction of Deppert & Jansen (SPAA 2019).

Near-linear approximation algorithms for makespan scheduling with batch
setup times on identical machines, in three flavours (non-preemptive,
preemptive, splittable):

* 2-approximation in O(n)                                  (Theorem 1)
* (3/2+ε)-approximation in O(n log 1/ε)                    (Theorem 2)
* 3/2-approximation, near-linear                           (Theorems 3, 6, 8)

Public entry point::

    from repro import Instance, Variant, solve

    inst = Instance.build(m=3, classes=[(4, [3, 5]), (2, [1, 1, 2])])
    result = solve(inst, Variant.PREEMPTIVE)          # 3/2-approx by default
    print(result.schedule.makespan(), result.ratio_bound)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .core import (
    ConstructionError,
    InfeasibleScheduleError,
    Instance,
    InvalidInstanceError,
    JobRef,
    Placement,
    Schedule,
    Time,
    Variant,
    is_feasible,
    lower_bound,
    t_min,
    validate_schedule,
)

__version__ = "1.0.0"

__all__ = [
    "ConstructionError",
    "InfeasibleScheduleError",
    "Instance",
    "InvalidInstanceError",
    "JobRef",
    "Placement",
    "Schedule",
    "Time",
    "Variant",
    "is_feasible",
    "lower_bound",
    "t_min",
    "validate_schedule",
    "solve",
    "SolveResult",
    "solve_batch",
    "solve_many",
    "sweep_machines",
    "BatchItem",
    "SweepPoint",
]


def __getattr__(name):
    # Lazy import: repro.algos pulls in every algorithm; keep `import repro`
    # light for users who only need the data model.
    if name in ("solve", "SolveResult"):
        from .algos.api import SolveResult, solve

        return {"solve": solve, "SolveResult": SolveResult}[name]
    if name in ("solve_batch", "solve_many", "sweep_machines", "BatchItem", "SweepPoint"):
        from .algos.batch_api import (
            BatchItem,
            SweepPoint,
            solve_batch,
            solve_many,
            sweep_machines,
        )

        return {
            "solve_batch": solve_batch,
            "solve_many": solve_many,
            "sweep_machines": sweep_machines,
            "BatchItem": BatchItem,
            "SweepPoint": SweepPoint,
        }[name]
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
