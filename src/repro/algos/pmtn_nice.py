"""Nice preemptive instances: Algorithm 2 and Theorem 4 (Section 4.1).

An instance is *nice* for a makespan ``T`` when ``I⁰exp = ∅``.  Algorithm 2
schedules a nice instance with makespan ≤ 3T/2 whenever

* ``mT ≥ L_nice = P(J) + Σ_{I⁺exp} κ_i s_i + Σ_{I⁻exp ∪ Ichp} s_i`` and
* ``m ≥ m_nice = ⌈|I⁻exp|/2⌉ + Σ_{I⁺exp} κ_i``

where the per-class machine count ``κ_i`` is ``α′_i = ⌊P(C_i)/(T−s_i)⌋``
(Theorem 4) or the Class-Jumping variant ``γ_i`` of Section 4.4 — both are
valid lower bounds on the setups any T-feasible schedule pays (Lemma 1,
``γ_i ≤ β_i ≤ α_i``), and both satisfy the key budget inequality
``κ_i s_i + P(C_i) ≥ κ_i T`` (inequality (2) resp. its §4.4 analogue).

The scheduler is *view-based*: the general Algorithm 3 feeds it a derived
instance whose "jobs" are job pieces (``j^(2)``, ``j^[2]``) of the original
instance, to be placed on the residual machines only.  A view maps each
class to its item list ``(JobRef, length)``; lengths may be fractional.

Geometry (all on the caller-supplied machine list):

* ``I⁺exp`` class, mode ``alpha``: ``κ`` machines, each with the setup at
  ``[0, s_i]``; machines ``1..κ−1`` carry exactly ``T−s_i`` job load (full
  to ``T``); the last machine carries the remainder, load in ``[T, 2T−s_i)
  ⊂ [T, 3T/2)``.  This is the post-"fold" layout of the paper's step 1
  (see DESIGN.md deviation #2).
* ``I⁺exp`` class, mode ``gamma``: machines carry ``T/2`` of job load above
  the setup; the remainder (≤ ``T/2 + (T−s_i)``) goes onto the last
  machine, load ≤ 3T/2 (Figure 5).
* ``I⁻exp`` classes: paired two per machine from time 0 (load ≤ 3T/2); an
  odd leftover class sits alone on machine ``µ``.
* cheap classes: one wrap sequence into gaps ``(µ, T, 3T/2)`` (odd case)
  then ``(·, T/2, 3T/2)`` on the remaining machines — all cheap processing
  lives in ``[T/2, 3T/2]``, which the general algorithm exploits to keep
  bottoms of large machines free.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Literal, Optional, Sequence

from math import lcm

from ..core.classification import gamma as gamma_count
from ..core.errors import ConstructionError, RejectedMakespanError
from ..core.fastnum import count_core
from ..core.instance import Instance, JobRef
from ..core.numeric import (
    Time,
    TimeLike,
    as_time,
    fast_fraction,
    time_str,
)
from ..core.schedule import Schedule
from ..core.wrapping import Batch, WrapSequence, WrapTemplate, wrap

CountMode = Literal["alpha", "gamma"]

#: A view: class index -> items (job pieces) to schedule for that class.
#: Item sequences are only ever iterated, so cached tuples are fine.
NiceView = dict[int, Sequence[tuple[JobRef, Time]]]


def full_view(instance: Instance) -> NiceView:
    """The identity view: every class with all of its jobs.

    Uses the instance's cached Fraction job views — building this per call
    used to dominate the preemptive construction on large instances.
    """
    return {i: instance.class_jobs_frac(i) for i in range(instance.c)}


def view_processing(view: NiceView, cls: int) -> Time:
    return sum((t for _, t in view[cls]), Fraction(0))


def _view_processing_fast(instance: Instance, view: NiceView, cls: int) -> Time:
    """:func:`view_processing`, shortcutting cached full-class views.

    A view entry that *is* the instance's cached full-class tuple has the
    integer class total already on hand (``class_processing``); only
    derived piece views (freshly built lists, never the cache) pay the
    Fraction summation.  Exact either way — ints and Fractions compare
    and add exactly.
    """
    items = view[cls]
    if items is instance.class_jobs_frac_cached(cls):
        return instance.class_processing[cls]
    return sum((t for _, t in items), Fraction(0))


@dataclass(frozen=True)
class NicePartition:
    """The Section-4.1 partition of a *view* for makespan ``T``."""

    T: Time
    exp_plus: tuple[int, ...]
    exp_zero: tuple[int, ...]
    exp_minus: tuple[int, ...]
    cheap: tuple[int, ...]

    @property
    def is_nice(self) -> bool:
        return not self.exp_zero


def partition_view(instance: Instance, T: TimeLike, view: NiceView) -> NicePartition:
    T = as_time(T)
    tn, td = T.numerator, T.denominator
    exp_plus: list[int] = []
    exp_zero: list[int] = []
    exp_minus: list[int] = []
    cheap: list[int] = []
    for i in sorted(view):
        s = instance.setups[i]
        if 2 * s * td <= tn:  # s <= T/2, cross-multiplied (setups are ints)
            cheap.append(i)
            continue
        total = s + _view_processing_fast(instance, view, i)
        qn, qd = total.numerator, total.denominator
        if qn * td >= tn * qd:  # total >= T
            exp_plus.append(i)
        elif 4 * qn * td > 3 * tn * qd:  # total > 3T/4
            exp_zero.append(i)
        else:
            exp_minus.append(i)
    return NicePartition(
        T=T,
        exp_plus=tuple(exp_plus),
        exp_zero=tuple(exp_zero),
        exp_minus=tuple(exp_minus),
        cheap=tuple(cheap),
    )


def count_for(instance: Instance, T: Time, cls: int, P: Time, mode: CountMode) -> int:
    """``κ_i``: α′ (Theorem 4) or γ (Section 4.4) for an ``I⁺exp`` class."""
    s = instance.setups[cls]
    tn, td = T.numerator, T.denominator
    pn, pd = P.numerator, P.denominator  # P may be an exact int total
    if mode == "alpha":
        if tn <= s * td:
            raise ValueError(f"alpha' undefined: T={T} <= s_{cls}={s}")
        return max(1, (pn * td) // (pd * (tn - s * td)))
    # gamma (on the view's processing): bp = floor(2P/T), and the budget
    # condition P − bp·T/2 ≤ T − s cross-multiplied by 2·pd·td > 0.
    bp = (2 * pn * td) // (pd * tn)
    if 2 * pn * td - bp * tn * pd <= 2 * pd * (tn - s * td):
        return max(bp, 1)
    return -((-2 * pn * td) // (pd * tn))  # ceil(2P/T)


@dataclass(frozen=True)
class NiceDual:
    """Theorem 4's acceptance data for a view."""

    T: Time
    partition: NicePartition
    counts: dict[int, int]      # κ_i for i ∈ I⁺exp
    load: Time                  # L_nice
    machines_needed: int        # m_nice
    accepted: bool
    mode: CountMode


def nice_dual_test(
    instance: Instance,
    T: TimeLike,
    *,
    view: Optional[NiceView] = None,
    machines_available: Optional[int] = None,
    mode: CountMode = "alpha",
) -> NiceDual:
    """Theorem 4(i) on a view. Rejection certifies ``T < OPT`` (full view).

    An extra rejection applies Note 1: ``T < max_i(s_i + max item length)``
    is always ``< OPT`` for the full view, and the Algorithm-2 geometry
    needs ``s_i + t_j ≤ T`` to keep split pieces self-overlap free.
    """
    T = as_time(T)
    if view is None:
        view = full_view(instance)
    m = instance.m if machines_available is None else machines_available
    part = partition_view(instance, T, view)
    if not part.is_nice:
        raise ValueError(
            f"instance is not nice for T={time_str(T)}: I0exp={part.exp_zero}"
        )
    note1 = max(
        (instance.setups[i] + max((t for _, t in items), default=Fraction(0))
         for i, items in view.items() if items),
        default=Fraction(0),
    )
    if T < note1:
        return NiceDual(
            T=T, partition=part, counts={}, load=Fraction(instance.total_load),
            machines_needed=m + 1, accepted=False, mode=mode,
        )
    counts = {
        i: count_for(instance, T, i, _view_processing_fast(instance, view, i), mode)
        for i in part.exp_plus
    }
    load = sum(
        (_view_processing_fast(instance, view, i) for i in view), Fraction(0)
    )
    load += sum(counts[i] * instance.setups[i] for i in part.exp_plus)
    load += sum(instance.setups[i] for i in part.exp_minus)
    load += sum(instance.setups[i] for i in part.cheap)
    machines_needed = -(-len(part.exp_minus) // 2) + sum(counts.values())
    accepted = m * T >= load and m >= machines_needed
    return NiceDual(
        T=T,
        partition=part,
        counts=counts,
        load=load,
        machines_needed=machines_needed,
        accepted=accepted,
        mode=mode,
    )


def _schedule_exp_plus_fractions(
    schedule: Schedule, T: Time, view: NiceView, part: NicePartition,
    mode: CountMode, take,
) -> None:
    """Step 1 of Algorithm 2 — the historical exact-rational loop."""
    instance = schedule.instance
    half = T / 2
    for i in part.exp_plus:
        s = Fraction(instance.setups[i])
        P = view_processing(view, i)
        k = count_for(instance, T, i, P, mode)
        per_machine = (T - s) if mode == "alpha" else half
        quotas = [per_machine] * (k - 1)
        quotas.append(P - per_machine * (k - 1))  # remainder on the last machine
        if quotas[-1] <= 0:
            raise ConstructionError(
                f"class {i}: non-positive remainder quota {quotas[-1]} (k={k})"
            )
        if s + quotas[-1] > 3 * half:
            raise ConstructionError(
                f"class {i}: last machine would exceed 3T/2 "
                f"(s={time_str(s)}, quota={time_str(quotas[-1])})"
            )
        items = iter(view[i])
        carry: Optional[tuple[JobRef, Time]] = None
        for quota in quotas:
            u = take()
            schedule.add_setup(u, 0, i)
            t = s
            room = quota
            while room > 0:
                if carry is not None:
                    job, length = carry
                    carry = None
                else:
                    nxt = next(items, None)
                    if nxt is None:
                        break
                    job, length = nxt
                placed = min(length, room)
                schedule.add_piece(u, t, job, placed)
                t += placed
                room -= placed
                if placed < length:
                    carry = (job, length - placed)
        if carry is not None or next(items, None) is not None:
            raise ConstructionError(f"class {i}: quotas did not cover P(C_i)")


def _schedule_exp_plus_ints(
    schedule: Schedule, T: Time, view: NiceView, part: NicePartition,
    mode: CountMode, take,
) -> None:
    """Step 1 of Algorithm 2 on scaled integers.

    Per class, every quantity is pre-multiplied by a class-local scale
    ``D_i = lcm(2·td, item denominators)`` — the smallest scale making
    ``T/2``, ``T − s_i`` and every view item an exact machine int — so
    the quota/carry loop runs on ints; rows are emitted into the
    schedule's column store (:meth:`Schedule.add_scaled`) with no
    Fraction or Placement objects at all.  Placements materialize
    bit-identical to the rational loop (the differential suite compares
    both end to end).
    """
    instance = schedule.instance
    tn, td = T.numerator, T.denominator
    for i in part.exp_plus:
        items = view[i]
        if items is instance.class_jobs_frac_cached(i):
            # full class: integer lengths, no per-item denominator scan
            D = 2 * td
            lens_sc = [t * D for t in instance.jobs[i]]
        else:
            D = 2 * td
            for _, t in items:
                den = t.denominator
                if D % den:
                    D = lcm(D, den)
            lens_sc = [t.numerator * (D // t.denominator) for _, t in items]
        s = instance.setups[i]
        s_sc = s * D
        t_sc = tn * (D // td)              # T·D — even multiple of tn
        P_sc = sum(lens_sc)
        # κ_i on the pre-scaled ints: count_core is the same α′/γ formula
        # the dual tests run, identical to count_for by scale invariance.
        if mode == "alpha" and t_sc <= s_sc:
            raise ValueError(f"alpha' undefined: T={T} <= s_{i}={s}")
        k = count_core(mode, t_sc, s_sc, P_sc)
        per_sc = (t_sc - s_sc) if mode == "alpha" else t_sc // 2
        last_sc = P_sc - per_sc * (k - 1)  # remainder on the last machine
        if last_sc <= 0:
            raise ConstructionError(
                f"class {i}: non-positive remainder quota "
                f"{fast_fraction(last_sc, D)} (k={k})"
            )
        if 2 * (s_sc + last_sc) > 3 * t_sc:
            raise ConstructionError(
                f"class {i}: last machine would exceed 3T/2 "
                f"(s={s}, quota={time_str(fast_fraction(last_sc, D))})"
            )
        stream = iter(zip(items, lens_sc))
        carry_job: Optional[JobRef] = None
        carry_sc = 0
        for b in range(k):
            u = take()
            schedule.add_scaled(u, 0, s_sc, D, i)
            pos_sc = s_sc
            room_sc = per_sc if b < k - 1 else last_sc
            while room_sc > 0:
                if carry_job is not None:
                    job, len_sc = carry_job, carry_sc
                    carry_job = None
                else:
                    nxt = next(stream, None)
                    if nxt is None:
                        break
                    (job, _), len_sc = nxt
                placed_sc = min(len_sc, room_sc)
                schedule.add_scaled(u, pos_sc, placed_sc, D, i, job)
                pos_sc += placed_sc
                room_sc -= placed_sc
                if placed_sc < len_sc:
                    carry_job = job
                    carry_sc = len_sc - placed_sc
        if carry_job is not None or next(stream, None) is not None:
            raise ConstructionError(f"class {i}: quotas did not cover P(C_i)")


def schedule_nice_view(
    schedule: Schedule,
    T: TimeLike,
    view: NiceView,
    machines: Sequence[int],
    mode: CountMode = "alpha",
    *,
    exact_ints: bool = True,
    trusted_views: bool = False,
) -> None:
    """Algorithm 2 on a view, placing onto ``machines`` (ascending order).

    The caller must have verified the Theorem-4 conditions for
    ``len(machines)``; a violated wrap capacity raises
    :class:`ConstructionError` (a bug, per Theorem 4(ii)).
    """
    T = as_time(T)
    instance = schedule.instance
    machines = list(machines)
    if machines != sorted(machines):
        raise ValueError("machines must be ascending")
    part = partition_view(instance, T, view)
    if not part.is_nice:
        raise ConstructionError(f"view not nice at T={time_str(T)}")
    half = T / 2
    cursor = 0  # index into machines

    def take() -> int:
        nonlocal cursor
        if cursor >= len(machines):
            raise ConstructionError("Algorithm 2 ran out of machines (m_nice bound violated)")
        u = machines[cursor]
        cursor += 1
        return u

    # ---- step 1: I+exp classes on κ_i machines each -------------------- #
    if exact_ints:
        _schedule_exp_plus_ints(schedule, T, view, part, mode, take)
    else:
        _schedule_exp_plus_fractions(schedule, T, view, part, mode, take)

    # ---- step 2: I-exp classes in pairs -------------------------------- #
    mu: Optional[int] = None  # machine hosting the odd leftover class
    minus = list(part.exp_minus)
    for a in range(0, len(minus) - 1, 2):
        u = take()
        t = Fraction(0)
        for i in (minus[a], minus[a + 1]):
            schedule.add_setup(u, t, i)
            t += instance.setups[i]
            for job, length in view[i]:
                schedule.add_piece(u, t, job, length)
                t += length
    if len(minus) % 2 == 1:
        i = minus[-1]
        u = take()
        mu = u
        t = Fraction(0)
        schedule.add_setup(u, t, i)
        t += instance.setups[i]
        for job, length in view[i]:
            schedule.add_piece(u, t, job, length)
            t += length

    # ---- step 3: wrap the cheap classes -------------------------------- #
    if trusted_views:
        # Internal fast path only: views built by Algorithm 3 / full_view
        # are pre-validated (JobRef class, positive lengths — Algorithm 3
        # filters non-positive pieces as it builds the views), so skip
        # Batch.of's per-item checks and the positivity re-filter, and
        # reuse the cached view tuples as the batch items directly.  A
        # view entry that *is* the instance's cached full-class tuple
        # carries the integer lengths to the wrap engine (identity check:
        # derived piece views are freshly built lists, never the cache).
        cheap_batches = [
            Batch(
                cls=i,
                items=view[i] if type(view[i]) is tuple else tuple(view[i]),
                int_lengths=(
                    instance.jobs[i]
                    if view[i] is instance.class_jobs_frac_cached(i)
                    else None
                ),
            )
            for i in part.cheap
        ]
    else:
        cheap_batches = [
            Batch.of(i, [(j, t) for j, t in view[i] if t > 0]) for i in part.cheap
        ]
    sequence = WrapSequence.of(cheap_batches)
    if not sequence.batches:
        return
    gaps: list[tuple[int, Time, Time]] = []
    if mu is not None:
        gaps.append((mu, T, 3 * half))
    gaps += [(machines[r], half, 3 * half) for r in range(cursor, len(machines))]
    if not gaps:
        raise ConstructionError("no gaps left for cheap classes (L_nice bound violated)")
    wrap(schedule, sequence, WrapTemplate.of(gaps), exact_ints=exact_ints)


def nice_dual_schedule(
    instance: Instance, T: TimeLike, mode: CountMode = "alpha"
) -> Schedule:
    """Theorem 4(ii) for a whole (nice) instance on all machines."""
    T = as_time(T)
    view = full_view(instance)
    dual = nice_dual_test(instance, T, view=view, mode=mode)
    if not dual.accepted:
        raise RejectedMakespanError(
            f"T={time_str(T)} rejected by Theorem 4: L_nice={time_str(dual.load)} "
            f"vs mT={time_str(instance.m * T)}, m_nice={dual.machines_needed}"
        )
    schedule = Schedule(instance)
    schedule_nice_view(schedule, T, view, list(range(instance.m)), mode)
    return schedule
