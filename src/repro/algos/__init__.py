"""Approximation algorithms of Deppert & Jansen (SPAA 2019).

Layout mirrors the paper:

* :mod:`repro.algos.twoapprox` — Theorem 1 (O(n) ratio 2, all variants)
* :mod:`repro.algos.splittable` — Theorem 7 (3/2-dual, splittable)
* :mod:`repro.algos.pmtn_nice` — Theorem 4 / Algorithm 2 (nice instances)
* :mod:`repro.algos.pmtn_general` — Theorem 5 / Algorithm 3 (preemptive)
* :mod:`repro.algos.nonpreemptive` — Theorem 9 / Algorithm 6
* :mod:`repro.algos.search` — Theorem 2 ((3/2+ε) binary search), Theorem 8
* :mod:`repro.algos.jumping_split` — Theorem 3 / Algorithm 1 (Class Jumping)
* :mod:`repro.algos.jumping_pmtn` — Theorem 6 / Algorithm 4 (Class Jumping)
* :mod:`repro.algos.api` — the public :func:`repro.solve` façade
"""

from .twoapprox import TwoApproxResult, two_approx, two_approx_grouped, two_approx_splittable

__all__ = [
    "TwoApproxResult",
    "two_approx",
    "two_approx_grouped",
    "two_approx_splittable",
]
