"""Dual-approximation search routines (Theorems 2 and 8) and references.

A ρ-dual approximation (Hochbaum–Shmoys) takes the input and a makespan
``T`` and either builds a feasible schedule with makespan ≤ ρT or *rejects*
``T``, certifying ``T < OPT``.  Each variant provides such a dual with
ρ = 3/2; this module turns them into approximation algorithms:

* :func:`binary_search_dual` — Theorem 2: bisect ``[T_min, 2T_min]`` for
  ``O(log 1/ε)`` rounds; the returned ``T`` satisfies ``T ≤ (1+ε)·OPT``,
  hence ratio ``(3/2)(1+ε)``.
* :func:`integer_search_dual` — Theorem 8: for the non-preemptive problem
  ``OPT ∈ N``, so bisecting integers finds ``T ≤ OPT`` *exactly* in
  ``O(log T_min) = O(log(n+Δ))`` accept-tests; ratio exactly 3/2.
* :func:`right_interval_bisect` — the primitive behind Class Jumping: given
  candidates ``c_0 < … < c_k`` with ``c_0`` rejected and ``c_k`` accepted,
  find an adjacent rejected/accepted pair.
* :func:`slow_flip_splittable` — an O(#pieces) reference computation of the
  exact acceptance flip point ``T* = min{T : accepted}`` for the splittable
  dual, used to cross-validate Algorithm 1 in tests and ablations.

The searches are kernel-agnostic: ``accept`` is a black box, and the
callers (:mod:`repro.algos.api`, :mod:`repro.algos.nonpreemptive`) wire it
to either the scaled-integer kernel (:mod:`repro.core.fastnum`, default)
or the Fraction reference tests.  Every probed ``T`` is an exact rational,
so both kernels see identical probe sequences and return identical
results.

Two batching hooks sit on top of that contract:

* every search accepts an optional ``grid_accept`` evaluator (a
  ``candidates -> [accepted]`` callable, usually
  :func:`repro.core.batchdual.grid_accept_fn`).  Instead of ``O(log k)``
  sequential probes, the search then evaluates whole candidate blocks —
  the dyadic ε-grid in one call, integer/jump candidate lists in
  ``O(log_B k)`` block calls — and locates the flip by scanning the
  returned bits.  For the monotone accept predicates all searches here
  are built on, the result is identical to the sequential bisection.
* :class:`MemoAccept` deduplicates repeated probes of the same ``T``
  (keyed on the gcd-normalized ``(numerator, denominator)`` pair, so
  equal rationals written in different forms can never double-probe):
  the multi-phase flip searches re-test interval endpoints across
  phases, and a machine sweep re-uses each phase's frontier — with the
  memo each distinct ``T`` hits the kernel once.

Since PR 9 the probe *plans* themselves run on the scaled-integer tier:
candidates travel as normalized ``(num, den)`` int pairs
(:func:`repro.core.fastnum.norm_pair` — canonical per rational, so pair
arithmetic reproduces the historic Fraction plans' probe values, memo
keys and dedup bit-for-bit), and :class:`fractions.Fraction` objects are
built only at the boundaries: the caller-supplied ``accept`` /
``grid_accept`` callables (:func:`_black_box_evaluator`) and the
returned :class:`SearchResult` fields.

Every probe loop additionally polls :func:`repro.core.cancel.
check_cancelled` between dual tests: a solve running under a
``cancel_scope`` (the service installs one per request to enforce
``timeout_ms``) aborts with :class:`~repro.core.cancel.SolveCancelled`
at the next probe boundary.  The poll never changes a probe, so results
are bit-identical whenever the token does not fire.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, NamedTuple, Optional, Sequence

from ..core.bounds import Variant, t_min
from ..core.cancel import check_cancelled
from ..core.fastnum import (
    as_pair,
    norm_pair,
    pair_ceil,
    pair_cmp,
    pair_mid,
    pair_mul,
    pair_sub,
    round_half_even,
)
from ..core.instance import Instance
from ..core.numeric import Time, TimeLike, as_time, fast_fraction, frac_ceil
from ..core.schedule import Schedule
from ..obs.trace import count as obs_count, count_probe as obs_count_probe

AcceptFn = Callable[[Time], bool]
BuildFn = Callable[[Time], Schedule]
GridAcceptFn = Callable[[Sequence[Time]], Sequence[bool]]

#: A normalized ``(num, den)`` rational — the plan tier's number type.
Pair = tuple[int, int]

#: Candidate-block size for chunked grid bisection: one block call replaces
#: ``log2`` scalar round-trips, and ranges up to ``B^2`` resolve in two calls.
GRID_BLOCK = 128

_MISSING = object()


# --------------------------------------------------------------------------- #
# probe plans — resumable searches for the cross-instance coordinator
# --------------------------------------------------------------------------- #
#
# A *plan* is a generator that encodes one search's probe sequence: it
# yields ProbeRequest values, receives the corresponding verdict list via
# ``send``, and returns its result through StopIteration.  The sequential
# entry points below (binary_search_dual, integer_search_dual,
# right_interval_bisect — and the flip searches in jumping_split /
# jumping_pmtn) drive these same plans against per-item evaluators, while
# the xbatch coordinator (repro.algos.batch_api, xbatch=True) advances
# many items' plans in lockstep rounds and fuses each round's requests
# into one repro.core.xbatch kernel call.  Because both paths run the
# identical generator, an item's probe sequence under lockstep equals its
# solo sequence *by construction* — the bit-identity the differential
# fuzz suite (tests/test_xbatch.py) pins.
#
# Division of labour: plans own probe *memoization* (only cache misses are
# yielded — mirroring MemoAccept / wrap_grid) and the ``accept_calls``
# bookkeeping; evaluators own kernel dispatch and the cancellation poll
# (one check_cancelled per "accept"/"accept_block" request — "verdict"
# requests mirror the raw core()/probe() calls of the sequential code,
# which never polled).


class ProbeRequest(NamedTuple):
    """One batch of same-kind dual-test probes a plan needs answered.

    ``op`` is ``"accept"`` (scalar probes of the memoized accept
    predicate), ``"accept_block"`` (a grid-bisection candidate block), or
    ``"verdict"`` (full dual verdicts — SplitVerdict / PmtnVerdict /
    ``(load, m')`` — for the constant-piece case analyses).  ``kind``
    names the dual test (``split`` / ``nonp`` / ``pmtn`` / ``pmtn_base``)
    and ``mode`` the preemptive counting mode; sequential drivers that
    already close over their kernel ignore both.  ``times`` holds the
    probed candidates as normalized ``(num, den)`` pairs — the scaled-int
    evaluators feed them to the kernels directly, the black-box boundary
    rebuilds Fractions.  The response sent back into the plan must be a
    sequence aligned with ``times``.
    """

    op: str
    kind: str
    mode: str
    times: tuple[Pair, ...]


def drive_plan(plan, evaluate):
    """Run a probe plan to completion against ``evaluate(request)``.

    The single sequential chokepoint every plan-driven probe crosses,
    so an armed :class:`repro.obs.trace.TraceScope` counts probe volume
    per ``(kind, mode)`` here; disarmed, the hook is one thread-local
    read per request and the probe stream is untouched either way.
    """
    response = None
    try:
        while True:
            req = plan.send(response)
            obs_count_probe(req.kind, req.mode, len(req.times))
            response = evaluate(req)
    except StopIteration as stop:
        return stop.value


def plan_accept(memo, counted, kind, mode, T: Pair):
    """Memoized scalar accept probe (the MemoAccept protocol as a plan).

    Keys are gcd-normalized, so a caller handing in an unreduced pair
    still shares its memo entry with the canonical form.
    """
    key = norm_pair(*T)
    hit = memo.get(key, _MISSING)
    if hit is not _MISSING:
        obs_count("memo.hit")
        return hit
    flags = yield ProbeRequest("accept", kind, mode, (key,))
    verdict = bool(flags[0])
    memo[key] = verdict
    counted[0] += 1
    obs_count("memo.call")
    return verdict


def plan_accept_block(memo, counted, kind, mode, cands: Sequence[Pair]):
    """Grid-block accept sharing the plan's memo (the wrap_grid protocol)."""
    keys = [norm_pair(*T) for T in cands]
    unknown = [T for T in keys if memo.get(T, _MISSING) is _MISSING]
    if len(unknown) < len(keys):
        obs_count("memo.hit", len(keys) - len(unknown))
    if unknown:
        flags = yield ProbeRequest("accept_block", kind, mode, tuple(unknown))
        counted[0] += len(unknown)
        obs_count("memo.call", len(unknown))
        for T, verdict in zip(unknown, flags):
            memo[T] = bool(verdict)
    return [memo[T] for T in keys]


def right_interval_plan(
    candidates: Sequence[Pair], memo, counted, kind: str, mode: str, grid: bool
):
    """:func:`right_interval_bisect`'s narrowing as a plan (default flags)."""
    if len(candidates) < 2:
        raise ValueError("need at least two candidates")
    lo, hi = 0, len(candidates) - 1
    if grid:
        while hi - lo > 1:
            if hi - lo - 1 <= GRID_BLOCK:
                idxs = list(range(lo + 1, hi))
            else:
                span = hi - lo
                idxs = sorted(
                    {
                        lo + round_half_even((k + 1) * span, GRID_BLOCK + 1)
                        for k in range(GRID_BLOCK)
                    }
                    - {lo, hi}
                )
            flags = yield from plan_accept_block(
                memo, counted, kind, mode, [candidates[k] for k in idxs]
            )
            first_ok = next((k for k, ok in enumerate(flags) if ok), None)
            if first_ok is None:
                lo = idxs[-1]
            else:
                hi = idxs[first_ok]
                if first_ok > 0:
                    lo = idxs[first_ok - 1]
        return candidates[lo], candidates[hi]
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if (yield from plan_accept(memo, counted, kind, mode, candidates[mid])):
            hi = mid
        else:
            lo = mid
    return candidates[lo], candidates[hi]


def eps_probe_plan(tmin: TimeLike, eps: Fraction, kind: str, mode: str, grid: bool):
    """Theorem 2's probe sequence; returns ``(T, certificate_lo, calls)``.

    ``T`` and ``certificate_lo`` come back as normalized pairs; the
    drivers rebuild Fractions at the result boundary.
    """
    tmin = norm_pair(*as_pair(tmin))
    tn, td = tmin
    if grid:
        # rounds r with tmin/2^r <= eps*tmin  ⟺  2^r >= 1/eps
        r = 0
        while (1 << r) * eps.numerator < eps.denominator:
            r += 1
        # tmin + j·tmin/2^r = tmin·(2^r + j)/2^r
        den = td << r
        grid_pts = tuple(
            norm_pair(tn * ((1 << r) + j), den) for j in range((1 << r) + 1)
        )
        flags = yield ProbeRequest("accept_block", kind, mode, grid_pts)
        calls = len(grid_pts)
        if flags[0]:
            return tmin, tmin, calls
        j = next(k for k, ok in enumerate(flags) if ok)  # grid[-1] = 2·tmin accepts
        return grid_pts[j], grid_pts[j - 1], calls

    calls = 1
    if (yield ProbeRequest("accept", kind, mode, (tmin,)))[0]:
        # T_min ≤ OPT: ratio exactly 3/2.
        return tmin, tmin, calls
    lo, hi = tmin, norm_pair(2 * tn, td)  # lo rejected, hi accepted (2Tmin ≥ OPT)
    gap = pair_mul(as_pair(eps), tmin)  # shrink the bracket below eps·tmin ≤ eps·OPT
    while pair_cmp(pair_sub(hi, lo), gap) > 0:
        mid = pair_mid(lo, hi)
        calls += 1
        if (yield ProbeRequest("accept", kind, mode, (mid,)))[0]:
            hi = mid
        else:
            lo = mid
    # lo < OPT and hi ≤ lo + eps*tmin < (1+eps)·OPT.
    return hi, lo, calls


def integer_probe_plan(tmin: TimeLike, kind: str, grid: bool):
    """Theorem 8's probe sequence; returns ``(T, calls)``, ``T`` an exact pair."""
    tn, td = as_pair(tmin)
    lo_int = pair_ceil(tn, td)  # OPT ∈ N and OPT ≥ T_min ⟹ OPT ≥ ⌈T_min⌉
    hi_int = pair_ceil(2 * tn, td)
    calls = 1
    if grid:
        flags = yield ProbeRequest("accept_block", kind, "", ((lo_int, 1),))
        if flags[0]:
            return (lo_int, 1), calls
        lo, hi = lo_int, hi_int  # lo rejected, hi accepted (hi ≥ 2·t_min ≥ OPT)
        while hi - lo > 1:
            if hi - lo - 1 <= GRID_BLOCK:
                cands = list(range(lo + 1, hi))
            else:
                span = hi - lo
                cands = sorted(
                    {
                        lo + round_half_even((k + 1) * span, GRID_BLOCK + 1)
                        for k in range(GRID_BLOCK)
                    }
                    - {lo, hi}
                )
            calls += len(cands)
            flags = yield ProbeRequest(
                "accept_block", kind, "", tuple((c, 1) for c in cands)
            )
            first_ok = next((k for k, ok in enumerate(flags) if ok), None)
            if first_ok is None:
                lo = cands[-1]
            else:
                hi = cands[first_ok]
                if first_ok > 0:
                    lo = cands[first_ok - 1]
        return (hi, 1), calls

    if (yield ProbeRequest("accept", kind, "", ((lo_int, 1),)))[0]:
        return (lo_int, 1), calls
    lo, hi = lo_int, hi_int  # lo rejected, hi accepted (hi ≥ 2·t_min ≥ OPT)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        calls += 1
        if (yield ProbeRequest("accept", kind, "", ((mid, 1),)))[0]:
            hi = mid
        else:
            lo = mid
    # hi accepted, hi−1 rejected ⟹ OPT > hi−1 ⟹ OPT ≥ hi (integrality).
    return (hi, 1), calls


class MemoAccept:
    """Memoized ``accept(T)`` keyed on the normalized ``(num, den)`` pair.

    Keys are gcd-reduced (:func:`repro.core.fastnum.norm_pair`), so two
    representations of the same rational — e.g. a hand-built ``4/8``
    against the canonical ``1/2`` — share one cache entry and can never
    double-probe the kernel.  ``calls`` counts *distinct* dual-test
    evaluations (cache hits are free), which is what the
    ``accept_calls`` bookkeeping of the search results reports.
    ``seed``/``wrap_grid`` let a grid evaluator share the same cache, so
    scalar re-probes of grid-evaluated candidates cost nothing.
    """

    __slots__ = ("fn", "cache", "calls")

    def __init__(self, fn: AcceptFn) -> None:
        self.fn = fn
        self.cache: dict[tuple[int, int], bool] = {}
        self.calls = 0

    def __call__(self, T: Time) -> bool:
        key = norm_pair(T.numerator, T.denominator)
        hit = self.cache.get(key, _MISSING)
        if hit is not _MISSING:
            obs_count("memo.hit")
            return hit  # type: ignore[return-value]
        check_cancelled()  # probe boundary: no partial state to unwind
        self.calls += 1
        obs_count("memo.call")
        verdict = self.fn(T)
        self.cache[key] = verdict
        return verdict

    def seed(self, T: Time, verdict: bool) -> None:
        """Record an externally computed verdict (e.g. from a grid call)."""
        self.cache[norm_pair(T.numerator, T.denominator)] = verdict

    def wrap_grid(self, grid_accept: GridAcceptFn) -> GridAcceptFn:
        """A grid evaluator that shares this memo's cache.

        Already-known candidates are answered from the cache; the rest go
        to ``grid_accept`` in one call, and their verdicts are seeded
        back (counted in ``calls``).
        """

        def evaluate(cands: Sequence[Time]) -> list[bool]:
            cache = self.cache
            keys = [norm_pair(T.numerator, T.denominator) for T in cands]
            unknown = [
                (T, key) for T, key in zip(cands, keys)
                if cache.get(key, _MISSING) is _MISSING
            ]
            if len(unknown) < len(keys):
                obs_count("memo.hit", len(keys) - len(unknown))
            if unknown:
                check_cancelled()
                fresh = grid_accept([T for T, _ in unknown])
                self.calls += len(unknown)
                obs_count("memo.call", len(unknown))
                for (_, key), verdict in zip(unknown, fresh):
                    cache[key] = bool(verdict)
            return [cache[key] for key in keys]

        return evaluate


@dataclass(frozen=True)
class SearchResult:
    """A makespan guess with its schedule and the search's certificate.

    ``schedule`` is ``None`` when the caller ran a bounds-only search
    (``build=None``) — machine sweeps use this to resolve the ``T*``
    curve without materializing a schedule per point.
    """

    T: Time                    # the accepted guess the schedule was built for
    schedule: Optional[Schedule]
    certificate_lo: Time       # every T' < certificate_lo is proven < OPT...
    accept_calls: int          # ...so makespan ≤ (3/2)·T ≤ (3/2)(T/certificate_lo)·OPT

    @property
    def ratio_bound(self) -> Fraction:
        """Proven approximation factor ``(3/2)·T / certificate_lo``."""
        return Fraction(3, 2) * self.T / self.certificate_lo


def _maybe_build(build: Optional[BuildFn], T: Time) -> Optional[Schedule]:
    return None if build is None else build(T)


def binary_search_dual(
    instance: Instance,
    variant: Variant,
    accept: AcceptFn,
    build: Optional[BuildFn],
    eps: Fraction = Fraction(1, 100),
    *,
    grid_accept: Optional[GridAcceptFn] = None,
) -> SearchResult:
    """Theorem 2 — (3/2)(1+ε)-approximation with O(log 1/ε) dual tests.

    With ``grid_accept`` the whole dyadic ε-grid (the candidate set the
    sequential bisection draws its midpoints from) is evaluated in a
    single batched call and the flip read off the bits — identical
    result for a monotone ``accept``, 1 round-trip instead of
    ``O(log 1/ε)``.
    """
    if eps <= 0:
        raise ValueError("eps must be positive")
    tmin = t_min(instance, variant)
    plan = eps_probe_plan(tmin, eps, "", "", grid=grid_accept is not None)
    T, lo, calls = drive_plan(plan, _black_box_evaluator(accept, grid_accept))
    T = fast_fraction(*T)
    return SearchResult(
        T, _maybe_build(build, T), certificate_lo=fast_fraction(*lo),
        accept_calls=calls,
    )


def integer_search_dual(
    instance: Instance,
    variant: Variant,
    accept: AcceptFn,
    build: Optional[BuildFn],
    *,
    grid_accept: Optional[GridAcceptFn] = None,
) -> SearchResult:
    """Theorem 8 — exact 3/2 ratio when OPT is integral (non-preemptive).

    With ``grid_accept`` the integer window ``[⌈T_min⌉, ⌈2·T_min⌉]`` is
    narrowed with evenly spaced candidate *blocks* (:data:`GRID_BLOCK`
    per call): windows up to ``GRID_BLOCK²`` integers — every practical
    instance — resolve in at most two batched calls.
    """
    tmin = t_min(instance, variant)
    plan = integer_probe_plan(tmin, "", grid=grid_accept is not None)
    T, calls = drive_plan(plan, _black_box_evaluator(accept, grid_accept))
    T = fast_fraction(*T)
    return SearchResult(
        T, _maybe_build(build, T), certificate_lo=T, accept_calls=calls
    )


def _black_box_evaluator(accept: AcceptFn, grid_accept: Optional[GridAcceptFn]):
    """Route plan requests to a caller-supplied accept / grid evaluator.

    This is the pair→Fraction boundary for black-box searches: the
    caller's ``accept`` / ``grid_accept`` speak :class:`Time`, so each
    probed pair is rebuilt via ``fast_fraction`` here (pairs are already
    normalized — the slot-writing constructor skips the gcd).  Preserves
    the sequential probe contract exactly: one cancellation poll per
    request, scalar probes through ``accept``, candidate blocks through
    ``grid_accept`` (only emitted by grid-mode plans).
    """

    def evaluate(req: ProbeRequest) -> Sequence[bool]:
        check_cancelled()  # probe boundary
        if req.op == "accept_block":
            assert grid_accept is not None
            return grid_accept([fast_fraction(tn, td) for tn, td in req.times])
        return [accept(fast_fraction(tn, td)) for tn, td in req.times]

    return evaluate


def right_interval_bisect(
    candidates: Sequence[Time],
    accept: AcceptFn,
    *,
    first_rejected: bool = True,
    last_accepted: bool = True,
    grid_accept: Optional[GridAcceptFn] = None,
) -> tuple[Time, Time]:
    """Find adjacent ``(c_j, c_{j+1}]`` with ``c_j`` rejected, ``c_{j+1}`` accepted.

    Preconditions (asserted if the flags are False): ``candidates[0]`` is
    rejected and ``candidates[-1]`` accepted.  Needs O(log k) accept
    calls — or, with ``grid_accept``, ``O(log_B k)`` batched block calls
    (one call for the common ``k ≤ B = GRID_BLOCK`` case).
    """
    if len(candidates) < 2:
        raise ValueError("need at least two candidates")
    if not first_rejected and accept(candidates[0]):
        raise ValueError("candidates[0] must be rejected")
    if not last_accepted and not accept(candidates[-1]):
        raise ValueError("candidates[-1] must be accepted")
    # Fresh plan-local memo: a caller's MemoAccept / wrap_grid still
    # deduplicates across phases, so counting is unchanged.
    plan = right_interval_plan(
        [as_pair(T) for T in candidates], {}, [0], "", "",
        grid=grid_accept is not None,
    )
    lo, hi = drive_plan(plan, _black_box_evaluator(accept, grid_accept))
    return fast_fraction(*lo), fast_fraction(*hi)


# --------------------------------------------------------------------------- #
# slow reference flip finder for the splittable dual
# --------------------------------------------------------------------------- #


def splittable_breakpoints(instance: Instance, lo: Time, hi: Time) -> list[Time]:
    """All points in ``(lo, hi)`` where the splittable dual's data changes.

    These are the partition boundaries ``2s_i`` and the class jumps
    ``2P(C_i)/k``; between consecutive breakpoints ``L_split`` and ``m_exp``
    are constant (both are left-continuous step functions that only change
    at these points).
    """
    pts: set[Time] = set()
    for s in instance.setups:
        b = Fraction(2 * s)
        if lo < b < hi:
            pts.add(b)
    for i in range(instance.c):
        P2 = Fraction(2 * instance.processing(i))
        if P2 <= 0:
            continue
        k_lo = max(1, frac_ceil(P2 / hi))
        k_hi = (P2 / lo).__floor__() if lo > 0 else 0
        for k in range(k_lo, k_hi + 1):
            b = P2 / k
            if lo < b < hi:
                pts.add(b)
    return sorted(pts)


def slow_flip_splittable(instance: Instance) -> Time:
    """Exact ``T* = min{T ≥ T_min : splittable dual accepts}`` by full scan.

    O(c·m) pieces — only used for cross-validation and ablations.
    """
    from .splittable import split_dual_test  # local import to avoid a cycle

    tmin = t_min(instance, Variant.SPLITTABLE)
    thi = 2 * tmin
    if split_dual_test(instance, tmin).accepted:
        return tmin
    bounds = [tmin] + splittable_breakpoints(instance, tmin, thi) + [thi]
    m = instance.m
    for b, b_next in zip(bounds, bounds[1:]):
        dual = split_dual_test(instance, b)
        if m < dual.machines_exp:
            continue  # whole piece [b, b_next) rejected on machine count
        candidate = max(b, dual.load / m)
        if candidate < b_next:
            # accepted inside the piece (L, m_exp constant on [b, b_next))
            assert split_dual_test(instance, candidate).accepted
            return candidate
    assert split_dual_test(instance, thi).accepted
    return thi
