"""Dual-approximation search routines (Theorems 2 and 8) and references.

A ρ-dual approximation (Hochbaum–Shmoys) takes the input and a makespan
``T`` and either builds a feasible schedule with makespan ≤ ρT or *rejects*
``T``, certifying ``T < OPT``.  Each variant provides such a dual with
ρ = 3/2; this module turns them into approximation algorithms:

* :func:`binary_search_dual` — Theorem 2: bisect ``[T_min, 2T_min]`` for
  ``O(log 1/ε)`` rounds; the returned ``T`` satisfies ``T ≤ (1+ε)·OPT``,
  hence ratio ``(3/2)(1+ε)``.
* :func:`integer_search_dual` — Theorem 8: for the non-preemptive problem
  ``OPT ∈ N``, so bisecting integers finds ``T ≤ OPT`` *exactly* in
  ``O(log T_min) = O(log(n+Δ))`` accept-tests; ratio exactly 3/2.
* :func:`right_interval_bisect` — the primitive behind Class Jumping: given
  candidates ``c_0 < … < c_k`` with ``c_0`` rejected and ``c_k`` accepted,
  find an adjacent rejected/accepted pair.
* :func:`slow_flip_splittable` — an O(#pieces) reference computation of the
  exact acceptance flip point ``T* = min{T : accepted}`` for the splittable
  dual, used to cross-validate Algorithm 1 in tests and ablations.

The searches are kernel-agnostic: ``accept`` is a black box, and the
callers (:mod:`repro.algos.api`, :mod:`repro.algos.nonpreemptive`) wire it
to either the scaled-integer kernel (:mod:`repro.core.fastnum`, default)
or the Fraction reference tests.  Every probed ``T`` is an exact rational,
so both kernels see identical probe sequences and return identical
results.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Optional, Sequence

from ..core.bounds import Variant, t_min
from ..core.instance import Instance
from ..core.numeric import Time, TimeLike, as_time, frac_ceil
from ..core.schedule import Schedule

AcceptFn = Callable[[Time], bool]
BuildFn = Callable[[Time], Schedule]


@dataclass(frozen=True)
class SearchResult:
    """A makespan guess with its schedule and the search's certificate."""

    T: Time                    # the accepted guess the schedule was built for
    schedule: Schedule
    certificate_lo: Time       # every T' < certificate_lo is proven < OPT...
    accept_calls: int          # ...so makespan ≤ (3/2)·T ≤ (3/2)(T/certificate_lo)·OPT

    @property
    def ratio_bound(self) -> Fraction:
        """Proven approximation factor ``(3/2)·T / certificate_lo``."""
        return Fraction(3, 2) * self.T / self.certificate_lo


def binary_search_dual(
    instance: Instance,
    variant: Variant,
    accept: AcceptFn,
    build: BuildFn,
    eps: Fraction = Fraction(1, 100),
) -> SearchResult:
    """Theorem 2 — (3/2)(1+ε)-approximation with O(log 1/ε) dual tests."""
    if eps <= 0:
        raise ValueError("eps must be positive")
    tmin = t_min(instance, variant)
    calls = 0

    def test(T: Time) -> bool:
        nonlocal calls
        calls += 1
        return accept(T)

    if test(tmin):
        # T_min ≤ OPT: ratio exactly 3/2.
        return SearchResult(tmin, build(tmin), certificate_lo=tmin, accept_calls=calls)
    lo, hi = tmin, 2 * tmin  # lo rejected (lo < OPT), hi accepted (hi ≥ ... 2Tmin ≥ OPT)
    # Shrink the gap below eps*tmin ≤ eps*OPT.
    while hi - lo > eps * tmin:
        mid = (lo + hi) / 2
        if test(mid):
            hi = mid
        else:
            lo = mid
    # lo < OPT and hi ≤ lo + eps*tmin < (1+eps)·OPT.
    return SearchResult(hi, build(hi), certificate_lo=lo, accept_calls=calls)


def integer_search_dual(
    instance: Instance,
    variant: Variant,
    accept: AcceptFn,
    build: BuildFn,
) -> SearchResult:
    """Theorem 8 — exact 3/2 ratio when OPT is integral (non-preemptive)."""
    tmin = t_min(instance, variant)
    lo_int = frac_ceil(tmin)  # OPT ∈ N and OPT ≥ T_min ⟹ OPT ≥ ⌈T_min⌉
    hi_int = frac_ceil(2 * tmin)
    calls = 0

    def test(T: int) -> bool:
        nonlocal calls
        calls += 1
        return accept(Fraction(T))

    if test(lo_int):
        return SearchResult(
            Fraction(lo_int), build(Fraction(lo_int)),
            certificate_lo=Fraction(lo_int), accept_calls=calls,
        )
    lo, hi = lo_int, hi_int  # lo rejected, hi accepted (hi ≥ 2·t_min ≥ OPT)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if test(mid):
            hi = mid
        else:
            lo = mid
    # hi accepted, hi−1 rejected ⟹ OPT > hi−1 ⟹ OPT ≥ hi (integrality).
    return SearchResult(
        Fraction(hi), build(Fraction(hi)), certificate_lo=Fraction(hi), accept_calls=calls
    )


def right_interval_bisect(
    candidates: Sequence[Time],
    accept: AcceptFn,
    *,
    first_rejected: bool = True,
    last_accepted: bool = True,
) -> tuple[Time, Time]:
    """Find adjacent ``(c_j, c_{j+1}]`` with ``c_j`` rejected, ``c_{j+1}`` accepted.

    Preconditions (asserted if the flags are False): ``candidates[0]`` is
    rejected and ``candidates[-1]`` accepted.  Needs O(log k) accept calls.
    """
    if len(candidates) < 2:
        raise ValueError("need at least two candidates")
    if not first_rejected and accept(candidates[0]):
        raise ValueError("candidates[0] must be rejected")
    if not last_accepted and not accept(candidates[-1]):
        raise ValueError("candidates[-1] must be accepted")
    lo, hi = 0, len(candidates) - 1
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if accept(candidates[mid]):
            hi = mid
        else:
            lo = mid
    return candidates[lo], candidates[hi]


# --------------------------------------------------------------------------- #
# slow reference flip finder for the splittable dual
# --------------------------------------------------------------------------- #


def splittable_breakpoints(instance: Instance, lo: Time, hi: Time) -> list[Time]:
    """All points in ``(lo, hi)`` where the splittable dual's data changes.

    These are the partition boundaries ``2s_i`` and the class jumps
    ``2P(C_i)/k``; between consecutive breakpoints ``L_split`` and ``m_exp``
    are constant (both are left-continuous step functions that only change
    at these points).
    """
    pts: set[Time] = set()
    for s in instance.setups:
        b = Fraction(2 * s)
        if lo < b < hi:
            pts.add(b)
    for i in range(instance.c):
        P2 = Fraction(2 * instance.processing(i))
        if P2 <= 0:
            continue
        k_lo = max(1, frac_ceil(P2 / hi))
        k_hi = (P2 / lo).__floor__() if lo > 0 else 0
        for k in range(k_lo, k_hi + 1):
            b = P2 / k
            if lo < b < hi:
                pts.add(b)
    return sorted(pts)


def slow_flip_splittable(instance: Instance) -> Time:
    """Exact ``T* = min{T ≥ T_min : splittable dual accepts}`` by full scan.

    O(c·m) pieces — only used for cross-validation and ablations.
    """
    from .splittable import split_dual_test  # local import to avoid a cycle

    tmin = t_min(instance, Variant.SPLITTABLE)
    thi = 2 * tmin
    if split_dual_test(instance, tmin).accepted:
        return tmin
    bounds = [tmin] + splittable_breakpoints(instance, tmin, thi) + [thi]
    m = instance.m
    for b, b_next in zip(bounds, bounds[1:]):
        dual = split_dual_test(instance, b)
        if m < dual.machines_exp:
            continue  # whole piece [b, b_next) rejected on machine count
        candidate = max(b, dual.load / m)
        if candidate < b_next:
            # accepted inside the piece (L, m_exp constant on [b, b_next))
            assert split_dual_test(instance, candidate).accepted
            return candidate
    assert split_dual_test(instance, thi).accepted
    return thi
