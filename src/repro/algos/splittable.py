"""Splittable scheduling: the 3/2-dual approximation (Theorem 7, Appendix C).

For a makespan guess ``T`` the dual test computes

* ``L_split = P(J) + Σ_{i∈Ichp} s_i + Σ_{i∈Iexp} β_i s_i``  and
* ``m_exp = Σ_{i∈Iexp} β_i``  with ``β_i = ⌈2P(C_i)/T⌉``;

``T`` is **rejected** iff ``mT < L_split`` or ``m < m_exp`` — and rejection
certifies ``T < OPT_split`` (Theorem 7(i)).  Otherwise the construction
produces a feasible schedule with makespan ≤ ``3T/2`` in O(n):

* step 1 — every expensive class ``i`` is wrapped onto ``β_i`` fresh machines
  with gaps ``[0, s_i+T/2)`` then ``[s_i, s_i+T/2)``; each machine carries the
  class setup at its bottom;
* step 2 — cheap classes are wrapped into the leftover time of the *last*
  machines ``ū_i`` (gap ``[L(ū_i)+T/2, 3T/2)``, reserving ``[L, L+T/2]`` for
  one cheap setup below the gap) and then into empty machines (gap
  ``[T/2, 3T/2)``), exactly Figure 1(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..core.bounds import Variant, t_min
from ..core.classification import beta, split_expensive_cheap
from ..core.errors import RejectedMakespanError
from ..core.fastnum import ceil_div, validate_kernel
from ..core.instance import Instance
from ..core.numeric import Time, TimeLike, as_time, time_str
from ..core.schedule import Schedule
from ..core.wrapping import Batch, WrapSequence, WrapTemplate, wrap


@dataclass(frozen=True)
class SplitDual:
    """Outcome of the Theorem-7 test for one makespan guess."""

    T: Time
    exp: tuple[int, ...]
    chp: tuple[int, ...]
    betas: dict[int, int]
    load: Time          # L_split(T)
    machines_exp: int   # m_exp(T)
    accepted: bool

    def reject_reasons(self, m: int) -> list[str]:
        """Which of the two Theorem-7 conditions failed (empty if accepted)."""
        reasons = []
        if m * self.T < self.load:
            reasons.append("mT < L_split")
        if m < self.machines_exp:
            reasons.append("m < m_exp")
        return reasons


def split_dual_test(instance: Instance, T: TimeLike) -> SplitDual:
    """Theorem 7(i): accept/reject ``T`` in O(c) after O(n) preprocessing."""
    T = as_time(T)
    if T <= 0:
        raise ValueError("T must be positive")
    exp, chp = split_expensive_cheap(instance, T)
    betas = {i: beta(instance, T, i) for i in exp}
    load = Fraction(instance.total_processing)
    load += sum(instance.setups[i] for i in chp)
    load += sum(betas[i] * instance.setups[i] for i in exp)
    m_exp = sum(betas.values())
    accepted = instance.m * T >= load and instance.m >= m_exp
    return SplitDual(
        T=T,
        exp=tuple(exp),
        chp=tuple(chp),
        betas=betas,
        load=load,
        machines_exp=m_exp,
        accepted=accepted,
    )


def split_dual_test_fast(instance: Instance, T: TimeLike) -> SplitDual:
    """:func:`split_dual_test` on the scaled-integer kernel.

    Same ``SplitDual`` field for field (the differential suite asserts
    it); the per-class β and load arithmetic runs on machine ints with
    ``T = tn/td`` cross-multiplied out.
    """
    T = as_time(T)
    if T <= 0:
        raise ValueError("T must be positive")
    tn, td = T.numerator, T.denominator
    ctx = instance.fast_ctx()
    exp: list[int] = []
    chp: list[int] = []
    betas: dict[int, int] = {}
    load = ctx.total_processing
    m_exp = 0
    setups, P = ctx.setups, ctx.P
    for i in range(ctx.c):
        s = setups[i]
        if 2 * s * td > tn:
            b = ceil_div(2 * P[i] * td, tn)
            exp.append(i)
            betas[i] = b
            load += b * s
            m_exp += b
        else:
            chp.append(i)
            load += s
    return SplitDual(
        T=T,
        exp=tuple(exp),
        chp=tuple(chp),
        betas=betas,
        load=Fraction(load),
        machines_exp=m_exp,
        accepted=ctx.m * tn >= load * td and ctx.m >= m_exp,
    )


def split_dual_schedule(instance: Instance, T: TimeLike, *, kernel: str = "fast") -> Schedule:
    """Theorem 7(ii): build a feasible schedule with makespan ≤ 3T/2.

    Raises :class:`RejectedMakespanError` when ``T`` fails the dual test.
    ``kernel="fast"`` routes the wrap engine through its scaled-integer
    path — which emits rows straight into the schedule's column store
    (lazy placements; see :mod:`repro.core.schedule`) — and reuses the
    instance's cached job views with their integer lengths;
    ``"fraction"`` is the rational reference.  Both produce identical
    placements.
    """
    T = as_time(T)
    fast = validate_kernel(kernel)
    dual = split_dual_test_fast(instance, T) if fast else split_dual_test(instance, T)
    if not dual.accepted:
        raise RejectedMakespanError(
            f"T={time_str(T)} rejected: load={time_str(dual.load)} vs "
            f"mT={time_str(instance.m * T)}, m_exp={dual.machines_exp} vs m={instance.m}"
        )
    schedule = Schedule(instance)
    half = T / 2
    jobs_of = instance.class_jobs_frac if fast else instance.class_jobs

    # ---- step 1: expensive classes ---------------------------------- #
    next_machine = 0
    zero = Fraction(0)
    last_machines: list[tuple[int, int]] = []  # (class, ū_i)
    for i in dual.exp:
        s = Fraction(instance.setups[i])
        b = dual.betas[i]
        s_top = s + half
        gaps = [(next_machine, zero, s_top)]
        gaps += [(next_machine + r, s, s_top) for r in range(1, b)]
        template = WrapTemplate.of(gaps)
        if fast:
            # cached views are pre-validated: skip Batch.of's per-item checks
            # (full classes: integer lengths feed the wrap engine directly)
            sequence = WrapSequence(
                (Batch(cls=i, items=jobs_of(i), int_lengths=instance.jobs[i]),)
            )
        else:
            sequence = WrapSequence.single_class(i, jobs_of(i))
        wrap(schedule, sequence, template, exact_ints=fast)
        u_last = next_machine + b - 1
        last_machines.append((i, u_last))
        next_machine += b

    # ---- step 2: cheap classes --------------------------------------- #
    if dual.chp:
        gaps = []
        top = 3 * half
        for i, u in last_machines:
            if fast:
                # Wrap fills every gap but the last completely, so the last
                # machine's load is s_i + P_i − (β_i−1)·T/2 — no need to
                # re-sum its placements.
                load_u = (
                    Fraction(instance.setups[i] + instance.class_processing[i])
                    - (dual.betas[i] - 1) * half
                )
            else:
                load_u = schedule.machine_load(u)
            if load_u < T:
                # Reserve [L, L+T/2] for one cheap setup below the gap.
                gaps.append((u, load_u + half, top))
        for u in range(next_machine, instance.m):
            gaps.append((u, half, top))
        template = WrapTemplate.of(gaps)
        if fast:
            sequence = WrapSequence(
                tuple(
                    Batch(cls=i, items=jobs_of(i), int_lengths=instance.jobs[i])
                    for i in dual.chp
                )
            )
        else:
            sequence = WrapSequence.of([Batch.of(i, jobs_of(i)) for i in dual.chp])
        wrap(schedule, sequence, template, exact_ints=fast)

    return schedule


def split_dual(instance: Instance, T: TimeLike) -> tuple[SplitDual, Schedule | None]:
    """Test ``T`` and, if accepted, build the schedule (the ρ-dual contract)."""
    dual = split_dual_test(instance, T)
    if not dual.accepted:
        return dual, None
    return dual, split_dual_schedule(instance, T)


def split_window(instance: Instance) -> tuple[Time, Time]:
    """``[T_min, 2 T_min]`` with ``OPT_split`` inside (Lemma 8 upper bound)."""
    tmin = t_min(instance, Variant.SPLITTABLE)
    return tmin, 2 * tmin
