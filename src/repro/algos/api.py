"""Public façade: ``repro.solve(instance, variant, algorithm=...)``.

Maps the paper's result matrix onto one entry point:

=================  =======================  ==========================
algorithm          guarantee                running time (paper)
=================  =======================  ==========================
``two``            2·OPT                    O(n)                (Thm 1)
``eps``            (3/2)(1+ε)·OPT           O(n log 1/ε)        (Thm 2)
``three_halves``   (3/2)·OPT                near-linear     (Thms 3/6/8)
=================  =======================  ==========================

For the job-constrained variants with ``m ≥ n`` the trivial one-job-per-
machine schedule is optimal (Notes 1/2) and returned directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Literal, Optional

from ..core.bounds import Variant, lower_bound, t_min
from ..core.fastnum import fast_nonp_test, fast_pmtn_test, fast_split_test, validate_kernel
from ..core.instance import Instance
from ..core.numeric import Time
from ..core.schedule import Schedule
from .jumping_pmtn import three_halves_preemptive
from .jumping_split import three_halves_splittable
from .nonpreemptive import nonp_dual_schedule, nonp_dual_test, three_halves_nonpreemptive
from .pmtn_general import pmtn_dual_schedule, pmtn_dual_test
from .search import binary_search_dual
from .splittable import split_dual_schedule, split_dual_test
from .twoapprox import two_approx

Algorithm = Literal["two", "eps", "three_halves"]
Kernel = Literal["fast", "fraction"]


@dataclass(frozen=True)
class SolveResult:
    """A schedule together with its proven guarantee and certificates."""

    schedule: Schedule
    variant: Variant
    algorithm: str
    #: the makespan guess the schedule was built against (T_min for "two").
    T: Time
    #: proven upper bound on makespan / OPT.
    ratio_bound: Fraction
    #: strongest known lower bound on OPT for this run (≥ input-only bound).
    opt_lower_bound: Time

    @property
    def makespan(self) -> Time:
        return self.schedule.makespan()

    def empirical_ratio(self) -> Fraction:
        """``makespan / opt_lower_bound`` — an upper bound on the true ratio."""
        return Fraction(self.makespan) / Fraction(self.opt_lower_bound)


def _trivial_single_machine(instance: Instance, variant: Variant) -> Optional[SolveResult]:
    """With m = 1 the serial schedule is exactly optimal: OPT = N (page 2)."""
    if instance.m != 1:
        return None
    schedule = Schedule(instance)
    t = Fraction(0)
    for i in range(instance.c):
        schedule.add_setup(0, t, i)
        t += instance.setups[i]
        for job, length in instance.class_jobs(i):
            schedule.add_job(0, t, job)
            t += length
    return SolveResult(
        schedule=schedule, variant=variant, algorithm="trivial",
        T=t, ratio_bound=Fraction(1), opt_lower_bound=t,
    )


def _trivial_one_per_machine(instance: Instance, variant: Variant) -> Optional[SolveResult]:
    """With m ≥ n, one job (plus setup) per machine is optimal (Notes 1/2)."""
    if variant is Variant.SPLITTABLE or instance.m < instance.n:
        return None
    schedule = Schedule(instance)
    u = 0
    for job, t in instance.iter_jobs():
        schedule.add_setup(u, 0, job.cls)
        schedule.add_job(u, instance.setups[job.cls], job)
        u += 1
    cmax = schedule.makespan()
    return SolveResult(
        schedule=schedule,
        variant=variant,
        algorithm="trivial",
        T=cmax,
        ratio_bound=Fraction(1),
        opt_lower_bound=cmax,  # == max_i(s_i + t^(i)_max) = Note-1/2 bound
    )


def solve(
    instance: Instance,
    variant: Variant = Variant.NONPREEMPTIVE,
    algorithm: Algorithm = "three_halves",
    eps: Fraction = Fraction(1, 100),
    portfolio: bool = False,
    kernel: Kernel = "fast",
) -> SolveResult:
    """Solve ``instance`` under ``variant`` with the requested guarantee.

    ``portfolio=True`` additionally runs the cheap heuristics (2-approx
    wrap/next-fit, Monma–Potts wrap, grouped LPT) and returns the best
    feasible schedule found.  The guarantee is preserved: the minimum over
    schedules that include a ρ-approximate one is itself ≤ ρ·OPT.  The
    paper's algorithms are *dual* constructions — they optimize the
    worst-case certificate, not the average case — so the portfolio often
    improves the constants while keeping the proof.

    ``kernel`` selects the numeric backend of the per-``T`` hot paths:
    ``"fast"`` (default) runs the dual tests and constructions on the
    scaled-integer kernel of :mod:`repro.core.fastnum`; ``"fraction"``
    keeps the exact-rational reference path.  Results are bit-identical —
    the differential suite asserts the same accepts, makespans and ratio
    bounds on every generator-suite instance.
    """
    validate_kernel(kernel)
    trivial = _trivial_single_machine(instance, variant) or _trivial_one_per_machine(
        instance, variant
    )
    if trivial is not None:
        return trivial
    if portfolio:
        base = solve(instance, variant, algorithm, eps, portfolio=False, kernel=kernel)
        best = _portfolio_improve(instance, variant, base)
        return best
    lb = lower_bound(instance, variant)

    if algorithm == "two":
        res = two_approx(instance, variant)
        return SolveResult(
            schedule=res.schedule, variant=variant, algorithm="two",
            T=res.t_min, ratio_bound=Fraction(2), opt_lower_bound=lb,
        )

    if algorithm == "eps":
        accept, build = _dual_for(instance, variant, kernel)
        sr = binary_search_dual(instance, variant, accept, build, eps)
        return SolveResult(
            schedule=sr.schedule, variant=variant, algorithm="eps",
            T=sr.T, ratio_bound=sr.ratio_bound,
            opt_lower_bound=max(lb, sr.certificate_lo),
        )

    if algorithm == "three_halves":
        if variant is Variant.SPLITTABLE:
            jr = three_halves_splittable(instance, kernel=kernel)
            return SolveResult(
                schedule=jr.schedule, variant=variant, algorithm="three_halves",
                T=jr.T_star, ratio_bound=Fraction(3, 2),
                opt_lower_bound=max(lb, jr.T_star),
            )
        if variant is Variant.PREEMPTIVE:
            pr = three_halves_preemptive(instance, kernel=kernel)
            return SolveResult(
                schedule=pr.schedule, variant=variant, algorithm="three_halves",
                T=pr.T_witness, ratio_bound=pr.ratio_bound,
                opt_lower_bound=max(lb, pr.T_star),
            )
        sr = three_halves_nonpreemptive(instance, kernel=kernel)
        return SolveResult(
            schedule=sr.schedule, variant=variant, algorithm="three_halves",
            T=sr.T, ratio_bound=Fraction(3, 2),
            opt_lower_bound=max(lb, sr.certificate_lo),
        )

    raise ValueError(f"unknown algorithm {algorithm!r}")


def _portfolio_improve(instance: Instance, variant: Variant, base: SolveResult) -> SolveResult:
    """Best-of over cheap feasible heuristics; inherits ``base``'s bound."""
    from ..baselines import grouped_lpt_schedule, job_lpt_schedule, monma_potts_schedule
    from ..core.validate import validate_schedule
    from .twoapprox import two_approx

    candidates: list[Schedule] = [base.schedule]
    candidates.append(two_approx(instance, variant).schedule)
    candidates.append(grouped_lpt_schedule(instance))
    candidates.append(job_lpt_schedule(instance))
    if variant is not Variant.NONPREEMPTIVE:
        candidates.append(monma_potts_schedule(instance))
    best = min(candidates, key=lambda s: s.makespan())
    validate_schedule(best, variant)
    return SolveResult(
        schedule=best,
        variant=variant,
        algorithm=base.algorithm + "+portfolio",
        T=base.T,
        ratio_bound=base.ratio_bound,
        opt_lower_bound=base.opt_lower_bound,
    )


def _dual_for(instance: Instance, variant: Variant, kernel: Kernel = "fast"):
    """(accept, build) pair of the variant's 3/2-dual approximation."""
    if kernel == "fast":
        ctx = instance.fast_ctx()
        if variant is Variant.SPLITTABLE:
            accept = lambda T: fast_split_test(ctx, T.numerator, T.denominator).accepted
        elif variant is Variant.PREEMPTIVE:
            accept = lambda T: fast_pmtn_test(ctx, T.numerator, T.denominator).accepted
        else:
            accept = lambda T: fast_nonp_test(ctx, T.numerator, T.denominator).accepted
    else:
        if variant is Variant.SPLITTABLE:
            accept = lambda T: split_dual_test(instance, T).accepted
        elif variant is Variant.PREEMPTIVE:
            accept = lambda T: pmtn_dual_test(instance, T).accepted
        else:
            accept = lambda T: nonp_dual_test(instance, T).accepted
    if variant is Variant.SPLITTABLE:
        build = lambda T: split_dual_schedule(instance, T, kernel=kernel)
    elif variant is Variant.PREEMPTIVE:
        build = lambda T: pmtn_dual_schedule(instance, T, kernel=kernel)
    else:
        build = lambda T: nonp_dual_schedule(instance, T, kernel=kernel)
    return accept, build
