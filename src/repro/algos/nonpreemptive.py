"""Non-preemptive scheduling: Algorithm 6, Theorems 8 and 9 (Appendix D).

For a makespan guess ``T`` the dual test computes the per-class machine
numbers

* ``m_i = α_i = ⌈P(C_i)/(T−s_i)⌉`` for expensive classes,
* ``m_i = |C_i∩J⁺| + ⌈P(C_i∩K)/(T−s_i)⌉`` for cheap classes

(where ``J⁺ = {t_j > T/2}`` and ``K`` are the cheap jobs with ``s_i+t_j >
T/2``), the residuals ``x_i = P(C_i) − m_i(T−s_i)`` and

``L_nonp = P(J) + Σ m_i s_i + Σ_{x_i>0} s_i``,  ``m′ = Σ m_i``.

Reject iff ``mT < L_nonp`` or ``m < m′`` (plus Note 2's
``T < max_i(s_i+t^(i)_max)``), certifying ``T < OPT``.  Otherwise the
construction yields a feasible *non-preemptive* schedule ≤ 3T/2:

1. schedule ``L`` (preemptively for now): expensive classes and cheap ``K``
   jobs wrapped onto their ``m_i`` machines (quota ``T−s_i`` above one
   setup per machine), each cheap ``J⁺`` job alone on a machine;
2. fill ``C_i \\ L`` onto class-``i`` machines with load < T (splitting at
   ``T``, pieces remember their parent);
3. stream the residual load ``Q = [s_i, C'_i]_{x_i>0}`` greedily over used
   then unused machines, *keeping* items that cross ``T``;
4. repair: (a) every machine whose last item is a job piece gets the whole
   parent job instead, all sibling pieces are removed (shifting items
   down); (b) every step-3 item still ending above ``T`` moves, with a
   fresh setup if it is a job, directly below the item placed next in
   ``Q``-order; trailing setups are dropped.

Since no layout ever contains idle time below the top item, machines are
represented as plain item lists; times are prefix sums.  This makes the
shift-up/shift-down repairs O(1) list operations.

Theorem 8 then wraps this dual in an integer binary search: ``OPT ∈ N``,
so the search returns ``T ≤ OPT`` exactly and the ratio is a true 3/2 in
``O(n log(n+Δ))``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from itertools import accumulate
from typing import Iterator, Optional

from ..core.bounds import Variant, setup_plus_tmax, t_min
from ..core.classification import NonpPartition, nonp_partition, nonp_partition_fast
from ..core.errors import ConstructionError, RejectedMakespanError
from ..core.fastnum import fast_nonp_test, validate_kernel
from ..core.instance import Instance, JobRef
from ..core.numeric import Time, TimeLike, as_time, time_str
from ..core.schedule import Placement, Schedule
from .search import SearchResult, integer_search_dual


@dataclass(frozen=True)
class NonpDual:
    """Outcome of the Theorem-9 test for one makespan guess."""

    T: Time
    partition: Optional[NonpPartition]
    load: Time            # L_nonp
    machines_needed: int  # m'
    accepted: bool
    reject_reasons: tuple[str, ...] = ()


def nonp_dual_test(instance: Instance, T: TimeLike) -> NonpDual:
    """Theorem 9(i): accept/reject ``T``; rejection certifies ``T < OPT``."""
    T = as_time(T)
    if T <= 0:
        raise ValueError("T must be positive")
    if T < setup_plus_tmax(instance):
        return NonpDual(
            T=T, partition=None, load=Fraction(instance.total_load),
            machines_needed=instance.m + 1, accepted=False,
            reject_reasons=("T < max(s_i + t_max^i)",),
        )
    part = nonp_partition(instance, T)
    load = Fraction(instance.total_processing)
    load += sum(part.m_i(i) * instance.setups[i] for i in range(instance.c))
    load += sum(instance.setups[i] for i in range(instance.c) if part.x_i(i) > 0)
    m_prime = part.m_total
    reasons = []
    if instance.m * T < load:
        reasons.append("mT < L_nonp")
    if instance.m < m_prime:
        reasons.append("m < m'")
    return NonpDual(
        T=T, partition=part, load=load, machines_needed=m_prime,
        accepted=not reasons, reject_reasons=tuple(reasons),
    )


# --------------------------------------------------------------------------- #
# construction
# --------------------------------------------------------------------------- #


@dataclass(eq=False, slots=True)
class _It:
    """One contiguous item in a machine's bottom-to-top item list.

    ``length`` is *scaled* time: the construction pre-multiplies every
    duration by the denominator of ``T`` (the :mod:`repro.core.fastnum`
    convention), so with the default fast kernel all lengths are exact
    machine ints; the reference kernel keeps plain rationals (scale 1).
    """

    cls: int
    job: Optional[JobRef]   # None = setup
    length: object          # scaled duration: int (fast) or Fraction (reference)
    is_piece: bool = False  # True while this is a partial piece of its job
    from_step3: bool = False
    crossed: bool = False   # pushed its machine past T when placed in step 3
    removed: bool = False

    @property
    def is_setup(self) -> bool:
        return self.job is None


def _machine_end(items: list[_It]):
    return sum(it.length for it in items) if items else 0


def _materialize(
    instance: Instance,
    machines: list[list[_It]],
    scale: int = 1,
    trusted: bool = False,
) -> Schedule:
    """Build a Schedule from item lists (prefix-sum start times).

    ``scale`` is the common denominator the item lengths were multiplied
    by.  With ``trusted`` (the fast-kernel path: all lengths machine ints)
    the items are emitted straight into the schedule's column store — no
    :class:`Placement`/:class:`~fractions.Fraction` objects are created;
    they materialize lazily only if a caller iterates.  Sign checks are
    skipped (prefix sums of non-negative scaled lengths cannot go
    negative) and machine indices are in range by construction (one item
    list per machine); :mod:`repro.core.validate` remains the real
    feasibility gate.
    """
    schedule = Schedule(instance)
    if trusted:
        cols = schedule._columns_for_append()
        assert cols is not None  # fresh schedules are always columnar
        mq: list[int] = []
        sq: list[int] = []
        lq: list[int] = []
        cq: list[int] = []
        jq: list[int] = []
        for u, items in enumerate(machines):
            if not items:
                continue
            lens = [it.length for it in items]
            starts = list(accumulate(lens, initial=0))
            starts.pop()
            mq.extend([u] * len(lens))
            sq.extend(starts)
            lq.extend(lens)
            cq.extend([it.cls for it in items])
            jq.extend(
                [-1 if it.job is None else it.job.idx for it in items]
            )
        cols.extend_scaled(mq, sq, lq, scale, cq, jq)
        return schedule
    for u, items in enumerate(machines):
        t = 0
        for it in items:
            schedule.add(
                Placement(
                    machine=u,
                    start=Fraction(t, scale),
                    length=Fraction(it.length, scale),
                    cls=it.cls,
                    job=it.job,
                )
            )
            t += it.length
    return schedule


def _configured_class(items: list[_It], upto: int) -> Optional[int]:
    """The class the machine is set up for just before position ``upto``."""
    state: Optional[int] = None
    for it in items[:upto]:
        state = it.cls
    return state


def nonp_dual_schedule(
    instance: Instance,
    T: TimeLike,
    stages_out: Optional[dict] = None,
    *,
    kernel: str = "fast",
) -> Schedule:
    """Theorem 9(ii): a feasible non-preemptive schedule ≤ 3T/2.

    ``stages_out`` (a dict) receives Figure-10..13 snapshots: Schedules
    materialized after steps 1, 2, 3 and the final repaired schedule.

    With ``kernel="fast"`` every duration is pre-multiplied by the
    denominator of ``T``, so the whole construction (quotas, splits,
    machine ends, repairs) is integer-only and times become rationals
    again only in :func:`_materialize`.  ``kernel="fraction"`` keeps the
    historical rational arithmetic; both produce identical schedules.
    """
    T = as_time(T)
    if not validate_kernel(kernel):
        dual = nonp_dual_test(instance, T)
        if not dual.accepted:
            raise RejectedMakespanError(
                f"T={time_str(T)} rejected by Theorem 9: {', '.join(dual.reject_reasons)}"
            )
        return _nonp_schedule_reference(instance, T, dual, stages_out)
    # Kernel-complete acceptance + partition: verdict through the scaled-int
    # test, the full Appendix-D partition through its integer twin (the
    # Fraction nonp_dual_test stays untouched as the reference path).
    ctx = instance.fast_ctx()
    D: int = T.denominator          # everything below is scaled by D
    Ts = T.numerator                # T·D — an int
    verdict = fast_nonp_test(ctx, Ts, D)
    if not verdict.accepted:
        if Ts < ctx.spt * D:
            reasons = ["T < max(s_i + t_max^i)"]
        else:
            reasons = []
            if instance.m * Ts < verdict.load * D:
                reasons.append("mT < L_nonp")
            if instance.m < verdict.machines_needed:
                reasons.append("m < m'")
        raise RejectedMakespanError(
            f"T={time_str(T)} rejected by Theorem 9: {', '.join(reasons)}"
        )

    def snapshot(key: str, machines: list[list["_It"]]) -> None:
        if stages_out is not None:
            stages_out[key] = _materialize(instance, machines, D, trusted=True)
    part = nonp_partition_fast(instance, T)
    machines: list[list[_It]] = [[] for _ in range(instance.m)]
    ends = [0] * instance.m  # running scaled machine ends (valid through step 3)
    pieces_of: dict[JobRef, list[tuple[int, _It]]] = {}
    next_machine = 0

    def take_machine() -> int:
        nonlocal next_machine
        if next_machine >= instance.m:
            raise ConstructionError("Algorithm 6 ran out of machines")
        next_machine += 1
        return next_machine - 1

    def place(u: int, it: _It) -> _It:
        machines[u].append(it)
        ends[u] += it.length
        if it.is_piece:
            # Only split pieces matter to step 4a's consolidation (a whole
            # job has no siblings to remove), so whole items skip the map.
            pieces_of.setdefault(it.job, []).append((u, it))
        return it

    # ---- step 1: schedule L on m_i machines per class ------------------- #
    class_machines: dict[int, list[int]] = {i: [] for i in range(instance.c)}

    def wrap_quota(i: int, jobs: list[tuple[JobRef, int]]) -> None:
        """Wrap ``[s_i, jobs]`` onto fresh machines with job quota T−s_i."""
        s = instance.setups[i] * D
        quota_full = Ts - s
        total = sum(t for _, t in jobs) * D
        if total <= 0:
            return
        k = -(-total // quota_full) if quota_full > 0 else None
        if k is None or k <= 0:
            raise ConstructionError(f"class {i}: bad quota at T={time_str(T)}")
        stream: Iterator[tuple[JobRef, int]] = iter(jobs)
        # carry = (job, remaining_sc, full_sc): tracking the full scaled
        # length alongside the remainder keeps the is_piece test int-only.
        carry: Optional[tuple[JobRef, int, int]] = None
        for b in range(int(k)):
            u = take_machine()
            class_machines[i].append(u)
            place(u, _It(i, None, s))
            room = quota_full if b < k - 1 else total - quota_full * (k - 1)
            while room > 0:
                if carry is not None:
                    j, length, full = carry
                    carry = None
                else:
                    nxt = next(stream, None)
                    if nxt is None:
                        break
                    j, t_j = nxt
                    length = full = t_j * D
                put = min(length, room)
                place(u, _It(i, j, put, put < full))
                room -= put
                if put < length:
                    carry = (j, length - put, full)
        if carry is not None or next(stream, None) is not None:
            raise ConstructionError(f"class {i}: quota wrap left residual load")

    for i in range(instance.c):
        if i in part.exp:
            wrap_quota(i, instance.class_jobs_view(i))
        else:
            for j in part.big_jobs.get(i, ()):  # C_i ∩ J⁺, one machine each
                u = take_machine()
                class_machines[i].append(u)
                place(u, _It(i, None, instance.setups[i] * D))
                place(u, _It(i, j, instance.job_time(j) * D))
            k_jobs = [(j, instance.job_time(j)) for j in part.k_jobs.get(i, ())]
            if k_jobs:
                wrap_quota(i, k_jobs)

    if next_machine != part.m_total:
        raise ConstructionError(
            f"step 1 used {next_machine} machines, expected m'={part.m_total}"
        )
    snapshot("step1", machines)

    # ---- step 2: fill C_i \ L onto class-i machines ---------------------- #
    # todo entries are (job, remaining_sc, full_sc) — see wrap_quota's carry.
    residual: dict[int, list[tuple[JobRef, int, int]]] = {}
    for i in part.chp:
        l_set = set(part.l_jobs(i))
        todo: list[tuple[JobRef, int, int]] = [
            (j, t * D, t * D) for j, t in instance.class_jobs_view(i) if j not in l_set
        ]
        if not todo:
            continue
        pos = 0  # pointer into todo; todo[pos] may shrink when split
        for u in class_machines[i]:
            room = Ts - ends[u]
            while room > 0 and pos < len(todo):
                j, length, full = todo[pos]
                put = min(length, room)
                place(u, _It(i, j, put, put < full))
                room -= put
                if put < length:
                    todo[pos] = (j, length - put, full)
                else:
                    pos += 1
            if pos >= len(todo):
                break
        if pos < len(todo):
            residual[i] = todo[pos:]
    snapshot("step2", machines)

    # ---- step 3: stream the residual Q over used, then unused machines --- #
    step3_order: list[tuple[int, _It]] = []
    q_stream: list[_It] = []
    for i in sorted(residual):
        q_stream.append(_It(i, None, instance.setups[i] * D, False, True))
        for j, length, full in residual[i]:
            q_stream.append(_It(i, j, length, length < full, True))
    q_iter = iter(q_stream)
    item = next(q_iter, None)
    fill_machines = [u for u in range(next_machine) if ends[u] < Ts]
    fill_machines += list(range(next_machine, instance.m))
    for u in fill_machines:
        if item is None:
            break
        while item is not None:
            place(u, item)
            step3_order.append((u, item))
            if ends[u] > Ts:
                item.crossed = True
                item = next(q_iter, None)
                break  # crossing item stays; turn to the next machine
            item = next(q_iter, None)
    if item is not None:
        raise ConstructionError("step 3 ran out of machines (R <= (m-m')T violated)")
    snapshot("step3", machines)

    # ---- step 4a: de-preempt --------------------------------------------- #
    # A preempted job's pieces sit at the tops of machines: step-1/2 splits
    # happen exactly when a machine fills (so those pieces end closed, full
    # machines), while the residual piece streams into step 3.  Consolidate
    # at a *closed* (non-step-3) machine when one exists: closed machines
    # never receive step-3 items or step-4b relocations, so de-preemption
    # growth (< t_j ≤ T/2 above T) cannot stack with a relocated chunk
    # there.  Consolidating at the step-3 piece first can stack both on one
    # machine and break the 3T/2 bound (see test_nonpreemptive regression).
    for from3 in (False, True):
        for u in range(instance.m):
            if not machines[u]:
                continue
            last = machines[u][-1]
            if last.is_setup or not last.is_piece or last.from_step3 != from3:
                continue
            job = last.job
            assert job is not None
            # replace the last piece by the whole parent job, drop siblings
            for (v, piece) in pieces_of[job]:
                if piece is last:
                    continue
                piece.removed = True
                machines[v].remove(piece)
            last.length = instance.job_time(job) * D
            last.is_piece = False
            pieces_of[job] = [(u, last)]

    # ---- step 4b: relocate the step-3 crossing items ---------------------- #
    # "Crossing" is judged at step-3 time (the paper's reading): step 4a's
    # shift-downs may have pulled an item back below T, but the machine
    # *transition* it marks still needs its setup carried over.
    for idx, (u, it) in enumerate(step3_order):
        if not it.crossed:
            continue
        # the item placed next that is still alive anchors the insertion
        nxt: Optional[tuple[int, _It]] = None
        for v, cand in step3_order[idx + 1:]:
            if not cand.removed:
                nxt = (v, cand)
                break
        if nxt is None:
            # q ends Q.  If (post step-4a) it no longer exceeds T, it stays.
            # Otherwise it moves to the next machine in fill order — the
            # paper's "passes away its last item to u+" with no anchor item.
            # A target always exists: used fill machines keep load < T slack
            # by the x_i accounting, and crossed machines satisfy
            # k·T < R ≤ (m−m')T, leaving a fresh machine otherwise.
            if it.removed or _machine_end(machines[u]) <= Ts or machines[u][-1] is not it:
                break
            machines[u].remove(it)
            if it.job is None:
                break  # a trailing setup is simply dropped
            pos_u = fill_machines.index(u)
            target = next(
                (v for v in fill_machines[pos_u + 1:] if _machine_end(machines[v]) <= Ts),
                None,
            )
            if target is None:
                target = next((v for v in range(instance.m) if not machines[v]), None)
            if target is None:
                raise ConstructionError("no machine available for the final crossing item")
            machines[target].append(
                _It(cls=it.cls, job=None, length=instance.setups[it.cls] * D)
            )
            machines[target].append(it)
            break
        v, anchor = nxt
        pos = machines[v].index(anchor)
        if it.removed:
            # The crossing item was a job piece whose parent was re-homed by
            # step 4a.  The continuation on machine v still needs a setup if
            # the anchor is a mid-class job; cost ≤ s_i ≤ T/2, same bound as
            # a regular move.
            if anchor.job is not None and _configured_class(machines[v], pos) != anchor.cls:
                machines[v].insert(
                    pos,
                    _It(cls=anchor.cls, job=None, length=instance.setups[anchor.cls] * D),
                )
            continue
        machines[u].remove(it)
        if it.job is not None:
            setup = _It(cls=it.cls, job=None, length=instance.setups[it.cls] * D)
            machines[v].insert(pos, setup)
            machines[v].insert(pos + 1, it)
        else:
            machines[v].insert(pos, it)

    # ---- cleanup: drop trailing setups ------------------------------------ #
    for items in machines:
        while items and items[-1].is_setup:
            items.pop()

    # ---- materialize ------------------------------------------------------ #
    schedule = _materialize(instance, machines, D, trusted=True)
    snapshot("step4", machines)
    return schedule


def _nonp_schedule_reference(
    instance: Instance, T: Time, dual: NonpDual, stages_out: Optional[dict]
) -> Schedule:
    """The pre-kernel Algorithm-6 construction (reference path).

    Kept verbatim from the Fraction-only implementation — per-item exact
    rationals, machine ends recomputed by summation — as the differential
    and benchmark baseline for the scaled-integer path.  The only change
    tracked from the original is the step-4a consolidation order (the
    non-step-3 preference), which is a correctness fix shared by both
    kernels.  Do not optimize this function.
    """

    def frac_end(items: list[_It]) -> Time:
        return sum((it.length for it in items), Fraction(0))

    def snapshot(key: str, machines: list[list[_It]]) -> None:
        if stages_out is not None:
            stages_out[key] = _materialize(instance, machines)

    part = dual.partition
    assert part is not None
    machines: list[list[_It]] = [[] for _ in range(instance.m)]
    pieces_of: dict[JobRef, list[tuple[int, _It]]] = {}
    next_machine = 0

    def take_machine() -> int:
        nonlocal next_machine
        if next_machine >= instance.m:
            raise ConstructionError("Algorithm 6 ran out of machines")
        next_machine += 1
        return next_machine - 1

    def place(u: int, it: _It) -> _It:
        machines[u].append(it)
        if it.job is not None:
            pieces_of.setdefault(it.job, []).append((u, it))
        return it

    # ---- step 1: schedule L on m_i machines per class ------------------- #
    class_machines: dict[int, list[int]] = {i: [] for i in range(instance.c)}

    def wrap_quota(i: int, jobs: list[tuple[JobRef, int]]) -> None:
        """Wrap ``[s_i, jobs]`` onto fresh machines with job quota T−s_i."""
        s = Fraction(instance.setups[i])
        quota_full = T - s
        total = sum(Fraction(t) for _, t in jobs)
        if total <= 0:
            return
        k = -(-total // quota_full) if quota_full > 0 else None
        if k is None or k <= 0:
            raise ConstructionError(f"class {i}: bad quota at T={time_str(T)}")
        stream: Iterator[tuple[JobRef, Fraction]] = iter(
            (j, Fraction(t)) for j, t in jobs
        )
        carry: Optional[tuple[JobRef, Fraction]] = None
        for b in range(int(k)):
            u = take_machine()
            class_machines[i].append(u)
            place(u, _It(cls=i, job=None, length=s))
            room = quota_full if b < k - 1 else total - quota_full * (k - 1)
            while room > 0:
                if carry is not None:
                    j, length = carry
                    carry = None
                else:
                    nxt = next(stream, None)
                    if nxt is None:
                        break
                    j, length = nxt
                put = min(length, room)
                place(u, _It(cls=i, job=j, length=put, is_piece=put < instance.job_time(j)))
                room -= put
                if put < length:
                    carry = (j, length - put)
        if carry is not None or next(stream, None) is not None:
            raise ConstructionError(f"class {i}: quota wrap left residual load")

    for i in range(instance.c):
        if i in part.exp:
            wrap_quota(i, list(instance.class_jobs(i)))
        else:
            for j in part.big_jobs.get(i, ()):  # C_i ∩ J⁺, one machine each
                u = take_machine()
                class_machines[i].append(u)
                place(u, _It(cls=i, job=None, length=Fraction(instance.setups[i])))
                place(u, _It(cls=i, job=j, length=Fraction(instance.job_time(j))))
            k_jobs = [(j, instance.job_time(j)) for j in part.k_jobs.get(i, ())]
            if k_jobs:
                wrap_quota(i, k_jobs)

    if next_machine != part.m_total:
        raise ConstructionError(
            f"step 1 used {next_machine} machines, expected m'={part.m_total}"
        )
    snapshot("step1", machines)

    # ---- step 2: fill C_i \ L onto class-i machines ---------------------- #
    residual: dict[int, list[tuple[JobRef, Fraction]]] = {}
    for i in part.chp:
        l_set = set(part.l_jobs(i))
        todo: list[tuple[JobRef, Fraction]] = [
            (j, Fraction(t)) for j, t in instance.class_jobs(i) if j not in l_set
        ]
        if not todo:
            continue
        pos = 0  # pointer into todo; todo[pos] may shrink when split
        for u in class_machines[i]:
            room = T - frac_end(machines[u])
            while room > 0 and pos < len(todo):
                j, length = todo[pos]
                put = min(length, room)
                place(u, _It(cls=i, job=j, length=put, is_piece=put < instance.job_time(j)))
                room -= put
                if put < length:
                    todo[pos] = (j, length - put)
                else:
                    pos += 1
            if pos >= len(todo):
                break
        if pos < len(todo):
            residual[i] = todo[pos:]
    snapshot("step2", machines)

    # ---- step 3: stream the residual Q over used, then unused machines --- #
    step3_order: list[tuple[int, _It]] = []
    q_stream: list[_It] = []
    for i in sorted(residual):
        q_stream.append(_It(cls=i, job=None, length=Fraction(instance.setups[i]),
                            from_step3=True))
        for j, length in residual[i]:
            q_stream.append(_It(cls=i, job=j, length=length,
                                is_piece=length < instance.job_time(j), from_step3=True))
    q_iter = iter(q_stream)
    item = next(q_iter, None)
    fill_machines = [u for u in range(next_machine) if frac_end(machines[u]) < T]
    fill_machines += list(range(next_machine, instance.m))
    for u in fill_machines:
        if item is None:
            break
        while item is not None:
            place(u, item)
            step3_order.append((u, item))
            if frac_end(machines[u]) > T:
                item.crossed = True
                item = next(q_iter, None)
                break  # crossing item stays; turn to the next machine
            item = next(q_iter, None)
    if item is not None:
        raise ConstructionError("step 3 ran out of machines (R <= (m-m')T violated)")
    snapshot("step3", machines)

    # ---- step 4a: de-preempt (non-step-3 pieces first; see fast path) ----- #
    for from3 in (False, True):
        for u in range(instance.m):
            if not machines[u]:
                continue
            last = machines[u][-1]
            if last.is_setup or not last.is_piece or last.from_step3 != from3:
                continue
            job = last.job
            assert job is not None
            # replace the last piece by the whole parent job, drop siblings
            for (v, piece) in pieces_of[job]:
                if piece is last:
                    continue
                piece.removed = True
                machines[v].remove(piece)
            last.length = Fraction(instance.job_time(job))
            last.is_piece = False
            pieces_of[job] = [(u, last)]

    # ---- step 4b: relocate the step-3 crossing items ---------------------- #
    for idx, (u, it) in enumerate(step3_order):
        if not it.crossed:
            continue
        nxt: Optional[tuple[int, _It]] = None
        for v, cand in step3_order[idx + 1:]:
            if not cand.removed:
                nxt = (v, cand)
                break
        if nxt is None:
            if it.removed or frac_end(machines[u]) <= T or machines[u][-1] is not it:
                break
            machines[u].remove(it)
            if it.job is None:
                break  # a trailing setup is simply dropped
            pos_u = fill_machines.index(u)
            target = next(
                (v for v in fill_machines[pos_u + 1:] if frac_end(machines[v]) <= T),
                None,
            )
            if target is None:
                target = next((v for v in range(instance.m) if not machines[v]), None)
            if target is None:
                raise ConstructionError("no machine available for the final crossing item")
            machines[target].append(
                _It(cls=it.cls, job=None, length=Fraction(instance.setups[it.cls]))
            )
            machines[target].append(it)
            break
        v, anchor = nxt
        pos = machines[v].index(anchor)
        if it.removed:
            if anchor.job is not None and _configured_class(machines[v], pos) != anchor.cls:
                machines[v].insert(
                    pos,
                    _It(cls=anchor.cls, job=None, length=Fraction(instance.setups[anchor.cls])),
                )
            continue
        machines[u].remove(it)
        if it.job is not None:
            setup = _It(cls=it.cls, job=None, length=Fraction(instance.setups[it.cls]))
            machines[v].insert(pos, setup)
            machines[v].insert(pos + 1, it)
        else:
            machines[v].insert(pos, it)

    # ---- cleanup: drop trailing setups ------------------------------------ #
    for items in machines:
        while items and items[-1].is_setup:
            items.pop()

    schedule = _materialize(instance, machines)
    snapshot("step4", machines)
    return schedule


def three_halves_nonpreemptive(
    instance: Instance,
    *,
    kernel: str = "fast",
    ctx=None,
    use_grid: bool = False,
    build_schedule: bool = True,
) -> SearchResult:
    """Theorem 8 — 3/2-approximation in ``O(n log(n+Δ))``.

    ``kernel="fast"`` (default) probes the Theorem-9 test through the
    scaled-integer kernel (:func:`repro.core.fastnum.fast_nonp_test`);
    ``kernel="fraction"`` keeps the exact-rational reference path.  Both
    make identical accept/reject decisions (differential-tested), hence
    return identical schedules.  ``ctx`` injects a shared probe context
    (machine sweeps); ``use_grid=True`` resolves the integer window with
    batched grid calls instead of scalar bisection (identical ``T`` —
    the Theorem-9 accept is monotone); ``build_schedule=False`` returns
    the certified ``T`` without materializing the schedule.
    """
    grid_accept = None
    if validate_kernel(kernel):
        if ctx is None:
            ctx = instance.fast_ctx()
        accept = lambda T: fast_nonp_test(ctx, T.numerator, T.denominator).accepted
        if use_grid:
            from ..core.batchdual import grid_accept_fn

            grid_accept = grid_accept_fn(ctx, "nonp")
    else:
        accept = lambda T: nonp_dual_test(instance, T).accepted
    return integer_search_dual(
        instance,
        Variant.NONPREEMPTIVE,
        accept=accept,
        build=(
            (lambda T: nonp_dual_schedule(instance, T, kernel=kernel))
            if build_schedule
            else None
        ),
        grid_accept=grid_accept,
    )
