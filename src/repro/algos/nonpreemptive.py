"""Non-preemptive scheduling: Algorithm 6, Theorems 8 and 9 (Appendix D).

For a makespan guess ``T`` the dual test computes the per-class machine
numbers

* ``m_i = α_i = ⌈P(C_i)/(T−s_i)⌉`` for expensive classes,
* ``m_i = |C_i∩J⁺| + ⌈P(C_i∩K)/(T−s_i)⌉`` for cheap classes

(where ``J⁺ = {t_j > T/2}`` and ``K`` are the cheap jobs with ``s_i+t_j >
T/2``), the residuals ``x_i = P(C_i) − m_i(T−s_i)`` and

``L_nonp = P(J) + Σ m_i s_i + Σ_{x_i>0} s_i``,  ``m′ = Σ m_i``.

Reject iff ``mT < L_nonp`` or ``m < m′`` (plus Note 2's
``T < max_i(s_i+t^(i)_max)``), certifying ``T < OPT``.  Otherwise the
construction yields a feasible *non-preemptive* schedule ≤ 3T/2:

1. schedule ``L`` (preemptively for now): expensive classes and cheap ``K``
   jobs wrapped onto their ``m_i`` machines (quota ``T−s_i`` above one
   setup per machine), each cheap ``J⁺`` job alone on a machine;
2. fill ``C_i \\ L`` onto class-``i`` machines with load < T (splitting at
   ``T``, pieces remember their parent);
3. stream the residual load ``Q = [s_i, C'_i]_{x_i>0}`` greedily over used
   then unused machines, *keeping* items that cross ``T``;
4. repair: (a) every machine whose last item is a job piece gets the whole
   parent job instead, all sibling pieces are removed (shifting items
   down); (b) every step-3 item still ending above ``T`` moves, with a
   fresh setup if it is a job, directly below the item placed next in
   ``Q``-order; trailing setups are dropped.

Since no layout ever contains idle time below the top item, machines are
bottom-to-top item sequences and times are prefix sums.

The construction is implemented **once**, in :class:`_Algo6Driver`: the
step sequencing, the step-3 streaming order, the step-4a/4b repair logic
and the trailing-setup cleanup are shared between the numeric tiers, which
only provide the item representation:

* :class:`_StoreBuilder` (``kernel="fast"``, the default) runs on the
  index-based :class:`~repro.core.itemstore.ItemStore` — parallel int
  columns ``cls | job | length | flags``, machines as slot lists, every
  duration pre-multiplied by the denominator of ``T``.  Steps 1–3 emit
  whole window slices per machine (:func:`~repro.core.wrapping
  .wrap_quota_store` / :meth:`~repro.core.itemstore.ItemStore
  .emit_window`), step 4a removes pieces by flag (no list churn), and
  materialization is a bulk hand-off into the schedule's column store
  (:meth:`~repro.core.schedule.Schedule.extend_runs`) — no per-item
  Python object exists anywhere on this tier.
* :class:`_ReferenceBuilder` (``kernel="fraction"``) keeps the historical
  per-item :class:`_It` objects with exact rationals, as the differential
  and benchmark baseline.  Both tiers produce identical schedules bit for
  bit (``tests/test_fastnum_differential.py``).

Theorem 8 then wraps this dual in an integer binary search: ``OPT ∈ N``,
so the search returns ``T ≤ OPT`` exactly and the ratio is a true 3/2 in
``O(n log(n+Δ))``.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from fractions import Fraction
from itertools import accumulate
from typing import Iterator, Optional

from ..core.bounds import Variant, setup_plus_tmax
from ..core.classification import NonpPartition, nonp_partition, nonp_partition_fast
from ..core.errors import ConstructionError, RejectedMakespanError
from ..core.fastnum import fast_nonp_test, validate_kernel
from ..core.instance import Instance, JobRef
from ..core.itemstore import CROSSED, FROM_STEP3, PIECE, REMOVED, ItemStore
from ..core.numeric import Time, TimeLike, as_time, time_str
from ..core.schedule import Placement, Schedule
from ..core.wrapping import wrap_quota_store
from .search import SearchResult, integer_search_dual


@dataclass(frozen=True)
class NonpDual:
    """Outcome of the Theorem-9 test for one makespan guess."""

    T: Time
    partition: Optional[NonpPartition]
    load: Time            # L_nonp
    machines_needed: int  # m'
    accepted: bool
    reject_reasons: tuple[str, ...] = ()


def nonp_dual_test(instance: Instance, T: TimeLike) -> NonpDual:
    """Theorem 9(i): accept/reject ``T``; rejection certifies ``T < OPT``."""
    T = as_time(T)
    if T <= 0:
        raise ValueError("T must be positive")
    if T < setup_plus_tmax(instance):
        return NonpDual(
            T=T, partition=None, load=Fraction(instance.total_load),
            machines_needed=instance.m + 1, accepted=False,
            reject_reasons=("T < max(s_i + t_max^i)",),
        )
    part = nonp_partition(instance, T)
    load = Fraction(instance.total_processing)
    load += sum(part.m_i(i) * instance.setups[i] for i in range(instance.c))
    load += sum(instance.setups[i] for i in range(instance.c) if part.x_i(i) > 0)
    m_prime = part.m_total
    reasons = []
    if instance.m * T < load:
        reasons.append("mT < L_nonp")
    if instance.m < m_prime:
        reasons.append("m < m'")
    return NonpDual(
        T=T, partition=part, load=load, machines_needed=m_prime,
        accepted=not reasons, reject_reasons=tuple(reasons),
    )


# --------------------------------------------------------------------------- #
# construction — shared driver
# --------------------------------------------------------------------------- #


@dataclass(eq=False, slots=True)
class _It:
    """One item of the reference tier's bottom-to-top machine lists.

    The fast tier stores the same fields as :class:`ItemStore` columns
    (an item is a slot index there); this object form survives only on
    the ``kernel="fraction"`` reference path, where ``length`` is an
    exact rational.
    """

    cls: int
    job: Optional[JobRef]   # None = setup
    length: object          # Fraction duration (reference tier)
    is_piece: bool = False  # True while this is a partial piece of its job
    from_step3: bool = False
    crossed: bool = False   # pushed its machine past T when placed in step 3
    removed: bool = False

    @property
    def is_setup(self) -> bool:
        return self.job is None


def _frac_end(items: list[_It]) -> Time:
    return sum((it.length for it in items), Fraction(0))


def _configured_class(items: list[_It], upto: int) -> Optional[int]:
    """The class the machine is set up for just before position ``upto``."""
    state: Optional[int] = None
    for it in items[:upto]:
        state = it.cls
    return state


def _materialize_items(instance: Instance, machines: list[list[_It]]) -> Schedule:
    """Build a Schedule from reference-tier item lists (prefix-sum starts)."""
    schedule = Schedule(instance)
    for u, items in enumerate(machines):
        t = Fraction(0)
        for it in items:
            schedule.add(
                Placement(
                    machine=u, start=t, length=it.length, cls=it.cls, job=it.job
                )
            )
            t += it.length
    return schedule


class _Algo6Driver:
    """Algorithm 6's construction, parameterized over the item tier.

    Everything behavioral lives here — written once so the fast and
    reference tiers cannot drift: the step-1 class order, the step-2
    residual bookkeeping, the step-3 fill order, step 4a's
    closed-machines-first consolidation, step 4b's relocation rules and
    the trailing-setup cleanup.  Subclasses provide the representation
    primitives (item handles are opaque: int slots on the fast tier,
    :class:`_It` objects on the reference tier; handle comparison with
    ``==`` must be identity-like — slots are unique ints, ``_It`` has no
    ``__eq__``).

    The step-4a ordering encodes the known-good fix: a preempted job's
    pieces sit at the tops of machines (step-1/2 splits happen exactly
    when a machine fills, the residual piece streams into step 3), and
    consolidation prefers a *closed* (non-step-3) machine when one
    exists — closed machines never receive step-3 items or step-4b
    relocations, so de-preemption growth (< t_j ≤ T/2 above T) cannot
    stack with a relocated chunk there.  Consolidating at the step-3
    piece first can stack both on one machine and break the 3T/2 bound
    (see the regression tests in ``tests/test_nonpreemptive.py``).
    """

    def __init__(
        self,
        instance: Instance,
        T: Time,
        part: NonpPartition,
        stages_out: Optional[dict],
    ) -> None:
        self.instance = instance
        self.T = T
        self.part = part
        self.stages_out = stages_out
        #: job key -> [(machine, item)]: the split pieces of each preempted
        #: job (the reference tier also registers whole items — inert, a
        #: whole job's item is never consolidated).
        self.pieces_of: dict = {}
        self.class_machines: dict[int, list[int]] = {}
        #: Q indices of the items that crossed ``T`` in step 3, ascending.
        self.crossed_positions: list[int] = []
        self.fill_machines: list[int] = []

    # -- orchestration -------------------------------------------------- #

    def run(self) -> Schedule:
        self.step1()
        self.snapshot("step1")
        self.step2()
        self.snapshot("step2")
        self.step3()
        self.snapshot("step3")
        self.step4a()
        self.step4b()
        for u in range(self.instance.m):
            self.drop_trailing_setups(u)
        schedule = self.materialize(final=True)
        self.snapshot("step4")
        return schedule

    def snapshot(self, key: str) -> None:
        if self.stages_out is not None:
            self.stages_out[key] = self.materialize()

    # ---- step 1: schedule L on m_i machines per class ------------------ #

    def step1(self) -> None:
        part = self.part
        for i in range(self.instance.c):
            if i in part.exp:
                self.wrap_quota(i, None)
            else:
                for j in part.big_jobs.get(i, ()):  # C_i ∩ J⁺, one machine each
                    self.place_big(i, j)
                k_jobs = part.k_jobs.get(i, ())
                if k_jobs:
                    self.wrap_quota(i, k_jobs)
        used = self.machines_used()
        if used != part.m_total:
            raise ConstructionError(
                f"step 1 used {used} machines, expected m'={part.m_total}"
            )

    # ---- step 2: fill C_i \ L onto class-i machines -------------------- #

    def step2(self) -> None:
        part = self.part
        big, kj = part.big_jobs, part.k_jobs
        for i in part.chp:
            if i not in big and i not in kj:  # C_i ∩ L = ∅, m_i = 0
                self.fill_class(i, None)      # whole class is residual load
                continue
            l_set = set(part.l_jobs(i))
            todo = [
                jt for jt in self.instance.class_jobs_view(i) if jt[0] not in l_set
            ]
            if todo:
                self.fill_class(i, todo)

    # ---- step 3: stream the residual Q over used, then unused machines - #

    def step3(self) -> None:
        nm = self.machines_used()
        fill = [u for u in range(nm) if self.below_T(u)]
        fill.extend(range(nm, self.instance.m))
        self.fill_machines = fill
        if self.stream_q(fill):
            raise ConstructionError(
                "step 3 ran out of machines (R <= (m-m')T violated)"
            )

    # ---- step 4a: de-preempt (closed machines first, see class doc) ---- #

    def step4a(self) -> None:
        for from3 in (False, True):
            for u in range(self.instance.m):
                it = self.last_item(u)
                if (
                    it is None
                    or self.is_setup(it)
                    or not self.is_piece(it)
                    or self.from_step3(it) != from3
                ):
                    continue
                # replace the last piece by the whole parent job, drop siblings
                key = self.job_key(it)
                for v, piece in self.pieces_of[key]:
                    if piece == it:
                        continue
                    self.remove_piece(v, piece)
                self.make_whole(it)
                self.pieces_of[key] = [(u, it)]

    # ---- step 4b: relocate the step-3 crossing items ------------------- #
    # "Crossing" is judged at step-3 time (the paper's reading): step 4a's
    # shift-downs may have pulled an item back below T, but the machine
    # *transition* it marks still needs its setup carried over.

    def step4b(self) -> None:
        fill = self.fill_machines
        n = self.q_count()
        for idx in self.crossed_positions:
            it = self.q_item(idx)
            u = self.q_machine_at(idx)
            # the item placed next that is still alive anchors the insertion
            nxt: Optional[tuple[int, object]] = None
            for k in range(idx + 1, n):
                cand = self.q_item(k)
                if not self.is_removed(cand):
                    nxt = (self.q_machine_at(k), cand)
                    break
            if nxt is None:
                # q ends Q.  If (post step-4a) it no longer exceeds T, it
                # stays.  Otherwise it moves to the next machine in fill
                # order — the paper's "passes away its last item to u+"
                # with no anchor item.  A target always exists: used fill
                # machines keep load < T slack by the x_i accounting, and
                # crossed machines satisfy k·T < R ≤ (m−m')T, leaving a
                # fresh machine otherwise.
                if (
                    self.is_removed(it)
                    or self.end_within_T(u)
                    or self.last_item(u) != it
                ):
                    break
                self.detach(u, it)
                if self.is_setup(it):
                    break  # a trailing setup is simply dropped
                pos_u = fill.index(u)
                target = next(
                    (v for v in fill[pos_u + 1:] if self.end_within_T(v)), None
                )
                if target is None:
                    target = next(
                        (v for v in range(self.instance.m) if self.machine_empty(v)),
                        None,
                    )
                if target is None:
                    raise ConstructionError(
                        "no machine available for the final crossing item"
                    )
                self.append_setup(target, self.cls_of(it))
                self.append_item(target, it)
                break
            v, anchor = nxt
            pos = self.index_of(v, anchor)
            if self.is_removed(it):
                # The crossing item was a job piece whose parent was
                # re-homed by step 4a.  The continuation on machine v still
                # needs a setup if the anchor is a mid-class job; cost ≤
                # s_i ≤ T/2, same bound as a regular move.
                if (
                    not self.is_setup(anchor)
                    and self.configured_class(v, pos) != self.cls_of(anchor)
                ):
                    self.insert_setup(v, pos, self.cls_of(anchor))
                continue
            self.detach(u, it)
            if not self.is_setup(it):
                self.insert_setup(v, pos, self.cls_of(it))
                self.insert_item(v, pos + 1, it)
            else:
                self.insert_item(v, pos, it)


class _StoreBuilder(_Algo6Driver):
    """The fast tier: Algorithm 6 on the index-based :class:`ItemStore`.

    Every duration is pre-multiplied by the denominator ``D`` of ``T``
    (the :mod:`repro.core.fastnum` convention), so quotas, splits,
    machine ends and repairs are integer-only; items are slot indices
    into the store's parallel columns and no per-item Python object is
    created.  Steps 1–3 emit whole window slices per machine against the
    instance's cached per-class prefix sums; materialization bulk-adopts
    the store's machine runs into the schedule's column store.
    """

    def __init__(self, instance, T, part, stages_out) -> None:
        super().__init__(instance, T, part, stages_out)
        self.D: int = T.denominator      # everything below is scaled by D
        self.Ts: int = T.numerator       # T·D — an int
        self.store = ItemStore(instance.m)
        #: cls -> (idxs, lens, prefix, scaled offset) leftover after step 2.
        self.residual: dict[int, tuple] = {}
        #: Q-order bookkeeping: slots [q_base, q_base+q_n) are the stream,
        #: machine assignment as parallel (start index, machine) lists.
        self.q_base = 0
        self.q_n = 0
        self.q_assign_start: list[int] = []
        self.q_assign_mach: list[int] = []
        if stages_out is not None:
            stages_out["item_store"] = self.store  # diagnostics (flag tests)

    # -- placement ------------------------------------------------------- #

    def machines_used(self) -> int:
        return self.store.next_machine

    def below_T(self, u: int) -> bool:
        return self.store.ends[u] < self.Ts

    def _stream(self, i: int, jobs) -> tuple:
        """``(idxs, lens, prefix)`` of a job stream, unscaled.

        ``jobs=None`` selects the whole class — the cached tuples are used
        directly, so the integer-``T`` hot path never copies a length.
        """
        inst = self.instance
        if jobs is None:
            return (
                range(len(inst.jobs[i])), inst.jobs[i], inst.class_prefix(i)
            )
        times = inst.jobs[i]
        idxs = [j.idx for j in jobs]
        lens = [times[k] for k in idxs]
        return idxs, lens, list(accumulate(lens, initial=0))

    def _register_pieces(self, i: int, idxs, pieces) -> None:
        po = self.pieces_of
        for u, slot, pos in pieces:
            po.setdefault((i, idxs[pos]), []).append((u, slot))

    def wrap_quota(self, i: int, jobs) -> None:
        """Wrap ``[s_i, jobs]`` onto fresh machines with job quota T−s_i."""
        idxs, lens, prefix = self._stream(i, jobs)
        if prefix[-1] <= 0:
            return
        D = self.D
        s_sc = self.instance.setups[i] * D
        quota = self.Ts - s_sc
        if quota <= 0:
            raise ConstructionError(f"class {i}: bad quota at T={time_str(self.T)}")
        machines, pieces = wrap_quota_store(
            self.store, i, s_sc, quota, idxs, lens, prefix, D
        )
        if machines:
            self.class_machines.setdefault(i, []).extend(machines)
        self._register_pieces(i, idxs, pieces)

    def place_big(self, i: int, j: JobRef) -> None:
        store = self.store
        u = store.take_machine()
        self.class_machines.setdefault(i, []).append(u)
        D = self.D
        store.place(u, i, -1, self.instance.setups[i] * D)
        store.place(u, i, j.idx, self.instance.job_time(j) * D)

    def fill_class(self, i: int, todo) -> None:
        if todo is None:
            idxs, lens, prefix = self._stream(i, None)
        else:
            times = self.instance.jobs[i]
            idxs = [j.idx for j, _ in todo]
            lens = [times[k] for k in idxs]
            prefix = list(accumulate(lens, initial=0))
        D = self.D
        Ts = self.Ts
        total_sc = prefix[-1] * D
        store = self.store
        ends = store.ends
        off = 0
        for u in self.class_machines.get(i, ()):
            room = Ts - ends[u]
            if room <= 0:
                continue
            w1 = off + room
            if w1 > total_sc:
                w1 = total_sc
            self._register_pieces(
                i, idxs, [
                    (u, slot, pos)
                    for slot, pos in store.emit_window(
                        u, i, idxs, lens, prefix, D, off, w1
                    )
                ],
            )
            off = w1
            if off >= total_sc:
                break
        if off < total_sc:
            self.residual[i] = (idxs, lens, prefix, off)

    def stream_q(self, fill: list[int]) -> bool:
        store = self.store
        D, Ts = self.D, self.Ts
        setups = self.instance.setups
        # Q items land straight in the store as one contiguous slot block
        # (machine assignment is then pure span bookkeeping over the
        # prefix sums — one appended span per machine); only the scaled
        # lengths keep a side list for the accumulate below.
        base = len(store.cls)
        qc, qj, qf = store.cls, store.job, store.flags
        ql: list[int] = []
        piece_pos: list[tuple[int, int, int]] = []  # (q index, cls, job idx)
        misc = self.instance._misc_cache
        jobs_t = self.instance.jobs
        for i in sorted(self.residual):
            idxs, lens, prefix, off = self.residual[i]
            if off == 0 and lens is jobs_t[i]:
                # Whole untouched class (m_i = 0, skipped by step 2 — the
                # identity test rules out filtered todo streams): its
                # [setup, C_i] block is T-independent, cached per instance
                # and spliced with four C-level extends per sweep point.
                blk = misc.get(("q3", i))
                if blk is None:
                    k1 = len(lens) + 1
                    blk = ([i] * k1, [-1] + list(idxs), [FROM_STEP3] * k1)
                    misc[("q3", i)] = blk
                qc.extend(blk[0])
                qj.extend(blk[1])
                qf.extend(blk[2])
                ql.append(setups[i] * D)
                if D == 1:
                    ql.extend(lens)
                else:
                    ql.extend([t * D for t in lens])
                continue
            qc.append(i)
            qj.append(-1)
            ql.append(setups[i] * D)
            qf.append(FROM_STEP3)
            j0 = bisect_right(prefix, off // D) - 1
            first_sc = prefix[j0 + 1] * D - off
            if first_sc < lens[j0] * D:
                piece_pos.append((len(ql), i, idxs[j0]))
                qf.append(FROM_STEP3 | PIECE)
            else:
                qf.append(FROM_STEP3)
            qc.append(i)
            qj.append(idxs[j0])
            ql.append(first_sc)
            rest = len(lens) - (j0 + 1)
            if rest:
                qc.extend([i] * rest)
                qj.extend(idxs[j0 + 1:])
                if D == 1:
                    ql.extend(lens[j0 + 1:])
                else:
                    ql.extend([t * D for t in lens[j0 + 1:]])
                qf.extend([FROM_STEP3] * rest)
        nq = len(ql)
        if nq == 0:
            return False
        self.q_base = base
        self.q_n = nq
        store.length.extend(ql)
        PQ = list(accumulate(ql, initial=0))
        ends = store.ends
        pos = 0
        pp = 0
        for u in fill:
            if pos >= nq:
                break
            room = Ts - ends[u]
            # items pos..e-1 fit (end stays ≤ T); the next item, if any,
            # is placed too and crosses (strict >, zero-length setups can
            # never cross) — then the stream turns to the next machine.
            e = bisect_right(PQ, PQ[pos] + room) - 1
            hi = e + 1 if e < nq else nq
            store._append_span(u, base + pos, base + hi)
            ends[u] += PQ[hi] - PQ[pos]
            self.q_assign_start.append(pos)
            self.q_assign_mach.append(u)
            while pp < len(piece_pos) and piece_pos[pp][0] < hi:
                qidx, ci, ji = piece_pos[pp]
                self.pieces_of.setdefault((ci, ji), []).append((u, base + qidx))
                pp += 1
            if e < nq:
                store.flags[base + e] |= CROSSED
                self.crossed_positions.append(e)
            pos = hi
        return pos < nq

    def q_count(self) -> int:
        return self.q_n

    def q_item(self, k: int) -> int:
        return self.q_base + k

    def q_machine_at(self, k: int) -> int:
        return self.q_assign_mach[bisect_right(self.q_assign_start, k) - 1]

    # -- repair primitives ------------------------------------------------ #

    def last_item(self, u: int):
        s = self.store.alive_last(u)
        return None if s < 0 else s

    def is_setup(self, it) -> bool:
        return self.store.job[it] < 0

    def is_piece(self, it) -> bool:
        return bool(self.store.flags[it] & PIECE)

    def from_step3(self, it) -> bool:
        return bool(self.store.flags[it] & FROM_STEP3)

    def is_crossed(self, it) -> bool:
        return bool(self.store.flags[it] & CROSSED)

    def is_removed(self, it) -> bool:
        return bool(self.store.flags[it] & REMOVED)

    def cls_of(self, it) -> int:
        return self.store.cls[it]

    def job_key(self, it):
        return (self.store.cls[it], self.store.job[it])

    def remove_piece(self, v: int, piece) -> None:
        self.store.mark_removed(piece)

    def make_whole(self, it) -> None:
        store = self.store
        store.length[it] = self.instance.jobs[store.cls[it]][store.job[it]] * self.D
        store.flags[it] &= ~PIECE

    def end_within_T(self, u: int) -> bool:
        return self.store.alive_end(u) <= self.Ts

    def machine_empty(self, u: int) -> bool:
        return self.store.alive_empty(u)

    def detach(self, u: int, it) -> None:
        self.store.detach(u, it)

    def index_of(self, v: int, anchor) -> int:
        return self.store.index(v, anchor)

    def configured_class(self, v: int, pos: int) -> Optional[int]:
        return self.store.configured_class(v, pos)

    def insert_setup(self, v: int, pos: int, cls: int) -> None:
        slot = self.store.new_item(cls, -1, self.instance.setups[cls] * self.D)
        self.store.insert(v, pos, slot)

    def insert_item(self, v: int, pos: int, it) -> None:
        self.store.insert(v, pos, it)

    def append_setup(self, u: int, cls: int) -> None:
        store = self.store
        store.push(u, store.new_item(cls, -1, self.instance.setups[cls] * self.D))

    def append_item(self, u: int, it) -> None:
        self.store.push(u, it)

    def drop_trailing_setups(self, u: int) -> None:
        self.store.drop_trailing_setups(u)

    def materialize(self, final: bool = False) -> Schedule:
        schedule = Schedule(self.instance)
        if final:
            # The construction is done and the store is never mutated
            # again: hand it over whole — columns materialize only if a
            # caller actually reads the schedule.
            schedule.adopt_runs(self.store, self.D)
        else:
            # Stage snapshots copy the store's current state eagerly.
            schedule.extend_runs(self.store.runs(), self.D)
        return schedule


class _ReferenceBuilder(_Algo6Driver):
    """The reference tier: per-item :class:`_It` objects, exact rationals.

    Kept semantically verbatim from the pre-kernel implementation — the
    differential and benchmark baseline for the store tier.  Per-item
    Fractions, machine ends recomputed by summation, physical list
    removal.  Do not optimize; the shared :class:`_Algo6Driver` already
    guarantees the *logic* cannot drift, this class pins the historical
    *representation*.
    """

    def __init__(self, instance, T, part, stages_out) -> None:
        super().__init__(instance, T, part, stages_out)
        self.machines: list[list[_It]] = [[] for _ in range(instance.m)]
        self.next_machine = 0
        self.residual: dict[int, list[tuple[JobRef, Fraction]]] = {}
        self.step3_order: list[tuple[int, _It]] = []

    # -- placement ------------------------------------------------------- #

    def machines_used(self) -> int:
        return self.next_machine

    def below_T(self, u: int) -> bool:
        return _frac_end(self.machines[u]) < self.T

    def take_machine(self) -> int:
        if self.next_machine >= self.instance.m:
            raise ConstructionError("Algorithm 6 ran out of machines")
        self.next_machine += 1
        return self.next_machine - 1

    def _place(self, u: int, it: _It) -> _It:
        self.machines[u].append(it)
        if it.job is not None:
            self.pieces_of.setdefault(it.job, []).append((u, it))
        return it

    def wrap_quota(self, i: int, jobs) -> None:
        """Wrap ``[s_i, jobs]`` onto fresh machines with job quota T−s_i."""
        instance = self.instance
        T = self.T
        if jobs is None:
            pairs = instance.class_jobs(i)
        else:
            pairs = [(j, instance.job_time(j)) for j in jobs]
        s = Fraction(instance.setups[i])
        quota_full = T - s
        total = sum(Fraction(t) for _, t in pairs)
        if total <= 0:
            return
        k = -(-total // quota_full) if quota_full > 0 else None
        if k is None or k <= 0:
            raise ConstructionError(f"class {i}: bad quota at T={time_str(T)}")
        stream: Iterator[tuple[JobRef, Fraction]] = iter(
            (j, Fraction(t)) for j, t in pairs
        )
        carry: Optional[tuple[JobRef, Fraction]] = None
        for b in range(int(k)):
            u = self.take_machine()
            self.class_machines.setdefault(i, []).append(u)
            self._place(u, _It(cls=i, job=None, length=s))
            room = quota_full if b < k - 1 else total - quota_full * (k - 1)
            while room > 0:
                if carry is not None:
                    j, length = carry
                    carry = None
                else:
                    nxt = next(stream, None)
                    if nxt is None:
                        break
                    j, length = nxt
                put = min(length, room)
                self._place(
                    u,
                    _It(cls=i, job=j, length=put,
                        is_piece=put < instance.job_time(j)),
                )
                room -= put
                if put < length:
                    carry = (j, length - put)
        if carry is not None or next(stream, None) is not None:
            raise ConstructionError(f"class {i}: quota wrap left residual load")

    def place_big(self, i: int, j: JobRef) -> None:
        instance = self.instance
        u = self.take_machine()
        self.class_machines.setdefault(i, []).append(u)
        self._place(u, _It(cls=i, job=None, length=Fraction(instance.setups[i])))
        self._place(u, _It(cls=i, job=j, length=Fraction(instance.job_time(j))))

    def fill_class(self, i: int, todo) -> None:
        instance = self.instance
        T = self.T
        if todo is None:
            todo = instance.class_jobs_view(i)
        work: list[tuple[JobRef, Fraction]] = [(j, Fraction(t)) for j, t in todo]
        pos = 0  # pointer into work; work[pos] may shrink when split
        for u in self.class_machines.get(i, ()):
            room = T - _frac_end(self.machines[u])
            while room > 0 and pos < len(work):
                j, length = work[pos]
                put = min(length, room)
                self._place(
                    u,
                    _It(cls=i, job=j, length=put,
                        is_piece=put < instance.job_time(j)),
                )
                room -= put
                if put < length:
                    work[pos] = (j, length - put)
                else:
                    pos += 1
            if pos >= len(work):
                break
        if pos < len(work):
            self.residual[i] = work[pos:]

    def stream_q(self, fill: list[int]) -> bool:
        instance = self.instance
        T = self.T
        q_stream: list[_It] = []
        for i in sorted(self.residual):
            q_stream.append(
                _It(cls=i, job=None, length=Fraction(instance.setups[i]),
                    from_step3=True)
            )
            for j, length in self.residual[i]:
                q_stream.append(
                    _It(cls=i, job=j, length=length,
                        is_piece=length < instance.job_time(j), from_step3=True)
                )
        q_iter = iter(q_stream)
        item = next(q_iter, None)
        for u in fill:
            if item is None:
                break
            while item is not None:
                self._place(u, item)
                self.step3_order.append((u, item))
                if _frac_end(self.machines[u]) > T:
                    item.crossed = True
                    self.crossed_positions.append(len(self.step3_order) - 1)
                    item = next(q_iter, None)
                    break  # crossing item stays; turn to the next machine
                item = next(q_iter, None)
        return item is not None

    def q_count(self) -> int:
        return len(self.step3_order)

    def q_item(self, k: int) -> _It:
        return self.step3_order[k][1]

    def q_machine_at(self, k: int) -> int:
        return self.step3_order[k][0]

    # -- repair primitives ------------------------------------------------ #

    def last_item(self, u: int):
        items = self.machines[u]
        return items[-1] if items else None

    def is_setup(self, it: _It) -> bool:
        return it.job is None

    def is_piece(self, it: _It) -> bool:
        return it.is_piece

    def from_step3(self, it: _It) -> bool:
        return it.from_step3

    def is_crossed(self, it: _It) -> bool:
        return it.crossed

    def is_removed(self, it: _It) -> bool:
        return it.removed

    def cls_of(self, it: _It) -> int:
        return it.cls

    def job_key(self, it: _It):
        return it.job

    def remove_piece(self, v: int, piece: _It) -> None:
        piece.removed = True
        self.machines[v].remove(piece)

    def make_whole(self, it: _It) -> None:
        it.length = Fraction(self.instance.job_time(it.job))
        it.is_piece = False

    def end_within_T(self, u: int) -> bool:
        return _frac_end(self.machines[u]) <= self.T

    def machine_empty(self, u: int) -> bool:
        return not self.machines[u]

    def detach(self, u: int, it: _It) -> None:
        self.machines[u].remove(it)

    def index_of(self, v: int, anchor: _It) -> int:
        return self.machines[v].index(anchor)

    def configured_class(self, v: int, pos: int) -> Optional[int]:
        return _configured_class(self.machines[v], pos)

    def insert_setup(self, v: int, pos: int, cls: int) -> None:
        self.machines[v].insert(
            pos, _It(cls=cls, job=None, length=Fraction(self.instance.setups[cls]))
        )

    def insert_item(self, v: int, pos: int, it: _It) -> None:
        self.machines[v].insert(pos, it)

    def append_setup(self, u: int, cls: int) -> None:
        self.machines[u].append(
            _It(cls=cls, job=None, length=Fraction(self.instance.setups[cls]))
        )

    def append_item(self, u: int, it: _It) -> None:
        self.machines[u].append(it)

    def drop_trailing_setups(self, u: int) -> None:
        items = self.machines[u]
        while items and items[-1].is_setup:
            items.pop()

    def materialize(self, final: bool = False) -> Schedule:
        return _materialize_items(self.instance, self.machines)


def nonp_dual_schedule(
    instance: Instance,
    T: TimeLike,
    stages_out: Optional[dict] = None,
    *,
    kernel: str = "fast",
    pretested: bool = False,
) -> Schedule:
    """Theorem 9(ii): a feasible non-preemptive schedule ≤ 3T/2.

    ``stages_out`` (a dict) receives Figure-10..13 snapshots: Schedules
    materialized after steps 1, 2, 3 and the final repaired schedule
    (plus, on the fast tier, the live ``"item_store"`` for diagnostics).

    With ``kernel="fast"`` the construction runs object-free on the
    index-based :class:`~repro.core.itemstore.ItemStore` (every duration
    pre-multiplied by the denominator of ``T``, steps emitted as bulk
    window slices); ``kernel="fraction"`` keeps the historical per-item
    rational arithmetic.  Both tiers share one driver (step logic cannot
    drift) and produce identical schedules bit for bit.

    ``pretested=True`` skips the Theorem-9 re-test: for callers that just
    accepted ``T`` through the same kernel (the searches' build hooks).
    The partition and construction are unchanged; passing an unaccepted
    ``T`` voids the 3T/2 guarantee instead of raising.
    """
    T = as_time(T)
    if not validate_kernel(kernel):
        if pretested:
            part = nonp_partition(instance, T)
        else:
            dual = nonp_dual_test(instance, T)
            if not dual.accepted:
                raise RejectedMakespanError(
                    f"T={time_str(T)} rejected by Theorem 9: "
                    f"{', '.join(dual.reject_reasons)}"
                )
            part = dual.partition
            assert part is not None
        return _ReferenceBuilder(instance, T, part, stages_out).run()
    # Kernel-complete acceptance + partition: verdict through the scaled-int
    # test, the full Appendix-D partition through its integer twin (the
    # Fraction nonp_dual_test stays untouched as the reference path).
    if not pretested:
        ctx = instance.fast_ctx()
        verdict = fast_nonp_test(ctx, T.numerator, T.denominator)
        if not verdict.accepted:
            if T.numerator < ctx.spt * T.denominator:
                reasons = ["T < max(s_i + t_max^i)"]
            else:
                reasons = []
                if instance.m * T.numerator < verdict.load * T.denominator:
                    reasons.append("mT < L_nonp")
                if instance.m < verdict.machines_needed:
                    reasons.append("m < m'")
            raise RejectedMakespanError(
                f"T={time_str(T)} rejected by Theorem 9: {', '.join(reasons)}"
            )
    part = nonp_partition_fast(instance, T)
    return _StoreBuilder(instance, T, part, stages_out).run()


def three_halves_nonpreemptive(
    instance: Instance,
    *,
    kernel: str = "fast",
    ctx=None,
    use_grid: bool = False,
    build_schedule: bool = True,
) -> SearchResult:
    """Theorem 8 — 3/2-approximation in ``O(n log(n+Δ))``.

    ``kernel="fast"`` (default) probes the Theorem-9 test through the
    scaled-integer kernel (:func:`repro.core.fastnum.fast_nonp_test`);
    ``kernel="fraction"`` keeps the exact-rational reference path.  Both
    make identical accept/reject decisions (differential-tested), hence
    return identical schedules.  ``ctx`` injects a shared probe context
    (machine sweeps); ``use_grid=True`` resolves the integer window with
    batched grid calls instead of scalar bisection (identical ``T`` —
    the Theorem-9 accept is monotone); ``build_schedule=False`` returns
    the certified ``T`` without materializing the schedule.
    """
    grid_accept = None
    if validate_kernel(kernel):
        if ctx is None:
            ctx = instance.fast_ctx()
        accept = lambda T: fast_nonp_test(ctx, T.numerator, T.denominator).accepted
        if use_grid:
            from ..core.batchdual import grid_accept_fn

            grid_accept = grid_accept_fn(ctx, "nonp")
    else:
        accept = lambda T: nonp_dual_test(instance, T).accepted
    return integer_search_dual(
        instance,
        Variant.NONPREEMPTIVE,
        accept=accept,
        build=(
            (lambda T: nonp_dual_schedule(instance, T, kernel=kernel, pretested=True))
            if build_schedule
            else None
        ),
        grid_accept=grid_accept,
    )
