"""The O(n) 2-approximations of Theorem 1 (Appendix A.2).

* :func:`two_approx_splittable` — Lemma 8: wrap the single sequence of all
  classes into identical gaps ``[s_max, s_max + N/m)`` on every machine.
  Makespan ≤ ``s_max + N/m ≤ 2·max{N/m, s_max} ≤ 2·OPT_split``.

* :func:`two_approx_grouped` — Lemma 9 (non-preemptive *and* preemptive):
  next-fit by classes with threshold ``T_min``, then move every
  ``T_min``-crossing item to the start of the next machine (jobs get a fresh
  setup), finally drop setups that end a machine.  Makespan ≤ ``2·T_min ≤
  2·OPT``.  The result is non-preemptive, hence feasible for the preemptive
  problem as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..core.bounds import Variant, t_min
from ..core.instance import Instance, JobRef
from ..core.numeric import Time, frac_ceil
from ..core.schedule import Placement, Schedule
from ..core.wrapping import Batch, WrapSequence, template_for_machines, wrap


@dataclass(frozen=True)
class TwoApproxResult:
    """Schedule plus the certificate ``T_min ≤ OPT`` it was built against."""

    schedule: Schedule
    t_min: Time
    #: proven upper bound on the produced makespan (2·T_min).
    makespan_bound: Time


def two_approx_splittable(instance: Instance) -> TwoApproxResult:
    """Lemma 8 — O(n) 2-approximation for ``P|split,setup=s_i|Cmax``."""
    tmin = t_min(instance, Variant.SPLITTABLE)
    height = Fraction(instance.total_load, instance.m)  # N/m
    smax = instance.smax
    template = template_for_machines(
        list(range(instance.m)), smax, Fraction(smax) + height
    )
    schedule = Schedule(instance)
    sequence = WrapSequence.of(
        [Batch.of(i, instance.class_jobs(i)) for i in range(instance.c)]
    )
    wrap(schedule, sequence, template)
    return TwoApproxResult(schedule, tmin, makespan_bound=2 * tmin)


# --------------------------------------------------------------------------- #
# Lemma 9: next-fit with threshold + repair
# --------------------------------------------------------------------------- #


@dataclass
class _Item:
    """One next-fit stream item (setup or whole job)."""

    cls: int
    job: Optional[JobRef]  # None for setups
    length: int


def _next_fit_stream(instance: Instance) -> list[_Item]:
    """The stream ``s_1, j^1_1..j^1_{n_1}, s_2, ...`` of Lemma 9."""
    items: list[_Item] = []
    for i in range(instance.c):
        items.append(_Item(cls=i, job=None, length=instance.setups[i]))
        for job, t in instance.class_jobs(i):
            items.append(_Item(cls=i, job=job, length=t))
    return items


def _materialize_items(instance: Instance, machines: list[list["_Item"]]) -> Schedule:
    """Build a Schedule from next-fit item lists (no idle time)."""
    schedule = Schedule(instance)
    for u, items in enumerate(machines):
        t = Fraction(0)
        for item in items:
            if item.job is None:
                schedule.add(
                    Placement(machine=u, start=t, length=Fraction(item.length), cls=item.cls)
                )
            else:
                schedule.add_piece(u, t, item.job, Fraction(item.length))
            t += item.length
    return schedule


def two_approx_grouped(
    instance: Instance, stages_out: Optional[dict] = None
) -> TwoApproxResult:
    """Lemma 9 — O(n) 2-approximation for the (non-)preemptive problems.

    Works for both variants because the output never preempts a job.
    ``stages_out`` (a dict) receives the Figure-7 snapshots: the raw
    next-fit layout (``"phase1"``) and the repaired one (``"final"``).
    """
    tmin = t_min(instance, Variant.NONPREEMPTIVE)

    # Phase 1: next-fit with threshold tmin. Machines are materialized only
    # as item lists; machine u is "closed" once its load exceeds tmin (the
    # crossing item stays, per the paper).
    machines: list[list[_Item]] = [[]]
    load: Fraction = Fraction(0)
    for item in _next_fit_stream(instance):
        machines[-1].append(item)
        load += item.length
        if load > tmin:
            machines.append([])
            load = Fraction(0)
    # A trailing empty machine is kept on purpose: if the stream ended on a
    # crossing item, phase 2 moves that item onto it (Figure 7, machine 5).
    if not machines[-1] and len(machines) == 1:
        machines.pop()
    if len(machines) > instance.m:
        raise AssertionError(
            "next-fit used more than m machines; contradicts N <= m*T_min"
        )
    if stages_out is not None:
        stages_out["phase1"] = _materialize_items(
            instance, [list(items) for items in machines if items]
        )

    # Phase 2: move each T_min-crossing item (the last item of every machine
    # but the final one) to the start of the next machine; a moved job gets a
    # fresh setup right before it.
    for u in range(len(machines) - 1):
        mover = machines[u].pop()
        if mover.job is None:
            machines[u + 1].insert(0, mover)
        else:
            machines[u + 1].insert(0, mover)
            machines[u + 1].insert(
                0, _Item(cls=mover.cls, job=None, length=instance.setups[mover.cls])
            )

    # Phase 3: drop setups that are last on a machine (they serve nothing),
    # then drop machines that ended up empty.
    for items in machines:
        while items and items[-1].job is None:
            items.pop()
    machines = [items for items in machines if items]

    schedule = _materialize_items(instance, machines)
    if stages_out is not None:
        stages_out["final"] = schedule
    return TwoApproxResult(schedule, tmin, makespan_bound=2 * tmin)


def two_approx(instance: Instance, variant: Variant) -> TwoApproxResult:
    """Dispatch: the O(n) 2-approximation for any variant (Theorem 1)."""
    if variant is Variant.SPLITTABLE:
        return two_approx_splittable(instance)
    return two_approx_grouped(instance)
