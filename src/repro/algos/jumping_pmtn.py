"""Class Jumping for preemptive scheduling (Algorithm 4, Theorem 6).

The goal is the exact acceptance flip ``T* = min{T : Theorem-5 test (γ
mode) accepts}``; the built schedule then has makespan ≤ (3/2)T* ≤
(3/2)·OPT.  Structure (cf. DESIGN.md, deviation #3):

1. **Base flip** ``T̃``: Class Jumping on the *monotone core* of the test —
   ``L_base(T) = P(J) + Σ_{I⁺exp} γ_i(T)s_i + Σ_{[c]∖I⁺exp} s_i`` and
   ``m′(T)``.  The γ machine count has the closed form
   ``γ_i(T) = max(1, ⌈2(s_i+P_i)/T⌉ − 2)`` (the §4.4 jump equation
   rearranged), so its jumps are ``2(s_i+P_i)/j`` and Lemma 5 bounds the
   jumps between consecutive jumps of the fastest class ``f`` (max
   ``s_f+P_f``) by one per class — exactly Algorithm 1 with ``s_i+P_i`` in
   place of ``P_i``.  ``L_base ≤ L_pmtn`` and both core functions are
   non-increasing, so *every* ``T < T̃`` is certifiably rejected.

2. **Piece scan** from ``T̃`` upward: between consecutive change points
   (membership boundaries ``2s_i, 4s_i, s_i+P_i, 4(s_i+P_i)/3``, star-job
   boundaries ``2(s_i+t_j)`` and γ-jumps) all sets are constant except the
   knapsack's unselected set, whose changes are located exactly by solving
   the density crossings ``s_i w_j(T) = s_j w_i(T)`` and the prefix-weight/
   capacity crossings ``S_k(T) = Y(T)`` — all *linear* equations in ``T``
   because weights and capacity are affine on a piece.  Each resulting
   stable subinterval has constant ``L_pmtn``, so the flip inside it is
   ``max(lo, L_pmtn/m)``.  The scan is exhaustive, hence the certificate
   "everything below the returned point is rejected" needs no monotonicity
   of the knapsack term (which genuinely is not monotone in corner cases).

The flip may be an *infimum that is not attained* (an open membership
boundary whose left endpoint is rejected while everything above accepts).
Then ``T_star`` is the infimum and ``T_witness`` an accepted point within
a relative ``2^{-40}`` of it; the schedule is built at the witness, so the
proven ratio is ``(3/2)(1+2^{-40})`` in that measure-zero corner and
exactly 3/2 otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Optional

from ..core import batchdual
from ..core.bounds import Variant, t_min
from ..core.cancel import check_cancelled
from ..core.fastnum import (
    DualContext,
    PmtnVerdict,
    fast_base_core,
    fast_pmtn_test,
    validate_kernel,
)
from ..core.instance import Instance
from ..core.numeric import Time, frac_ceil, frac_floor
from ..core.schedule import Schedule
from .pmtn_general import pmtn_dual_schedule, pmtn_dual_test
from .search import ProbeRequest, drive_plan, plan_accept, right_interval_plan

#: relative witness offset for non-attained infima
_WITNESS_EPS = Fraction(1, 2**40)


@dataclass(frozen=True)
class PmtnJumpResult:
    T_star: Time            # infimum of accepted makespans
    T_witness: Time         # accepted point the schedule is built at
    schedule: Schedule
    accept_calls: int

    @property
    def ratio_bound(self) -> Fraction:
        return Fraction(3, 2) * self.T_witness / self.T_star if self.T_star else Fraction(3, 2)


def gamma_closed(instance: Instance, T: Time, cls: int) -> int:
    """``γ_i(T) = max(1, ⌈2(s_i+P_i)/T⌉ − 2)`` (§4.4 jump equation)."""
    sp = 2 * (instance.setups[cls] + instance.processing(cls))
    return max(1, frac_ceil(Fraction(sp) / T) - 2)


def _base_core(instance: Instance, T: Time) -> tuple[Time, int]:
    """``(L_base(T), m′(T))`` — the monotone core of the Theorem-5 test."""
    half = T / 2
    load = Fraction(instance.total_processing)
    l = 0
    gsum = 0
    minus = 0
    for i in range(instance.c):
        s = instance.setups[i]
        if s > half:
            total = s + instance.processing(i)
            if total >= T:
                g = gamma_closed(instance, T, i)
                load += g * s
                gsum += g
                continue
            if total > 3 * T / 4:
                l += 1
            else:
                minus += 1
        load += s
    m_prime = l + gsum + (-(-minus // 2))
    return load, m_prime


def _base_accept(instance: Instance, T: Time) -> bool:
    load, m_prime = _base_core(instance, T)
    return instance.m * T >= load and instance.m >= m_prime


def base_flip_plan(instance: Instance, tmin: Time, thi: Time, *, grid: bool = False):
    """Class Jumping on the monotone core (Algorithm 4 steps 2-7) as a plan.

    Returns ``T̃ = min{T ≥ tmin : base-accept}``; everything below is
    rejected by the full test too (``L_base ≤ L_pmtn``, ``m′`` shared).
    Probes are memoized, so endpoints shared across the bisection phases
    hit the kernel once; ``grid=True`` resolves each bisection with
    batched candidate blocks (identical flip — the base core is
    monotone).  Base probes were never counted in ``accept_calls``, so
    the plan keeps its own discarded counter.
    """
    memo: dict[tuple[int, int], bool] = {}
    uncounted = [0]

    if (yield from plan_accept(memo, uncounted, "pmtn_base", "", tmin)):
        return tmin

    # membership candidates that move classes across I+exp / I0exp / I-exp /
    # cheap (these change m' discontinuously and bound gamma's domain)
    pts: set[Time] = set()
    for i in range(instance.c):
        s, P = instance.setups[i], instance.processing(i)
        for b in (Fraction(2 * s), Fraction(s + P), Fraction(4 * (s + P), 3)):
            if tmin < b < thi:
                pts.add(b)
    candidates = [tmin] + sorted(pts) + [thi]
    A1, T1 = yield from right_interval_plan(
        candidates, memo, uncounted, "pmtn_base", "", grid
    )

    # fastest jumping class f among I+exp on the open interior
    mid = (A1 + T1) / 2
    half = mid / 2
    exp_plus = [
        i
        for i in range(instance.c)
        if instance.setups[i] > half
        and instance.setups[i] + instance.processing(i) >= mid
    ]
    if not exp_plus:
        return (yield from _flip_constant_core(instance, A1, T1))

    f = max(exp_plus, key=lambda i: instance.setups[i] + instance.processing(i))
    SPf = Fraction(2 * (instance.setups[f] + instance.processing(f)))
    k_lo = max(1, frac_ceil(SPf / T1))
    if SPf / k_lo >= T1:
        k_lo += 1
    k_hi = frac_floor(SPf / A1)
    if k_hi >= k_lo and SPf / k_hi <= A1:
        k_hi -= 1
    lo_b, hi_b = A1, T1
    if k_hi >= k_lo:
        jump_candidates = [A1] + [SPf / k for k in range(k_hi, k_lo - 1, -1)] + [T1]
        lo_b, hi_b = yield from right_interval_plan(
            jump_candidates, memo, uncounted, "pmtn_base", "", grid
        )

    inner: set[Time] = set()
    for i in exp_plus:
        SPi = Fraction(2 * (instance.setups[i] + instance.processing(i)))
        k_min = max(1, frac_ceil(SPi / hi_b))
        if SPi / k_min >= hi_b:
            k_min += 1
        k_max = frac_floor(SPi / lo_b)
        if k_max >= k_min and SPi / k_max <= lo_b:
            k_max -= 1
        for k in range(k_min, k_max + 1):
            inner.add(SPi / k)
    assert len(inner) <= len(exp_plus), "Lemma 5 violated"
    if inner:
        lo_b, hi_b = yield from right_interval_plan(
            [lo_b] + sorted(inner) + [hi_b], memo, uncounted, "pmtn_base", "", grid
        )
    return (yield from _flip_constant_core(instance, lo_b, hi_b))


def _flip_constant_core(instance: Instance, T_fail: Time, T_ok: Time):
    """Step 9 analogue for the monotone core on a jump-free right interval.

    The ``(L_base, m′)`` pair at ``T_fail`` comes back through a
    "verdict" probe — unmemoized and uncounted, like the former raw
    ``base_core()`` call.
    """
    load, m_prime = (yield ProbeRequest("verdict", "pmtn_base", "", (T_fail,)))[0]
    if instance.m < m_prime:
        return T_ok
    T_new = Fraction(load, instance.m)
    if T_new >= T_ok:
        return T_ok
    assert T_fail < T_new
    return T_new


# --------------------------------------------------------------------------- #
# exhaustive piece scan (knapsack-aware)
# --------------------------------------------------------------------------- #


def _change_points(instance: Instance, lo: Time, hi: Time) -> list[Time]:
    """All points in ``(lo, hi)`` where the Theorem-5 data may change."""
    pts: set[Time] = set()
    for i in range(instance.c):
        s, P = instance.setups[i], instance.processing(i)
        for b in (Fraction(2 * s), Fraction(4 * s), Fraction(s + P), Fraction(4 * (s + P), 3)):
            if lo < b < hi:
                pts.add(b)
        # gamma jumps 2(s+P)/j
        SP = Fraction(2 * (s + P))
        j0 = max(1, frac_ceil(SP / hi))
        j1 = frac_floor(SP / lo)
        for j in range(j0, j1 + 1):
            b = SP / j
            if lo < b < hi:
                pts.add(b)
        # star-job boundaries 2(s_i + t_j)
        for t in instance.jobs[i]:
            b = Fraction(2 * (s + t))
            if lo < b < hi:
                pts.add(b)
    return sorted(pts)


def _knapsack_stable_points(instance: Instance, lo: Time, hi: Time) -> list[Time]:
    """Points in ``(lo, hi)`` where the knapsack's unselected set can change.

    Preconditions: no membership/γ change point inside ``(lo, hi)``; then
    item weights ``w_i(T)`` and the capacity ``Y(T)`` are affine, so both
    density-order changes and prefix/capacity crossings are roots of linear
    equations.
    """
    mid = (lo + hi) / 2
    d = pmtn_dual_test(instance, mid, mode="gamma")
    if d.partition.is_nice:
        return []
    part = d.partition
    m, l = instance.m, d.l

    # affine data: value(T) = slope*T + icept
    def affine_weight(i: int) -> tuple[Fraction, Fraction]:
        stars = part.big_jobs(i)
        p_star = sum(instance.job_time(j) for j in stars)
        # w_i = P(C_i) − [p_star − |C*|(T/2 − s_i)] = const + |C*|/2 · T
        c0 = Fraction(instance.processing(i) - p_star) - Fraction(len(stars) * instance.setups[i])
        return Fraction(len(stars), 2), c0

    # F(T) = (m−l)T − Σ_{I+exp}(γ s + P) − Σ_{I-exp ∪ I+chp}(s+P): γ constant here
    base_c = sum(
        d.counts[i] * instance.setups[i] + instance.processing(i) for i in part.exp_plus
    ) + sum(
        instance.setups[i] + instance.processing(i)
        for i in tuple(part.exp_minus) + tuple(part.chp_plus)
    )
    if not part.chp_star:
        # only the case boundary F(T) = demand (= 0) matters: below it the
        # dual rejects outright (F < L* = 0), above it case 3b applies.
        pts0: list[Time] = []
        if m - l != 0:
            root = (d.demand_star + base_c) / Fraction(m - l)
            if lo < root < hi:
                pts0.append(root)
        return pts0
    # L*(T) = Σ_{I*}(s_i + p*_i − |C*_i|(T/2 − s_i))
    lstar_slope = Fraction(0)
    lstar_c = Fraction(0)
    for i in part.chp_star:
        stars = part.big_jobs(i)
        lstar_slope -= Fraction(len(stars), 2)
        lstar_c += Fraction(
            instance.setups[i]
            + sum(instance.job_time(j) for j in stars)
            + len(stars) * instance.setups[i]
        )
    y_slope = Fraction(m - l) - lstar_slope
    y_c = Fraction(-base_c) - lstar_c

    items = [(i, Fraction(instance.setups[i]), *affine_weight(i)) for i in part.chp_star]
    pts: set[Time] = set()

    # case boundary 3a/3b: F(T) = demand_star  (F slope m−l, intercept −base_c)
    if m - l != 0:
        root = (d.demand_star + base_c) / Fraction(m - l)
        if lo < root < hi:
            pts.add(root)
    # capacity sign change: Y(T) = 0
    if y_slope != 0:
        root = -y_c / y_slope
        if lo < root < hi:
            pts.add(root)

    # density crossings: s_i (wj_s T + wj_c) = s_j (wi_s T + wi_c)
    for a in range(len(items)):
        for b in range(a + 1, len(items)):
            _, si, wis, wic = items[a]
            _, sj, wjs, wjc = items[b]
            num = sj * wic - si * wjc
            den = si * wjs - sj * wis
            if den != 0:
                root = num / den
                if lo < root < hi:
                    pts.add(root)

    # prefix/capacity crossings, per density-order region
    regions = [lo] + sorted(pts) + [hi]
    for r_lo, r_hi in zip(regions, regions[1:]):
        r_mid = (r_lo + r_hi) / 2

        def density_key(item):
            _, s, ws, wc = item
            w = ws * r_mid + wc
            if w == 0:
                return (0, Fraction(0), -s, repr(item[0]))
            return (1, -(s / w), -s, repr(item[0]))

        order = sorted(items, key=density_key)
        acc_s, acc_c = Fraction(0), Fraction(0)
        for _, _, ws, wc in order:
            acc_s += ws
            acc_c += wc
            den = acc_s - y_slope
            if den != 0:
                root = (y_c - acc_c) / den
                if r_lo < root < r_hi:
                    pts.add(root)
    return sorted(pts)


def find_flip_pmtn(
    instance: Instance,
    *,
    use_base_jump: bool = True,
    kernel: str = "fast",
    ctx: Optional[DualContext] = None,
    use_grid: bool = False,
) -> tuple[Time, Time, int]:
    """Exact flip of the Theorem-5 (γ) test: ``(T_star, T_witness, calls)``.

    ``use_base_jump=False`` disables the Class-Jumping acceleration and
    scans every piece from ``T_min`` — the slow reference used by tests and
    the ablation benchmark.  ``kernel`` selects the scaled-integer or the
    Fraction dual test for the accept/structure probes (identical
    decisions either way; the knapsack stable-point analysis always runs
    on the exact reference since it needs the full partition).  ``ctx``
    injects a shared probe context (machine sweeps); ``use_grid=True``
    batches the base-flip bisections through the vectorized kernel.  All
    probes are memoized on ``(numerator, denominator)`` — the scan
    re-tests piece endpoints, so dedup saves real work here.
    """
    fast = validate_kernel(kernel)
    if ctx is None:
        ctx = instance.fast_ctx() if fast else None
    grid = use_grid and fast
    return drive_plan(
        flip_plan_pmtn(instance, use_base_jump=use_base_jump, grid=grid),
        pmtn_probe_evaluator(instance, fast=fast, ctx=ctx, grid=grid),
    )


def pmtn_probe_evaluator(
    instance: Instance, *, fast: bool, ctx: Optional[DualContext], grid: bool
):
    """Kernel dispatch for :func:`flip_plan_pmtn` probe requests.

    Base-core accepts ("accept"/"accept_block", kind ``pmtn_base``) poll
    cancellation at the probe boundary like the former MemoAccept;
    "verdict" requests — the γ-test probes of the scan and the raw
    constant-piece core reads — mirror the sequential code, which never
    polled on them.
    """
    grid_fn = batchdual.grid_accept_fn(ctx, "pmtn_base") if grid else None

    def base_core(T: Time) -> tuple:
        if fast:
            return fast_base_core(ctx, T.numerator, T.denominator)
        return _base_core(instance, T)

    def evaluate(req: ProbeRequest):
        if req.op == "verdict":
            if req.kind == "pmtn_base":
                return [base_core(T) for T in req.times]
            if fast:
                return [
                    fast_pmtn_test(ctx, T.numerator, T.denominator, req.mode)
                    for T in req.times
                ]
            out = []
            for T in req.times:
                d = pmtn_dual_test(instance, T, mode=req.mode)
                out.append(
                    PmtnVerdict(
                        d.accepted, d.load, d.machines_needed, d.case,
                        any("F < L*" in r for r in d.reject_reasons),
                    )
                )
            return out
        check_cancelled()  # probe boundary: no partial state to unwind
        if req.op == "accept_block" and grid_fn is not None:
            return [bool(v) for v in grid_fn(list(req.times))]
        m = instance.m
        flags = []
        for T in req.times:
            load, m_prime = base_core(T)
            flags.append(m * T.numerator >= load * T.denominator and m >= m_prime)
        return flags

    return evaluate


def flip_plan_pmtn(instance: Instance, *, use_base_jump: bool = True, grid: bool = False):
    """Algorithm 4 + piece scan as a plan; returns ``(T*, witness, calls)``.

    γ-test probes are memoized as full verdicts (``accept`` is the
    verdict's flag, so re-testing an endpoint is free) and counted; the
    base flip's probes ride through :func:`base_flip_plan` uncounted.
    The knapsack stable-point analysis stays inline plan computation on
    the exact Fraction reference — it needs the full partition, not a
    probe.
    """
    memo: dict[tuple[int, int], PmtnVerdict] = {}
    counted = [0]

    def probe(T: Time):
        """(accepted, load, m', case, y_neg) of the γ test at ``T`` (memoized)."""
        key = (T.numerator, T.denominator)
        v = memo.get(key)
        if v is None:
            counted[0] += 1
            v = (yield ProbeRequest("verdict", "pmtn", "gamma", (T,)))[0]
            memo[key] = v
        return v

    tmin = t_min(instance, Variant.PREEMPTIVE)
    thi = 2 * tmin
    if (yield from probe(tmin)).accepted:
        return tmin, tmin, counted[0]

    if use_base_jump:
        t_base = yield from base_flip_plan(instance, tmin, thi, grid=grid)
    else:
        t_base = tmin

    # exhaustive left-to-right scan from the certified frontier
    points = [t_base] + _change_points(instance, t_base, thi) + [thi]
    for idx, p in enumerate(points):
        if p != tmin and (yield from probe(p)).accepted:
            return p, p, counted[0]
        if idx + 1 >= len(points):
            break
        q = points[idx + 1]
        stable = [p] + _knapsack_stable_points(instance, p, q) + [q]
        for a, b in zip(stable, stable[1:]):
            if a != p and (yield from probe(a)).accepted:
                return a, a, counted[0]
            mid = (a + b) / 2
            d = yield from probe(mid)
            if instance.m < d.machines_needed:
                continue
            if d.case == "trivial":
                continue
            if d.y_negative:
                continue  # Y < 0 on the whole subinterval: rejected
            flip = Fraction(d.load, instance.m)
            if flip <= a:
                # the whole open interval (a, b) is accepted: infimum a not
                # attained (a itself was rejected above)
                witness = a + min((b - a) / 2, a * _WITNESS_EPS)
                assert (yield from probe(witness)).accepted
                return a, witness, counted[0]
            if flip < b:
                assert (yield from probe(flip)).accepted
                return flip, flip, counted[0]
    assert (yield from probe(thi)).accepted
    return thi, thi, counted[0]


def three_halves_preemptive(
    instance: Instance,
    *,
    kernel: str = "fast",
    ctx: Optional[DualContext] = None,
    use_grid: bool = False,
) -> PmtnJumpResult:
    """Theorem 6 — 3/2-approximation for ``P|pmtn,setup=s_i|Cmax``."""
    T_star, T_witness, calls = find_flip_pmtn(
        instance, kernel=kernel, ctx=ctx, use_grid=use_grid
    )
    schedule = pmtn_dual_schedule(instance, T_witness, mode="gamma", kernel=kernel)
    return PmtnJumpResult(
        T_star=T_star, T_witness=T_witness, schedule=schedule, accept_calls=calls
    )
