"""Class Jumping for preemptive scheduling (Algorithm 4, Theorem 6).

The goal is the exact acceptance flip ``T* = min{T : Theorem-5 test (γ
mode) accepts}``; the built schedule then has makespan ≤ (3/2)T* ≤
(3/2)·OPT.  Structure (cf. DESIGN.md, deviation #3):

1. **Base flip** ``T̃``: Class Jumping on the *monotone core* of the test —
   ``L_base(T) = P(J) + Σ_{I⁺exp} γ_i(T)s_i + Σ_{[c]∖I⁺exp} s_i`` and
   ``m′(T)``.  The γ machine count has the closed form
   ``γ_i(T) = max(1, ⌈2(s_i+P_i)/T⌉ − 2)`` (the §4.4 jump equation
   rearranged), so its jumps are ``2(s_i+P_i)/j`` and Lemma 5 bounds the
   jumps between consecutive jumps of the fastest class ``f`` (max
   ``s_f+P_f``) by one per class — exactly Algorithm 1 with ``s_i+P_i`` in
   place of ``P_i``.  ``L_base ≤ L_pmtn`` and both core functions are
   non-increasing, so *every* ``T < T̃`` is certifiably rejected.

2. **Piece scan** from ``T̃`` upward: between consecutive change points
   (membership boundaries ``2s_i, 4s_i, s_i+P_i, 4(s_i+P_i)/3``, star-job
   boundaries ``2(s_i+t_j)`` and γ-jumps) all sets are constant except the
   knapsack's unselected set, whose changes are located exactly by solving
   the density crossings ``s_i w_j(T) = s_j w_i(T)`` and the prefix-weight/
   capacity crossings ``S_k(T) = Y(T)`` — all *linear* equations in ``T``
   because weights and capacity are affine on a piece.  Each resulting
   stable subinterval has constant ``L_pmtn``, so the flip inside it is
   ``max(lo, L_pmtn/m)``.  The scan is exhaustive, hence the certificate
   "everything below the returned point is rejected" needs no monotonicity
   of the knapsack term (which genuinely is not monotone in corner cases).

The flip may be an *infimum that is not attained* (an open membership
boundary whose left endpoint is rejected while everything above accepts).
Then ``T_star`` is the infimum and ``T_witness`` an accepted point within
a relative ``2^{-40}`` of it; the schedule is built at the witness, so the
proven ratio is ``(3/2)(1+2^{-40})`` in that measure-zero corner and
exactly 3/2 otherwise.

The plan runs on the scaled-integer tier: candidates, change points and
the affine-root solve all live on normalized ``(num, den)`` int pairs.
The affine slopes of the knapsack analysis are half-integers, so the
solve carries *doubled* slope coefficients (``|C*_i|`` instead of
``|C*_i|/2``) — the common factor 2 cancels in every root, and the
normalized pairs are canonical, so each stable point equals the historic
Fraction computation bit-for-bit.  Fractions appear only at the
fraction-kernel evaluator branch, the one ``pmtn_dual_test`` structure
read per piece (it needs the full partition), and the returned results.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import cmp_to_key
from typing import Optional

from ..core import batchdual
from ..core.bounds import Variant, t_min
from ..core.cancel import check_cancelled
from ..core.fastnum import (
    DualContext,
    PmtnVerdict,
    as_pair,
    fast_base_core,
    fast_pmtn_test,
    norm_pair,
    pair_add,
    pair_ceil,
    pair_cmp,
    pair_key,
    pair_mid,
    validate_kernel,
)
from ..core.instance import Instance
from ..core.numeric import Time, fast_fraction, frac_ceil
from ..core.schedule import Schedule
from .pmtn_general import pmtn_dual_schedule, pmtn_dual_test
from .search import Pair, ProbeRequest, drive_plan, plan_accept, right_interval_plan

#: relative witness offset for non-attained infima
_WITNESS_EPS = Fraction(1, 2**40)


@dataclass(frozen=True)
class PmtnJumpResult:
    T_star: Time            # infimum of accepted makespans
    T_witness: Time         # accepted point the schedule is built at
    schedule: Schedule
    accept_calls: int

    @property
    def ratio_bound(self) -> Fraction:
        return Fraction(3, 2) * self.T_witness / self.T_star if self.T_star else Fraction(3, 2)


def gamma_closed(instance: Instance, T: Time, cls: int) -> int:
    """``γ_i(T) = max(1, ⌈2(s_i+P_i)/T⌉ − 2)`` (§4.4 jump equation)."""
    sp = 2 * (instance.setups[cls] + instance.processing(cls))
    return max(1, frac_ceil(Fraction(sp) / T) - 2)


def _base_core(instance: Instance, T: Time) -> tuple[Time, int]:
    """``(L_base(T), m′(T))`` — the monotone core of the Theorem-5 test."""
    half = T / 2
    load = Fraction(instance.total_processing)
    l = 0
    gsum = 0
    minus = 0
    for i in range(instance.c):
        s = instance.setups[i]
        if s > half:
            total = s + instance.processing(i)
            if total >= T:
                g = gamma_closed(instance, T, i)
                load += g * s
                gsum += g
                continue
            if total > 3 * T / 4:
                l += 1
            else:
                minus += 1
        load += s
    m_prime = l + gsum + (-(-minus // 2))
    return load, m_prime


def _base_accept(instance: Instance, T: Time) -> bool:
    load, m_prime = _base_core(instance, T)
    return instance.m * T >= load and instance.m >= m_prime


def base_flip_plan(instance: Instance, tmin: Pair, thi: Pair, *, grid: bool = False):
    """Class Jumping on the monotone core (Algorithm 4 steps 2-7) as a plan.

    Returns ``T̃ = min{T ≥ tmin : base-accept}``; everything below is
    rejected by the full test too (``L_base ≤ L_pmtn``, ``m′`` shared).
    Probes are memoized, so endpoints shared across the bisection phases
    hit the kernel once; ``grid=True`` resolves each bisection with
    batched candidate blocks (identical flip — the base core is
    monotone).  Base probes were never counted in ``accept_calls``, so
    the plan keeps its own discarded counter.
    """
    memo: dict[tuple[int, int], bool] = {}
    uncounted = [0]

    if (yield from plan_accept(memo, uncounted, "pmtn_base", "", tmin)):
        return tmin

    # membership candidates that move classes across I+exp / I0exp / I-exp /
    # cheap (these change m' discontinuously and bound gamma's domain)
    pts: set[Pair] = set()
    for i in range(instance.c):
        s, P = instance.setups[i], instance.processing(i)
        for b in ((2 * s, 1), (s + P, 1), norm_pair(4 * (s + P), 3)):
            if pair_cmp(tmin, b) < 0 < pair_cmp(thi, b):
                pts.add(b)
    candidates = [tmin] + sorted(pts, key=pair_key) + [thi]
    A1, T1 = yield from right_interval_plan(
        candidates, memo, uncounted, "pmtn_base", "", grid
    )

    # fastest jumping class f among I+exp on the open interior
    mid = pair_mid(A1, T1)
    mn, md = mid
    exp_plus = [
        i
        for i in range(instance.c)
        # s > mid/2  and  s + P >= mid
        if 2 * instance.setups[i] * md > mn
        and (instance.setups[i] + instance.processing(i)) * md >= mn
    ]
    if not exp_plus:
        return (yield from _flip_constant_core(instance, A1, T1))

    f = max(exp_plus, key=lambda i: instance.setups[i] + instance.processing(i))
    SPf = 2 * (instance.setups[f] + instance.processing(f))
    k_lo = max(1, pair_ceil(SPf * T1[1], T1[0]))
    if SPf * T1[1] >= k_lo * T1[0]:  # SPf/k_lo >= T1
        k_lo += 1
    k_hi = (SPf * A1[1]) // A1[0]
    if k_hi >= k_lo and SPf * A1[1] <= k_hi * A1[0]:  # SPf/k_hi <= A1
        k_hi -= 1
    lo_b, hi_b = A1, T1
    if k_hi >= k_lo:
        jump_candidates = (
            [A1] + [norm_pair(SPf, k) for k in range(k_hi, k_lo - 1, -1)] + [T1]
        )
        lo_b, hi_b = yield from right_interval_plan(
            jump_candidates, memo, uncounted, "pmtn_base", "", grid
        )

    inner: set[Pair] = set()
    for i in exp_plus:
        SPi = 2 * (instance.setups[i] + instance.processing(i))
        k_min = max(1, pair_ceil(SPi * hi_b[1], hi_b[0]))
        if SPi * hi_b[1] >= k_min * hi_b[0]:  # SPi/k_min >= hi_b
            k_min += 1
        k_max = (SPi * lo_b[1]) // lo_b[0]
        if k_max >= k_min and SPi * lo_b[1] <= k_max * lo_b[0]:  # SPi/k_max <= lo_b
            k_max -= 1
        for k in range(k_min, k_max + 1):
            inner.add(norm_pair(SPi, k))
    assert len(inner) <= len(exp_plus), "Lemma 5 violated"
    if inner:
        lo_b, hi_b = yield from right_interval_plan(
            [lo_b] + sorted(inner, key=pair_key) + [hi_b],
            memo, uncounted, "pmtn_base", "", grid,
        )
    return (yield from _flip_constant_core(instance, lo_b, hi_b))


def _flip_constant_core(instance: Instance, T_fail: Pair, T_ok: Pair):
    """Step 9 analogue for the monotone core on a jump-free right interval.

    The ``(L_base, m′)`` pair at ``T_fail`` comes back through a
    "verdict" probe — unmemoized and uncounted, like the former raw
    ``base_core()`` call.
    """
    load, m_prime = (yield ProbeRequest("verdict", "pmtn_base", "", (T_fail,)))[0]
    if instance.m < m_prime:
        return T_ok
    T_new = norm_pair(load, instance.m)
    if pair_cmp(T_new, T_ok) >= 0:
        return T_ok
    assert pair_cmp(T_fail, T_new) < 0
    return T_new


# --------------------------------------------------------------------------- #
# exhaustive piece scan (knapsack-aware)
# --------------------------------------------------------------------------- #


def _change_points(instance: Instance, lo: Pair, hi: Pair) -> list[Pair]:
    """All points in ``(lo, hi)`` where the Theorem-5 data may change."""
    pts: set[Pair] = set()
    for i in range(instance.c):
        s, P = instance.setups[i], instance.processing(i)
        for b in (
            (2 * s, 1), (4 * s, 1), (s + P, 1), norm_pair(4 * (s + P), 3),
        ):
            if pair_cmp(lo, b) < 0 < pair_cmp(hi, b):
                pts.add(b)
        # gamma jumps 2(s+P)/j
        SP = 2 * (s + P)
        j0 = max(1, pair_ceil(SP * hi[1], hi[0]))
        j1 = (SP * lo[1]) // lo[0]
        for j in range(j0, j1 + 1):
            b = norm_pair(SP, j)
            if pair_cmp(lo, b) < 0 < pair_cmp(hi, b):
                pts.add(b)
        # star-job boundaries 2(s_i + t_j)
        for t in instance.jobs[i]:
            b = (2 * (s + t), 1)
            if pair_cmp(lo, b) < 0 < pair_cmp(hi, b):
                pts.add(b)
    return sorted(pts, key=pair_key)


def _density_cmp(a: tuple, b: tuple) -> int:
    """The knapsack greedy order on ``(key, s, W)`` with signed weight ``W``.

    ``W`` is the item's affine weight evaluated at the region midpoint and
    scaled by a common positive factor (``2·denominator``), so comparing
    ``−s/W`` by sign-normalized cross-multiplication reproduces the
    historic Fraction key ``(w==0, −s/w, −s, repr(key))`` exactly.
    """
    ka, sa, wa = a
    kb, sb, wb = b
    azero = wa == 0
    if azero != (wb == 0):
        return -1 if azero else 1
    if not azero:
        na, da = (-sa, wa) if wa > 0 else (sa, -wa)
        nb, db = (-sb, wb) if wb > 0 else (sb, -wb)
        lhs, rhs = na * db, nb * da
        if lhs != rhs:
            return -1 if lhs < rhs else 1
    if sa != sb:  # −s ascending ⟺ s descending
        return -1 if sa > sb else 1
    ra, rb = repr(ka), repr(kb)
    return 0 if ra == rb else (-1 if ra < rb else 1)


_density_key = cmp_to_key(_density_cmp)


def _knapsack_stable_points(instance: Instance, lo: Pair, hi: Pair) -> list[Pair]:
    """Points in ``(lo, hi)`` where the knapsack's unselected set can change.

    Preconditions: no membership/γ change point inside ``(lo, hi)``; then
    item weights ``w_i(T)`` and the capacity ``Y(T)`` are affine, so both
    density-order changes and prefix/capacity crossings are roots of linear
    equations.  All slopes are half-integers, so the solve runs on doubled
    integer coefficients (``w_i = (ws2_i·T + wc2_i)/2`` etc.); the factor
    2 cancels in every root.  The one Fraction boundary is the
    ``pmtn_dual_test`` structure read at the piece midpoint — it needs the
    full partition, not just a verdict.
    """
    mid = pair_mid(lo, hi)
    d = pmtn_dual_test(instance, fast_fraction(*mid), mode="gamma")
    if d.partition.is_nice:
        return []
    part = d.partition
    m, l = instance.m, d.l

    # doubled affine data: w_i(T) = (ws2·T + wc2)/2
    def affine_weight2(i: int) -> tuple[int, int]:
        stars = part.big_jobs(i)
        p_star = sum(int(instance.job_time(j)) for j in stars)
        # w_i = P(C_i) − [p_star − |C*|(T/2 − s_i)] = const + |C*|/2 · T
        wc2 = 2 * (instance.processing(i) - p_star - len(stars) * instance.setups[i])
        return len(stars), wc2

    # F(T) = (m−l)T − Σ_{I+exp}(γ s + P) − Σ_{I-exp ∪ I+chp}(s+P): γ constant here
    base_c = sum(
        d.counts[i] * instance.setups[i] + instance.processing(i) for i in part.exp_plus
    ) + sum(
        instance.setups[i] + instance.processing(i)
        for i in tuple(part.exp_minus) + tuple(part.chp_plus)
    )
    demand_star = int(d.demand_star)
    if not part.chp_star:
        # only the case boundary F(T) = demand (= 0) matters: below it the
        # dual rejects outright (F < L* = 0), above it case 3b applies.
        pts0: list[Pair] = []
        if m - l != 0:
            root = norm_pair(demand_star + base_c, m - l)
            if pair_cmp(lo, root) < 0 < pair_cmp(hi, root):
                pts0.append(root)
        return pts0
    # L*(T) = Σ_{I*}(s_i + p*_i − |C*_i|(T/2 − s_i)): slope −Σ|C*_i|/2
    lstar_slope2 = 0
    lstar_c = 0
    for i in part.chp_star:
        stars = part.big_jobs(i)
        lstar_slope2 -= len(stars)
        lstar_c += (
            instance.setups[i]
            + sum(int(instance.job_time(j)) for j in stars)
            + len(stars) * instance.setups[i]
        )
    y_slope2 = 2 * (m - l) - lstar_slope2
    y_c = -base_c - lstar_c

    items = [(i, instance.setups[i], *affine_weight2(i)) for i in part.chp_star]
    pts: set[Pair] = set()

    # case boundary 3a/3b: F(T) = demand_star  (F slope m−l, intercept −base_c)
    if m - l != 0:
        root = norm_pair(demand_star + base_c, m - l)
        if pair_cmp(lo, root) < 0 < pair_cmp(hi, root):
            pts.add(root)
    # capacity sign change: Y(T) = 0 with Y = (y_slope2·T + 2·y_c)/2
    if y_slope2 != 0:
        root = norm_pair(-2 * y_c, y_slope2)
        if pair_cmp(lo, root) < 0 < pair_cmp(hi, root):
            pts.add(root)

    # density crossings: s_i (wj_s T + wj_c) = s_j (wi_s T + wi_c)
    # (the common 1/2 of the doubled coefficients cancels)
    for a in range(len(items)):
        for b in range(a + 1, len(items)):
            _, si, wis2, wic2 = items[a]
            _, sj, wjs2, wjc2 = items[b]
            num = sj * wic2 - si * wjc2
            den = si * wjs2 - sj * wis2
            if den != 0:
                root = norm_pair(num, den)
                if pair_cmp(lo, root) < 0 < pair_cmp(hi, root):
                    pts.add(root)

    # prefix/capacity crossings, per density-order region
    ws2_of = {key: ws2 for key, _, ws2, _ in items}
    wc2_of = {key: wc2 for key, _, _, wc2 in items}
    regions = [lo] + sorted(pts, key=pair_key) + [hi]
    for r_lo, r_hi in zip(regions, regions[1:]):
        rn, rd = pair_mid(r_lo, r_hi)
        # signed item weight at the midpoint, scaled by 2·rd > 0
        order = sorted(
            ((key, s, ws2 * rn + wc2 * rd) for key, s, ws2, wc2 in items),
            key=_density_key,
        )
        acc_s2, acc_c2 = 0, 0
        for key, _, _ in order:
            acc_s2 += ws2_of[key]
            acc_c2 += wc2_of[key]
            den2 = acc_s2 - y_slope2
            if den2 != 0:
                root = norm_pair(2 * y_c - acc_c2, den2)
                if pair_cmp(r_lo, root) < 0 < pair_cmp(r_hi, root):
                    pts.add(root)
    return sorted(pts, key=pair_key)


def find_flip_pmtn(
    instance: Instance,
    *,
    use_base_jump: bool = True,
    kernel: str = "fast",
    ctx: Optional[DualContext] = None,
    use_grid: bool = False,
) -> tuple[Time, Time, int]:
    """Exact flip of the Theorem-5 (γ) test: ``(T_star, T_witness, calls)``.

    ``use_base_jump=False`` disables the Class-Jumping acceleration and
    scans every piece from ``T_min`` — the slow reference used by tests and
    the ablation benchmark.  ``kernel`` selects the scaled-integer or the
    Fraction dual test for the accept/structure probes (identical
    decisions either way; the knapsack stable-point analysis reads one
    full ``pmtn_dual_test`` partition per piece on the exact reference).
    ``ctx`` injects a shared probe context (machine sweeps);
    ``use_grid=True`` batches the base-flip bisections through the
    vectorized kernel.  All probes are memoized on the normalized
    ``(numerator, denominator)`` pair — the scan re-tests piece
    endpoints, so dedup saves real work here.
    """
    fast = validate_kernel(kernel)
    if ctx is None:
        ctx = instance.fast_ctx() if fast else None
    grid = use_grid and fast
    T_star, T_witness, calls = drive_plan(
        flip_plan_pmtn(instance, use_base_jump=use_base_jump, grid=grid),
        pmtn_probe_evaluator(instance, fast=fast, ctx=ctx, grid=grid),
    )
    return fast_fraction(*T_star), fast_fraction(*T_witness), calls


def pmtn_probe_evaluator(
    instance: Instance, *, fast: bool, ctx: Optional[DualContext], grid: bool
):
    """Kernel dispatch for :func:`flip_plan_pmtn` probe requests.

    Base-core accepts ("accept"/"accept_block", kind ``pmtn_base``) poll
    cancellation at the probe boundary like the former MemoAccept;
    "verdict" requests — the γ-test probes of the scan and the raw
    constant-piece core reads — mirror the sequential code, which never
    polled on them.  The fraction branch is the pair→Fraction boundary;
    its integral loads come back coerced to int so the plan stays on
    pairs.
    """
    grid_fn = batchdual.grid_accept_pairs_fn(ctx, "pmtn_base") if grid else None

    def base_core(tn: int, td: int) -> tuple[int, int]:
        if fast:
            return fast_base_core(ctx, tn, td)
        load, m_prime = _base_core(instance, fast_fraction(tn, td))
        return int(load), m_prime

    def evaluate(req: ProbeRequest):
        if req.op == "verdict":
            if req.kind == "pmtn_base":
                return [base_core(tn, td) for tn, td in req.times]
            if fast:
                return [
                    fast_pmtn_test(ctx, tn, td, req.mode) for tn, td in req.times
                ]
            out = []
            for tn, td in req.times:
                d = pmtn_dual_test(instance, fast_fraction(tn, td), mode=req.mode)
                out.append(
                    PmtnVerdict(
                        d.accepted, int(d.load), d.machines_needed, d.case,
                        any("F < L*" in r for r in d.reject_reasons),
                    )
                )
            return out
        check_cancelled()  # probe boundary: no partial state to unwind
        if req.op == "accept_block" and grid_fn is not None:
            return [bool(v) for v in grid_fn(list(req.times))]
        m = instance.m
        flags = []
        for tn, td in req.times:
            load, m_prime = base_core(tn, td)
            flags.append(m * tn >= load * td and m >= m_prime)
        return flags

    return evaluate


def flip_plan_pmtn(instance: Instance, *, use_base_jump: bool = True, grid: bool = False):
    """Algorithm 4 + piece scan as a plan; returns ``(T*, witness, calls)``.

    γ-test probes are memoized as full verdicts (``accept`` is the
    verdict's flag, so re-testing an endpoint is free) and counted; the
    base flip's probes ride through :func:`base_flip_plan` uncounted.
    The knapsack stable-point analysis stays inline plan computation —
    pair arithmetic plus one reference partition read per piece.
    """
    memo: dict[tuple[int, int], PmtnVerdict] = {}
    counted = [0]

    def probe(T: Pair):
        """(accepted, load, m', case, y_neg) of the γ test at ``T`` (memoized)."""
        key = norm_pair(*T)
        v = memo.get(key)
        if v is None:
            counted[0] += 1
            v = (yield ProbeRequest("verdict", "pmtn", "gamma", (key,)))[0]
            memo[key] = v
        return v

    tn, td = as_pair(t_min(instance, Variant.PREEMPTIVE))
    tmin = (tn, td)
    thi = norm_pair(2 * tn, td)
    if (yield from probe(tmin)).accepted:
        return tmin, tmin, counted[0]

    if use_base_jump:
        t_base = yield from base_flip_plan(instance, tmin, thi, grid=grid)
    else:
        t_base = tmin

    # exhaustive left-to-right scan from the certified frontier
    points = [t_base] + _change_points(instance, t_base, thi) + [thi]
    for idx, p in enumerate(points):
        if p != tmin and (yield from probe(p)).accepted:
            return p, p, counted[0]
        if idx + 1 >= len(points):
            break
        q = points[idx + 1]
        stable = [p] + _knapsack_stable_points(instance, p, q) + [q]
        for a, b in zip(stable, stable[1:]):
            if a != p and (yield from probe(a)).accepted:
                return a, a, counted[0]
            mid = pair_mid(a, b)
            d = yield from probe(mid)
            if instance.m < d.machines_needed:
                continue
            if d.case == "trivial":
                continue
            if d.y_negative:
                continue  # Y < 0 on the whole subinterval: rejected
            flip = norm_pair(d.load, instance.m)
            if pair_cmp(flip, a) <= 0:
                # the whole open interval (a, b) is accepted: infimum a not
                # attained (a itself was rejected above)
                half_gap = norm_pair(b[0] * a[1] - a[0] * b[1], 2 * a[1] * b[1])
                eps_off = norm_pair(a[0], a[1] * 2**40)
                off = half_gap if pair_cmp(half_gap, eps_off) <= 0 else eps_off
                witness = pair_add(a, off)
                assert (yield from probe(witness)).accepted
                return a, witness, counted[0]
            if pair_cmp(flip, b) < 0:
                assert (yield from probe(flip)).accepted
                return flip, flip, counted[0]
    assert (yield from probe(thi)).accepted
    return thi, thi, counted[0]


def three_halves_preemptive(
    instance: Instance,
    *,
    kernel: str = "fast",
    ctx: Optional[DualContext] = None,
    use_grid: bool = False,
) -> PmtnJumpResult:
    """Theorem 6 — 3/2-approximation for ``P|pmtn,setup=s_i|Cmax``."""
    T_star, T_witness, calls = find_flip_pmtn(
        instance, kernel=kernel, ctx=ctx, use_grid=use_grid
    )
    schedule = pmtn_dual_schedule(instance, T_witness, mode="gamma", kernel=kernel)
    return PmtnJumpResult(
        T_star=T_star, T_witness=T_witness, schedule=schedule, accept_calls=calls
    )
