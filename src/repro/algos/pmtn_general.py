"""General preemptive instances: Algorithm 3 and Theorem 5 (Section 4.2).

For a makespan guess ``T``:

1. every class of ``I⁰exp`` (``3T/4 < s_i+P(C_i) < T``) goes onto its own
   *large machine*, occupying ``[T/2, T/2+s_i+P(C_i)]`` (Lemma 11 layout);
2. the *big jobs* ``C*_i`` of the light-cheap classes ``I*chp`` are split
   into ``j^(1)`` (``T/2−s_i``) and ``j^(2)`` (``s_i+t_j−T/2``): by Lemma 4
   at least ``j^(2)`` must run outside the large machines;
3. with ``F`` the free time on the residual ``m−l`` machines after
   reserving the nice-instance load, either

   * **case 3a** (``F < Σ_{I*chp}(s_i+P(C_i))``): a continuous knapsack
     (profit ``s_i``, weight ``w_i = P(C_i)−L*_i``, capacity ``Y = F−L*``)
     decides which classes are scheduled entirely outside; the split class
     ``e`` contributes pieces ``j^[1]/j^[2]``; unselected classes pay an
     extra setup on the large machines, or
   * **case 3b** (``F ≥ …``): all of ``I*chp`` fits outside; the remaining
     ``I⁻chp \\ I*chp`` load is split greedily into a part ``Q₁`` filling
     ``F`` and a leftover ``Q₂`` for the large-machine bottoms.

4. the derived *nice* instance is scheduled on the residual machines with
   Algorithm 2 (all its cheap load lives in ``[T/2, 3T/2]``), and the
   leftover ``K = K⁺ ∪ K⁻`` is packed into the large-machine bottoms
   ``[0, T/2]`` (big items one per machine, small items wrapped with gaps
   ``(l′, 0, T/2)``, ``(l′+r, T/4, T/2)``) — Figure 4.

Acceptance (Theorem 5(i)):  reject iff ``mT < L_pmtn`` or ``m < m′`` where
``L_pmtn = P(J) + Σ_{I⁺exp} κ_i s_i + Σ_{[c]\\I⁺exp} s_i + Σ_{unselected}
s_i`` and ``m′ = |I⁰exp| + Σ κ_i + ⌈|I⁻exp|/2⌉``.  Two documented
implementation extras, both *valid* lower-bound conditions (rejection still
certifies ``T < OPT``):

* ``T < max_i(s_i+t^(i)_max)`` is rejected outright (Note 1);
* in case 3a, ``Y < 0`` (i.e. ``F < L*``) is rejected: the residual
  machines cannot even hold the obligatory outside-large load (Lemma 4 plus
  the Lemma 10/11 large-machine argument) — a corner the paper's formulas
  gloss over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Literal, Optional

from functools import cmp_to_key

from ..core.bounds import setup_plus_tmax
from ..core.classification import PmtnPartition, pmtn_partition
from ..core.errors import ConstructionError, RejectedMakespanError
from ..core.fastnum import count_scaled, knapsack_order_cmp, scale_int, validate_kernel
from ..core.instance import Instance, JobRef
from ..core.knapsack import ContinuousSolution, KnapsackItem, solve_continuous
from ..core.numeric import Time, TimeLike, as_time, fast_fraction, time_str
from ..core.schedule import Schedule
from ..core.wrapping import Batch, WrapSequence, WrapTemplate, wrap
from .pmtn_nice import CountMode, NiceView, count_for, nice_dual_test, schedule_nice_view

Case = Literal["trivial", "nice", "3a", "3b"]


@dataclass(frozen=True)
class PmtnDual:
    """Outcome of the Theorem-5 test for one makespan guess."""

    T: Time
    mode: CountMode
    case: Case
    partition: PmtnPartition
    counts: dict[int, int]            # κ_i for i ∈ I⁺exp
    l: int                            # |I⁰exp| — number of large machines
    F: Time                           # free time on residual machines
    L_star: Time                      # Σ_{I*chp}(s_i + L*_i)
    demand_star: Time                 # Σ_{I*chp}(s_i + P(C_i))
    knapsack: Optional[ContinuousSolution]
    unselected: tuple[int, ...]       # I*chp classes forced onto large machines
    split_class: Optional[int]        # e
    load: Time                        # L_pmtn
    machines_needed: int              # m′
    accepted: bool
    reject_reasons: tuple[str, ...] = ()


def _star_piece_lengths(instance: Instance, T: Time, cls: int, job: JobRef) -> tuple[Time, Time]:
    """``(t^(1)_j, t^(2)_j)`` for a big job of an ``I⁻chp`` class."""
    s = instance.setups[cls]
    t1 = T / 2 - s
    t2 = s + instance.job_time(job) - T / 2
    return t1, t2


def _l_star_i(instance: Instance, T: Time, part: PmtnPartition, cls: int) -> Time:
    """``L*_i = P(C*_i) − |C*_i|(T/2 − s_i)`` — obligatory outside load (4)."""
    stars = part.big_jobs(cls)
    p_star = sum((Fraction(instance.job_time(j)) for j in stars), Fraction(0))
    return p_star - len(stars) * (T / 2 - instance.setups[cls])


def pmtn_dual_test(instance: Instance, T: TimeLike, mode: CountMode = "alpha") -> PmtnDual:
    """Theorem 5(i): accept/reject ``T``; rejection certifies ``T < OPT``."""
    T = as_time(T)
    if T <= 0:
        raise ValueError("T must be positive")
    part = pmtn_partition(instance, T)
    m = instance.m

    if T < setup_plus_tmax(instance):
        # Note 1: OPT ≥ max_i (s_i + t^(i)_max) > T.
        return PmtnDual(
            T=T, mode=mode, case="trivial", partition=part, counts={}, l=0,
            F=Fraction(0), L_star=Fraction(0), demand_star=Fraction(0),
            knapsack=None, unselected=(), split_class=None,
            load=Fraction(instance.total_load), machines_needed=0,
            accepted=False, reject_reasons=("T < max(s_i + t_max^i)",),
        )

    counts = {
        i: count_for(instance, T, i, Fraction(instance.processing(i)), mode)
        for i in part.exp_plus
    }
    l = len(part.exp_zero)
    m_prime = l + sum(counts.values()) + (-(-len(part.exp_minus) // 2))

    # Free time for J(I⁻chp) on the residual machines, eq. (3).
    base = sum(
        (counts[i] * instance.setups[i] + Fraction(instance.processing(i)) for i in part.exp_plus),
        Fraction(0),
    )
    base += sum(
        (Fraction(instance.setups[i] + instance.processing(i))
         for i in tuple(part.exp_minus) + tuple(part.chp_plus)),
        Fraction(0),
    )
    F = (m - l) * T - base

    L_star = sum(
        (instance.setups[i] + _l_star_i(instance, T, part, i) for i in part.chp_star),
        Fraction(0),
    )
    demand_star = sum(
        (Fraction(instance.setups[i] + instance.processing(i)) for i in part.chp_star),
        Fraction(0),
    )

    load = Fraction(instance.total_processing)
    load += sum(counts[i] * instance.setups[i] for i in part.exp_plus)
    load += sum(
        instance.setups[i] for i in range(instance.c) if i not in set(part.exp_plus)
    )

    reasons: list[str] = []
    knap: Optional[ContinuousSolution] = None
    unselected: tuple[int, ...] = ()
    split_class: Optional[int] = None

    if part.is_nice:
        case: Case = "nice"
        nice = nice_dual_test(instance, T, mode=mode)
        load = nice.load
        m_prime = nice.machines_needed
        accepted = nice.accepted
        if not accepted:
            if m * T < load:
                reasons.append("mT < L_nice")
            if m < m_prime:
                reasons.append("m < m_nice")
    elif F < demand_star:
        case = "3a"
        Y = F - L_star
        if Y < 0:
            reasons.append("F < L* (obligatory outside load exceeds residual time)")
            accepted = False
        else:
            items = []
            for i in part.chp_star:
                w = Fraction(instance.processing(i)) - _l_star_i(instance, T, part, i)
                items.append(KnapsackItem.of(i, Fraction(instance.setups[i]), w))
            knap = solve_continuous(items, Y)
            unselected = tuple(sorted(knap.unselected))
            split_class = knap.split_key  # type: ignore[assignment]
            load += sum(instance.setups[i] for i in unselected)
            accepted = m * T >= load and m >= m_prime
            if m * T < load:
                reasons.append("mT < L_pmtn")
            if m < m_prime:
                reasons.append("m < m'")
    else:
        case = "3b"
        accepted = m * T >= load and m >= m_prime
        if m * T < load:
            reasons.append("mT < L_pmtn")
        if m < m_prime:
            reasons.append("m < m'")

    return PmtnDual(
        T=T, mode=mode, case=case, partition=part, counts=counts, l=l, F=F,
        L_star=L_star, demand_star=demand_star, knapsack=knap,
        unselected=unselected, split_class=split_class,
        load=load, machines_needed=m_prime,
        accepted=accepted, reject_reasons=tuple(reasons),
    )


def pmtn_dual_test_fast(instance: Instance, T: TimeLike, mode: CountMode = "alpha") -> PmtnDual:
    """:func:`pmtn_dual_test` on the scaled-integer kernel.

    Produces the same :class:`PmtnDual` field for field — including the
    partition, the continuous-knapsack solution (same greedy order, same
    split fraction) and the reject reasons — but runs the per-class and
    per-job arithmetic on machine ints with ``T = tn/td`` cross-multiplied
    out (weights and capacity at scale ``2·td``).  The differential suite
    asserts the equivalence on every generator-suite instance; the fast
    construction path uses this to avoid the reference's Fraction scans.

    .. note:: KEEP IN SYNC — three implementations of the Theorem-5 test
       coexist on purpose: :func:`pmtn_dual_test` (Fraction reference),
       :func:`repro.core.fastnum.fast_pmtn_test` (verdict-only, the flip
       search's hot path — it skips the partition/JobRef materialization
       this function needs) and this full fast dual.  Any change to the
       classification boundaries, counts, F/L*/Y scaling or the knapsack
       rule must land in all three; ``tests/test_fastnum_differential.py``
       probes all of them at the same points and is the gate.
    """
    T = as_time(T)
    if T <= 0:
        raise ValueError("T must be positive")
    ctx = instance.fast_ctx()
    tn, td = T.numerator, T.denominator
    m, setups, P, jobs = ctx.m, ctx.setups, ctx.P, instance.jobs

    # ---- partition (Section 4.1/4.2) in integer arithmetic -------------- #
    exp: list[int] = []
    chp: list[int] = []
    exp_plus: list[int] = []
    exp_zero: list[int] = []
    exp_minus: list[int] = []
    chp_plus: list[int] = []
    chp_minus: list[int] = []
    chp_star: list[int] = []
    star_jobs: dict[int, tuple[JobRef, ...]] = {}
    for i in range(ctx.c):
        s = setups[i]
        std2 = 2 * s * td
        total = s + P[i]
        if std2 > tn:  # s_i > T/2
            exp.append(i)
            if total * td >= tn:
                exp_plus.append(i)
            elif 4 * total * td > 3 * tn:
                exp_zero.append(i)
            else:
                exp_minus.append(i)
        else:
            chp.append(i)
            if 2 * std2 >= tn:  # s_i ≥ T/4
                chp_plus.append(i)
            else:
                chp_minus.append(i)
                if 2 * (s + ctx.class_tmax[i]) * td > tn:  # C*_i ≠ ∅
                    thr = (tn - std2) // (2 * td)  # t > thr ⟺ s_i + t > T/2
                    stars = tuple(
                        JobRef(i, idx) for idx, t in enumerate(jobs[i]) if t > thr
                    )
                    chp_star.append(i)
                    star_jobs[i] = stars
    part = PmtnPartition(
        instance=instance, T=T, exp=tuple(exp), chp=tuple(chp),
        exp_plus=tuple(exp_plus), exp_zero=tuple(exp_zero),
        exp_minus=tuple(exp_minus), chp_plus=tuple(chp_plus),
        chp_minus=tuple(chp_minus), chp_star=tuple(chp_star),
        star_jobs=star_jobs,
    )

    if tn < ctx.spt * td:
        # Note 1: OPT ≥ max_i (s_i + t^(i)_max) > T.
        return PmtnDual(
            T=T, mode=mode, case="trivial", partition=part, counts={}, l=0,
            F=Fraction(0), L_star=Fraction(0), demand_star=Fraction(0),
            knapsack=None, unselected=(), split_class=None,
            load=Fraction(ctx.total_load), machines_needed=0,
            accepted=False, reject_reasons=("T < max(s_i + t_max^i)",),
        )

    counts = {i: count_scaled(mode, tn, td, setups[i], P[i]) for i in exp_plus}
    l = len(exp_zero)
    m_prime = l + sum(counts.values()) + (-(-len(exp_minus) // 2))

    base = sum(counts[i] * setups[i] + P[i] for i in exp_plus)
    base += sum(setups[i] + P[i] for i in exp_minus)
    base += sum(setups[i] + P[i] for i in chp_plus)
    F2 = 2 * (m - l) * tn - 2 * base * td  # F · 2td

    td2 = 2 * td
    lstar2 = 0   # L_star · 2td
    demand = 0   # Σ_{I*chp}(s_i + P_i) — an int
    star_data: list[tuple[int, int]] = []  # per chp_star: (|C*_i|, p*_i)
    for i in chp_star:
        s = setups[i]
        stars = star_jobs[i]
        cnt = len(stars)
        p_star = sum(jobs[i][j.idx] for j in stars)
        star_data.append((cnt, p_star))
        demand += s + P[i]
        lstar2 += td2 * (s + p_star) - cnt * (tn - 2 * s * td)

    load = ctx.total_processing
    load += sum(counts[i] * setups[i] for i in exp_plus)
    exp_plus_set = set(exp_plus)
    load += sum(setups[i] for i in range(ctx.c) if i not in exp_plus_set)

    reasons: list[str] = []
    knap: Optional[ContinuousSolution] = None
    unselected: tuple[int, ...] = ()
    split_class: Optional[int] = None

    if part.is_nice:
        case: Case = "nice"
        accepted = m * tn >= load * td and m >= m_prime
        if not accepted:
            if m * tn < load * td:
                reasons.append("mT < L_nice")
            if m < m_prime:
                reasons.append("m < m_nice")
    elif F2 < demand * td2:
        case = "3a"
        Y2 = F2 - lstar2
        if Y2 < 0:
            reasons.append("F < L* (obligatory outside load exceeds residual time)")
            accepted = False
        else:
            # Continuous knapsack at scale 2td: same greedy order and split
            # fraction as knapsack.solve_continuous on the Fraction weights.
            items = [
                (i, setups[i], td2 * (P[i] - p_star) + cnt * (tn - 2 * setups[i] * td))
                for i, (cnt, p_star) in zip(chp_star, star_data)
            ]
            order = sorted(items, key=cmp_to_key(knapsack_order_cmp))
            fracs: dict[int, Fraction] = {i: Fraction(0) for i in chp_star}
            value = Fraction(0)
            used = Fraction(0)
            if Y2 > 0:
                rem2 = Y2
                for i, profit, w2 in order:
                    if rem2 <= 0:
                        break
                    if w2 <= rem2:
                        fracs[i] = Fraction(1)
                        value += profit
                        used += Fraction(w2, td2)
                        rem2 -= w2
                    else:
                        fr = Fraction(rem2, w2)
                        fracs[i] = fr
                        value += profit * fr
                        used += Fraction(rem2, td2)
                        split_class = i
                        break
            knap = ContinuousSolution(
                fractions=fracs, value=value, used_capacity=used,
                split_key=split_class,
            )
            unselected = tuple(sorted(k for k, v in fracs.items() if v == 0))
            load += sum(setups[i] for i in unselected)
            accepted = m * tn >= load * td and m >= m_prime
            if m * tn < load * td:
                reasons.append("mT < L_pmtn")
            if m < m_prime:
                reasons.append("m < m'")
    else:
        case = "3b"
        accepted = m * tn >= load * td and m >= m_prime
        if m * tn < load * td:
            reasons.append("mT < L_pmtn")
        if m < m_prime:
            reasons.append("m < m'")

    return PmtnDual(
        T=T, mode=mode, case=case, partition=part, counts=counts, l=l,
        F=Fraction(F2, td2), L_star=Fraction(lstar2, td2),
        demand_star=Fraction(demand), knapsack=knap,
        unselected=unselected, split_class=split_class,
        load=Fraction(load), machines_needed=m_prime,
        accepted=accepted, reject_reasons=tuple(reasons),
    )


# --------------------------------------------------------------------------- #
# construction
# --------------------------------------------------------------------------- #


@dataclass
class PmtnBuildParts:
    """Intermediate artifacts of Algorithm 3 (exposed for figures/tests)."""

    dual: PmtnDual
    large_machines: list[int] = field(default_factory=list)      # per I⁰exp class
    nice_view: NiceView = field(default_factory=dict)
    k_plus: list[tuple[int, JobRef, Time]] = field(default_factory=list)   # (cls, job, len)
    k_minus_batches: list[Batch] = field(default_factory=list)


def pmtn_dual_schedule(
    instance: Instance, T: TimeLike, mode: CountMode = "alpha",
    *, parts_out: Optional[PmtnBuildParts] = None, kernel: str = "fast",
) -> Schedule:
    """Theorem 5(ii)/4(ii): build a ≤ 3T/2 schedule for an accepted ``T``.

    ``kernel="fast"`` reuses the instance's cached Fraction job views and
    routes the wrap engine and the step-1 large-machine layout through
    the scaled-integer columnar emission path (lazy placements; see
    :mod:`repro.core.schedule`); ``kernel="fraction"`` rebuilds every
    view per call (the historical reference).  Both produce identical
    placements.
    """
    T = as_time(T)
    fast = validate_kernel(kernel)
    if fast:
        jobs_of = instance.class_jobs_frac
        dual = pmtn_dual_test_fast(instance, T, mode)
    else:
        jobs_of = lambda cls: [(j, Fraction(t)) for j, t in instance.class_jobs(cls)]
        dual = pmtn_dual_test(instance, T, mode)
    if not dual.accepted:
        raise RejectedMakespanError(
            f"T={time_str(T)} rejected by Theorem 5: {', '.join(dual.reject_reasons)}"
        )
    schedule = Schedule(instance)
    part = dual.partition
    half = T / 2

    if dual.case == "nice":
        from .pmtn_nice import full_view

        schedule_nice_view(
            schedule, T, full_view(instance), list(range(instance.m)), mode,
            exact_ints=fast, trusted_views=fast,
        )
        return schedule

    # ---- step 1: large machines ---------------------------------------- #
    l = dual.l
    large_machines = list(range(l))
    if fast:
        # Columnar emission at scale D = 2·td: T/2 scales to tn and the
        # class items are integer job times, so the whole layout is
        # machine ints (bit-identical placements to the rational loop).
        D2 = 2 * T.denominator
        for u, i in zip(large_machines, part.exp_zero):
            t_sc = T.numerator  # T/2 · D2
            s = instance.setups[i]
            schedule.add_scaled(u, t_sc, s * D2, D2, i)
            t_sc += s * D2
            for job, length in jobs_of(i):
                ln_sc = length.numerator * D2  # integer times: denominator 1
                schedule.add_scaled(u, t_sc, ln_sc, D2, i, job)
                t_sc += ln_sc
    else:
        for u, i in zip(large_machines, part.exp_zero):
            t = half
            schedule.add_setup(u, t, i)
            t += instance.setups[i]
            for job, length in jobs_of(i):
                schedule.add_piece(u, t, job, length)
                t += length

    residual = list(range(l, instance.m))

    # ---- steps 2-3: split the cheap-light load -------------------------- #
    view: NiceView = {}
    for i in tuple(part.exp_plus) + tuple(part.exp_minus) + tuple(part.chp_plus):
        view[i] = jobs_of(i)

    k_items: dict[int, list[tuple[JobRef, Time]]] = {}  # class -> bottom items

    tn, td = T.numerator, T.denominator
    if dual.case == "3a":
        knap = dual.knapsack
        assert knap is not None
        e = dual.split_class
        for i in part.chp_star:
            x = knap.x(i)
            stars = set(part.big_jobs(i))
            if x == 1:
                view[i] = jobs_of(i)
            elif fast:
                # Scaled-int view math: with x = xn/dx all piece lengths are
                # exact ints at scale D = 2·td·dx —
                #   x·t1·D = xn·(tn − 2·s·td)  since t1 = T/2 − s,
                #   t2·D   = (s+t_j)·D − tn·dx,
                #   x·t·D  = xn·2·td·t —
                # so the per-job loop is int arithmetic with one Fraction
                # materialized per emitted piece (bit-identical values).
                s = instance.setups[i]
                a1 = tn - 2 * s * td            # (T/2 − s_i)·2td
                nice_items: list[tuple[JobRef, Time]] = []
                bottom_items: list[tuple[JobRef, Time]] = []
                if i == e:
                    xn, dx = x.numerator, x.denominator
                    D = 2 * td * dx
                    for j, t in jobs_of(i):
                        ti = t.numerator
                        if j in stars:
                            hi_sc = xn * a1 + (s + ti) * D - tn * dx  # j^[2]
                            lo_sc = (dx - xn) * a1                    # j^[1]
                        else:
                            hi_sc = xn * 2 * td * ti
                            lo_sc = (dx - xn) * 2 * td * ti
                        if hi_sc > 0:
                            nice_items.append((j, fast_fraction(hi_sc, D)))
                        if lo_sc > 0:
                            bottom_items.append((j, fast_fraction(lo_sc, D)))
                    view[i] = nice_items
                    if bottom_items:
                        k_items[i] = bottom_items
                else:  # unselected (x = 0): obligatory t2 outside, rest bottoms
                    D = 2 * td
                    for j, t in jobs_of(i):
                        if j in stars:
                            t2_sc = (s + t.numerator) * D - tn
                            nice_items.append((j, fast_fraction(t2_sc, D)))
                            if a1 > 0:
                                bottom_items.append((j, fast_fraction(a1, D)))
                        else:
                            bottom_items.append((j, t))
                    if nice_items:
                        view[i] = nice_items
                    if bottom_items:
                        k_items[i] = bottom_items
            elif i == e:
                nice_items = []
                bottom_items = []
                for j, t in jobs_of(i):
                    if j in stars:
                        t1, t2 = _star_piece_lengths(instance, T, i, j)
                        t_hi = x * t1 + t2          # j^[2] — outside
                        t_lo = (1 - x) * t1         # j^[1] — bottoms
                    else:
                        t_hi = x * t
                        t_lo = (1 - x) * t
                    if t_hi > 0:
                        nice_items.append((j, t_hi))
                    if t_lo > 0:
                        bottom_items.append((j, t_lo))
                view[i] = nice_items
                if bottom_items:
                    k_items[i] = bottom_items
            else:  # unselected: obligatory pieces outside, rest to bottoms
                nice_items = []
                bottom_items = []
                for j, t in jobs_of(i):
                    if j in stars:
                        t1, t2 = _star_piece_lengths(instance, T, i, j)
                        nice_items.append((j, t2))
                        if t1 > 0:
                            bottom_items.append((j, t1))
                    else:
                        bottom_items.append((j, t))
                if nice_items:
                    view[i] = nice_items
                if bottom_items:
                    k_items[i] = bottom_items
        # classes of I⁻chp without big jobs always go to the bottoms (eq. 7)
        for i in part.chp_minus:
            if i in part.chp_star:
                continue
            k_items[i] = jobs_of(i)
    else:  # case 3b
        # all of I*chp goes outside in full
        for i in part.chp_star:
            view[i] = jobs_of(i)
        # greedily fill Q1 (outside) with I⁻chp \ I*chp up to F − demand_star
        rest = [i for i in part.chp_minus if i not in set(part.chp_star)]
        if fast:
            # Same greedy split at scale 2·td: F and demand_star are exact
            # multiples of 1/(2td), so target/acc/room/filled are ints.
            D = 2 * td
            target_sc = scale_int(dual.F - dual.demand_star, D)
            acc_sc = 0
            for idx, i in enumerate(rest):
                s = instance.setups[i]
                block_sc = D * (s + instance.class_processing[i])
                if acc_sc + block_sc <= target_sc:
                    view[i] = jobs_of(i)
                    acc_sc += block_sc
                    continue
                room_sc = target_sc - acc_sc - D * s
                if room_sc > 0:
                    nice_items = []
                    bottom_items = []
                    filled_sc = 0
                    for j, t in jobs_of(i):
                        t_sc = D * t.numerator
                        hi_sc = min(t_sc, max(0, room_sc - filled_sc))
                        if hi_sc > 0:
                            nice_items.append(
                                (j, t if hi_sc == t_sc else fast_fraction(hi_sc, D))
                            )
                            filled_sc += hi_sc
                        if t_sc - hi_sc > 0:
                            bottom_items.append(
                                (j, t if hi_sc == 0 else fast_fraction(t_sc - hi_sc, D))
                            )
                    view[i] = nice_items
                    if bottom_items:
                        k_items[i] = bottom_items
                    for j2 in rest[idx + 1:]:
                        k_items[j2] = jobs_of(j2)
                else:
                    # cannot even afford this class's setup outside: the whole
                    # tail goes to the bottoms (see the Fraction loop below).
                    for j2 in rest[idx:]:
                        k_items[j2] = jobs_of(j2)
                break
        else:
            target = dual.F - dual.demand_star
            acc = Fraction(0)
            for idx, i in enumerate(rest):
                s = Fraction(instance.setups[i])
                block = s + Fraction(instance.processing(i))
                if acc + block <= target:
                    view[i] = jobs_of(i)
                    acc += block
                    continue
                room = target - acc - s  # job load affordable after the setup
                if room > 0:
                    nice_items = []
                    bottom_items = []
                    filled = Fraction(0)
                    for j, t in jobs_of(i):
                        hi = min(t, max(Fraction(0), room - filled))
                        if hi > 0:
                            nice_items.append((j, hi))
                            filled += hi
                        if t - hi > 0:
                            bottom_items.append((j, t - hi))
                    view[i] = nice_items
                    if bottom_items:
                        k_items[i] = bottom_items
                    for j2 in rest[idx + 1:]:
                        k_items[j2] = jobs_of(j2)
                else:
                    # cannot even afford this class's setup outside: the whole
                    # tail goes to the bottoms (Q1 stays slightly underfilled —
                    # shortfall < s_i ≤ T/4, absorbed by the ω slack; see module
                    # docstring and the fuzz tests).
                    for j2 in rest[idx:]:
                        k_items[j2] = jobs_of(j2)
                break

    # ---- nice instance on the residual machines ------------------------- #
    view = {i: items for i, items in view.items() if items}
    schedule_nice_view(
        schedule, T, view, residual, mode, exact_ints=fast, trusted_views=fast
    )

    # ---- step 4: K at the bottoms of the large machines ------------------ #
    quarter = T / 4
    k_plus: list[tuple[int, JobRef, Time]] = []
    k_minus: dict[int, list[tuple[JobRef, Time]]] = {}
    for i, items in k_items.items():
        for j, t in items:
            if instance.setups[i] + t > half:
                raise ConstructionError(
                    f"Note 3 violated: bottom item {j} with s+t = "
                    f"{time_str(instance.setups[i] + t)} > T/2"
                )
            if t > quarter:
                k_plus.append((i, j, t))
            else:
                k_minus.setdefault(i, []).append((j, t))

    if len(k_plus) > l:
        raise ConstructionError(
            f"|K+| = {len(k_plus)} exceeds l = {l} large machines"
        )
    for u, (i, j, t) in enumerate(k_plus):
        schedule.add_setup(u, 0, i)
        schedule.add_piece(u, Fraction(instance.setups[i]), j, t)
    l_prime = len(k_plus)

    k_minus_batches: list[Batch] = []
    e = dual.split_class
    order = sorted(k_minus, key=lambda i: (i != e, i))  # class e first (paper)
    for i in order:
        k_minus_batches.append(Batch.of(i, k_minus[i]))
    if k_minus_batches:
        if l_prime >= l:
            raise ConstructionError("no large machines left for K-")
        gaps = [(l_prime, Fraction(0), half)]
        gaps += [(l_prime + r, quarter, half) for r in range(1, l - l_prime)]
        wrap(
            schedule, WrapSequence.of(k_minus_batches), WrapTemplate.of(gaps),
            exact_ints=fast,
        )

    if parts_out is not None:
        parts_out.dual = dual
        parts_out.large_machines = large_machines
        parts_out.nice_view = view
        parts_out.k_plus = k_plus
        parts_out.k_minus_batches = k_minus_batches
    return schedule
