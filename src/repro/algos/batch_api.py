"""Batched solve engine: ``solve_many`` and ``sweep_machines``.

The workloads the ROADMAP targets — machine-count sweeps
(:mod:`repro.experiments.scaling`), ratio studies, and service-shaped
request streams — call :func:`repro.solve` on many *related* instances:
the same classes and jobs, varying only the machine count (or repeating
the instance outright).  A naive loop rebuilds every per-instance cache
(Fraction job views, sorted views with prefix sums, the fast-kernel
:class:`~repro.core.fastnum.DualContext`) per call, even though all of
it is machine-count independent.

This module is the façade that exploits the sharing:

* :func:`sweep_machines` solves one instance across a list of machine
  counts.  One set of caches and one ``DualContext`` (re-``m``'d via
  :meth:`~repro.core.fastnum.DualContext.for_m`) back every point; the
  per-point instance copy is an O(c) cache-sharing
  ``with_machines(..., share_caches=True)``.
* :func:`solve_many` solves a stream of instances, transparently sharing
  caches between instances with equal ``(setups, jobs)``.
* Both offer ``schedules=False``: the dual searches still resolve the
  certified makespan ``T`` with its lower-bound certificate — through
  the batched grid kernels of :mod:`repro.core.batchdual` when numpy is
  available — but no schedule is materialized.  Sweep consumers that
  only need the ``T*``/bound curve (capacity planning: "how many
  machines until the proven bound drops below X?") skip the dominant
  construction cost entirely; :class:`SweepPoint` carries the same
  certified fields a full :class:`~repro.algos.api.SolveResult` would.

Everything returned is bit-identical to the corresponding looped
``solve()`` fields — asserted by ``tests/test_batch_api.py`` on the
generator suites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Iterable, MutableMapping, Optional, Sequence, Union

from ..core import batchdual
from ..core.bounds import Variant, lower_bound, setup_plus_tmax, t_min
from ..core.cancel import CancelToken, SolveCancelled, cancel_scope
from ..core.fastnum import validate_kernel
from ..core.instance import Instance
from ..core.numeric import Time, fast_fraction
from ..obs.trace import count as obs_count
from .api import Algorithm, Kernel, SolveResult, solve
from .jumping_pmtn import find_flip_pmtn, flip_plan_pmtn
from .jumping_split import find_flip_splittable, flip_plan_splittable
from .nonpreemptive import nonp_dual_schedule, three_halves_nonpreemptive
from .pmtn_general import pmtn_dual_schedule
from .search import (
    GRID_BLOCK,
    binary_search_dual,
    eps_probe_plan,
    integer_probe_plan,
)
from .splittable import split_dual_schedule

__all__ = ["BatchItem", "SweepPoint", "solve_batch", "solve_many", "sweep_machines"]

#: The three public algorithm names of :func:`repro.algos.api.solve`.
VALID_ALGORITHMS = ("two", "eps", "three_halves")


def _coerce_variant(variant) -> Variant:
    """``variant`` as a :class:`Variant` member, with a one-line error.

    ``Variant`` is a ``str`` enum, so a plain string like ``"splittable"``
    *compares* equal to a member but fails every ``is`` dispatch the
    solve paths use — silently taking wrong branches.  Coercing up front
    makes strings first-class and turns typos into one clear error.
    """
    if isinstance(variant, Variant):
        return variant
    try:
        return Variant(variant)
    except ValueError:
        valid = ", ".join(repr(v.value) for v in Variant)
        raise ValueError(
            f"unknown variant {variant!r}; expected one of {valid} "
            f"(or a repro.core.bounds.Variant member)"
        ) from None


def _validate_request(variant, algorithm, schedules: bool) -> Variant:
    """Validate one request's names *before* any solving starts.

    The batched entry points process streams; without this, a bad
    variant or algorithm name surfaced mid-stream (or worse, after
    partial results were already computed).  Everything raised here is
    raised before the first solve.
    """
    variant = _coerce_variant(variant)
    if algorithm not in VALID_ALGORITHMS:
        valid = ", ".join(repr(a) for a in VALID_ALGORITHMS)
        raise ValueError(f"unknown algorithm {algorithm!r}; expected one of {valid}")
    if not schedules and algorithm == "two":
        raise ValueError(
            "schedules=False supports the dual-search algorithms "
            "('three_halves', 'eps'), not 'two'"
        )
    return variant


@dataclass(frozen=True)
class SweepPoint:
    """Bounds-only outcome of one sweep entry (no schedule materialized).

    Field for field the certificate data of the ``SolveResult`` a full
    solve at this machine count returns: the same accepted ``T``, the
    same proven ``ratio_bound``, the same ``opt_lower_bound``.  The
    schedule itself (makespan ≤ ``makespan_bound``) can be built on
    demand with ``solve(instance.with_machines(m), ...)``.
    """

    m: int
    variant: Variant
    algorithm: str
    T: Time
    ratio_bound: Fraction
    opt_lower_bound: Time
    accept_calls: int

    @property
    def makespan_bound(self) -> Time:
        """Proven ceiling on the (buildable) schedule's makespan.

        The dual constructions guarantee makespan ≤ (3/2)·T at the
        accepted ``T``; the trivial closed forms are exact.
        """
        if self.algorithm == "trivial":
            return self.T
        return Fraction(3, 2) * self.T


def _trivial_point(instance: Instance, variant: Variant) -> Optional[SweepPoint]:
    """The m = 1 / m ≥ n closed forms of the trivial solve paths."""
    if instance.m == 1:
        total = Fraction(instance.total_load)  # serial schedule is optimal
        return SweepPoint(
            m=1, variant=variant, algorithm="trivial", T=total,
            ratio_bound=Fraction(1), opt_lower_bound=total, accept_calls=0,
        )
    if variant is not Variant.SPLITTABLE and instance.m >= instance.n:
        cmax = Fraction(setup_plus_tmax(instance))  # one job (+setup) per machine
        return SweepPoint(
            m=instance.m, variant=variant, algorithm="trivial", T=cmax,
            ratio_bound=Fraction(1), opt_lower_bound=cmax, accept_calls=0,
        )
    return None


def _bounds_point(
    instance: Instance,
    variant: Variant,
    algorithm: Algorithm,
    eps: Fraction,
    kernel: Kernel,
    use_grid: bool,
) -> SweepPoint:
    """One bounds-only solve: search, certify, skip the construction."""
    trivial = _trivial_point(instance, variant)
    if trivial is not None:
        return trivial
    lb = lower_bound(instance, variant)
    fast = validate_kernel(kernel)
    ctx = instance.fast_ctx() if fast else None
    m = instance.m

    if algorithm == "eps":
        from .api import _dual_for

        # Same accept predicate solve(..., "eps") wires up (build discarded:
        # bounds mode never constructs).
        accept, _ = _dual_for(instance, variant, kernel)
        grid = None
        if fast and use_grid:
            kind = {
                Variant.SPLITTABLE: "split",
                Variant.PREEMPTIVE: "pmtn",
                Variant.NONPREEMPTIVE: "nonp",
            }[variant]
            grid = batchdual.grid_accept_fn(ctx, kind, mode="alpha")
        sr = binary_search_dual(
            instance, variant, accept, build=None, eps=eps, grid_accept=grid
        )
        return SweepPoint(
            m=m, variant=variant, algorithm="eps", T=sr.T,
            ratio_bound=sr.ratio_bound,
            opt_lower_bound=max(lb, sr.certificate_lo),
            accept_calls=sr.accept_calls,
        )

    if algorithm != "three_halves":
        raise ValueError(
            f"schedules=False supports the dual-search algorithms "
            f"('three_halves', 'eps'), not {algorithm!r}"
        )

    if variant is Variant.SPLITTABLE:
        T_star, calls = find_flip_splittable(
            instance, kernel=kernel, ctx=ctx, use_grid=use_grid and fast
        )
        return SweepPoint(
            m=m, variant=variant, algorithm="three_halves", T=T_star,
            ratio_bound=Fraction(3, 2), opt_lower_bound=max(lb, T_star),
            accept_calls=calls,
        )
    if variant is Variant.PREEMPTIVE:
        T_star, T_witness, calls = find_flip_pmtn(
            instance, kernel=kernel, ctx=ctx, use_grid=use_grid and fast
        )
        ratio = (
            Fraction(3, 2) * T_witness / T_star if T_star else Fraction(3, 2)
        )
        return SweepPoint(
            m=m, variant=variant, algorithm="three_halves", T=T_witness,
            ratio_bound=ratio, opt_lower_bound=max(lb, T_star),
            accept_calls=calls,
        )
    sr = three_halves_nonpreemptive(
        instance, kernel=kernel, ctx=ctx, use_grid=use_grid and fast,
        build_schedule=False,
    )
    return SweepPoint(
        m=m, variant=variant, algorithm="three_halves", T=sr.T,
        ratio_bound=Fraction(3, 2),
        opt_lower_bound=max(lb, sr.certificate_lo),
        accept_calls=sr.accept_calls,
    )


#: Probe kind of each variant's dual test in the fused/grid kernels.
_PROBE_KIND = {
    Variant.SPLITTABLE: "split",
    Variant.PREEMPTIVE: "pmtn",
    Variant.NONPREEMPTIVE: "nonp",
}

#: Shape-aware grid auto-policy: per search shape a ``(block_min,
#: work_max)`` window — the grid engages only when the candidate-block
#: size reaches ``block_min`` (vectorization width to amortize the numpy
#: call overhead) *and* the product ``block × c`` stays under
#: ``work_max`` (every grid candidate touches all ``c`` classes, while a
#: scalar probe bisects sorted prefix views in O(log c); the blow-up
#: must stay bounded).  Calibrated by Experiment S3 (``python -m
#: repro.experiments gridcross``), re-run for PR 9 on the scaled-integer
#: plans:
#:
#: * ``pmtn`` flip search — grid wins 1.06–1.15× for block×c in
#:   ≈ 10k–26k, parity at 51k, loses below block ≈ 64;
#: * ``split`` flip search — parity (0.91–1.01×) across the same band;
#:   kept engaged there so the shared-candidate batched calls stay
#:   exercised at no measured cost;
#: * ``eps`` — the dyadic ε-grid (129 candidates for ε = 1/100) now
#:   loses at every measured class count (0.01–0.24×): the pair-native
#:   scalar bisection needs only ~7 probes, so the grid's 129 full-width
#:   evaluations never amortize.  Never auto-engaged;
#: * ``nonp`` — PR 5's ``class_tmax`` short-circuit keeps the scalar
#:   probes ahead everywhere re-measured (up to c = 3200).  Never
#:   auto-engaged.
#:
#: Forced tiers stay available via ``use_grid=True`` and their
#: bit-identity stays tested regardless of the policy.
GRID_POLICY: dict[str, tuple[int, int]] = {
    "split": (64, 64_000),
    "pmtn": (64, 32_000),
    "nonp": (0, 0),
    "eps": (0, 0),
}


def _grid_block_estimate(algorithm: Algorithm, eps: Optional[Fraction], c: int) -> int:
    """Candidates per batched grid call for this search shape.

    The ε-search probes one dyadic grid of ``2^r + 1`` points with
    ``2^r ≥ 1/ε`` (:func:`~repro.algos.search.eps_probe_plan`); the flip
    searches narrow candidate lists of at most ``c + 2`` points in
    blocks capped at :data:`~repro.algos.search.GRID_BLOCK` interior
    candidates (:func:`~repro.algos.search.right_interval_plan`), as
    does the Theorem-8 integer search.
    """
    if algorithm == "eps" and eps is not None and eps > 0:
        r = 0
        while (1 << r) * eps.numerator < eps.denominator:
            r += 1
        return (1 << r) + 1
    return min(c + 2, GRID_BLOCK)


def _resolve_use_grid(
    use_grid: Optional[bool],
    kernel: Kernel,
    variant: Variant,
    c: int,
    algorithm: Algorithm = "three_halves",
    eps: Optional[Fraction] = None,
) -> bool:
    """Shape-aware auto-policy for the vectorized grid evaluators.

    A grid round evaluates its whole candidate block at once where the
    scalar search would bisect it with ~log₂(block) probes, and every
    grid candidate costs kernel work linear in the class count — the
    numpy constant-factor win has to amortize that blow-up.  ``None``
    therefore engages a kind's grid only while the product of the
    search shape's candidate-block size (:func:`_grid_block_estimate`)
    and the class count stays under the kind's measured ceiling
    (:data:`GRID_POLICY`).  ``True`` forces grids and requires
    numpy (fails loudly rather than silently degrading to
    candidate-by-candidate scalar loops); ``False`` forces scalar
    probing.
    """
    if use_grid is None:
        if not (batchdual.HAVE_NUMPY and kernel == "fast"):
            obs_count("dispatch.scalar")
            return False
        shape = "eps" if algorithm == "eps" else _PROBE_KIND[variant]
        block_min, work_max = GRID_POLICY[shape]
        block = _grid_block_estimate(algorithm, eps, c)
        grid = block >= block_min and block * c <= work_max
        obs_count("dispatch.grid" if grid else "dispatch.scalar")
        return grid
    if use_grid and not batchdual.HAVE_NUMPY:
        raise RuntimeError("use_grid=True but numpy is not installed")
    obs_count("dispatch.grid" if use_grid else "dispatch.scalar")
    return bool(use_grid)


def _grid_safe_for(ctx, instance: Instance, variant: Variant) -> bool:
    """Will this instance's search candidates clear the int64 precheck?

    Batched grid calls stay *correct* on overflow-prone instances (each
    call falls back to the scalar kernel), but a fallen-back grid call
    evaluates every candidate of its block — e.g. the full dyadic ε-grid
    — sequentially, which is slower than the plain bisection it
    replaced.  This probes :func:`batchdual._grid_is_safe` once per
    sweep point with a representative candidate envelope (the search
    window ``[T_min, 2·T_min]`` at denominators up to ``1024·2m`` — a
    superset of the dyadic refinements and class-jump denominators seen
    in practice) and keeps grids off when it does not clear.
    """
    tmin = t_min(instance, variant)
    max_td = tmin.denominator * 1024 * max(1, 2 * instance.m)
    lo = tmin.numerator * (max_td // tmin.denominator)
    return batchdual._grid_is_safe(ctx, [max(1, lo), 2 * lo], [max_td, max_td])


def sweep_machines(
    instance: Instance,
    ms: Iterable[int],
    variant: Variant = Variant.NONPREEMPTIVE,
    algorithm: Algorithm = "three_halves",
    eps: Fraction = Fraction(1, 100),
    *,
    kernel: Kernel = "fast",
    schedules: bool = True,
    use_grid: Optional[bool] = None,
) -> Union[list[SolveResult], list[SweepPoint]]:
    """Solve ``instance`` across machine counts ``ms``, sharing every cache.

    The instance's job/class data is machine-count independent, so one
    set of per-class views and one fast-kernel context back the whole
    sweep (``with_machines(..., share_caches=True)`` +
    :meth:`DualContext.for_m`); only the per-``m`` search and (with
    ``schedules=True``) the per-``m`` construction remain.

    ``schedules=True`` returns full :class:`SolveResult` objects,
    bit-identical to ``[solve(instance.with_machines(m), ...) for m in
    ms]``.  ``schedules=False`` returns :class:`SweepPoint` bounds
    (same certified ``T``/ratio/lower bound, no schedule) and lets the
    searches run on the vectorized grid kernel — the fast path for
    ``T*``-curve workloads.

    ``use_grid`` applies to the bounds-only searches: ``None`` (default)
    engages the numpy grid evaluators when numpy is importable, the
    kernel is ``"fast"`` and the instance clears the int64 overflow
    probe; ``False`` forces scalar probing; ``True`` requires numpy.
    Full-schedule sweeps always use the scalar searches — explicitly
    forcing ``use_grid=True`` there raises rather than silently
    degrading.  (Since PR 4 even the non-preemptive construction is
    sweep-friendly: Algorithm 6 runs object-free on the index-based
    :class:`~repro.core.itemstore.ItemStore`, reuses the shared
    per-class prefix/Q-block caches across points, skips the already-
    decided Theorem-9 re-test, and hands schedules over lazily — the
    full-sweep ratio over the looped baseline reaches ~2× like the
    other variants.)
    """
    validate_kernel(kernel)
    variant = _validate_request(variant, algorithm, schedules)
    if schedules and use_grid:
        raise ValueError(
            "use_grid=True applies to bounds-only sweeps (schedules=False); "
            "full-schedule sweeps use the scalar searches"
        )
    grid = (
        False if schedules
        else _resolve_use_grid(use_grid, kernel, variant, instance.c, algorithm, eps)
    )
    if kernel == "fast":
        ctx = instance.fast_ctx()  # ensure the shared context exists pre-sweep
        if grid and use_grid is None and not _grid_safe_for(ctx, instance, variant):
            grid = False  # auto policy: overflow-prone grids would fall back per call
    out: list = []
    for m in ms:
        inst_m = instance.with_machines(m, share_caches=True)
        if schedules:
            out.append(solve(inst_m, variant, algorithm, eps, kernel=kernel))
        else:
            out.append(
                _bounds_point(inst_m, variant, algorithm, eps, kernel, grid)
            )
    return out


def solve_many(
    instances: Sequence[Instance],
    variant: Variant = Variant.NONPREEMPTIVE,
    algorithm: Algorithm = "three_halves",
    eps: Fraction = Fraction(1, 100),
    *,
    kernel: Kernel = "fast",
    schedules: bool = True,
    use_grid: Optional[bool] = None,
) -> Union[list[SolveResult], list[SweepPoint]]:
    """Solve a stream of instances, sharing caches between equal inputs.

    Instances with identical ``(setups, jobs)`` — machine-count sweeps,
    repeated service requests — are backed by one representative's
    caches and fast-kernel context; distinct inputs solve exactly as a
    plain loop would.  Output order matches the input order and every
    entry is bit-identical to the corresponding ``solve(...)`` call
    (or, with ``schedules=False``, to its certificate fields).
    """
    validate_kernel(kernel)
    variant = _validate_request(variant, algorithm, schedules)
    if schedules and use_grid:
        raise ValueError(
            "use_grid=True applies to bounds-only solves (schedules=False); "
            "full-schedule solves use the scalar searches"
        )
    reps: dict[tuple, Instance] = {}
    grid_by_key: dict[tuple, bool] = {}  # overflow probe is per input, not sticky
    out: list = []
    for inst in instances:
        key = (inst.setups, inst.jobs)
        rep = reps.get(key)
        if rep is None:
            reps[key] = inst
            grid = (
                False if schedules
                else _resolve_use_grid(use_grid, kernel, variant, inst.c, algorithm, eps)
            )
            if kernel == "fast":
                ctx = inst.fast_ctx()
                if grid and use_grid is None and not _grid_safe_for(ctx, inst, variant):
                    grid = False  # auto policy, see sweep_machines
            grid_by_key[key] = grid
            shared = inst
        else:
            shared = rep.with_machines(inst.m, share_caches=True)
        if schedules:
            out.append(solve(shared, variant, algorithm, eps, kernel=kernel))
        else:
            out.append(
                _bounds_point(shared, variant, algorithm, eps, kernel, grid_by_key[key])
            )
    return out


# --------------------------------------------------------------------------- #
# heterogeneous micro-batches (the service coalescing entry point)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class BatchItem:
    """One coalesced request of :func:`solve_batch`.

    Unlike the homogeneous :func:`solve_many` stream, every item carries
    its own variant/algorithm/mode — the shape of a service micro-batch,
    where concurrent requests against the same instance data may ask for
    different things.  ``ms`` turns the item into a machine sweep
    (:func:`sweep_machines` over those counts, the instance's own ``m``
    ignored); otherwise the item is a single solve at ``instance.m``.
    ``schedules=False`` resolves certified bounds only
    (:class:`SweepPoint`), skipping construction.
    """

    instance: Instance
    variant: Variant = Variant.NONPREEMPTIVE
    algorithm: Algorithm = "three_halves"
    eps: Fraction = field(default_factory=lambda: Fraction(1, 100))
    schedules: bool = True
    ms: Optional[tuple[int, ...]] = None


def _grid_safe_cached(instance: Instance, variant: Variant) -> bool:
    """The :func:`_grid_safe_for` probe, memoized on the shared cache set.

    The probe is per ``(variant, m)`` (the candidate envelope depends on
    ``T_min``); service streams re-solve the same fingerprints for the
    same machine counts over and over, so the verdict is parked in the
    instance's shared misc cache — evicted (and re-probed) together with
    everything else on :meth:`Instance.release_caches`.
    """
    key = ("grid_safe", variant.value, instance.m)
    cached = instance._misc_cache.get(key)
    if cached is None:
        cached = _grid_safe_for(instance.fast_ctx(), instance, variant)
        instance._misc_cache[key] = cached
    return cached


def _solve_item(
    shared: Instance,
    variant: Variant,
    item: BatchItem,
    kernel: Kernel,
    use_grid: Optional[bool],
):
    """One item of :func:`solve_batch` on the sequential per-item path."""
    if item.ms is not None:
        return sweep_machines(
            shared, item.ms, variant, item.algorithm, item.eps,
            kernel=kernel, schedules=item.schedules, use_grid=use_grid,
        )
    if item.schedules:
        return solve(shared, variant, item.algorithm, item.eps, kernel=kernel)
    grid = _resolve_use_grid(
        use_grid, kernel, variant, shared.c, item.algorithm, item.eps
    )
    if grid and use_grid is None and not _grid_safe_cached(shared, variant):
        grid = False  # auto policy, see sweep_machines
    return _bounds_point(shared, variant, item.algorithm, item.eps, kernel, grid)


def solve_batch(
    items: Sequence[BatchItem],
    *,
    kernel: Kernel = "fast",
    reps: Optional[MutableMapping[str, Instance]] = None,
    use_grid: Optional[bool] = None,
    cancels: Optional[Sequence[Optional[CancelToken]]] = None,
    before_solve: Optional[Callable[[BatchItem], None]] = None,
    xbatch: bool = False,
) -> list:
    """Solve one heterogeneous micro-batch, coalescing equal instances.

    The entry point the service shards dispatch through.  Items whose
    instances share a :meth:`~repro.core.instance.Instance.fingerprint`
    are backed by one representative's cache set (Fraction/sorted views,
    ``DualContext``) exactly like :func:`solve_many`; unlike it, the
    representative table ``reps`` (fingerprint → instance) is **caller
    owned**, so warm caches persist *across* batches — pass the same
    mapping (e.g. an LRU that evicts via ``release_caches()``) on every
    call and repeated service traffic never rebuilds a hot instance's
    caches.  Passing nothing coalesces within the batch only.

    The function keeps no module state and mutates nothing but ``reps``,
    so it is reentrant: concurrent callers with *disjoint* ``reps``
    mappings (the service guarantees this by sharding on fingerprint)
    never share a lazily-filled cache across threads.

    Every name is validated before the first solve (one clear error, no
    partial results), and the output list matches ``items`` order:
    ``SolveResult`` | :class:`SweepPoint` for single solves, a list
    thereof for ``ms`` sweeps — each bit-identical to the corresponding
    fresh-instance ``solve()`` / ``sweep_machines`` call.

    ``cancels`` (aligned with ``items``) attaches a per-item
    :class:`~repro.core.cancel.CancelToken`: each item solves inside a
    ``cancel_scope`` of its token, so an expired deadline aborts that
    item's search at the next probe boundary with
    :class:`~repro.core.cancel.SolveCancelled` — and output stays
    bit-identical whenever no token fires.  ``before_solve`` is an
    instrumentation hook invoked with each item just before its solve —
    the service's fault-injection harness hangs delays/raises off it;
    production callers leave it ``None``.

    ``xbatch=True`` solves the batch through the **cross-instance
    lockstep coordinator**: every eligible item's bracket search runs as
    a probe plan (:mod:`repro.algos.search`), the coordinator advances
    all plans one round at a time, and each round's same-kind probes —
    across *different* instances — fuse into one padded
    :class:`repro.core.xbatch.BatchDualContext` kernel call.  Results,
    probe counts, and raised errors are bit-identical to ``xbatch=False``
    (each plan is the very generator the sequential path drives, and the
    fused kernels are differentially pinned against the scalar ones);
    items the coordinator cannot fuse — ``ms`` sweeps, ``"two"``, the
    trivial closed forms — fall back to the per-item path inside the
    same call, as does the whole batch on the fraction kernel.
    """
    validate_kernel(kernel)
    prepared = [
        (item, _validate_request(item.variant, item.algorithm, item.schedules))
        for item in items
    ]
    if use_grid and any(item.schedules for item in items):
        raise ValueError(
            "use_grid=True applies to bounds-only items (schedules=False); "
            "full-schedule items use the scalar searches"
        )
    if cancels is not None and len(cancels) != len(items):
        raise ValueError(
            f"cancels must align with items: {len(cancels)} tokens "
            f"for {len(items)} items"
        )
    if reps is None:
        reps = {}
    if xbatch and kernel == "fast":
        return _solve_batch_lockstep(
            prepared, kernel, reps, use_grid, cancels, before_solve
        )
    out: list = []
    for idx, (item, variant) in enumerate(prepared):
        token = cancels[idx] if cancels is not None else None
        with cancel_scope(token):
            if before_solve is not None:
                before_solve(item)
            if token is not None:
                token.check()  # skip work that is already past its deadline
            inst = item.instance
            fp = inst.fingerprint()
            rep = reps.get(fp)
            if rep is None:
                reps[fp] = inst
                shared = inst
            elif rep is inst:
                shared = inst
            else:
                shared = rep.with_machines(inst.m, share_caches=True)
            out.append(_solve_item(shared, variant, item, kernel, use_grid))
    return out


# --------------------------------------------------------------------------- #
# cross-instance lockstep coordinator (xbatch=True)
# --------------------------------------------------------------------------- #

@dataclass
class _LockstepRun:
    """One item's in-flight probe plan inside the coordinator."""

    idx: int
    plan: object                     # probe-plan generator (see algos.search)
    token: Optional[CancelToken]
    member: int                      # row index into the BatchDualContext
    m: int                           # machine count (pmtn_base accept formula)
    finish: Callable                 # StopIteration.value -> output object
    response: object = None          # verdicts to send into the next round


def _lockstep_prepare(
    shared: Instance,
    variant: Variant,
    item: BatchItem,
    kernel: Kernel,
    use_grid: Optional[bool],
):
    """``(plan, finish)`` for a fusable item, ``None`` for the fallbacks.

    The plan is the identical generator the sequential entry point for
    this item drives (:func:`~repro.algos.search.eps_probe_plan` /
    :func:`~repro.algos.search.integer_probe_plan` / the flip plans), so
    the item's probe sequence under lockstep equals its solo sequence by
    construction.  ``finish`` runs the per-item construction and mirrors
    the :class:`SolveResult` / :class:`SweepPoint` assembly of
    ``solve()`` / :func:`_bounds_point` field for field.
    """
    if item.ms is not None or item.algorithm == "two":
        return None
    if shared.m == 1 or (variant is not Variant.SPLITTABLE and shared.m >= shared.n):
        return None  # trivial closed forms: no probes to fuse
    if item.schedules:
        grid = False  # full-schedule solves always use the scalar searches
    else:
        grid = _resolve_use_grid(
            use_grid, kernel, variant, shared.c, item.algorithm, item.eps
        )
        if grid and use_grid is None and not _grid_safe_cached(shared, variant):
            grid = False  # auto policy, see sweep_machines
    kind = _PROBE_KIND[variant]
    lb = lower_bound(shared, variant)
    m = shared.m

    if item.algorithm == "eps":
        if item.eps <= 0:
            raise ValueError("eps must be positive")
        mode = "alpha" if variant is Variant.PREEMPTIVE else ""
        plan = eps_probe_plan(t_min(shared, variant), item.eps, kind, mode, grid=grid)

        def finish(res):
            T, lo, calls = res
            T, lo = fast_fraction(*T), fast_fraction(*lo)
            ratio = Fraction(3, 2) * T / lo
            if item.schedules:
                return SolveResult(
                    schedule=_build_for(shared, variant, kernel, T),
                    variant=variant, algorithm="eps", T=T,
                    ratio_bound=ratio, opt_lower_bound=max(lb, lo),
                )
            return SweepPoint(
                m=m, variant=variant, algorithm="eps", T=T, ratio_bound=ratio,
                opt_lower_bound=max(lb, lo), accept_calls=calls,
            )

        return plan, finish

    if variant is Variant.SPLITTABLE:
        plan = flip_plan_splittable(shared, grid=grid)

        def finish(res):
            T_star, calls = res
            T_star = fast_fraction(*T_star)
            if item.schedules:
                return SolveResult(
                    schedule=split_dual_schedule(shared, T_star, kernel=kernel),
                    variant=variant, algorithm="three_halves", T=T_star,
                    ratio_bound=Fraction(3, 2), opt_lower_bound=max(lb, T_star),
                )
            return SweepPoint(
                m=m, variant=variant, algorithm="three_halves", T=T_star,
                ratio_bound=Fraction(3, 2), opt_lower_bound=max(lb, T_star),
                accept_calls=calls,
            )

        return plan, finish

    if variant is Variant.PREEMPTIVE:
        plan = flip_plan_pmtn(shared, grid=grid)

        def finish(res):
            T_star, T_witness, calls = res
            T_star = fast_fraction(*T_star)
            T_witness = fast_fraction(*T_witness)
            ratio = (
                Fraction(3, 2) * T_witness / T_star if T_star else Fraction(3, 2)
            )
            if item.schedules:
                return SolveResult(
                    schedule=pmtn_dual_schedule(
                        shared, T_witness, mode="gamma", kernel=kernel
                    ),
                    variant=variant, algorithm="three_halves", T=T_witness,
                    ratio_bound=ratio, opt_lower_bound=max(lb, T_star),
                )
            return SweepPoint(
                m=m, variant=variant, algorithm="three_halves", T=T_witness,
                ratio_bound=ratio, opt_lower_bound=max(lb, T_star),
                accept_calls=calls,
            )

        return plan, finish

    plan = integer_probe_plan(t_min(shared, variant), kind, grid=grid)

    def finish(res):
        T, calls = res
        T = fast_fraction(*T)
        if item.schedules:
            return SolveResult(
                schedule=nonp_dual_schedule(shared, T, kernel=kernel, pretested=True),
                variant=variant, algorithm="three_halves", T=T,
                ratio_bound=Fraction(3, 2), opt_lower_bound=max(lb, T),
            )
        return SweepPoint(
            m=m, variant=variant, algorithm="three_halves", T=T,
            ratio_bound=Fraction(3, 2), opt_lower_bound=max(lb, T),
            accept_calls=calls,
        )

    return plan, finish


def _build_for(shared: Instance, variant: Variant, kernel: Kernel, T: Time):
    """The eps path's build hook (mirrors ``api._dual_for``'s builders)."""
    if variant is Variant.SPLITTABLE:
        return split_dual_schedule(shared, T, kernel=kernel)
    if variant is Variant.PREEMPTIVE:
        return pmtn_dual_schedule(shared, T, kernel=kernel)
    return nonp_dual_schedule(shared, T, kernel=kernel)


def _solve_batch_lockstep(
    prepared: Sequence[tuple[BatchItem, Variant]],
    kernel: Kernel,
    reps: MutableMapping[str, Instance],
    use_grid: Optional[bool],
    cancels: Optional[Sequence[Optional[CancelToken]]],
    before_solve: Optional[Callable[[BatchItem], None]],
) -> list:
    """Advance all items' probe plans in rounds, fusing each round's probes.

    Contract notes (all pinned by ``tests/test_xbatch.py``):

    * **Bit-identity** — each plan is the sequential path's own
      generator and every fused verdict is bit-identical to the scalar
      kernel, so outputs (including ``accept_calls``) match
      ``xbatch=False`` exactly.
    * **First-error** — the sequential loop raises the smallest-index
      item's error and never starts later items.  Here the prelude stops
      at the first failing item, earlier items still run to completion
      (one of them may produce an even earlier error), and the
      smallest-index error is raised at the end; plans past it are
      abandoned unfinished.
    * **Cancellation** — a token is polled exactly where the sequential
      evaluators poll (once per "accept"/"accept_block" request; never
      on "verdict" requests); a fired token removes only its own item
      from the round, the rest of the fused batch continues untouched.
    """
    from ..core.xbatch import BatchDualContext

    n = len(prepared)
    out: list = [None] * n
    errors: dict[int, Exception] = {}
    xctx = BatchDualContext([])
    runs: dict[int, _LockstepRun] = {}

    # ---- prelude: admission + rep resolution + fallbacks, item order -- #
    for idx, (item, variant) in enumerate(prepared):
        token = cancels[idx] if cancels is not None else None
        try:
            with cancel_scope(token):
                if before_solve is not None:
                    before_solve(item)
                if token is not None:
                    token.check()
                inst = item.instance
                fp = inst.fingerprint()
                rep = reps.get(fp)
                if rep is None:
                    reps[fp] = inst
                    shared = inst
                elif rep is inst:
                    shared = inst
                else:
                    shared = rep.with_machines(inst.m, share_caches=True)
                prep = _lockstep_prepare(shared, variant, item, kernel, use_grid)
                if prep is None:
                    obs_count("xbatch.straggler")
                    out[idx] = _solve_item(shared, variant, item, kernel, use_grid)
                else:
                    plan, finish = prep
                    runs[idx] = _LockstepRun(
                        idx=idx, plan=plan, token=token,
                        member=xctx.member_index(shared.fast_ctx()),
                        m=shared.m, finish=finish,
                    )
        except Exception as exc:  # noqa: BLE001 - first-error contract
            errors[idx] = exc
            break  # later items never start, like the sequential loop

    # ---- lockstep rounds ---------------------------------------------- #
    while runs:
        min_err = min(errors) if errors else None
        pending: list[tuple[int, object]] = []
        for idx in sorted(runs):
            run = runs[idx]
            if min_err is not None and idx > min_err:
                # This item's result would be discarded by the raise below.
                run.plan.close()
                del runs[idx]
                continue
            try:
                req = run.plan.send(run.response)
            except StopIteration as stop:
                del runs[idx]
                try:
                    with cancel_scope(run.token):
                        out[idx] = run.finish(stop.value)
                except Exception as exc:  # noqa: BLE001
                    errors[idx] = exc
                continue
            except Exception as exc:  # noqa: BLE001
                del runs[idx]
                errors[idx] = exc
                continue
            run.response = None
            pending.append((idx, req))

        groups: dict[tuple[str, str], list] = {}
        for idx, req in pending:
            run = runs[idx]
            if req.op in ("accept", "accept_block") and run.token is not None:
                try:
                    run.token.check()  # the sequential probe-boundary poll
                except SolveCancelled as exc:
                    run.plan.close()
                    del runs[idx]
                    errors[idx] = exc
                    continue
            groups.setdefault((req.kind, req.mode), []).append((idx, req))

        if groups:
            obs_count("xbatch.fused_rounds")
        for (kind, mode), entries in groups.items():
            rows = []
            for idx, req in entries:
                member = runs[idx].member
                rows.extend((member, tn, td) for tn, td in req.times)
            verdicts = xctx.evaluate(kind, mode, rows)
            pos = 0
            for idx, req in entries:
                vs = verdicts[pos : pos + len(req.times)]
                pos += len(req.times)
                if req.op == "verdict":
                    runs[idx].response = vs
                elif kind == "pmtn_base":
                    m = runs[idx].m
                    runs[idx].response = [
                        m * tn >= load * td and m >= m_prime
                        for (tn, td), (load, m_prime) in zip(req.times, vs)
                    ]
                else:
                    runs[idx].response = [v.accepted for v in vs]

    if errors:
        raise errors[min(errors)]
    return out
