"""Class Jumping for splittable scheduling (Algorithm 1, Theorem 3).

Finds the exact acceptance flip point ``T* = min{T : Theorem-7 test
accepts}`` with ``O(log(c+m))`` dual tests after O(n) preprocessing, giving
a true 3/2-approximation in ``O(n + c log(c+m))``:

1. a *right interval* ``(A₁, T₁]`` between consecutive doubled setup values
   ``2s̃`` — the expensive/cheap partition is constant on ``[A₁, T₁)``;
2. the *fastest jumping class* ``f`` (max ``P_f``) partitions the interval
   by its jumps ``2P_f/k``; a bisection over ``k`` narrows to a window
   between consecutive ``f``-jumps;
3. by Lemma 3 every other class jumps at most once inside that window, so
   the ≤ c remaining jumps are sorted and bisected to a jump-free right
   interval ``(T_fail, T_ok]``;
4. on ``[T_fail, T_ok)`` the load ``L_split`` and machine demand ``m_exp``
   are constant, so the flip is either ``T_ok`` itself or
   ``T_new = L_split(T_fail)/m`` (step 9's case analysis).

Correctness leans on the monotonicity of ``L_split`` and ``m_exp`` in ``T``
(larger ``T`` ⟹ fewer forced setups/machines), which makes every point
below the returned value provably rejected; the returned value is therefore
≤ OPT and the built schedule is a 3/2-approximation.

The probe sequence lives in :func:`flip_plan_splittable`, a resumable
probe plan (see :mod:`repro.algos.search`): :func:`find_flip_splittable`
drives it against the per-instance kernel, and the xbatch coordinator
drives the *same* generator in lockstep with other items' searches —
identical probes by construction.

The plan runs on the scaled-integer tier: candidates are normalized
``(num, den)`` pairs (canonical per rational, so every probe value, memo
key and jump set matches the historic Fraction plan bit-for-bit), and the
only Fractions are the ones the *fraction-kernel* evaluator branch hands
to the reference dual test, plus the returned ``T*``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..core import batchdual
from ..core.bounds import Variant, t_min
from ..core.cancel import check_cancelled
from ..core.fastnum import (
    DualContext,
    SplitVerdict,
    as_pair,
    fast_split_test,
    norm_pair,
    pair_ceil,
    pair_cmp,
    pair_key,
    validate_kernel,
)
from ..core.instance import Instance
from ..core.numeric import Time, fast_fraction
from ..core.schedule import Schedule
from .search import (
    Pair,
    ProbeRequest,
    drive_plan,
    plan_accept,
    right_interval_plan,
)
from .splittable import split_dual_schedule, split_dual_test


@dataclass(frozen=True)
class JumpSearchResult:
    """Flip point, schedule built at it, and bookkeeping for ablations."""

    T_star: Time
    schedule: Schedule
    accept_calls: int
    #: proven approximation factor of the schedule (always 3/2 here since
    #: T_star ≤ OPT and makespan ≤ (3/2)·T_star).
    ratio_bound: Fraction = Fraction(3, 2)


def three_halves_splittable(
    instance: Instance,
    *,
    kernel: str = "fast",
    ctx: Optional[DualContext] = None,
    use_grid: bool = False,
) -> JumpSearchResult:
    """Theorem 3 — 3/2-approximation in ``O(n + c log(c+m))``."""
    T_star, calls = find_flip_splittable(
        instance, kernel=kernel, ctx=ctx, use_grid=use_grid
    )
    schedule = split_dual_schedule(instance, T_star, kernel=kernel)
    return JumpSearchResult(T_star=T_star, schedule=schedule, accept_calls=calls)


def find_flip_splittable(
    instance: Instance,
    *,
    kernel: str = "fast",
    ctx: Optional[DualContext] = None,
    use_grid: bool = False,
) -> tuple[Time, int]:
    """Locate ``T* = min accepted T`` via Algorithm 1. Returns (T*, #tests).

    The ``O(log(c+m))`` accept probes run on the scaled-integer kernel by
    default; ``kernel="fraction"`` probes the Theorem-7 reference instead
    (bit-identical decisions, differential-tested).  ``ctx`` injects a
    pre-built (possibly :meth:`~repro.core.fastnum.DualContext.for_m`-
    shared) probe context; ``use_grid=True`` evaluates the candidate
    lists through the vectorized grid kernel (identical flip, since
    ``L_split``/``m_exp`` are monotone).  All probes are memoized, so
    interval endpoints shared across the search phases are tested once.
    """
    fast = validate_kernel(kernel)
    if ctx is None:
        ctx = instance.fast_ctx() if fast else None
    grid = use_grid and fast
    T, calls = drive_plan(
        flip_plan_splittable(instance, grid=grid),
        split_probe_evaluator(instance, fast=fast, ctx=ctx, grid=grid),
    )
    return fast_fraction(*T), calls


def split_probe_evaluator(
    instance: Instance, *, fast: bool, ctx: Optional[DualContext], grid: bool
):
    """Kernel dispatch for :func:`flip_plan_splittable` probe requests.

    "accept"/"accept_block" requests poll cancellation at the probe
    boundary (the MemoAccept contract); "verdict" requests mirror the raw
    ``core()`` calls of the step-9 case analysis, which never polled.
    The fraction branch is the pair→Fraction boundary: each probed pair
    is rebuilt for the reference test (integral loads come back coerced
    to int so the plan's case analysis stays on pairs).
    """
    grid_fn = batchdual.grid_accept_pairs_fn(ctx, "split") if grid else None

    def evaluate(req: ProbeRequest):
        if req.op == "verdict":
            if fast:
                return [fast_split_test(ctx, tn, td) for tn, td in req.times]
            duals = (
                split_dual_test(instance, fast_fraction(tn, td))
                for tn, td in req.times
            )
            return [
                SplitVerdict(d.accepted, int(d.load), d.machines_exp) for d in duals
            ]
        check_cancelled()  # probe boundary: no partial state to unwind
        if req.op == "accept_block" and grid_fn is not None:
            return [bool(v) for v in grid_fn(list(req.times))]
        if fast:
            return [fast_split_test(ctx, tn, td).accepted for tn, td in req.times]
        return [
            split_dual_test(instance, fast_fraction(tn, td)).accepted
            for tn, td in req.times
        ]

    return evaluate


def flip_plan_splittable(instance: Instance, *, grid: bool = False):
    """Algorithm 1's probe sequence; returns ``(T_star, accept_calls)``.

    ``T_star`` comes back as a normalized pair; drivers rebuild the
    Fraction at the result boundary.
    """
    memo: dict[tuple[int, int], bool] = {}
    counted = [0]

    tn, td = as_pair(t_min(instance, Variant.SPLITTABLE))
    tmin = (tn, td)
    thi = norm_pair(2 * tn, td)
    if (yield from plan_accept(memo, counted, "split", "", tmin)):
        return tmin, counted[0]

    # ---- step 4: right interval between doubled setups ---------------- #
    # tmin < 2s < 2·tmin  ⟺  tn < 2·s·td < 2·tn  (setups are ints)
    setup_bounds = sorted(
        {2 * s for s in instance.setups if tn < 2 * s * td and s * td < tn}
    )
    candidates = [tmin] + [(b, 1) for b in setup_bounds] + [thi]
    A1, T1 = yield from right_interval_plan(candidates, memo, counted, "split", "", grid)
    # Partition (I_exp, I_chp) is constant on [A1, T1); evaluate it at A1.
    exp = tuple(
        i for i, s in enumerate(instance.setups) if 2 * s * A1[1] > A1[0]
    )

    if not exp:
        # No expensive classes: L_split constant on [A1, T1); the flip is
        # either T_new = L/m inside the interval or T1 itself.
        T = yield from _flip_on_constant_piece(instance, memo, counted, A1, T1)
        return T, counted[0]

    # ---- step 5: fastest jumping class f ------------------------------ #
    f = max(exp, key=lambda i: instance.processing(i))
    Pf2 = 2 * instance.processing(f)

    # ---- step 6: bisect over f's jumps 2P_f/k inside (A1, T1) --------- #
    # k-range of jumps strictly inside the interval: A1 < Pf2/k < T1.
    k_lo = max(1, pair_ceil(Pf2 * T1[1], T1[0]))
    if Pf2 * T1[1] >= k_lo * T1[0]:  # Pf2/k_lo >= T1
        k_lo += 1
    k_hi = (Pf2 * A1[1]) // A1[0]
    if k_hi >= k_lo and Pf2 * A1[1] <= k_hi * A1[0]:  # Pf2/k_hi <= A1
        k_hi -= 1
    lo_b, hi_b = A1, T1
    if k_hi >= k_lo:
        # candidate jumps are decreasing in k; build ascending candidate list
        jump_candidates = (
            [A1] + [norm_pair(Pf2, k) for k in range(k_hi, k_lo - 1, -1)] + [T1]
        )
        lo_b, hi_b = yield from right_interval_plan(
            jump_candidates, memo, counted, "split", "", grid
        )

    # ---- steps 7-8: collect the ≤ c jumps inside (lo_b, hi_b) --------- #
    inner: set[Pair] = set()
    for i in exp:
        Pi2 = 2 * instance.processing(i)
        if Pi2 <= 0:
            continue
        k_min = pair_ceil(Pi2 * hi_b[1], hi_b[0])
        if k_min > 0 and Pi2 * hi_b[1] >= k_min * hi_b[0]:  # Pi2/k_min >= hi_b
            k_min += 1
        k_max = (Pi2 * lo_b[1]) // lo_b[0] if lo_b[0] > 0 else 0
        if k_max > 0 and Pi2 * lo_b[1] <= k_max * lo_b[0]:  # Pi2/k_max <= lo_b
            k_max -= 1
        for k in range(max(k_min, 1), k_max + 1):
            inner.add(norm_pair(Pi2, k))
    # Lemma 3: at most one jump per class between consecutive f-jumps.
    assert len(inner) <= len(exp), "Lemma 3 violated: too many jumps in X"
    if inner:
        jump_list = [lo_b] + sorted(inner, key=pair_key) + [hi_b]
        T_fail, T_ok = yield from right_interval_plan(
            jump_list, memo, counted, "split", "", grid
        )
    else:
        T_fail, T_ok = lo_b, hi_b

    # ---- step 9: constant piece [T_fail, T_ok) ------------------------ #
    T = yield from _flip_on_constant_piece(instance, memo, counted, T_fail, T_ok)
    return T, counted[0]


def _flip_on_constant_piece(instance: Instance, memo, counted, T_fail: Pair, T_ok: Pair):
    """Step 9's case analysis on a jump-free right interval.

    ``L_split`` and ``m_exp`` are constant on ``[T_fail, T_ok)``; ``T_fail``
    is rejected and ``T_ok`` accepted.  The full ``(accepted, load,
    m_exp)`` verdict at ``T_fail`` comes back through a "verdict" probe
    (kernel-dispatched by the evaluator, unmemoized and uncounted exactly
    like the former raw ``core()`` call).
    """
    dual = (yield ProbeRequest("verdict", "split", "", (T_fail,)))[0]
    m = instance.m
    if m < dual.machines_exp:
        # the whole piece needs too many machines: everything < T_ok rejected
        return T_ok
    T_new = norm_pair(dual.load, m)
    if pair_cmp(T_new, T_ok) >= 0:
        # every T < T_ok has mT < L_split: rejected
        return T_ok
    # T_fail rejected by load ⟹ T_new = L/m > T_fail; accepted at T_new.
    assert pair_cmp(T_fail, T_new) < 0 < pair_cmp(T_ok, T_new)
    ok = yield from plan_accept(memo, counted, "split", "", T_new)
    assert ok
    return T_new
