"""Scaled-integer fast kernel for the dual-test hot path.

The per-``T`` dual tests of Theorems 5, 7 and 9 are probed ``O(log)`` times
per solve by the binary searches and Class Jumping.  The reference
implementations (:mod:`repro.algos.splittable` /
:mod:`repro.algos.pmtn_general` / :mod:`repro.algos.nonpreemptive`)
manipulate :class:`fractions.Fraction` throughout, paying an object
allocation plus a gcd normalization per arithmetic step.  This module
re-derives the same accept/reject decisions on machine integers.

**Representation.**  A makespan guess ``T = tn/td`` is carried as the exact
integer pair ``(tn, td)`` — its :class:`~fractions.Fraction`
numerator/denominator — and every derived quantity is pre-multiplied by the
scale ``td`` (or ``2·td`` where half-``T`` resolution is needed), making it
an exact machine integer:

* ``T − s_i``       →  ``tn − s_i·td``
* ``T/2`` vs ``s_i``→  ``tn`` vs ``2·s_i·td``
* ``α_i = ⌈P_i/(T−s_i)⌉`` → ``ceil_div(P_i·td, tn − s_i·td)``
* ``m·T ≥ L``       →  ``m·tn ≥ L·td``      (``L`` is always an integer)

Comparisons become integer cross-multiplications, so the accept/reject
boundary is **bit-exact** against the Fraction reference — proven by the
differential suite (``tests/test_fastnum_differential.py``) on every
generator-suite instance.  A fixed per-solve scale (e.g. ``D = 2m``) would
*not* be exact: Class-Jumping candidates ``2P_i/k`` have denominators ``k ≤
2m`` that need not divide ``2m``, and ε-search midpoints pick up powers of
two — hence the per-``T`` denominator.

:class:`DualContext` is the per-instance probe context: integer aggregates
plus per-class sorted job views (with prefix sums) that turn the per-class
job scans of the preemptive/non-preemptive tests into ``O(log n_i)``
bisections.  It is built once per instance (``Instance.fast_ctx()``) and
reused across all probes of a solve.
"""

from __future__ import annotations

from bisect import bisect_right
from fractions import Fraction
from functools import cmp_to_key
from math import gcd
from typing import TYPE_CHECKING, NamedTuple, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .instance import Instance

__all__ = [
    "DualContext",
    "SplitVerdict",
    "NonpVerdict",
    "PmtnVerdict",
    "as_pair",
    "norm_pair",
    "pair_add",
    "pair_sub",
    "pair_mul",
    "pair_mid",
    "pair_cmp",
    "pair_key",
    "pair_ceil",
    "round_half_even",
    "ceil_div",
    "floor_div",
    "scale_int",
    "fast_split_test",
    "fast_nonp_test",
    "fast_pmtn_test",
    "fast_base_core",
    "count_core",
    "count_scaled",
    "knapsack_order_cmp",
    "validate_kernel",
]


def validate_kernel(kernel: str) -> bool:
    """Check a ``kernel=`` argument; returns True iff it is ``"fast"``.

    Every public entry point that dispatches on the kernel name calls
    this, so a typo'd kernel raises instead of silently running the slow
    reference path.
    """
    if kernel not in ("fast", "fraction"):
        raise ValueError(f"unknown kernel {kernel!r}; expected 'fast' or 'fraction'")
    return kernel == "fast"


def knapsack_order_cmp(a: tuple[int, int, int], b: tuple[int, int, int]) -> int:
    """Greedy order for ``(key, profit, scaled_weight)`` int triples.

    Mirrors ``knapsack._greedy_order`` exactly: zero-weight items first,
    then profit density descending (integer cross-multiplication), profit
    descending, ``repr(key)`` ascending — including the *string* ordering
    of the repr tie-break.  Weights may be pre-multiplied by any common
    positive scale; the order is scale-invariant.
    """
    ia, pa, wa = a
    ib, pb, wb = b
    if (wa == 0) != (wb == 0):
        return -1 if wa == 0 else 1
    if wa != 0:
        lhs, rhs = pa * wb, pb * wa  # density cross-multiplication
        if lhs != rhs:
            return -1 if lhs > rhs else 1
    if pa != pb:
        return -1 if pa > pb else 1
    ra, rb = repr(ia), repr(ib)
    return 0 if ra == rb else (-1 if ra < rb else 1)


def as_pair(T) -> tuple[int, int]:
    """``T`` as an exact ``(numerator, denominator)`` integer pair."""
    if isinstance(T, int):
        return T, 1
    if isinstance(T, Fraction):
        return T.numerator, T.denominator
    raise TypeError(f"expected int or Fraction, got {type(T).__name__}: {T!r}")


# --------------------------------------------------------------------------- #
# normalized rational pairs — the plan tier's number type
# --------------------------------------------------------------------------- #
#
# The probe plans (repro.algos.search and the flip searches) carry makespan
# candidates as gcd-normalized ``(num, den)`` int pairs with ``den > 0``.
# Normalized pairs are *canonical*: two exact computations of the same
# rational yield the same pair, so plan-level arithmetic on pairs produces
# probe values, memo keys and dedup behaviour bit-identical to the historic
# Fraction plans — without one Fraction allocation per arithmetic step.
# ``fast_fraction(num, den)`` (repro.core.numeric) is the one boundary where
# a pair becomes a Fraction again.


def norm_pair(num: int, den: int) -> tuple[int, int]:
    """Canonical ``(num, den)``: lowest terms, ``den > 0`` (sign on num)."""
    if den < 0:
        num, den = -num, -den
    g = gcd(num, den)
    if g > 1:
        return num // g, den // g
    return num, den


def pair_add(a: tuple[int, int], b: tuple[int, int]) -> tuple[int, int]:
    """Exact ``a + b`` on pairs, normalized."""
    an, ad = a
    bn, bd = b
    return norm_pair(an * bd + bn * ad, ad * bd)


def pair_sub(a: tuple[int, int], b: tuple[int, int]) -> tuple[int, int]:
    """Exact ``a − b`` on pairs, normalized."""
    an, ad = a
    bn, bd = b
    return norm_pair(an * bd - bn * ad, ad * bd)


def pair_mul(a: tuple[int, int], b: tuple[int, int]) -> tuple[int, int]:
    """Exact ``a · b`` on pairs, normalized."""
    an, ad = a
    bn, bd = b
    return norm_pair(an * bn, ad * bd)


def pair_mid(a: tuple[int, int], b: tuple[int, int]) -> tuple[int, int]:
    """Exact midpoint ``(a + b)/2`` on pairs, normalized."""
    an, ad = a
    bn, bd = b
    return norm_pair(an * bd + bn * ad, 2 * ad * bd)


def pair_cmp(a: tuple[int, int], b: tuple[int, int]) -> int:
    """Three-way compare of two pairs with positive denominators."""
    lhs = a[0] * b[1]
    rhs = b[0] * a[1]
    if lhs == rhs:
        return 0
    return -1 if lhs < rhs else 1


#: ``sorted(pairs, key=pair_key)`` orders pairs by rational value — tuple
#: order on raw pairs would compare numerators first, which is wrong.
pair_key = cmp_to_key(pair_cmp)


def pair_ceil(num: int, den: int) -> int:
    """``⌈num/den⌉`` for a pair with ``den > 0`` (``frac_ceil`` on pairs)."""
    return -((-num) // den)


def round_half_even(num: int, den: int) -> int:
    """``round(num/den)`` with banker's rounding, ``den > 0``.

    Bit-identical to ``round(Fraction(num, den))`` (CPython rounds the
    floor remainder half-to-even), which the grid-bisection stride logic
    historically used to place candidate indices.
    """
    q, r = divmod(num, den)
    if 2 * r > den or (2 * r == den and q % 2):
        return q + 1
    return q


def ceil_div(num: int, den: int) -> int:
    """Exact ``⌈num/den⌉`` for integers, ``den > 0``."""
    return -((-num) // den)


def floor_div(num: int, den: int) -> int:
    """Exact ``⌊num/den⌋`` for integers, ``den > 0`` (alias for ``//``)."""
    return num // den


def scale_int(x, D: int) -> int:
    """``x·D`` as an exact int; raises if ``x`` is not a multiple of 1/D."""
    if isinstance(x, int):
        return x * D
    num, den = x.numerator, x.denominator
    scaled, rem = divmod(num * D, den)
    if rem:
        raise ValueError(f"{x} is not an exact multiple of 1/{D}")
    return scaled


# --------------------------------------------------------------------------- #
# context
# --------------------------------------------------------------------------- #


class DualContext:
    """Integer aggregates of one :class:`Instance`, shared across probes.

    Everything here except ``m`` (and the back-reference ``instance``) is
    machine-count independent, so a machine sweep can carry one context
    across ``with_machines`` copies via :meth:`for_m` instead of
    rebuilding the per-class data per machine count.  ``batch_cache`` is
    a lazily filled scratch dict owned by :mod:`repro.core.batchdual`
    (numpy views of the class arrays, overflow bounds); it is shared by
    ``for_m`` clones since its contents are ``m``-independent too.
    """

    __slots__ = (
        "instance", "m", "c", "setups", "P", "nclass",
        "total_processing", "total_load", "smax", "spt", "class_tmax",
        "batch_cache",
    )

    def __init__(self, instance: "Instance") -> None:
        self.instance = instance
        self.m = instance.m
        self.c = instance.c
        self.setups = instance.setups
        self.P = instance.class_processing
        self.nclass = instance.class_sizes
        self.total_processing = instance.total_processing
        self.total_load = instance.total_load
        self.smax = instance.smax
        self.class_tmax = instance.class_tmax
        #: ``max_i (s_i + t^(i)_max)`` — the Note-1/2 lower bound.
        self.spt = max(s + tm for s, tm in zip(self.setups, self.class_tmax))
        self.batch_cache: dict = {}

    def for_m(self, m: int, instance: Optional["Instance"] = None) -> "DualContext":
        """A clone probing the same classes on ``m`` machines.

        Shares every per-class array (and the batch scratch cache) with
        this context; only ``m`` — and optionally the ``instance``
        back-reference, for a cache-sharing ``with_machines`` copy — is
        replaced.  O(1).
        """
        if m == self.m and (instance is None or instance is self.instance):
            return self
        clone = object.__new__(DualContext)
        clone.instance = self.instance if instance is None else instance
        clone.m = m
        clone.c = self.c
        clone.setups = self.setups
        clone.P = self.P
        clone.nclass = self.nclass
        clone.total_processing = self.total_processing
        clone.total_load = self.total_load
        clone.smax = self.smax
        clone.class_tmax = self.class_tmax
        clone.spt = self.spt
        clone.batch_cache = self.batch_cache
        return clone

    def release(self) -> None:
        """Hand back the batch scratch cache (eviction lifecycle hook).

        Called by :meth:`Instance.release_caches
        <repro.core.instance.Instance.release_caches>` when a service
        LRU evicts the instance: the numpy views / flattened sorted
        arrays :mod:`repro.core.batchdual` parks in ``batch_cache`` are
        the context's only heavy state, and they are shared by every
        :meth:`for_m` clone — clearing the dict in place releases them
        for all sharers at once.  The context (and its clones) remain
        valid; the scratch rebuilds lazily on the next grid call.
        """
        self.batch_cache.clear()

    # sorted views ------------------------------------------------------- #

    def sorted_jobs(self, cls: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """``(sorted times, prefix sums)`` of one class (instance-cached)."""
        return self.instance.class_jobs_sorted(cls)

    def count_weight_gt(self, cls: int, num: int, den: int) -> tuple[int, int]:
        """``(#, Σt)`` of jobs of ``cls`` with ``t > num/den`` (``den > 0``).

        O(log n_i) via the sorted view: ``t > num/den ⟺ t > ⌊num/den⌋`` for
        integer ``t``.
        """
        ts, prefix = self.sorted_jobs(cls)
        cut = bisect_right(ts, num // den)
        return len(ts) - cut, prefix[-1] - prefix[cut]


# --------------------------------------------------------------------------- #
# splittable (Theorem 7)
# --------------------------------------------------------------------------- #


class SplitVerdict(NamedTuple):
    """Integer outcome of the Theorem-7 test: mirrors ``SplitDual``."""

    accepted: bool
    load: int          # L_split(T) — always an integer
    machines_exp: int  # m_exp(T)


def fast_split_test(ctx: DualContext, tn: int, td: int) -> SplitVerdict:
    """Theorem 7(i) on ``T = tn/td`` in pure integers, O(c)."""
    load = ctx.total_processing
    m_exp = 0
    setups, P = ctx.setups, ctx.P
    for i in range(ctx.c):
        s = setups[i]
        if 2 * s * td > tn:  # expensive: s_i > T/2
            b = ceil_div(2 * P[i] * td, tn)  # β_i = ⌈2P_i/T⌉
            load += b * s
            m_exp += b
        else:
            load += s
    accepted = ctx.m * tn >= load * td and ctx.m >= m_exp
    return SplitVerdict(accepted, load, m_exp)


# --------------------------------------------------------------------------- #
# non-preemptive (Theorem 9)
# --------------------------------------------------------------------------- #


class NonpVerdict(NamedTuple):
    """Integer outcome of the Theorem-9 test: mirrors ``NonpDual``."""

    accepted: bool
    load: int           # L_nonp(T)
    machines_needed: int  # m'


#: The cheap-class ``class_tmax`` short-circuit of :func:`fast_nonp_test`
#: (mirrors the PR-4 partition skip).  On by default; the benchmark's
#: baseline-neutral ``shortcut`` family flips it off to measure cold
#: solves both ways, since the skip also collapses the loop baselines'
#: cold-cache cost.
CHEAP_TMAX_SHORTCUT = True


def fast_nonp_test(ctx: DualContext, tn: int, td: int) -> NonpVerdict:
    """Theorem 9(i) on ``T = tn/td``: O(c log n) after the sorted views."""
    if tn < ctx.spt * td:  # Note 2: T < max_i(s_i + t_max^i) < OPT
        return NonpVerdict(False, ctx.total_load, ctx.m + 1)
    load = ctx.total_processing
    m_prime = 0
    setups, P = ctx.setups, ctx.P
    tmax = ctx.class_tmax
    shortcut = CHEAP_TMAX_SHORTCUT
    for i in range(ctx.c):
        s = setups[i]
        std = s * td
        cap = tn - std  # (T − s_i) · td  — positive since T ≥ s_i + t_max^i
        if 2 * std > tn:  # expensive: m_i = α_i = ⌈P_i/(T−s_i)⌉
            m_i = ceil_div(P[i] * td, cap)
        elif shortcut and 2 * (std + tmax[i] * td) <= tn:
            # s_i + t_max^i ≤ T/2 ⟹ J⁺ = K = ∅ (every job fits under
            # T/2 even after its setup): m_i = 0 without touching the
            # sorted views — no bisection, no cold sorted-view build.
            m_i = 0
        else:
            # cheap: m_i = |C_i∩J⁺| + ⌈P(C_i∩K)/(T−s_i)⌉ with
            # J⁺ = {t > T/2}, K = {t ≤ T/2, s+t > T/2}.
            n_big, w_big = ctx.count_weight_gt(i, tn, 2 * td)
            n_ge, w_ge = ctx.count_weight_gt(i, tn - 2 * std, 2 * td)
            k_weight = w_ge - w_big
            m_i = n_big + (ceil_div(k_weight * td, cap) if k_weight else 0)
        load += m_i * s
        if P[i] * td > m_i * cap:  # x_i > 0: residual pays one more setup
            load += s
        m_prime += m_i
    accepted = ctx.m * tn >= load * td and ctx.m >= m_prime
    return NonpVerdict(accepted, load, m_prime)


# --------------------------------------------------------------------------- #
# preemptive (Theorems 4/5, α and γ counting)
# --------------------------------------------------------------------------- #


class PmtnVerdict(NamedTuple):
    """Integer outcome of the Theorem-5 test: mirrors ``PmtnDual``."""

    accepted: bool
    load: int             # L_pmtn(T) (resp. L_nice / total_load for nice/trivial)
    machines_needed: int  # m'
    case: str             # "trivial" | "nice" | "3a" | "3b"
    y_negative: bool      # case 3a's "F < L*" rejection


def count_core(mode: str, t_sc: int, s_sc: int, p_sc: int) -> int:
    """``κ_i`` on pre-scaled integers ``(T, s_i, P)·D`` for any scale ``D``.

    The α′/γ formulas are ratios, hence scale-invariant; factoring them
    out lets the view-based constructions (whose item lengths carry their
    own common denominator) share one implementation with the per-``T``
    dual tests.
    """
    if mode == "alpha":
        return max(1, p_sc // (t_sc - s_sc))
    bp = (2 * p_sc) // t_sc  # β′ = ⌊2P/T⌋
    # P − β′·T/2 ≤ T − s  ⟺  2·P·D − β′·T·D ≤ 2·(T·D − s·D)
    if 2 * p_sc - bp * t_sc <= 2 * (t_sc - s_sc):
        return max(bp, 1)
    return ceil_div(2 * p_sc, t_sc)


def count_scaled(mode: str, tn: int, td: int, s: int, P: int) -> int:
    """``κ_i`` (α′ of Theorem 4 or γ of §4.4) for an ``I⁺exp`` class."""
    return count_core(mode, tn, s * td, P * td)


def fast_pmtn_test(ctx: DualContext, tn: int, td: int, mode: str = "alpha") -> PmtnVerdict:
    """Theorem 5(i) on ``T = tn/td`` in pure integers.

    Replicates ``pmtn_dual_test`` decision-for-decision, including the
    continuous-knapsack selection of case 3a (same greedy order and the same
    tie-breaks, with weights/capacity scaled by ``2·td``).
    """
    if tn < ctx.spt * td:  # Note 1
        return PmtnVerdict(False, ctx.total_load, 0, "trivial", False)

    m, setups, P = ctx.m, ctx.setups, ctx.P
    exp_plus: list[int] = []
    exp_minus_chp_plus_sum = 0  # Σ (s_i + P_i) over I⁻exp ∪ I⁺chp
    n_minus = 0
    l = 0
    chp_star: list[int] = []
    load = ctx.total_processing
    counts_sum = 0
    base = 0  # Σ_{I⁺exp}(κ_i s_i + P_i) + Σ_{I⁻exp ∪ I⁺chp}(s_i + P_i)

    for i in range(ctx.c):
        s = setups[i]
        std = s * td
        total = s + P[i]
        if 2 * std > tn:  # expensive
            if total * td >= tn:  # I⁺exp
                k = count_scaled(mode, tn, td, s, P[i])
                exp_plus.append(i)
                load += k * s
                counts_sum += k
                base += k * s + P[i]
            elif 4 * total * td > 3 * tn:  # I⁰exp
                l += 1
                load += s
            else:  # I⁻exp
                n_minus += 1
                load += s
                base += total
                exp_minus_chp_plus_sum += total
        else:  # cheap
            load += s
            if 4 * std >= tn:  # I⁺chp: T/4 ≤ s_i ≤ T/2
                base += total
                exp_minus_chp_plus_sum += total
            elif 2 * (s + ctx.class_tmax[i]) * td > tn:  # I⁻chp with C*_i ≠ ∅
                chp_star.append(i)

    m_prime = l + counts_sum + ceil_div(n_minus, 2)

    if l == 0:  # nice: Theorem 4's test (identical load/count formulas)
        accepted = m * tn >= load * td and m >= m_prime
        return PmtnVerdict(accepted, load, m_prime, "nice", False)

    # F·2td and L*·2td, demand_star (integer): eq. (3) and Section 4.2.
    F2 = 2 * (m - l) * tn - 2 * base * td
    demand2 = 0   # 2td·Σ_{I*chp}(s_i + P_i)
    lstar2 = 0    # 2td·Σ_{I*chp}(s_i + L*_i)
    star_data: list[tuple[int, int, int]] = []  # (cls, |C*_i|, p*_i)
    for i in chp_star:
        s = setups[i]
        cnt, p_star = ctx.count_weight_gt(i, tn - 2 * s * td, 2 * td)
        star_data.append((i, cnt, p_star))
        demand2 += 2 * td * (s + P[i])
        lstar2 += 2 * td * (s + p_star) - cnt * (tn - 2 * s * td)

    if F2 >= demand2:  # case 3b — all of I*chp fits outside
        accepted = m * tn >= load * td and m >= m_prime
        return PmtnVerdict(accepted, load, m_prime, "3b", False)

    # case 3a
    Y2 = F2 - lstar2
    if Y2 < 0:
        return PmtnVerdict(False, load, m_prime, "3a", True)

    # Continuous knapsack at scale 2td: profit s_i, weight
    # W_i = 2td·(P_i − L*_i) = 2td·(P_i − p*_i) + |C*_i|·(tn − 2 s_i td).
    items = [
        (i, setups[i], 2 * td * (P[i] - p_star) + cnt * (tn - 2 * setups[i] * td))
        for i, cnt, p_star in star_data
    ]
    items.sort(key=cmp_to_key(knapsack_order_cmp))
    remaining = Y2
    if remaining <= 0:
        unselected_setups = sum(p for _, p, _ in items)
    else:
        unselected_setups = 0
        for idx, (_, profit, weight) in enumerate(items):
            if remaining <= 0:
                unselected_setups += sum(p for _, p, _ in items[idx:])
                break
            if weight <= remaining:
                remaining -= weight
            else:  # split item e: 0 < x_e < 1 — neither selected nor unselected
                unselected_setups += sum(p for _, p, _ in items[idx + 1:])
                break
    load += unselected_setups
    accepted = m * tn >= load * td and m >= m_prime
    return PmtnVerdict(accepted, load, m_prime, "3a", False)


def fast_base_core(ctx: DualContext, tn: int, td: int) -> tuple[int, int]:
    """``(L_base, m′)`` — the monotone core of Algorithm 4 (int-only)."""
    load = ctx.total_processing
    l = 0
    gsum = 0
    minus = 0
    setups, P = ctx.setups, ctx.P
    for i in range(ctx.c):
        s = setups[i]
        if 2 * s * td > tn:
            total = s + P[i]
            if total * td >= tn:
                # γ_i = max(1, ⌈2(s_i+P_i)/T⌉ − 2)
                g = max(1, ceil_div(2 * total * td, tn) - 2)
                load += g * s
                gsum += g
                continue
            if 4 * total * td > 3 * tn:
                l += 1
            else:
                minus += 1
        load += s
    return load, l + gsum + ceil_div(minus, 2)
