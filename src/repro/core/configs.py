"""Compressed schedules: machine configurations with multiplicities.

Section 3.2 allows a schedule to "consist of machine configurations with
associated multiplicities instead of explicitly mapping each job (piece)".
The proof of Theorem 7 uses this for the true O(n) bound (independent of
``m``): when a long job is wrapped across a *range of identical gaps*, the
middle machines all carry the same configuration — one setup at the gap
base and one full-gap piece of the same job — so the range is stored as a
single :class:`ConfigBlock` with a multiplicity instead of ``µ_j``
physical placements (the paper cites Jansen et al. [5] for the same
idea).

The compressed form is exact and loses nothing: :func:`expand` turns it
into an explicit :class:`~repro.core.schedule.Schedule` (O(output) work)
that the validators check.  :func:`compress_splittable_expensive`
implements the fast path for the splittable step (1): it emits O(1)
blocks per job instead of O(β_i) placements, so building the compressed
schedule costs O(n + c) even when ``Σ β_i ≫ n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Optional

from .errors import ConstructionError
from .instance import Instance, JobRef
from .numeric import Time, TimeLike, as_time
from .schedule import Placement, Schedule


@dataclass(frozen=True)
class ConfigItem:
    """One item of a machine configuration (times relative to the machine)."""

    start: Time
    length: Time
    cls: int
    job: Optional[JobRef] = None  # None = setup

    def materialize(self, machine: int) -> Placement:
        return Placement(
            machine=machine, start=self.start, length=self.length,
            cls=self.cls, job=self.job,
        )


@dataclass(frozen=True)
class ConfigBlock:
    """``multiplicity`` consecutive machines sharing one configuration.

    The block covers machines ``first_machine .. first_machine +
    multiplicity − 1``.
    """

    first_machine: int
    multiplicity: int
    items: tuple[ConfigItem, ...]

    def __post_init__(self) -> None:
        if self.multiplicity < 1:
            raise ValueError("multiplicity must be >= 1")

    @property
    def machines(self) -> range:
        return range(self.first_machine, self.first_machine + self.multiplicity)


@dataclass
class ConfigSchedule:
    """A compressed schedule: disjoint machine blocks."""

    instance: Instance
    blocks: list[ConfigBlock]

    def add_block(self, block: ConfigBlock) -> None:
        if block.machines.stop > self.instance.m:
            raise ConstructionError(
                f"block {block.machines} exceeds m={self.instance.m}"
            )
        self.blocks.append(block)

    def block_count(self) -> int:
        return len(self.blocks)

    def machine_count(self) -> int:
        return sum(b.multiplicity for b in self.blocks)

    def makespan(self) -> Time:
        return max(
            (it.start + it.length for b in self.blocks for it in b.items),
            default=Fraction(0),
        )


def expand(compressed: ConfigSchedule) -> Schedule:
    """Materialize every block into explicit placements (O(output))."""
    schedule = Schedule(compressed.instance)
    seen: set[int] = set()
    for block in compressed.blocks:
        for u in block.machines:
            if u in seen:
                raise ConstructionError(f"machine {u} covered by two blocks")
            seen.add(u)
            for item in block.items:
                schedule.add(item.materialize(u))
    return schedule


def compress_splittable_expensive(
    instance: Instance, T: TimeLike, exp_classes: Iterable[int],
    betas: dict[int, int], first_machine: int = 0,
) -> ConfigSchedule:
    """Step (1) of the splittable construction in compressed form.

    For each expensive class ``i``: machines carry the setup ``[0, s_i]``
    and job load filling ``[s_i, s_i + T/2]``.  A job longer than the gap
    occupies a *run* of machines with identical full-gap configurations —
    emitted as one multi-machine block.  Output size is O(n + c) blocks,
    independent of ``Σ β_i``.
    """
    T = as_time(T)
    half = T / 2
    out = ConfigSchedule(instance=instance, blocks=[])
    u = first_machine
    for i in exp_classes:
        s = Fraction(instance.setups[i])
        beta_i = betas[i]
        gap = half  # job capacity per machine
        # walk the jobs, cutting at machine capacity; coalesce full-gap runs
        pending: list[ConfigItem] = [ConfigItem(Fraction(0), s, i)]
        fill = Fraction(0)
        machines_used = 0

        def flush(mult: int = 1) -> None:
            nonlocal pending, fill, u, machines_used
            out.add_block(ConfigBlock(first_machine=u, multiplicity=mult, items=tuple(pending)))
            u += mult
            machines_used += mult
            pending = [ConfigItem(Fraction(0), s, i)]
            fill = Fraction(0)

        for job, t in instance.class_jobs(i):
            remaining = Fraction(t)
            while remaining > 0:
                room = gap - fill
                if room <= 0:
                    flush()
                    room = gap
                if remaining >= room + gap and fill == 0 and room == gap:
                    # the job covers >= 2 whole machines: emit a run block
                    runs = int(remaining // gap)
                    if remaining % gap == 0:
                        runs -= 1  # keep a tail so the machine count matches
                    runs = max(runs, 1)
                    pending.append(ConfigItem(s, gap, i, job))
                    flush(mult=runs)
                    remaining -= gap * runs
                    continue
                piece = min(remaining, room)
                pending.append(ConfigItem(s + fill, piece, i, job))
                fill += piece
                remaining -= piece
        if fill > 0 or machines_used < beta_i:
            flush()
        if machines_used != beta_i:
            raise ConstructionError(
                f"class {i}: compressed step used {machines_used} machines, "
                f"expected beta={beta_i}"
            )
    return out
