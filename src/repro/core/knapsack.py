"""Continuous knapsack with a split item (Section 4.2, case 3a).

Algorithm 3 maximizes the total setup time of the ``I*chp`` classes that are
scheduled *entirely outside* the large machines: items are classes, profit
``p_i = s_i``, weight ``w_i = P(C_i) − L*_i`` and capacity ``Y = F − L*``.
The continuous relaxation is solved greedily by profit density; at most one
item ``e`` ends up fractional (``0 < (x_cks)_e < 1``) — the *split item* —
and the schedule construction turns that fraction into job pieces ``j^[1] /
j^[2]`` of class ``e``.

An exact 0/1 solver (branch and bound on the same greedy order) is included
as a test reference: the continuous optimum must dominate the integral one,
and rounding the split item down must be feasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Optional, Sequence

from .numeric import Time, TimeLike, as_time


@dataclass(frozen=True)
class KnapsackItem:
    """One item: an opaque ``key`` with exact rational profit and weight."""

    key: Hashable
    profit: Time
    weight: Time

    @staticmethod
    def of(key: Hashable, profit: TimeLike, weight: TimeLike) -> "KnapsackItem":
        p, w = as_time(profit), as_time(weight)
        if p < 0 or w < 0:
            raise ValueError(f"knapsack item {key!r} has negative profit/weight")
        return KnapsackItem(key, p, w)


@dataclass(frozen=True)
class ContinuousSolution:
    """Optimal fractional solution ``x ∈ [0,1]^I`` with at most one fraction."""

    fractions: dict[Hashable, Fraction]
    value: Time
    used_capacity: Time
    split_key: Optional[Hashable]

    def x(self, key: Hashable) -> Fraction:
        return self.fractions.get(key, Fraction(0))

    @property
    def selected(self) -> list[Hashable]:
        """Keys with ``x_i = 1``."""
        return [k for k, v in self.fractions.items() if v == 1]

    @property
    def unselected(self) -> list[Hashable]:
        """Keys with ``x_i = 0`` — the classes forced onto large machines."""
        return [k for k, v in self.fractions.items() if v == 0]


def _greedy_order(items: Sequence[KnapsackItem]) -> list[KnapsackItem]:
    """Profit-density order; deterministic tie-break by (profit desc, repr)."""

    def density_key(it: KnapsackItem):
        if it.weight == 0:
            return (0, Fraction(0), -it.profit, repr(it.key))
        return (1, -(it.profit / it.weight), -it.profit, repr(it.key))

    return sorted(items, key=density_key)


def solve_continuous(items: Sequence[KnapsackItem], capacity: TimeLike) -> ContinuousSolution:
    """Greedy continuous knapsack — exact optimum of the LP relaxation.

    Runs in O(|I| log |I|) (the paper counts O(|I|) after a selection-based
    median routine; sorting keeps the code simple and is dominated by O(n)
    elsewhere).  Capacity ≤ 0 yields the all-zero solution.
    """
    capacity = as_time(capacity)
    fractions: dict[Hashable, Fraction] = {it.key: Fraction(0) for it in items}
    if len(fractions) != len(items):
        raise ValueError("duplicate knapsack keys")
    value = Fraction(0)
    used = Fraction(0)
    split_key: Optional[Hashable] = None
    if capacity <= 0:
        return ContinuousSolution(fractions, value, used, None)
    remaining = capacity
    for it in _greedy_order(items):
        if remaining <= 0:
            break
        if it.weight <= remaining:
            fractions[it.key] = Fraction(1)
            value += it.profit
            used += it.weight
            remaining -= it.weight
        else:
            frac = remaining / it.weight
            fractions[it.key] = frac
            value += it.profit * frac
            used += remaining
            split_key = it.key
            remaining = Fraction(0)
            break
    return ContinuousSolution(fractions, value, used, split_key)


def solve_integral(items: Sequence[KnapsackItem], capacity: TimeLike) -> tuple[Time, set]:
    """Exact 0/1 knapsack by branch and bound (test reference, small inputs).

    Returns ``(optimal value, selected keys)``.
    """
    capacity = as_time(capacity)
    order = _greedy_order(items)
    best_value = Fraction(0)
    best_set: set = set()

    def fractional_bound(k: int, cap: Time) -> Time:
        bound = Fraction(0)
        for it in order[k:]:
            if cap <= 0:
                break
            if it.weight <= cap:
                bound += it.profit
                cap -= it.weight
            else:
                if it.weight > 0:
                    bound += it.profit * (cap / it.weight)
                cap = Fraction(0)
        return bound

    def rec(k: int, cap: Time, value: Time, chosen: set) -> None:
        nonlocal best_value, best_set
        if value > best_value:
            best_value, best_set = value, set(chosen)
        if k == len(order) or cap <= 0:
            return
        if value + fractional_bound(k, cap) <= best_value:
            return
        it = order[k]
        if it.weight <= cap:
            chosen.add(it.key)
            rec(k + 1, cap - it.weight, value + it.profit, chosen)
            chosen.remove(it.key)
        rec(k + 1, cap, value, chosen)

    rec(0, capacity, Fraction(0), set())
    return best_value, best_set
