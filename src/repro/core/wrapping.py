"""Batch Wrapping (Appendix A.1) — McNaughton's rule generalized to setups.

A :class:`WrapTemplate` ``ω`` is a list of *gaps* ``(u_r, a_r, b_r)`` on
strictly increasing machines; ``S(ω) = Σ (b_r − a_r)`` is the provided time.
A :class:`WrapSequence` ``Q = [s_{i_l}, C'_l]_l`` is a stream of batches:
a setup followed by jobs/job pieces of one class; ``L(Q) = Σ (s_{i_l} +
P(C'_l))``.

:func:`wrap` schedules ``Q`` into ``ω`` in McNaughton's wrap-around style
(Algorithm 5, ``Split``): items are placed left to right inside the current
gap; when an item hits the border ``b_r``

* a **setup** is moved below the next gap (interval ``[a_{r+1}−s_i,
  a_{r+1}]`` on machine ``u_{r+1}``), so the following jobs stay feasible;
* a **job (piece)** is split at ``b_r``; the remainder continues at the top
  of the next gap, again with a fresh setup placed below the gap.  A very
  long piece may span several gaps (the ``while`` loop of Algorithm 5).

Lemma 6: if ``L(Q) ≤ S(ω)`` and there is free time ≥ the largest setup of
``Q`` below every gap but the first, the placement is feasible.  Lemma 7:
the running time is ``O(|Q| + |ω|)`` — our implementation does a constant
amount of work per item plus per gap switch.

Pieces of a split job all carry the same :class:`~repro.core.instance.JobRef`,
which is exactly the ``parent(j)`` bookkeeping Algorithm 6 (non-preemptive)
needs for its repair step.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import lcm
from typing import Iterable, Optional, Sequence

from .errors import ConstructionError
from .instance import JobRef
from .itemstore import ItemStore
from .numeric import Time, TimeLike, as_time, time_str
from .schedule import Placement, Schedule, ScheduleColumns, _new_placement  # noqa: F401  (re-export: the fast allocator predates the columnar store)


@dataclass(frozen=True)
class Gap:
    """One free interval ``[a, b)`` on a machine."""

    machine: int
    a: Time
    b: Time

    def __post_init__(self) -> None:
        if not 0 <= self.a < self.b:
            raise ValueError(f"gap requires 0 <= a < b, got [{self.a}, {self.b})")

    @property
    def size(self) -> Time:
        return self.b - self.a


@dataclass(frozen=True)
class WrapTemplate:
    """Definition 2 — gaps on strictly increasing machines."""

    gaps: tuple[Gap, ...]

    def __post_init__(self) -> None:
        for g1, g2 in zip(self.gaps, self.gaps[1:]):
            if g1.machine >= g2.machine:
                raise ValueError(
                    f"wrap template machines must strictly increase, got "
                    f"{g1.machine} then {g2.machine}"
                )

    @staticmethod
    def of(gaps: Iterable[tuple[int, TimeLike, TimeLike]]) -> "WrapTemplate":
        return WrapTemplate(tuple(Gap(u, as_time(a), as_time(b)) for u, a, b in gaps))

    def __len__(self) -> int:
        return len(self.gaps)

    @property
    def capacity(self) -> Time:
        """``S(ω)``."""
        return sum((g.size for g in self.gaps), Fraction(0))


@dataclass(frozen=True)
class Batch:
    """One ``[s_i, C'_l]`` block of a wrap sequence.

    ``items`` are ``(job, length)`` pairs; ``length`` may be smaller than the
    job's full processing time when the caller wraps job *pieces* (the
    preemptive algorithm does this for the knapsack split class).

    ``int_lengths`` is an optional fast-path hint: when the batch wraps a
    *full class* its lengths are the instance's integer processing times,
    and producers pass that tuple so the scaled-integer engine can scale
    without touching a single Fraction (it must match ``items`` length
    for length — the caller's contract, satisfied by construction at the
    two producer sites).
    """

    cls: int
    items: tuple[tuple[JobRef, Time], ...]
    int_lengths: Optional[tuple[int, ...]] = None

    @staticmethod
    def of(cls: int, items: Iterable[tuple[JobRef, TimeLike]]) -> "Batch":
        out = tuple((j, as_time(t)) for j, t in items)
        for j, t in out:
            if t <= 0:
                raise ValueError(f"batch item {j} has non-positive length {t}")
            if j.cls != cls:
                raise ValueError(f"batch of class {cls} contains job {j}")
        return Batch(cls=cls, items=out)

    @property
    def processing(self) -> Time:
        return sum((t for _, t in self.items), Fraction(0))


@dataclass(frozen=True)
class WrapSequence:
    """A sequence of batches ``Q = [s_{i_l}, C'_l]_{l∈[k]}``."""

    batches: tuple[Batch, ...]

    @staticmethod
    def of(batches: Iterable[Batch]) -> "WrapSequence":
        return WrapSequence(tuple(b for b in batches if b.items))

    @staticmethod
    def single_class(cls: int, items: Iterable[tuple[JobRef, TimeLike]]) -> "WrapSequence":
        """The simple sequence ``[s_i, C_i]`` used all over the paper."""
        return WrapSequence.of([Batch.of(cls, items)])

    def load(self, setups: Sequence[int]) -> Time:
        """``L(Q) = Σ_l (s_{i_l} + P(C'_l))``."""
        return sum((Fraction(setups[b.cls]) + b.processing for b in self.batches), Fraction(0))

    @property
    def length(self) -> int:
        """``|Q| = k + Σ n_l``."""
        return sum(1 + len(b.items) for b in self.batches)

    def max_setup(self, setups: Sequence[int]) -> int:
        """``s^(Q)_max`` from Lemma 6."""
        return max((setups[b.cls] for b in self.batches), default=0)


class WrapResult:
    """What :func:`wrap` placed.

    On the columnar fast path the engine emits scaled-int rows straight
    into the schedule's column store; ``placements`` then materializes
    the placed rows lazily (in placement order), so callers that ignore
    the result — every construction in the library — never pay for
    :class:`Placement`/:class:`~fractions.Fraction` objects.
    """

    __slots__ = ("_placements", "last_gap", "splits", "_rows")

    def __init__(
        self,
        placements: Optional[list[Placement]],
        last_gap: int,
        splits: int,
        rows: Optional[tuple[ScheduleColumns, int, int]] = None,
    ) -> None:
        self._placements = placements
        #: index of the last gap that received an item (−1 if nothing placed).
        self.last_gap = last_gap
        #: number of job splits performed.
        self.splits = splits
        self._rows = rows

    @property
    def placements(self) -> list[Placement]:
        if self._placements is None:
            cols, lo, hi = self._rows  # type: ignore[misc]
            self._placements = cols.slice_placements(lo, hi)
        return self._placements

    def pieces_of(self, job: JobRef) -> list[Placement]:
        return [p for p in self.placements if p.job == job]


def wrap(
    schedule: Schedule,
    sequence: WrapSequence,
    template: WrapTemplate,
    *,
    exact_ints: bool = True,
) -> WrapResult:
    """Wrap ``sequence`` into ``template``, adding placements to ``schedule``.

    Raises :class:`ConstructionError` if the template overflows — by Lemma 6
    that can only happen when the caller violated ``L(Q) ≤ S(ω)``, which all
    call sites in this library prove beforehand.

    With ``exact_ints`` (the default) the engine runs on machine integers:
    all gap bounds and item lengths are pre-multiplied by the least common
    denominator ``D`` of the template/sequence, so the load check and every
    border comparison and split is integer arithmetic; times are divided
    back out (exactly) only when a :class:`Placement` is materialized.
    ``exact_ints=False`` is the historical Fraction loop, kept verbatim as
    the reference for the differential tests and benchmarks — both paths
    produce identical placements bit for bit (the substrate tests assert
    this).
    """
    if exact_ints:
        return _wrap_ints(schedule, sequence, template)
    return _wrap_fractions(schedule, sequence, template)


def _wrap_ints(
    schedule: Schedule, sequence: WrapSequence, template: WrapTemplate
) -> WrapResult:
    """The scaled-integer wrap engine (see :func:`wrap`).

    Emits scaled-int rows straight into the schedule's column store — no
    :class:`Placement`/:class:`~fractions.Fraction` objects on the hot
    path.  On a thawed schedule (placement-list mode) the rows go through
    a scratch column store and are materialized into the schedule at the
    end, so both representations see identical placements.
    """
    setups = schedule.instance.setups
    gaps = template.gaps
    if not gaps:
        if sequence.batches:
            raise ConstructionError("non-empty sequence wrapped into empty template")
        return WrapResult([], -1, 0)

    m = schedule.instance.m
    for g in gaps:
        if not 0 <= g.machine < m:
            raise ValueError(f"machine {g.machine} out of range [0, {m})")

    D = 1
    for g in gaps:
        D = lcm(D, g.a.denominator, g.b.denominator)
    for batch in sequence.batches:
        if batch.int_lengths is not None:
            continue  # integer lengths: nothing to fold into D
        for _, length in batch.items:
            den = length.denominator
            if D % den:
                D = lcm(D, den)

    ga = [g.a.numerator * (D // g.a.denominator) for g in gaps]
    gb = [g.b.numerator * (D // g.b.denominator) for g in gaps]
    # Scale every item once; the scaled lists double as the load check and
    # the wrap loop's operands (no Fraction arithmetic in the loop).
    scaled_items: list[list[int]] = []
    load_sc = 0
    for batch in sequence.batches:
        raw = batch.int_lengths
        if raw is not None:
            items_sc = [t * D for t in raw]
        else:
            items_sc = [
                length.numerator * (D // length.denominator)
                for _, length in batch.items
            ]
        scaled_items.append(items_sc)
        load_sc += setups[batch.cls] * D + sum(items_sc)
    cap_sc = sum(b - a for a, b in zip(ga, gb))
    if load_sc > cap_sc:
        raise ConstructionError(
            f"wrap overflow: L(Q)={time_str(Fraction(load_sc, D))} > "
            f"S(ω)={time_str(Fraction(cap_sc, D))} "
            "(caller must guarantee Lemma 6's precondition)"
        )

    cols = schedule._columns_for_append()
    scratch = cols is None
    if scratch:
        cols = ScheduleColumns()
    # Rows are collected in plain Python lists (one shared denominator D)
    # and flushed with one bulk extend — six C-level column extends replace
    # six method calls per placement.
    mq: list[int] = []
    sq: list[int] = []
    lq: list[int] = []
    cq: list[int] = []
    jq: list[int] = []
    ma, sa, la, ca, ja = mq.append, sq.append, lq.append, cq.append, jq.append
    splits = 0
    r = 0
    t = ga[0]
    last_gap = -1

    def advance_gap(cls: int) -> None:
        """Move to the next gap, placing the class setup below it (Split)."""
        nonlocal r, t
        r += 1
        if r >= len(gaps):
            raise ConstructionError(
                "wrap ran out of gaps despite L(Q) <= S(ω); template/sequence bug"
            )
        start_sc = ga[r] - setups[cls] * D
        if start_sc < 0:
            raise ValueError(
                f"placement starts before time 0: setup of class {cls} below gap {r}"
            )
        ma(gaps[r].machine); sa(start_sc); la(setups[cls] * D); ca(cls); ja(-1)
        t = ga[r]

    for batch, items_sc in zip(sequence.batches, scaled_items):
        cls = batch.cls
        s_sc = setups[cls] * D
        # Place the batch's initial setup inside the current gap; if it hits
        # the border, move it below the next gap instead (Wrap's setup rule).
        if t + s_sc > gb[r]:
            advance_gap(cls)  # setup goes below the next gap
            last_gap = r
        else:
            ma(gaps[r].machine); sa(t); la(s_sc); ca(cls); ja(-1)
            t += s_sc
            if r > last_gap:
                last_gap = r
        for (job, length), remaining in zip(batch.items, items_sc):
            jidx = job.idx
            # Skip over exhausted gap space before starting the piece, so we
            # never create zero-length pieces.
            while t >= gb[r]:
                advance_gap(cls)
            while t + remaining > gb[r]:  # Split's while loop
                room = gb[r] - t
                if room > 0:
                    ma(gaps[r].machine); sa(t); la(room); ca(cls); ja(jidx)
                    remaining -= room
                    splits += 1
                advance_gap(cls)
            if remaining > 0:
                ma(gaps[r].machine); sa(t); la(remaining); ca(cls); ja(jidx)
                t += remaining
            if r > last_gap:
                last_gap = r

    row_lo = len(cols)
    cols.extend_scaled(mq, sq, lq, D, cq, jq)
    if scratch:
        placed = cols.slice_placements(row_lo, len(cols))
        for p in placed:
            schedule.append_trusted(p)
        return WrapResult(placed, last_gap, splits)
    return WrapResult(None, last_gap, splits, rows=(cols, row_lo, len(cols)))


def _wrap_fractions(
    schedule: Schedule, sequence: WrapSequence, template: WrapTemplate
) -> WrapResult:
    """The pre-kernel exact-rational wrap loop (reference path)."""
    setups = schedule.instance.setups
    load = sequence.load(setups)
    cap = template.capacity
    if load > cap:
        raise ConstructionError(
            f"wrap overflow: L(Q)={time_str(load)} > S(ω)={time_str(cap)} "
            "(caller must guarantee Lemma 6's precondition)"
        )
    gaps = template.gaps
    placed: list[Placement] = []
    splits = 0
    r = 0
    if not gaps:
        if sequence.batches:
            raise ConstructionError("non-empty sequence wrapped into empty template")
        return WrapResult([], -1, 0)
    t: Time = gaps[0].a
    last_gap = -1

    def advance_gap(cls: int) -> None:
        """Move to the next gap, placing the class setup below it (Split)."""
        nonlocal r, t
        r += 1
        if r >= len(gaps):
            raise ConstructionError(
                "wrap ran out of gaps despite L(Q) <= S(ω); template/sequence bug"
            )
        g = gaps[r]
        s = Fraction(setups[cls])
        placed.append(
            schedule.add(
                Placement(machine=g.machine, start=g.a - s, length=s, cls=cls)
            )
        )
        t = g.a

    for batch in sequence.batches:
        cls = batch.cls
        s = Fraction(setups[cls])
        # Place the batch's initial setup inside the current gap; if it hits
        # the border, move it below the next gap instead (Wrap's setup rule).
        if t + s > gaps[r].b:
            advance_gap(cls)  # setup goes below the next gap
            last_gap = r
        else:
            placed.append(
                schedule.add(
                    Placement(machine=gaps[r].machine, start=t, length=s, cls=cls)
                )
            )
            t += s
            last_gap = max(last_gap, r)
        for job, length in batch.items:
            remaining = length
            # Skip over exhausted gap space before starting the piece, so we
            # never create zero-length pieces.
            while t >= gaps[r].b:
                advance_gap(cls)
            while t + remaining > gaps[r].b:  # Split's while loop
                room = gaps[r].b - t
                if room > 0:
                    placed.append(schedule.add_piece(gaps[r].machine, t, job, room))
                    remaining -= room
                    splits += 1
                advance_gap(cls)
            if remaining > 0:
                placed.append(schedule.add_piece(gaps[r].machine, t, job, remaining))
                t += remaining
            last_gap = max(last_gap, r)

    return WrapResult(placements=placed, last_gap=last_gap, splits=splits)


def wrap_quota_store(
    store: ItemStore,
    cls: int,
    setup_sc: int,
    quota_sc: int,
    idxs,
    lens,
    prefix,
    scale: int,
) -> tuple[list[int], list[tuple[int, int, int]]]:
    """Wrap ``[s_i, jobs]`` onto fresh machines of ``store`` with job quota
    ``quota_sc`` above one setup per machine.

    Algorithm 5's ``Split`` for the step-1 template of Algorithm 6 — the
    identical-fresh-machines special case of :func:`wrap`, emitting slots
    straight into the index-based :class:`~repro.core.itemstore.ItemStore`
    instead of round-tripping through per-item objects.  The job stream is
    given *unscaled* (``idxs``/``lens``/``prefix`` as in
    :meth:`~repro.core.itemstore.ItemStore.emit_window`); ``setup_sc`` and
    ``quota_sc`` carry the caller's scale.  Machine ``b`` receives the
    window ``[b·quota, b·quota + room_b)`` of the stream (``room_b`` is the
    full quota except on the last machine), which reproduces the
    carry-splitting of the historical per-item loop exactly: boundary jobs
    become :data:`~repro.core.itemstore.PIECE` slots, interior jobs are
    bulk slice extends.

    Returns ``(machines, pieces)``: the fresh machines used, and every
    split piece as ``(machine, slot, stream_pos)`` for the caller's
    parent map.  The caller must ensure ``quota_sc > 0`` (Lemma 6's
    ``T > s_i`` precondition) and a non-empty stream.
    """
    total_sc = prefix[-1] * scale
    if total_sc <= 0:
        return [], []
    k = -(-total_sc // quota_sc)
    machines: list[int] = []
    pieces: list[tuple[int, int, int]] = []
    for b in range(k):
        u = store.take_machine()
        machines.append(u)
        store.place(u, cls, -1, setup_sc)
        w0 = b * quota_sc
        w1 = w0 + quota_sc if b < k - 1 else total_sc
        for slot, pos in store.emit_window(u, cls, idxs, lens, prefix, scale, w0, w1):
            pieces.append((u, slot, pos))
    return machines, pieces


def template_for_machines(
    machines: Sequence[int], a: TimeLike, b: TimeLike, first: tuple[TimeLike, TimeLike] | None = None
) -> WrapTemplate:
    """Convenience: identical gaps ``[a,b)`` on ``machines``.

    ``first`` optionally overrides the first gap's interval — the common
    pattern ``ω_1 = (u, 0, T)``, ``ω_{1+r} = (u+r, s_i, T)`` from the paper.
    """
    gaps: list[tuple[int, TimeLike, TimeLike]] = []
    for k, u in enumerate(machines):
        if k == 0 and first is not None:
            gaps.append((u, first[0], first[1]))
        else:
            gaps.append((u, a, b))
    return WrapTemplate.of(gaps)
