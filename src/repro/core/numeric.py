"""Exact rational time arithmetic — the boundary tier of the numeric model.

The paper's inputs are natural numbers, but the algorithms manipulate
fractional quantities throughout: makespan guesses ``T = L/m``, class-jump
points ``2P_i/k``, half-lines ``T/2``, and the continuous-knapsack fraction
``(x_cks)_e``.  Floating point would blur the accept/reject boundary of the
dual tests and the exact start/end times the validators check, so the
library is exact end to end — in **two tiers**:

* **Exact-rational boundary (this module).**  Everything user-visible —
  :class:`~repro.core.instance.Instance` inputs, ``SolveResult``,
  :class:`~repro.core.schedule.Schedule` placements, the validators, and
  the reference implementations of every dual test and construction —
  speaks :class:`fractions.Fraction`.  ``Time`` is an alias for it.  Use
  this tier whenever clarity or auditability beats speed: validators,
  tests, analysis, figures, and as the ground truth the fast tier is
  differential-tested against.

* **Scaled-integer kernel (:mod:`repro.core.fastnum`).**  The per-``T``
  hot paths — the Theorem 5/7/9 dual tests probed ``O(log)`` times per
  solve, the wrap engine, and the Algorithm-6 construction — carry ``T``
  as the integer pair ``(numerator, denominator)`` and pre-multiply every
  derived duration by the denominator, so comparisons become integer
  cross-multiplications and no Fraction objects are allocated in inner
  loops.  Times are divided back out (exactly) only where a placement or
  result object is materialized.  This tier is selected with the default
  ``kernel="fast"`` of :func:`repro.solve`; ``kernel="fraction"`` runs the
  boundary tier throughout.  Both are bit-identical — same accepts, same
  makespans — which ``tests/test_fastnum_differential.py`` asserts on
  every generator-suite instance.

A per-``T`` denominator (rather than a fixed per-solve scale such as
``D = 2m``) is what keeps the kernel exact: class-jump candidates
``2P_i/k`` have denominators ``k ≤ 2m`` that need not divide ``2m``, and
ε-search midpoints pick up powers of two.  Denominators stay word-sized in
practice, so kernel arithmetic is machine-int speed.

Only small helper utilities live here; they are deliberately boring.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Iterable, Union

#: Public alias used in signatures throughout the package.
Time = Fraction

#: Anything we are willing to coerce into a :class:`Time`.
TimeLike = Union[int, Fraction]


def as_time(value: TimeLike) -> Time:
    """Coerce ``value`` to an exact :class:`Time`.

    Floats are rejected on purpose: silently converting ``0.1`` to
    ``3602879701896397/36028797018963968`` produces exact-but-wrong
    boundaries.  Callers with float data should quantize explicitly.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    raise TypeError(f"expected int or Fraction, got {type(value).__name__}: {value!r}")


def ceil_div(num: int, den: int) -> int:
    """Exact ``ceil(num/den)`` for integers, ``den > 0``."""
    if den <= 0:
        raise ValueError(f"ceil_div requires den > 0, got {den}")
    return -((-num) // den)


_new_fraction = object.__new__


def fast_fraction(num: int, den: int = 1) -> Fraction:
    """Normalized ``Fraction(num, den)`` without the constructor's dispatch.

    ``Fraction.__new__`` spends most of its time on type dispatch for a
    handful of input shapes; the materialization hot paths (the wrap
    engine, the Algorithm-6 item lists, the scaled-int view math) only
    ever divide a machine int by a positive machine-int scale.  This
    builds the identical canonical object directly.  Requires ``den > 0``
    — every kernel scale is a positive lcm, so callers satisfy this by
    construction.
    """
    if den != 1:
        g = gcd(num, den)
        if g != 1:
            num //= g
            den //= g
    f = _new_fraction(Fraction)
    f._numerator = num
    f._denominator = den
    return f


def frac_ceil(x: TimeLike) -> int:
    """Exact ceiling of a rational."""
    x = as_time(x)
    return -((-x.numerator) // x.denominator)


def frac_floor(x: TimeLike) -> int:
    """Exact floor of a rational."""
    x = as_time(x)
    return x.numerator // x.denominator


def fsum(values: Iterable[TimeLike]) -> Time:
    """Exact sum of rationals (name mirrors :func:`math.fsum`)."""
    total = Fraction(0)
    for v in values:
        total += as_time(v)
    return total


def fmax(values: Iterable[TimeLike], default: TimeLike = 0) -> Time:
    """Exact max with a default for empty iterables."""
    best = None
    for v in values:
        v = as_time(v)
        if best is None or v > best:
            best = v
    return as_time(default) if best is None else best


def time_str(x: TimeLike) -> str:
    """Compact human-readable rendering (``7/2`` rather than ``Fraction(7, 2)``)."""
    x = as_time(x)
    if x.denominator == 1:
        return str(x.numerator)
    return f"{x.numerator}/{x.denominator}"
