"""Exact rational time arithmetic.

The paper's inputs are natural numbers, but the algorithms manipulate
fractional quantities throughout: makespan guesses ``T = L/m``, class-jump
points ``2P_i/k``, half-lines ``T/2``, and the continuous-knapsack fraction
``(x_cks)_e``.  Floating point would blur the accept/reject boundary of the
dual tests and the exact start/end times the validators check, so the whole
library standardizes on :class:`fractions.Fraction`.

Only small helper utilities live here; they are deliberately boring.  The
HPC guideline applied is "make it work reliably first": exactness buys
trustworthy tests, and the near-linear algorithms remain near-linear because
all Fractions appearing in the constructions have denominators bounded by
``2m`` (products of ``2`` and machine counts), so arithmetic is O(1)-ish on
word-sized inputs.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Union

#: Public alias used in signatures throughout the package.
Time = Fraction

#: Anything we are willing to coerce into a :class:`Time`.
TimeLike = Union[int, Fraction]


def as_time(value: TimeLike) -> Time:
    """Coerce ``value`` to an exact :class:`Time`.

    Floats are rejected on purpose: silently converting ``0.1`` to
    ``3602879701896397/36028797018963968`` produces exact-but-wrong
    boundaries.  Callers with float data should quantize explicitly.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    raise TypeError(f"expected int or Fraction, got {type(value).__name__}: {value!r}")


def ceil_div(num: int, den: int) -> int:
    """Exact ``ceil(num/den)`` for integers, ``den > 0``."""
    if den <= 0:
        raise ValueError(f"ceil_div requires den > 0, got {den}")
    return -((-num) // den)


def frac_ceil(x: TimeLike) -> int:
    """Exact ceiling of a rational."""
    x = as_time(x)
    return -((-x.numerator) // x.denominator)


def frac_floor(x: TimeLike) -> int:
    """Exact floor of a rational."""
    x = as_time(x)
    return x.numerator // x.denominator


def fsum(values: Iterable[TimeLike]) -> Time:
    """Exact sum of rationals (name mirrors :func:`math.fsum`)."""
    total = Fraction(0)
    for v in values:
        total += as_time(v)
    return total


def fmax(values: Iterable[TimeLike], default: TimeLike = 0) -> Time:
    """Exact max with a default for empty iterables."""
    best = None
    for v in values:
        v = as_time(v)
        if best is None or v > best:
            best = v
    return as_time(default) if best is None else best


def time_str(x: TimeLike) -> str:
    """Compact human-readable rendering (``7/2`` rather than ``Fraction(7, 2)``)."""
    x = as_time(x)
    if x.denominator == 1:
        return str(x.numerator)
    return f"{x.numerator}/{x.denominator}"
