"""Exception hierarchy for the repro package.

Every failure mode raised by the library derives from :class:`ReproError`, so
callers can distinguish library errors from programming errors.  Validators
raise :class:`InfeasibleScheduleError` with a precise human-readable reason;
the algorithms raise :class:`ConstructionError` only if an internal invariant
proven in the paper is violated (i.e. a bug, never an expected condition).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class InvalidInstanceError(ReproError, ValueError):
    """The scheduling instance violates the paper's model assumptions."""


class InfeasibleScheduleError(ReproError):
    """A schedule failed feasibility validation.

    Attributes
    ----------
    reason:
        Machine-readable tag of the violated rule (e.g. ``"overlap"``,
        ``"setup-missing"``, ``"job-parallel"``).
    detail:
        Human-readable description including machine/job/time coordinates.
    """

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        self.detail = detail
        super().__init__(f"[{reason}] {detail}" if detail else reason)


class ConstructionError(ReproError, AssertionError):
    """An algorithm's internal invariant was violated (library bug).

    The dual constructions in the paper are proven to succeed whenever the
    corresponding acceptance test passes; hitting this exception therefore
    indicates an implementation error, not an unfortunate input.
    """


class RejectedMakespanError(ReproError):
    """A dual approximation was asked to build a schedule for a rejected T."""
