"""Lower bounds and the search window ``[T_min, 2·T_min]``.

The paper's dual approximations are turned into approximation algorithms by
searching a window that provably contains ``OPT``:

* every variant:  ``OPT ≥ N/m``  (total load over machines) and
  ``OPT > s_max`` (a setup is never preempted), page 2;
* preemptive (Note 1) and non-preemptive (Note 2):
  ``OPT ≥ max_i (s_i + t^(i)_max)``;
* the O(n) 2-approximations (Appendix A.2) give ``OPT ≤ 2·T_min``.

``T_min`` is variant-specific: ``max{N/m, s_max}`` for splittable and
``max{N/m, max_i(s_i + t^(i)_max)}`` for the job-constrained variants.
"""

from __future__ import annotations

from enum import Enum
from fractions import Fraction

from .instance import Instance
from .numeric import Time


class Variant(str, Enum):
    """The three problem flavours of the paper."""

    NONPREEMPTIVE = "nonpreemptive"  # P|setup=s_i|Cmax
    PREEMPTIVE = "preemptive"        # P|pmtn,setup=s_i|Cmax
    SPLITTABLE = "splittable"        # P|split,setup=s_i|Cmax

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def average_load(instance: Instance) -> Time:
    """``N/m`` where ``N = Σ s_i + Σ t_j``."""
    return Fraction(instance.total_load, instance.m)


def setup_plus_tmax(instance: Instance) -> int:
    """``max_i (s_i + t^(i)_max)`` — Notes 1 and 2 (instance-cached).

    Machine-count independent, so the cache is shared across a whole
    ``sweep_machines`` run (``with_machines(..., share_caches=True)``).
    """
    cached = instance._misc_cache.get("spt")
    if cached is None:
        cached = max(s + tm for s, tm in zip(instance.setups, instance.class_tmax))
        instance._misc_cache["spt"] = cached
    return cached


def lower_bound(instance: Instance, variant: Variant) -> Time:
    """The strongest *input-only* lower bound on ``OPT`` used by the paper.

    For ratio experiments this is the denominator on instances too large for
    exact solvers: any measured ``makespan / lower_bound ≤ ρ`` certifies an
    approximation factor ≤ ρ for the true optimum as well.
    """
    lb = max(average_load(instance), Fraction(instance.smax))
    if variant is not Variant.SPLITTABLE:
        lb = max(lb, Fraction(setup_plus_tmax(instance)))
    return lb


def t_min(instance: Instance, variant: Variant) -> Time:
    """``T_min`` with ``OPT ∈ [T_min, 2·T_min]`` (Sections 3, 4, Appendices)."""
    return lower_bound(instance, variant)


def t_max_window(instance: Instance, variant: Variant) -> Time:
    """Upper end of the search window (``2·T_min``, Appendix A.2)."""
    return 2 * t_min(instance, variant)


def trivial_upper_bound(instance: Instance) -> int:
    """``N`` — all jobs with one setup each... i.e. everything on one machine."""
    return instance.total_load


def machines_needed_at_most(instance: Instance) -> int:
    """A machine count beyond which extra machines cannot help (pmtn/nonp).

    With ``m ≥ n`` one job per machine is optimal for the job-constrained
    variants (the paper assumes ``m < n`` after Notes 1/2); used for the
    trivial fast path.
    """
    return instance.n
