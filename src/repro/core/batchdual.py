"""Vectorized dual-test grids over a shared :class:`~repro.core.fastnum.DualContext`.

The searches of Theorems 2/3/6/8 probe the per-``T`` dual tests at many
candidate makespans.  PR 1 made one probe fast (scaled machine ints);
this module makes *many* probes fast by evaluating a whole grid of
candidates ``T_j = tn_j / td_j`` in one pass:

* :func:`fast_split_test_grid` — Theorem 7(i) on a candidate grid;
* :func:`fast_nonp_test_grid`  — Theorem 9(i) on a candidate grid;
* :func:`fast_pmtn_test_grid`  — Theorem 5(i) on a candidate grid.

Each returns exactly the scalar kernel's verdict tuples
(:class:`SplitVerdict` / :class:`NonpVerdict` / :class:`PmtnVerdict`),
one per candidate, **bit-identical** to calling the scalar test per
candidate — the differential suite asserts this on every generator
suite.  Three execution tiers stand behind that guarantee:

1. **numpy int64** (the fast path): per-class data lives in cached
   ``int64`` arrays (``ctx.batch_cache``, shared by
   :meth:`DualContext.for_m` clones across a machine sweep); each test
   is O(c) vector operations over the candidate axis, with the per-class
   job thresholds resolved by ``searchsorted`` on the cached sorted
   views.  Candidates may carry heterogeneous denominators (class-jump
   points ``2P_i/k`` do), so the denominator is a vector, not a common
   scale — no lcm blow-up.
2. **Overflow fallback**: ``int64`` products can wrap silently, so every
   grid call first bounds its intermediates with exact Python integers
   (:func:`_grid_is_safe`, conservative on purpose) and falls back to
   tier 3 whenever the bound does not clear ``2**62``.
3. **Scalar fallback**: a plain loop over the scalar kernel — also the
   path taken when numpy is not installed (numpy is an optional extra,
   never a hard dependency).

The preemptive grid has one scalar residue by design: candidates that
land in case 3a with a non-negative knapsack capacity need the
continuous-knapsack selection, whose greedy order is inherently
sequential; those (rare) lanes are resolved by the scalar kernel, which
keeps the verdicts bit-identical by construction.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from .fastnum import (
    DualContext,
    NonpVerdict,
    PmtnVerdict,
    SplitVerdict,
    fast_nonp_test,
    fast_pmtn_test,
    fast_split_test,
)
from .numeric import Time
from ..obs.trace import count as obs_count

try:  # pragma: no cover - exercised via both branches in CI matrices
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: True when the vectorized tier is available at all.
HAVE_NUMPY = _np is not None

#: Conservative ceiling for every vectorized intermediate (int64 headroom).
_GUARD = 1 << 62

#: Cap on ``c * g`` elements per vectorized chunk (bounds temp memory).
_CHUNK_ELEMS = 1 << 22

__all__ = [
    "HAVE_NUMPY",
    "cache_entries",
    "grid_pairs",
    "fast_split_test_grid",
    "fast_nonp_test_grid",
    "fast_pmtn_test_grid",
    "fast_base_core_grid",
    "grid_accept_fn",
    "grid_accept_pairs_fn",
]


def grid_pairs(candidates: Sequence[Time]) -> tuple[list[int], list[int]]:
    """Split a candidate list into parallel ``(numerators, denominators)``."""
    tns: list[int] = []
    tds: list[int] = []
    for T in candidates:
        tns.append(T.numerator)
        tds.append(T.denominator)
    return tns, tds


def _as_vectors(tns, tds) -> tuple[list[int], list[int]]:
    tns = [int(t) for t in tns]
    if isinstance(tds, int):
        tds = [tds] * len(tns)
    else:
        tds = [int(t) for t in tds]
    if len(tds) != len(tns):
        raise ValueError(f"{len(tns)} numerators vs {len(tds)} denominators")
    for tn, td in zip(tns, tds):
        if tn <= 0 or td <= 0:
            raise ValueError(f"candidates must be positive rationals, got {tn}/{td}")
    return tns, tds


# --------------------------------------------------------------------------- #
# cached numpy views of the context (m-independent, shared by for_m clones)
# --------------------------------------------------------------------------- #


def cache_entries(ctx: DualContext) -> int:
    """Entry count of the scratch this module parks in ``ctx.batch_cache``.

    One per cached top-level view set, plus one per class with a
    flattened sorted array — the quantity the service's eviction
    accounting (``Instance.cache_stats()['batch']``) reports, and what
    :meth:`DualContext.release` hands back.
    """
    n = 0
    for key, value in ctx.batch_cache.items():
        n += len(value) if key == "np_sorted" else 1
    return n


def _np_views(ctx: DualContext) -> dict:
    views = ctx.batch_cache.get("np_views")
    if views is None:
        views = {
            "setups": _np.asarray(ctx.setups, dtype=_np.int64),
            "P": _np.asarray(ctx.P, dtype=_np.int64),
            "tmax": _np.asarray(ctx.class_tmax, dtype=_np.int64),
        }
        ctx.batch_cache["np_views"] = views
    return views


def _np_sorted(ctx: DualContext, cls: int):
    cache = ctx.batch_cache.setdefault("np_sorted", {})
    arrs = cache.get(cls)
    if arrs is None:
        ts, prefix = ctx.sorted_jobs(cls)
        arrs = (
            _np.asarray(ts, dtype=_np.int64),
            _np.asarray(prefix, dtype=_np.int64),
        )
        cache[cls] = arrs
    return arrs


def _np_flat(ctx: DualContext) -> dict:
    """Flattened per-class sorted views: one concatenated array + offsets.

    The non-preemptive grid's job thresholds used to resolve with two
    ``searchsorted`` calls *per class* inside a Python loop — numpy
    dispatch per class made the grid lose to ~11 scalar probes (the
    ROADMAP's measured caveat).  This cache concatenates every class's
    sorted times into one key array, offset per class by
    ``base_i = i · spacing`` (``spacing > tmax`` keeps the class ranges
    disjoint), so *all* ``c × g`` threshold queries resolve in a single
    ``searchsorted`` over clamped keys ``base_i + clip(thr, 0, tmax)``,
    and the per-class prefix-sum weights come back via one fancy-indexed
    gather.  Built once per context, shared by :meth:`DualContext.for_m`
    clones across a machine sweep.
    """
    flat = ctx.batch_cache.get("np_flat")
    if flat is None:
        spacing = max(ctx.class_tmax) + 2
        counts = _np.asarray(ctx.nclass, dtype=_np.int64)
        noff = _np.zeros(ctx.c + 1, dtype=_np.int64)
        _np.cumsum(counts, out=noff[1:])
        keys = _np.empty(int(noff[-1]), dtype=_np.int64)
        prefix_parts = []
        poff = _np.zeros(ctx.c + 1, dtype=_np.int64)
        for i in range(ctx.c):
            ts, prefix = ctx.sorted_jobs(i)
            keys[int(noff[i]):int(noff[i + 1])] = _np.asarray(ts, dtype=_np.int64)
            keys[int(noff[i]):int(noff[i + 1])] += i * spacing
            prefix_parts.append(_np.asarray(prefix, dtype=_np.int64))
            poff[i + 1] = poff[i] + len(prefix)
        prefix_flat = (
            _np.concatenate(prefix_parts) if prefix_parts
            else _np.empty(0, dtype=_np.int64)
        )
        flat = {
            "spacing": spacing,
            "keys": keys,
            "noff": noff,
            "prefix": prefix_flat,
            "poff": poff[:-1],          # start of class i's prefix block
            "counts": counts,
        }
        ctx.batch_cache["np_flat"] = flat
    return flat


def _maxima(ctx: DualContext) -> tuple[int, int, int]:
    """Cached ``(max_i P_i, s_max, alpha_cap)`` for the overflow bound.

    ``alpha_cap`` dominates every α-style machine count any grid lane can
    produce on a *non-trivial* candidate (``tn ≥ spt·td``): there
    ``tn − s_i·td ≥ t^(i)_max·td``, hence ``⌈P_i·td/(tn − s_i·td)⌉ ≤
    ⌈P_i/t^(i)_max⌉``, and the cheap-class counts add at most ``n_i``
    (one machine per big job).
    """
    mx = ctx.batch_cache.get("maxima")
    if mx is None:
        alpha_cap = max(
            n + -((-p) // tm)
            for n, p, tm in zip(ctx.nclass, ctx.P, ctx.class_tmax)
        )
        mx = (max(ctx.P), ctx.smax, alpha_cap)
        ctx.batch_cache["maxima"] = mx
    return mx


def _grid_is_safe(ctx: DualContext, tns: list[int], tds: list[int]) -> bool:
    """Exact-integer bound on every int64 intermediate of a grid pass.

    Conservative: ``K`` dominates every per-class machine count that any
    of the tests can produce — jump-style counts ``β/γ ≤ ⌈2P/T⌉`` via
    the ``min_tn`` term, α-style counts ``⌈P·td/(tn − s·td)⌉`` via
    ``alpha_cap`` (see :func:`_maxima`; masked lanes are clamped to 1 in
    the kernels so no other quotient feeds a product).  ``unit``
    dominates every per-class scaled quantity, and each accumulated sum
    touches at most ``c`` classes with a constant factor ≤ 8.  A miss
    only costs speed — the caller drops to the scalar kernel, never
    precision.  (The non-preemptive grid additionally checks its own
    flattened-key bound, :func:`_flat_keys_safe`; it does not belong
    here because the split/pmtn/base-core grids never build those keys.)
    """
    max_tn, min_tn = max(tns), min(tns)
    max_td = max(tds)
    maxP, smax, alpha_cap = _maxima(ctx)
    # (maxP + smax): the base-core γ count divides 2(s_i + P_i), not 2P_i.
    K = max((2 * (maxP + smax) * max_td) // min_tn + 2, alpha_cap)
    unit = max(max_tn, 2 * (smax + maxP + 1) * max_td)
    return (
        8 * ctx.c * K * unit < _GUARD
        and ctx.m * max_tn < _GUARD
        and (ctx.total_processing + ctx.c * smax * K) * max_td < _GUARD
    )


def _flat_keys_safe(ctx: DualContext) -> bool:
    """Does the flattened-searchsorted key space ``c · spacing`` fit int64?

    Only the non-preemptive grid builds :func:`_np_flat` keys; the other
    grids are not throttled by this bound.  A miss drops that grid to
    the scalar kernel — identical verdicts, just slower.
    """
    return ctx.c * (max(ctx.class_tmax) + 2) < _GUARD


def _use_numpy(ctx, tns, tds, use_numpy: Optional[bool]) -> bool:
    if use_numpy is False:
        return False
    if use_numpy is True and not HAVE_NUMPY:
        raise RuntimeError("use_numpy=True but numpy is not installed")
    if not HAVE_NUMPY:
        return False
    return _grid_is_safe(ctx, tns, tds)


def _chunks(n_candidates: int, c: int):
    step = max(1, _CHUNK_ELEMS // max(1, c))
    for lo in range(0, n_candidates, step):
        yield lo, min(n_candidates, lo + step)


def _ceil_div_np(num, den):
    """Elementwise exact ``ceil(num/den)``, ``den > 0`` (floor-div identity)."""
    return -((-num) // den)


# --------------------------------------------------------------------------- #
# splittable (Theorem 7)
# --------------------------------------------------------------------------- #


def fast_split_test_grid(
    ctx: DualContext,
    tns: Sequence[int],
    tds,
    *,
    use_numpy: Optional[bool] = None,
) -> list[SplitVerdict]:
    """Theorem 7(i) on every ``T_j = tns[j]/tds[j]`` in one pass.

    ``tds`` may be a single int (common denominator) or a parallel
    sequence.  Verdicts are bit-identical to per-candidate
    :func:`~repro.core.fastnum.fast_split_test` calls.
    """
    tns, tds = _as_vectors(tns, tds)
    if not tns:
        return []
    if not _use_numpy(ctx, tns, tds, use_numpy):
        obs_count("grid.rows_scalar", len(tns))
        return [fast_split_test(ctx, tn, td) for tn, td in zip(tns, tds)]
    obs_count("grid.rows_np", len(tns))
    views = _np_views(ctx)
    S = views["setups"][:, None]
    P = views["P"][:, None]
    m = ctx.m
    out: list[SplitVerdict] = []
    for lo, hi in _chunks(len(tns), ctx.c):
        tn = _np.asarray(tns[lo:hi], dtype=_np.int64)
        td = _np.asarray(tds[lo:hi], dtype=_np.int64)
        exp = 2 * S * td > tn                      # (c, g) expensive mask
        beta = _ceil_div_np(2 * P * td, tn)        # β_j = ⌈2P_i/T_j⌉
        load = ctx.total_processing + _np.where(exp, beta * S, S).sum(axis=0)
        m_exp = _np.where(exp, beta, 0).sum(axis=0)
        acc = (m * tn >= load * td) & (m >= m_exp)
        out.extend(
            SplitVerdict(bool(a), int(l), int(me))
            for a, l, me in zip(acc, load, m_exp)
        )
    return out


# --------------------------------------------------------------------------- #
# non-preemptive (Theorem 9)
# --------------------------------------------------------------------------- #


def fast_nonp_test_grid(
    ctx: DualContext,
    tns: Sequence[int],
    tds,
    *,
    use_numpy: Optional[bool] = None,
) -> list[NonpVerdict]:
    """Theorem 9(i) on a candidate grid (see :func:`fast_split_test_grid`).

    The per-class job thresholds (``J⁺`` and ``K`` counts/weights) are
    resolved over the *flattened* sorted views of :func:`_np_flat`: one
    ``searchsorted`` over all ``c × g`` offset-keyed queries per
    threshold kind, plus one gathered prefix-sum lookup — no Python loop
    over classes.  This is what makes the grid tier win at large ``c``
    (it used to pay numpy dispatch per class and lose to scalar probes).
    """
    tns, tds = _as_vectors(tns, tds)
    if not tns:
        return []
    if not _use_numpy(ctx, tns, tds, use_numpy) or not _flat_keys_safe(ctx):
        obs_count("grid.rows_scalar", len(tns))
        return [fast_nonp_test(ctx, tn, td) for tn, td in zip(tns, tds)]
    obs_count("grid.rows_np", len(tns))
    m, spt, c = ctx.m, ctx.spt, ctx.c
    out: list[Optional[NonpVerdict]] = [None] * len(tns)
    tn_all = _np.asarray(tns, dtype=_np.int64)
    td_all = _np.asarray(tds, dtype=_np.int64)
    nontrivial = tn_all >= spt * td_all
    for j in _np.nonzero(~nontrivial)[0]:
        out[j] = NonpVerdict(False, ctx.total_load, m + 1)  # Note 2
    live = _np.nonzero(nontrivial)[0]
    if not live.size:
        return out  # type: ignore[return-value]
    views = _np_views(ctx)
    flat = _np_flat(ctx)
    S = views["setups"][:, None]                 # (c, 1)
    P = views["P"][:, None]
    spacing = flat["spacing"]
    keys, prefix = flat["keys"], flat["prefix"]
    noff = flat["noff"][:-1, None]               # key-block starts   (c, 1)
    poff = flat["poff"][:, None]                 # prefix-block starts (c, 1)
    counts = flat["counts"][:, None]
    base = (_np.arange(c, dtype=_np.int64) * spacing)[:, None]
    hi_clip = spacing - 2                        # ≥ global tmax ≥ every key
    # This kernel holds ~13 simultaneous (c, g) temporaries (the other
    # grids hold ~4), so chunk 4× finer to keep the transient peak in the
    # same memory envelope as the rest of the module.
    for lo, hi in _chunks(len(live), 4 * c):
        idx = live[lo:hi]
        tn = tn_all[idx]                         # (g,)
        td = td_all[idx]
        td2 = 2 * td
        std = S * td                             # (c, g)
        cap = tn - std                           # (T − s_i)·td > 0 on live lanes
        exp = 2 * std > tn
        m_exp = _ceil_div_np(P * td, cap)        # α_i
        # J⁺ threshold t_j > T/2 — one flattened searchsorted for all classes
        q_big = base + _np.clip(tn // td2, 0, hi_clip)
        cut_big = (
            _np.searchsorted(keys, q_big.ravel(), side="right").reshape(q_big.shape)
            - noff
        )
        n_big = counts - cut_big
        w_big = P - prefix[poff + cut_big]
        # K threshold s_i + t_j > T/2 (minus the J⁺ part), same trick
        q_ge = base + _np.clip((tn - 2 * std) // td2, 0, hi_clip)
        cut_ge = (
            _np.searchsorted(keys, q_ge.ravel(), side="right").reshape(q_ge.shape)
            - noff
        )
        k_weight = (P - prefix[poff + cut_ge]) - w_big
        m_chp = n_big + _np.where(
            k_weight > 0, _ceil_div_np(k_weight * td, cap), 0
        )
        m_i = _np.where(exp, m_exp, m_chp)
        load = (
            ctx.total_processing
            + (m_i * S).sum(axis=0)
            + _np.where(P * td > m_i * cap, S, 0).sum(axis=0)  # x_i > 0 setups
        )
        m_prime = m_i.sum(axis=0)
        acc = (m * tn >= load * td) & (m >= m_prime)
        for k, j in enumerate(idx):
            out[j] = NonpVerdict(bool(acc[k]), int(load[k]), int(m_prime[k]))
    return out  # type: ignore[return-value]


# --------------------------------------------------------------------------- #
# preemptive (Theorem 5)
# --------------------------------------------------------------------------- #


def fast_pmtn_test_grid(
    ctx: DualContext,
    tns: Sequence[int],
    tds,
    mode: str = "alpha",
    *,
    use_numpy: Optional[bool] = None,
) -> list[PmtnVerdict]:
    """Theorem 5(i) on a candidate grid (see :func:`fast_split_test_grid`).

    Candidates resolving to the trivial/nice/3b cases — and 3a's ``F <
    L*`` rejection — are fully vectorized; 3a candidates that reach the
    continuous knapsack drop to the scalar kernel lane-by-lane (same
    greedy, hence bit-identical).
    """
    tns, tds = _as_vectors(tns, tds)
    if not tns:
        return []
    if not _use_numpy(ctx, tns, tds, use_numpy):
        obs_count("grid.rows_scalar", len(tns))
        return [fast_pmtn_test(ctx, tn, td, mode) for tn, td in zip(tns, tds)]
    obs_count("grid.rows_np", len(tns))
    m, spt = ctx.m, ctx.spt
    out: list[Optional[PmtnVerdict]] = [None] * len(tns)
    tn_all = _np.asarray(tns, dtype=_np.int64)
    td_all = _np.asarray(tds, dtype=_np.int64)
    nontrivial = tn_all >= spt * td_all
    for j in _np.nonzero(~nontrivial)[0]:
        out[j] = PmtnVerdict(False, ctx.total_load, 0, "trivial", False)  # Note 1
    live = _np.nonzero(nontrivial)[0]
    for lo, hi in _chunks(len(live), ctx.c):
        idx = live[lo:hi]
        tn = tn_all[idx]
        td = td_all[idx]
        td2 = 2 * td
        g = idx.size
        zeros = _np.zeros(g, dtype=_np.int64)
        load = _np.full(g, ctx.total_processing, dtype=_np.int64)
        l = zeros.copy()
        counts_sum = zeros.copy()
        n_minus = zeros.copy()
        base = zeros.copy()
        demand2 = zeros.copy()
        lstar2 = zeros.copy()
        for i in range(ctx.c):
            s, P = ctx.setups[i], ctx.P[i]
            total = s + P
            std = s * td
            exp = 2 * std > tn
            iplus = exp & (total * td >= tn)
            izero = exp & ~iplus & (4 * total * td > 3 * tn)
            iminus = exp & ~iplus & ~izero
            if mode == "alpha":
                # κ = max(1, ⌊P·td/(tn−s·td)⌋).  Off the I⁺exp lanes the
                # denominator is forced positive AND κ is clamped to 1:
                # masked-lane quotients would otherwise feed ``κ·s`` products
                # the overflow precheck does not (and need not) bound.
                k = _np.where(
                    iplus,
                    _np.maximum(1, (P * td) // _np.where(iplus, tn - std, 1)),
                    1,
                )
            else:
                num2 = 2 * P * td
                bp = num2 // tn
                cond = num2 - bp * tn <= 2 * (tn - std)
                k = _np.where(cond, _np.maximum(bp, 1), _ceil_div_np(num2, tn))
            load += _np.where(iplus, k * s, s)
            counts_sum += _np.where(iplus, k, 0)
            l += izero
            n_minus += iminus
            base += _np.where(iplus, k * s + P, 0)
            chp_plus = ~exp & (4 * std >= tn)
            base += _np.where(iminus | chp_plus, total, 0)
            star = (
                ~exp
                & ~chp_plus
                & (2 * (s + ctx.class_tmax[i]) * td > tn)  # C*_i ≠ ∅
            )
            if star.any():
                ts, prefix = _np_sorted(ctx, i)
                w_total = int(prefix[-1])
                cut = _np.searchsorted(ts, (tn - 2 * std) // td2, side="right")
                cnt = len(ts) - cut
                p_star = w_total - prefix[cut]
                demand2 += _np.where(star, td2 * (s + P), 0)
                lstar2 += _np.where(
                    star, td2 * (s + p_star) - cnt * (tn - 2 * std), 0
                )
        m_prime = l + counts_sum + _ceil_div_np(n_minus, 2)
        F2 = 2 * (m - l) * tn - 2 * base * td
        acc_simple = (m * tn >= load * td) & (m >= m_prime)
        nice = l == 0
        case3b = ~nice & (F2 >= demand2)
        y_neg = ~nice & ~case3b & (F2 - lstar2 < 0)
        for k_i in range(g):
            j = int(idx[k_i])
            if nice[k_i]:
                out[j] = PmtnVerdict(
                    bool(acc_simple[k_i]), int(load[k_i]), int(m_prime[k_i]),
                    "nice", False,
                )
            elif case3b[k_i]:
                out[j] = PmtnVerdict(
                    bool(acc_simple[k_i]), int(load[k_i]), int(m_prime[k_i]),
                    "3b", False,
                )
            elif y_neg[k_i]:
                out[j] = PmtnVerdict(
                    False, int(load[k_i]), int(m_prime[k_i]), "3a", True
                )
            else:  # case 3a with the knapsack: scalar lane (rare)
                out[j] = fast_pmtn_test(ctx, tns[j], tds[j], mode)
    return out  # type: ignore[return-value]


# --------------------------------------------------------------------------- #
# preemptive monotone core (Algorithm 4's base test)
# --------------------------------------------------------------------------- #


def fast_base_core_grid(
    ctx: DualContext,
    tns: Sequence[int],
    tds,
    *,
    use_numpy: Optional[bool] = None,
) -> list[tuple[int, int]]:
    """``(L_base, m′)`` per candidate — grid form of ``fast_base_core``."""
    from .fastnum import fast_base_core

    tns, tds = _as_vectors(tns, tds)
    if not tns:
        return []
    if not _use_numpy(ctx, tns, tds, use_numpy):
        obs_count("grid.rows_scalar", len(tns))
        return [fast_base_core(ctx, tn, td) for tn, td in zip(tns, tds)]
    obs_count("grid.rows_np", len(tns))
    views = _np_views(ctx)
    S = views["setups"][:, None]
    P = views["P"][:, None]
    out: list[tuple[int, int]] = []
    for lo, hi in _chunks(len(tns), ctx.c):
        tn = _np.asarray(tns[lo:hi], dtype=_np.int64)
        td = _np.asarray(tds[lo:hi], dtype=_np.int64)
        total = S + P
        exp = 2 * S * td > tn
        iplus = exp & (total * td >= tn)
        izero = exp & ~iplus & (4 * total * td > 3 * tn)
        iminus = exp & ~iplus & ~izero
        # γ_i = max(1, ⌈2(s_i+P_i)/T⌉ − 2) on I⁺exp
        gam = _np.maximum(1, _ceil_div_np(2 * total * td, tn) - 2)
        load = ctx.total_processing + _np.where(iplus, gam * S, S).sum(axis=0)
        gsum = _np.where(iplus, gam, 0).sum(axis=0)
        l = izero.sum(axis=0)
        minus = iminus.sum(axis=0)
        m_prime = l + gsum + _ceil_div_np(minus, 2)
        out.extend((int(a), int(b)) for a, b in zip(load, m_prime))
    return out


# --------------------------------------------------------------------------- #
# search-layer adapter
# --------------------------------------------------------------------------- #


def grid_accept_pairs_fn(
    ctx: DualContext,
    kind: str,
    mode: str = "gamma",
    *,
    use_numpy: Optional[bool] = None,
) -> Callable[[Sequence[tuple[int, int]]], list[bool]]:
    """A ``pairs -> [accepted]`` evaluator for the scaled-int plan tier.

    Same dispatch as :func:`grid_accept_fn`, but the candidates arrive as
    ``(num, den)`` int pairs — the native currency of the probe plans —
    so no Fraction is touched between the plan and the grid kernels.
    """
    if kind == "split":
        def evaluate(cands: Sequence[tuple[int, int]]) -> list[bool]:
            tns = [tn for tn, _ in cands]
            tds = [td for _, td in cands]
            return [
                v.accepted
                for v in fast_split_test_grid(ctx, tns, tds, use_numpy=use_numpy)
            ]
    elif kind == "pmtn_base":
        def evaluate(cands: Sequence[tuple[int, int]]) -> list[bool]:
            tns = [tn for tn, _ in cands]
            tds = [td for _, td in cands]
            m = ctx.m
            return [
                m * tn >= load * td and m >= m_prime
                for (load, m_prime), tn, td in zip(
                    fast_base_core_grid(ctx, tns, tds, use_numpy=use_numpy), tns, tds
                )
            ]
    elif kind == "nonp":
        def evaluate(cands: Sequence[tuple[int, int]]) -> list[bool]:
            tns = [tn for tn, _ in cands]
            tds = [td for _, td in cands]
            return [
                v.accepted
                for v in fast_nonp_test_grid(ctx, tns, tds, use_numpy=use_numpy)
            ]
    elif kind == "pmtn":
        def evaluate(cands: Sequence[tuple[int, int]]) -> list[bool]:
            tns = [tn for tn, _ in cands]
            tds = [td for _, td in cands]
            return [
                v.accepted
                for v in fast_pmtn_test_grid(
                    ctx, tns, tds, mode, use_numpy=use_numpy
                )
            ]
    else:
        raise ValueError(f"unknown grid kind {kind!r}")
    return evaluate


def grid_accept_fn(
    ctx: DualContext,
    kind: str,
    mode: str = "gamma",
    *,
    use_numpy: Optional[bool] = None,
) -> Callable[[Sequence[Time]], list[bool]]:
    """A ``candidates -> [accepted]`` evaluator for the search routines.

    ``kind`` selects the dual: ``"split"`` / ``"nonp"`` / ``"pmtn"``
    (the latter honours ``mode``).  The returned callable is what
    :func:`repro.algos.search.binary_search_dual` and friends take as
    ``grid_accept``.  Thin Time-speaking wrapper over
    :func:`grid_accept_pairs_fn`.
    """
    pairs_fn = grid_accept_pairs_fn(ctx, kind, mode, use_numpy=use_numpy)

    def evaluate(cands: Sequence[Time]) -> list[bool]:
        return pairs_fn([(T.numerator, T.denominator) for T in cands])

    return evaluate
