"""Explicit schedule representation — columnar store with lazy placements.

A :class:`Schedule` is a set of :class:`Placement` items — setups and job
pieces — each pinned to a machine and a closed-open time interval
``[start, start+length)``.  This is the *stronger* notion of schedule from
Section 3.2: the splittable algorithms may compute machine configurations
with multiplicities internally (see :mod:`repro.core.wrapping`), but
everything is materialized into explicit placements before validation, so
the validators never have to trust an algorithm's own bookkeeping.

Since PR 3 the backing store is **columnar**: a :class:`ScheduleColumns`
holds one row per placement as parallel scaled-integer columns

    ``machine | start_num | length_num | den | cls | job_idx``

with ``start = start_num/den`` and ``length = length_num/den`` exact
rationals and ``job_idx = -1`` marking a setup.  The construction hot
paths (the wrap engine, Algorithm 6's materializer, Algorithm 2's step 1)
append machine integers straight into the columns; :class:`Placement`
objects — and their :class:`~fractions.Fraction` times — are materialized
*lazily*, only when a caller actually iterates placements.  Aggregate
queries (``makespan``, ``machine_load``, ``machine_end``) are answered
from the columns directly, and :mod:`repro.core.validate` runs a
vectorized validator over the raw columns.

The columns live on :mod:`array`-module ``'q'`` (int64) buffers so numpy
can view them zero-copy when installed (numpy remains the optional
``[batch]`` extra, exactly the :mod:`repro.core.batchdual` policy); a row
that does not fit in 62 bits flips the store into exact Python-int lists
— the overflow fallback trades speed, never precision.

Mutating operations that need placement identity (:meth:`Schedule.remove`,
:meth:`Schedule.replace_machine` — the repair passes) *thaw* the schedule:
the columns are materialized into per-machine placement lists once and the
schedule behaves exactly like the historical list-backed implementation
from then on.

All times are exact rationals (:mod:`repro.core.numeric`).
"""

from __future__ import annotations

import pickle
from array import array
from dataclasses import dataclass, replace
from fractions import Fraction
from itertools import accumulate
from math import gcd
from typing import Iterable, Iterator, NamedTuple, Optional, Sequence

from .instance import Instance, JobRef
from .numeric import Time, TimeLike, as_time, fast_fraction, time_str

try:  # numpy is the optional [batch] extra (same policy as batchdual)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the minimal-deps CI job
    _np = None


@dataclass(frozen=True)
class Placement:
    """One contiguous item on one machine.

    ``job is None`` marks a setup of class ``cls``; otherwise the placement
    is a *job piece* of ``job`` (a full job is a single piece covering its
    whole processing time).
    """

    machine: int
    start: Time
    length: Time
    cls: int
    job: Optional[JobRef] = None

    @property
    def end(self) -> Time:
        return self.start + self.length

    @property
    def is_setup(self) -> bool:
        return self.job is None

    def shifted(self, delta: TimeLike) -> "Placement":
        """Copy moved by ``delta`` in time."""
        return replace(self, start=self.start + as_time(delta))

    def on_machine(self, machine: int) -> "Placement":
        """Copy moved to another machine (same times)."""
        return replace(self, machine=machine)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = f"setup(s{self.cls})" if self.is_setup else f"job({self.job})"
        return f"[{time_str(self.start)},{time_str(self.end)}) {kind} @M{self.machine}"


def _new_placement(machine: int, start, length, cls: int, job=None) -> Placement:
    """Allocate a :class:`Placement` without the frozen-dataclass ``__init__``.

    Frozen dataclasses assign fields through ``object.__setattr__``, which
    is measurable at ~one placement per job on the materialization hot
    path; writing the instance ``__dict__`` directly produces an identical
    object.
    """
    p = object.__new__(Placement)
    p.__dict__["machine"] = machine
    p.__dict__["start"] = start
    p.__dict__["length"] = length
    p.__dict__["cls"] = cls
    p.__dict__["job"] = job
    return p


def _lcm2(a: int, b: int) -> int:
    return a if a == b else a * b // gcd(a, b)


#: Values at or above 62 bits flip a column store into exact-int object
#: mode — the same headroom :data:`repro.core.batchdual._GUARD` keeps for
#: int64 intermediates.
_INT62 = 1 << 62


class ScheduleColumns:
    """Parallel scaled-int columns, one row per placement.

    Row ``k`` encodes the placement ``[start_num[k]/den[k],
    (start_num[k]+length_num[k])/den[k])`` of class ``cls[k]`` on machine
    ``machine[k]``; ``job_idx[k] = -1`` marks a setup, otherwise the row
    is a piece of ``JobRef(cls[k], job_idx[k])``.  Numerators need not be
    normalized against ``den`` — materialization reduces exactly.

    Columns start on ``array('q')`` (int64) buffers; the first value that
    does not fit in 62 bits switches every column to a plain Python list
    (``int_mode`` False), keeping arithmetic exact at any magnitude.

    The trusted bulk-adoption path (:meth:`extend_runs` — the Algorithm-6
    :class:`~repro.core.itemstore.ItemStore` hand-off) also flips the
    *buffers* to plain lists while keeping ``int_mode`` True: list
    extends splice the store's column slices at C pointer speed, and the
    ``array('q')`` buffers are rebuilt in one pass by :meth:`compact`
    when a zero-copy reader (:meth:`Schedule.rows`) asks for them.
    ``int_mode`` is therefore a statement about *values* (everything fits
    int64), not about the current buffer type.
    """

    __slots__ = (
        "machine", "start_num", "length_num", "den", "cls", "job_idx",
        "_dens", "int_mode", "_exported",
    )

    def __init__(self) -> None:
        self.machine = array("q")
        self.start_num = array("q")
        self.length_num = array("q")
        self.den = array("q")
        self.cls = array("q")
        self.job_idx = array("q")
        self._dens: set[int] = set()
        self.int_mode = True
        #: True while zero-copy numpy views of the array buffers are out
        #: (:meth:`Schedule.rows`).  In-place extends would then raise
        #: BufferError, so the next append flips to bulk-list buffers —
        #: the held views keep the old arrays as a stable snapshot.
        self._exported = False

    # ------------------------------------------------------------------ #
    # appends
    # ------------------------------------------------------------------ #

    def _to_object_mode(self) -> None:
        if self.int_mode:
            self.machine = list(self.machine)
            self.start_num = list(self.start_num)
            self.length_num = list(self.length_num)
            self.den = list(self.den)
            self.cls = list(self.cls)
            self.job_idx = list(self.job_idx)
            self.int_mode = False

    def append_scaled(
        self,
        machine: int,
        start_num: int,
        length_num: int,
        den: int,
        cls: int,
        job_idx: int,
    ) -> None:
        """Append one row; ``start = start_num/den``, ``length = length_num/den``.

        ``den`` must be positive (every producer's scale is a positive
        lcm).  The caller is responsible for range/sign checks — this is
        the raw emission primitive behind :meth:`Schedule.add_scaled` and
        the construction kernels.
        """
        if self._exported:
            self._to_bulk_lists()  # never resize a buffer a view exports
        if self.int_mode and not (
            -_INT62 < start_num < _INT62
            and -_INT62 < length_num < _INT62
            and den < _INT62
        ):
            self._to_object_mode()
        self.machine.append(machine)
        self.start_num.append(start_num)
        self.length_num.append(length_num)
        self.den.append(den)
        self.cls.append(cls)
        self.job_idx.append(job_idx)
        self._dens.add(den)

    def extend_scaled(
        self,
        machines,
        start_nums,
        length_nums,
        den: int,
        clss,
        job_idxs,
    ) -> None:
        """Bulk :meth:`append_scaled`: parallel rows sharing one ``den``.

        The emission hot paths (the wrap engine, Algorithm 6's
        materializer) collect plain Python lists and flush them here —
        ``array.extend`` runs at C speed, replacing six method calls per
        row with one per column per burst.
        """
        n = len(machines)
        if n == 0:
            return
        if self._exported:
            self._to_bulk_lists()  # never resize a buffer a view exports
        if self.int_mode and not (
            -_INT62 < min(start_nums)
            and max(start_nums) < _INT62
            and -_INT62 < min(length_nums)
            and max(length_nums) < _INT62
            and den < _INT62
        ):
            self._to_object_mode()
        self.machine.extend(machines)
        self.start_num.extend(start_nums)
        self.length_num.extend(length_nums)
        if isinstance(self.den, list):
            self.den.extend([den] * n)
        else:
            self.den.extend(array("q", [den]) * n)
        self.cls.extend(clss)
        self.job_idx.extend(job_idxs)
        self._dens.add(den)

    def _to_bulk_lists(self) -> None:
        """Flip the buffers to plain lists (values unchanged, see class doc)."""
        if not isinstance(self.machine, list):
            self.machine = list(self.machine)
            self.start_num = list(self.start_num)
            self.length_num = list(self.length_num)
            self.den = list(self.den)
            self.cls = list(self.cls)
            self.job_idx = list(self.job_idx)
        self._exported = False

    def compact(self) -> None:
        """Rebuild the ``array('q')`` buffers after a bulk-list adoption.

        One C pass per column; a no-op when the buffers are already
        arrays or the values left the int64 range (``int_mode`` False —
        object mode stays on lists by design).
        """
        if self.int_mode and isinstance(self.machine, list):
            self.machine = array("q", self.machine)
            self.start_num = array("q", self.start_num)
            self.length_num = array("q", self.length_num)
            self.den = array("q", self.den)
            self.cls = array("q", self.cls)
            self.job_idx = array("q", self.job_idx)

    def extend_runs(self, runs, den: int) -> None:
        """Bulk-append stacked machine runs sharing one ``den``.

        ``runs`` yields ``(machine, lengths, clss, job_idxs)`` with items
        bottom to top; starts are the running prefix sums of ``lengths``
        (the no-idle-below-the-top-item invariant of the emitting
        constructions), and lengths must be non-negative — this is the
        trusted adoption path the Algorithm-6
        :class:`~repro.core.itemstore.ItemStore` hands off to.  Buffers
        flip to bulk-list mode, so splicing the store's column slices is
        pointer-copy cheap; the int64 range check reduces to one
        comparison per machine (the prefix-sum total dominates every
        start and length of its run).
        """
        self._to_bulk_lists()
        mach, sn, ln = self.machine, self.start_num, self.length_num
        dn, cl, ji = self.den, self.cls, self.job_idx
        ok = self.int_mode and den < _INT62
        for u, lens, clss, jidxs in runs:
            n = len(lens)
            if not n:
                continue
            starts = list(accumulate(lens, initial=0))
            top = starts.pop()
            mach.extend([u] * n)
            sn.extend(starts)
            ln.extend(lens)
            dn.extend([den] * n)
            cl.extend(clss)
            ji.extend(jidxs)
            if ok and top >= _INT62:
                ok = False
        if not ok:
            self.int_mode = False
        self._dens.add(den)

    def append_placement(self, p: Placement) -> None:
        """Append a :class:`Placement` (rationals re-scaled to one row den)."""
        start, length = p.start, p.length
        sd = start.denominator
        ld = length.denominator
        den = _lcm2(sd, ld)
        job = p.job
        self.append_scaled(
            p.machine,
            start.numerator * (den // sd),
            length.numerator * (den // ld),
            den,
            p.cls,
            -1 if job is None else job.idx,
        )

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.machine)

    @property
    def dens(self) -> frozenset:
        """The distinct row denominators (usually one or two per schedule)."""
        return frozenset(self._dens)

    def common_scale(self) -> int:
        """``L = lcm`` of all row denominators (1 for an empty store)."""
        L = 1
        for d in self._dens:
            L = _lcm2(L, d)
        return L

    def scaled(self) -> tuple[int, "object", "object"]:
        """``(L, starts, lengths)`` with all rows at the common scale ``L``.

        When every row shares one denominator the stored columns are
        returned as-is (zero copy — numpy can view the ``array('q')``
        buffers directly); otherwise exact Python-int lists are built.
        """
        L = self.common_scale()
        if len(self._dens) <= 1:
            return L, self.start_num, self.length_num
        mult = [L // d for d in self.den]
        starts = [s * f for s, f in zip(self.start_num, mult)]
        lengths = [ln * f for ln, f in zip(self.length_num, mult)]
        return L, starts, lengths

    def row_placement(self, k: int) -> Placement:
        """Materialize row ``k`` as a :class:`Placement`."""
        den = self.den[k]
        cls = self.cls[k]
        idx = self.job_idx[k]
        return _new_placement(
            self.machine[k],
            fast_fraction(self.start_num[k], den),
            fast_fraction(self.length_num[k], den),
            cls,
            None if idx < 0 else JobRef(cls, idx),
        )

    def slice_placements(self, lo: int, hi: int) -> list[Placement]:
        """Materialize rows ``[lo, hi)`` in row (append) order."""
        out: list[Placement] = []
        mach, sn, ln = self.machine, self.start_num, self.length_num
        den, cl, ji = self.den, self.cls, self.job_idx
        for k in range(lo, hi):
            d = den[k]
            c = cl[k]
            idx = ji[k]
            out.append(
                _new_placement(
                    mach[k],
                    fast_fraction(sn[k], d),
                    fast_fraction(ln[k], d),
                    c,
                    None if idx < 0 else JobRef(c, idx),
                )
            )
        return out

    def to_placements(self, m: int) -> list[list[Placement]]:
        """Materialize all rows into per-machine lists (insertion order)."""
        by_machine: list[list[Placement]] = [[] for _ in range(m)]
        mach, sn, ln = self.machine, self.start_num, self.length_num
        den, cl, ji = self.den, self.cls, self.job_idx
        for k in range(len(mach)):
            d = den[k]
            c = cl[k]
            idx = ji[k]
            by_machine[mach[k]].append(
                _new_placement(
                    mach[k],
                    fast_fraction(sn[k], d),
                    fast_fraction(ln[k], d),
                    c,
                    None if idx < 0 else JobRef(c, idx),
                )
            )
        return by_machine

    @staticmethod
    def from_placements(placements: Iterable[Placement]) -> "ScheduleColumns":
        """Columns encoding ``placements`` (row order = iteration order).

        Raises :class:`ValueError` for a piece whose ``cls`` disagrees with
        its job's class, or whose job index is negative — the columnar
        encoding shares one class column between the row and its
        :class:`~repro.core.instance.JobRef` and reserves ``job_idx = -1``
        for setups, so such (infeasible) placements have no columnar
        form; keep schedules holding them on the placement-list path and
        the scalar validator.
        """
        cols = ScheduleColumns()
        for p in placements:
            if p.job is not None and (p.job.cls != p.cls or p.job.idx < 0):
                raise ValueError(
                    f"placement has no columnar encoding "
                    f"(class mismatch or negative job index): {p}"
                )
            cols.append_placement(p)
        return cols

    def copy(self) -> "ScheduleColumns":
        out = ScheduleColumns.__new__(ScheduleColumns)
        out.machine = self.machine[:]
        out.start_num = self.start_num[:]
        out.length_num = self.length_num[:]
        out.den = self.den[:]
        out.cls = self.cls[:]
        out.job_idx = self.job_idx[:]
        out._dens = set(self._dens)
        out.int_mode = self.int_mode
        out._exported = False
        return out

    # ------------------------------------------------------------------ #
    # cross-process transport
    # ------------------------------------------------------------------ #

    _COL_NAMES = ("machine", "start_num", "length_num", "den", "cls", "job_idx")

    def to_ipc(self) -> dict:
        """Wire form for cross-process transport.

        ``mode="i64"`` wraps the six ``array('q')`` buffers in
        :class:`pickle.PickleBuffer`, so a protocol-5 pickler with a
        ``buffer_callback`` ships them out-of-band — the process-shard
        pipe protocol frames the raw int64 bytes with no per-row
        encoding.  Big-int rows (``int_mode`` False) fall back to
        in-band exact int lists, which plain pickle handles at any
        magnitude.  Inverse: :meth:`from_ipc`.
        """
        self.compact()
        if self.int_mode and not isinstance(self.machine, list):
            return {
                "mode": "i64",
                "cols": [
                    pickle.PickleBuffer(getattr(self, name))
                    for name in self._COL_NAMES
                ],
            }
        return {
            "mode": "obj",
            "cols": [list(getattr(self, name)) for name in self._COL_NAMES],
        }

    @classmethod
    def from_ipc(cls, obj: dict) -> "ScheduleColumns":
        """Rebuild columns from :meth:`to_ipc` output (post-unpickle).

        After the pickle round trip the ``i64`` entries arrive as
        bytes-like buffers; they are copied into fresh ``array('q')``
        columns (the wire buffer is owned by the frame reader).
        """
        mode = obj.get("mode") if isinstance(obj, dict) else None
        data = obj.get("cols") if isinstance(obj, dict) else None
        if (
            mode not in ("i64", "obj")
            or not isinstance(data, (list, tuple))
            or len(data) != len(cls._COL_NAMES)
        ):
            raise ValueError("malformed ScheduleColumns IPC payload")
        out = cls()
        if mode == "i64":
            for name, raw in zip(cls._COL_NAMES, data):
                col = array("q")
                col.frombytes(raw)
                setattr(out, name, col)
        else:
            for name, vals in zip(cls._COL_NAMES, data):
                setattr(out, name, [int(v) for v in vals])
            out.int_mode = False
        out._dens = set(out.den)
        return out


def _rows_view(col):
    """Zero-copy int64 numpy view of an ``array('q')`` column.

    Plain lists (big-int object mode, or mixed-scale rebuilds) pass
    through unchanged — exactness beats vectorization there — and without
    numpy the raw column is returned as-is.
    """
    if _np is None or isinstance(col, list):
        return col
    return _np.frombuffer(col, dtype=_np.int64) if len(col) else _np.empty(0, _np.int64)


class ScheduleRows(NamedTuple):
    """A bulk, read-only row projection of a schedule at one common scale.

    Parallel sequences, one entry per placement in storage order:
    ``start = start_num[k]/scale`` and ``length = length_num[k]/scale``
    exact rationals, ``job_idx[k] = -1`` marks a setup (otherwise the row
    is a piece of job ``(cls[k], job_idx[k])``).  On a columnar schedule
    with numpy installed the sequences are zero-copy ``int64`` views of
    the live column buffers; otherwise they are plain int sequences.
    This is the reader for bulk consumers (Gantt extraction, figure
    filters, analysis sweeps) that only need starts/lengths/classes and
    should not materialize :class:`Placement`/:class:`~fractions.Fraction`
    objects.
    """

    machine: Sequence[int]
    start_num: Sequence[int]
    length_num: Sequence[int]
    cls: Sequence[int]
    job_idx: Sequence[int]
    scale: int

    def __len__(self) -> int:
        return len(self.machine)


class Schedule:
    """A mutable bag of placements with per-machine indexing.

    The class is deliberately permissive — algorithms build and repair
    schedules through it — and :mod:`repro.core.validate` is the single
    source of truth for feasibility.

    Fresh schedules are *columnar*: appends land in a
    :class:`ScheduleColumns` store and no :class:`Placement` exists until
    a caller iterates (``items_on``/``iter_all``/...), at which point a
    materialized per-machine view is built and cached.  Identity-level
    mutation (:meth:`remove`, :meth:`replace_machine`) thaws the schedule
    into the historical placement-list representation permanently.
    """

    def __init__(self, instance: Instance, placements: Iterable[Placement] = ()):
        self.instance = instance
        self._cols_live: Optional[ScheduleColumns] = ScheduleColumns()
        self._pending: Optional[tuple[object, int]] = None
        self._by_machine: Optional[list[list[Placement]]] = None
        self._scan: Optional[dict] = None
        for p in placements:
            self.add(p)

    # ------------------------------------------------------------------ #
    # columnar plumbing
    # ------------------------------------------------------------------ #

    @property
    def _cols(self) -> Optional[ScheduleColumns]:
        """The column store (flushing a pending bulk adoption first)."""
        if self._pending is not None:
            provider, den = self._pending
            self._pending = None
            self.extend_runs(provider.runs(), den)  # type: ignore[attr-defined]
        return self._cols_live

    @_cols.setter
    def _cols(self, value: Optional[ScheduleColumns]) -> None:
        self._cols_live = value

    def adopt_runs(self, provider, den: int) -> None:
        """Adopt a runs provider as the schedule's backing, lazily.

        ``provider`` is anything with a ``runs()`` method in the
        :meth:`extend_runs` shape — in practice the Algorithm-6
        :class:`~repro.core.itemstore.ItemStore`.  Nothing materializes
        now; the first access (columns, aggregates, placements,
        validation) flushes the provider's runs into the column store.
        Sweep pipelines that only carry schedules around never pay the
        materialization at all — one more rung of the PR-3
        lazy-materialization contract.  The schedule must be fresh and
        empty, and the caller must hand over ownership: mutating the
        provider afterwards corrupts the flush.
        """
        if den <= 0:
            raise ValueError(f"denominator must be positive, got {den}")
        if (
            self._pending is not None
            or self._cols_live is None
            or len(self._cols_live)
        ):
            raise ValueError("adopt_runs requires a fresh, empty schedule")
        self._pending = (provider, den)

    def columns(self) -> Optional[ScheduleColumns]:
        """The live column store, or ``None`` once the schedule is thawed."""
        return self._cols

    @classmethod
    def from_columns(cls, instance: Instance, cols: ScheduleColumns) -> "Schedule":
        """A schedule adopting ``cols`` as its backing column store.

        The transport-side constructor: the process-shard protocol ships
        :meth:`ScheduleColumns.to_ipc` payloads and rebuilds the child's
        schedule here without materializing a single
        :class:`Placement`.  The caller hands over ownership of
        ``cols``.
        """
        sched = cls(instance)
        sched._cols_live = cols
        return sched

    def _columns_for_append(self) -> Optional[ScheduleColumns]:
        """Columns ready for direct appends (caches invalidated), or None.

        Construction kernels that emit many rows grab this once and call
        :meth:`ScheduleColumns.append_scaled` directly; the cached
        materialization/aggregate views are dropped up front so reads
        after the burst rebuild from the full column set.
        """
        if self._cols is None:
            return None
        self._by_machine = None
        self._scan = None
        return self._cols

    def _materialized(self) -> list[list[Placement]]:
        bm = self._by_machine
        if bm is None:
            assert self._cols is not None
            bm = self._cols.to_placements(self.instance.m)
            self._by_machine = bm
        return bm

    def _thaw(self) -> None:
        """Switch to the placement-list representation permanently."""
        if self._cols is not None:
            self._materialized()
            self._cols = None
            self._scan = None

    def _scan_cache(self) -> dict:
        """Per-machine scaled loads/ends, one O(rows) pass over the columns."""
        sc = self._scan
        if sc is None:
            cols = self._cols
            assert cols is not None
            m = self.instance.m
            loads: dict[int, list[int]] = {d: [0] * m for d in cols._dens}
            ends: dict[int, list[Optional[int]]] = {
                d: [None] * m for d in cols._dens
            }
            counts = [0] * m
            for u, sn, ln, d in zip(
                cols.machine, cols.start_num, cols.length_num, cols.den
            ):
                loads[d][u] += ln
                e = sn + ln
                cur = ends[d][u]
                if cur is None or e > cur:
                    ends[d][u] = e
                counts[u] += 1
            sc = {"loads": loads, "ends": ends, "counts": counts}
            self._scan = sc
        return sc

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def add(self, placement: Placement) -> Placement:
        if not 0 <= placement.machine < self.instance.m:
            raise ValueError(
                f"machine {placement.machine} out of range [0, {self.instance.m})"
            )
        if placement.length < 0:
            raise ValueError(f"negative length placement: {placement}")
        if placement.start < 0:
            raise ValueError(f"placement starts before time 0: {placement}")
        self._append(placement)
        return placement

    def append_trusted(self, placement: Placement) -> Placement:
        """:meth:`add` without the sign checks — for the scaled-int kernels.

        Only construction code whose arithmetic already guarantees
        non-negative starts/lengths (the wrap engine, the materializers)
        may use this; :mod:`repro.core.validate` remains the real
        feasibility gate for every schedule the library hands out.
        """
        if not 0 <= placement.machine < self.instance.m:
            raise ValueError(
                f"machine {placement.machine} out of range [0, {self.instance.m})"
            )
        self._append(placement)
        return placement

    def _append(self, placement: Placement) -> None:
        cols = self._cols
        if cols is None:
            self._by_machine[placement.machine].append(placement)  # type: ignore[index]
            return
        job = placement.job
        if job is not None and (job.cls != placement.cls or job.idx < 0):
            # A class-mismatched piece has no columnar encoding (the row
            # and its JobRef share one class column), and a negative job
            # index would collide with the job_idx = -1 setup marker:
            # thaw and keep the placement verbatim for the scalar
            # validator to reject ("class-mismatch" / "unknown-job").
            self._thaw()
            self._by_machine[placement.machine].append(placement)  # type: ignore[index]
            return
        cols.append_placement(placement)
        self._by_machine = None
        self._scan = None

    def add_scaled(
        self,
        machine: int,
        start_num: int,
        length_num: int,
        den: int,
        cls: int,
        job: Optional[JobRef] = None,
    ) -> None:
        """Append ``[start_num/den, (start_num+length_num)/den)`` directly.

        The scaled-integer construction paths use this to emit rows
        without materializing a :class:`~fractions.Fraction` or
        :class:`Placement`; values are validated like :meth:`add`.  On a
        thawed schedule the row is materialized and appended normally.
        """
        if den <= 0:
            raise ValueError(f"denominator must be positive, got {den}")
        if self._cols is None or (
            job is not None and (job.cls != cls or job.idx < 0)
        ):
            # thawed schedule, or a row the columns cannot encode (class
            # mismatch / negative job index): route through add(), which
            # preserves the placement for the scalar validator.
            self.add(
                _new_placement(
                    machine,
                    fast_fraction(start_num, den),
                    fast_fraction(length_num, den),
                    cls,
                    job,
                )
            )
            return
        if not 0 <= machine < self.instance.m:
            raise ValueError(
                f"machine {machine} out of range [0, {self.instance.m})"
            )
        if length_num < 0:
            raise ValueError(
                f"negative length placement: "
                f"{self._cols_row_str(machine, start_num, length_num, den, cls, job)}"
            )
        if start_num < 0:
            raise ValueError(
                f"placement starts before time 0: "
                f"{self._cols_row_str(machine, start_num, length_num, den, cls, job)}"
            )
        self._cols.append_scaled(
            machine, start_num, length_num, den, cls,
            -1 if job is None else job.idx,
        )
        self._by_machine = None
        self._scan = None

    def extend_runs(self, runs, den: int) -> None:
        """Bulk-adopt stacked machine runs — the trusted fast-kernel hand-off.

        ``runs`` yields ``(machine, lengths, clss, job_idxs)`` per machine,
        items bottom to top with no idle time below the top item (starts
        are the prefix sums of the scaled lengths); rows go straight into
        the column store via :meth:`ScheduleColumns.extend_runs`.  Only
        construction code whose arithmetic guarantees non-negative lengths
        may use this (sign checks are skipped, like
        :meth:`append_trusted`); :mod:`repro.core.validate` remains the
        real feasibility gate.  On a thawed schedule the rows are
        materialized and appended as placements — identical content.
        """
        if den <= 0:
            raise ValueError(f"denominator must be positive, got {den}")
        m = self.instance.m

        def checked(run_iter):
            for run in run_iter:
                if not 0 <= run[0] < m:
                    raise ValueError(f"machine {run[0]} out of range [0, {m})")
                yield run

        cols = self._columns_for_append()
        if cols is not None:
            cols.extend_runs(checked(runs), den)
            return
        for u, lens, clss, jidxs in runs:
            if not 0 <= u < m:
                raise ValueError(f"machine {u} out of range [0, {m})")
            t = 0
            for ln, c, j in zip(lens, clss, jidxs):
                self._append(
                    _new_placement(
                        u,
                        fast_fraction(t, den),
                        fast_fraction(ln, den),
                        c,
                        None if j < 0 else JobRef(c, j),
                    )
                )
                t += ln

    @staticmethod
    def _cols_row_str(machine, start_num, length_num, den, cls, job) -> str:
        return str(
            _new_placement(
                machine,
                fast_fraction(start_num, den),
                fast_fraction(length_num, den),
                cls,
                job,
            )
        )

    def add_setup(self, machine: int, start: TimeLike, cls: int) -> Placement:
        """Place a (full, non-preempted) setup of ``cls`` at ``start``."""
        return self.add(
            Placement(
                machine=machine,
                start=as_time(start),
                length=as_time(self.instance.setups[cls]),
                cls=cls,
            )
        )

    def add_piece(
        self, machine: int, start: TimeLike, job: JobRef, length: TimeLike
    ) -> Placement:
        """Place a job piece; ``length`` may be any positive rational ≤ t_j."""
        return self.add(
            Placement(
                machine=machine,
                start=as_time(start),
                length=as_time(length),
                cls=job.cls,
                job=job,
            )
        )

    def add_job(self, machine: int, start: TimeLike, job: JobRef) -> Placement:
        """Place a whole job as one piece."""
        return self.add_piece(machine, start, job, self.instance.job_time(job))

    def remove(self, placement: Placement) -> None:
        """Remove one placement (identity by value)."""
        self._thaw()
        self._by_machine[placement.machine].remove(placement)  # type: ignore[index]

    def replace_machine(self, machine: int, items: Iterable[Placement]) -> None:
        """Swap out the full contents of one machine (used by repair passes).

        Incoming placements that still live on another machine's list are
        moved (removed there, retagged here), so the schedule never holds a
        placement twice.
        """
        self._thaw()
        by_machine = self._by_machine
        assert by_machine is not None
        new_items = []
        for p in items:
            if p.machine != machine:
                old = by_machine[p.machine]
                if p in old:
                    old.remove(p)
                p = p.on_machine(machine)
            new_items.append(p)
        by_machine[machine] = new_items

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def items_on(self, machine: int) -> list[Placement]:
        """Placements on ``machine`` sorted by start time."""
        return sorted(self._materialized()[machine], key=lambda p: (p.start, p.end))

    def raw_items_on(self, machine: int) -> list[Placement]:
        """Placements on ``machine`` in insertion order (no sort)."""
        return list(self._materialized()[machine])

    def iter_all(self) -> Iterator[Placement]:
        for items in self._materialized():
            yield from items

    def machine_load(self, machine: int) -> Time:
        """``L(u)`` — total setup + processing time on the machine (page 2)."""
        if self._cols is not None:
            sc = self._scan_cache()
            total = Fraction(0)
            for d, loads in sc["loads"].items():
                v = loads[machine]
                if v:
                    total += fast_fraction(v, d)
            return total
        return sum((p.length for p in self._by_machine[machine]), Fraction(0))  # type: ignore[index]

    def machine_end(self, machine: int) -> Time:
        """Completion time of the machine (max placement end; 0 if empty)."""
        if self._cols is not None:
            sc = self._scan_cache()
            best: Optional[Time] = None
            for d, ends in sc["ends"].items():
                v = ends[machine]
                if v is not None:
                    f = fast_fraction(v, d)
                    if best is None or f > best:
                        best = f
            return Fraction(0) if best is None else best
        items = self._by_machine[machine]  # type: ignore[index]
        return max((p.end for p in items), default=Fraction(0))

    def makespan(self) -> Time:
        """``C_max`` — the latest completion time over all machines."""
        if self._cols is not None:
            sc = self._scan_cache()
            best: Optional[Time] = None
            for d, ends in sc["ends"].items():
                top: Optional[int] = None
                for v in ends:
                    if v is not None and (top is None or v > top):
                        top = v
                if top is not None:
                    f = fast_fraction(top, d)
                    if best is None or f > best:
                        best = f
            return Fraction(0) if best is None else best
        return max((self.machine_end(u) for u in range(self.instance.m)), default=Fraction(0))

    def total_load(self) -> Time:
        """``L(σ) = Σ_u L(u)``."""
        if self._cols is not None:
            sc = self._scan_cache()
            total = Fraction(0)
            for d, loads in sc["loads"].items():
                s = sum(loads)
                if s:
                    total += fast_fraction(s, d)
            return total
        return sum((self.machine_load(u) for u in range(self.instance.m)), Fraction(0))

    def used_machines(self) -> list[int]:
        if self._cols is not None:
            counts = self._scan_cache()["counts"]
            return [u for u in range(self.instance.m) if counts[u]]
        return [u for u in range(self.instance.m) if self._by_machine[u]]  # type: ignore[index]

    def rows(self) -> ScheduleRows:
        """Bulk read-only row view at one common scale (see :class:`ScheduleRows`).

        On a live columnar schedule this is (numpy installed, single
        denominator) a zero-copy view of the column buffers — no
        :class:`Placement` or :class:`~fractions.Fraction` is created.
        The projection is a *point-in-time snapshot*: mutating the
        schedule afterwards flips the columns to fresh list buffers (the
        held views keep the old arrays alive), so rows read earlier stay
        valid but do not show later appends.  A thawed schedule is
        re-encoded row by row; pieces whose ``JobRef`` class disagrees
        with the placement class (only constructible on the thawed path,
        and rejected by the validators) project their ``job_idx`` with
        the row's ``cls``, so the pair identifies the job only on
        well-formed schedules.
        """
        cols = self._cols
        if cols is not None:
            cols.compact()  # rebuild int64 buffers after a bulk-list adoption
            L, starts, lengths = cols.scaled()
            view = ScheduleRows(
                _rows_view(cols.machine),
                _rows_view(starts),
                _rows_view(lengths),
                _rows_view(cols.cls),
                _rows_view(cols.job_idx),
                L,
            )
            # mark the buffers exported so later appends convert instead
            # of resizing (numpy views would otherwise raise BufferError)
            cols._exported = _np is not None and not isinstance(cols.machine, list)
            return view
        placements = list(self.iter_all())
        L = 1
        for p in placements:
            L = _lcm2(L, _lcm2(p.start.denominator, p.length.denominator))
        mq: list[int] = []
        sq: list[int] = []
        lq: list[int] = []
        cq: list[int] = []
        jq: list[int] = []
        for p in placements:
            mq.append(p.machine)
            sq.append(p.start.numerator * (L // p.start.denominator))
            lq.append(p.length.numerator * (L // p.length.denominator))
            cq.append(p.cls)
            jq.append(-1 if p.job is None else p.job.idx)
        return ScheduleRows(mq, sq, lq, cq, jq, L)

    def job_pieces(self, job: JobRef) -> list[Placement]:
        """All pieces of one job across all machines."""
        return [p for p in self.iter_all() if p.job == job]

    def job_total(self, job: JobRef) -> Time:
        """Scheduled processing amount of one job."""
        cols = self._cols
        if cols is not None:
            per_den: dict[int, int] = {}
            cls, idx = job.cls, job.idx
            for c, ji, ln, d in zip(
                cols.cls, cols.job_idx, cols.length_num, cols.den
            ):
                if c == cls and ji == idx:
                    per_den[d] = per_den.get(d, 0) + ln
            total = Fraction(0)
            for d, v in per_den.items():
                if v:
                    total += fast_fraction(v, d)
            return total
        return sum((p.length for p in self.iter_all() if p.job == job), Fraction(0))

    def setup_count(self, cls: int) -> int:
        """Setup multiplicity ``λ_i`` of class ``cls`` in this schedule."""
        cols = self._cols
        if cols is not None:
            return sum(
                1 for c, ji in zip(cols.cls, cols.job_idx) if ji < 0 and c == cls
            )
        return sum(1 for p in self.iter_all() if p.is_setup and p.cls == cls)

    def count_placements(self) -> int:
        if self._cols is not None:
            return len(self._cols)
        return sum(len(items) for items in self._by_machine)  # type: ignore[union-attr]

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    def copy(self) -> "Schedule":
        if self._cols is not None:
            out = Schedule(self.instance)
            out._cols = self._cols.copy()
            return out
        return Schedule(self.instance, self.iter_all())

    def describe(self) -> str:
        used = len(self.used_machines())
        return (
            f"Schedule(makespan={time_str(self.makespan())}, placements="
            f"{self.count_placements()}, machines_used={used}/{self.instance.m})"
        )
