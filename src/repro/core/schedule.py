"""Explicit schedule representation.

A :class:`Schedule` is a set of :class:`Placement` items — setups and job
pieces — each pinned to a machine and a closed-open time interval
``[start, start+length)``.  This is the *stronger* notion of schedule from
Section 3.2: the splittable algorithms may compute machine configurations
with multiplicities internally (see :mod:`repro.core.wrapping`), but
everything is materialized into explicit placements before validation, so
the validators never have to trust an algorithm's own bookkeeping.

All times are exact rationals (:mod:`repro.core.numeric`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Iterable, Iterator, Optional

from .instance import Instance, JobRef
from .numeric import Time, TimeLike, as_time, time_str


@dataclass(frozen=True)
class Placement:
    """One contiguous item on one machine.

    ``job is None`` marks a setup of class ``cls``; otherwise the placement
    is a *job piece* of ``job`` (a full job is a single piece covering its
    whole processing time).
    """

    machine: int
    start: Time
    length: Time
    cls: int
    job: Optional[JobRef] = None

    @property
    def end(self) -> Time:
        return self.start + self.length

    @property
    def is_setup(self) -> bool:
        return self.job is None

    def shifted(self, delta: TimeLike) -> "Placement":
        """Copy moved by ``delta`` in time."""
        return replace(self, start=self.start + as_time(delta))

    def on_machine(self, machine: int) -> "Placement":
        """Copy moved to another machine (same times)."""
        return replace(self, machine=machine)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = f"setup(s{self.cls})" if self.is_setup else f"job({self.job})"
        return f"[{time_str(self.start)},{time_str(self.end)}) {kind} @M{self.machine}"


class Schedule:
    """A mutable bag of placements with per-machine indexing.

    The class is deliberately permissive — algorithms build and repair
    schedules through it — and :mod:`repro.core.validate` is the single
    source of truth for feasibility.
    """

    def __init__(self, instance: Instance, placements: Iterable[Placement] = ()):
        self.instance = instance
        self._by_machine: list[list[Placement]] = [[] for _ in range(instance.m)]
        for p in placements:
            self.add(p)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def add(self, placement: Placement) -> Placement:
        if not 0 <= placement.machine < self.instance.m:
            raise ValueError(
                f"machine {placement.machine} out of range [0, {self.instance.m})"
            )
        if placement.length < 0:
            raise ValueError(f"negative length placement: {placement}")
        if placement.start < 0:
            raise ValueError(f"placement starts before time 0: {placement}")
        self._by_machine[placement.machine].append(placement)
        return placement

    def append_trusted(self, placement: Placement) -> Placement:
        """:meth:`add` without the sign checks — for the scaled-int kernels.

        Only construction code whose arithmetic already guarantees
        non-negative starts/lengths (the wrap engine, the materializers)
        may use this; :mod:`repro.core.validate` remains the real
        feasibility gate for every schedule the library hands out.
        """
        if not 0 <= placement.machine < self.instance.m:
            raise ValueError(
                f"machine {placement.machine} out of range [0, {self.instance.m})"
            )
        self._by_machine[placement.machine].append(placement)
        return placement

    def add_setup(self, machine: int, start: TimeLike, cls: int) -> Placement:
        """Place a (full, non-preempted) setup of ``cls`` at ``start``."""
        return self.add(
            Placement(
                machine=machine,
                start=as_time(start),
                length=as_time(self.instance.setups[cls]),
                cls=cls,
            )
        )

    def add_piece(
        self, machine: int, start: TimeLike, job: JobRef, length: TimeLike
    ) -> Placement:
        """Place a job piece; ``length`` may be any positive rational ≤ t_j."""
        return self.add(
            Placement(
                machine=machine,
                start=as_time(start),
                length=as_time(length),
                cls=job.cls,
                job=job,
            )
        )

    def add_job(self, machine: int, start: TimeLike, job: JobRef) -> Placement:
        """Place a whole job as one piece."""
        return self.add_piece(machine, start, job, self.instance.job_time(job))

    def remove(self, placement: Placement) -> None:
        """Remove one placement (identity by value)."""
        self._by_machine[placement.machine].remove(placement)

    def replace_machine(self, machine: int, items: Iterable[Placement]) -> None:
        """Swap out the full contents of one machine (used by repair passes).

        Incoming placements that still live on another machine's list are
        moved (removed there, retagged here), so the schedule never holds a
        placement twice.
        """
        new_items = []
        for p in items:
            if p.machine != machine:
                old = self._by_machine[p.machine]
                if p in old:
                    old.remove(p)
                p = p.on_machine(machine)
            new_items.append(p)
        self._by_machine[machine] = new_items

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def items_on(self, machine: int) -> list[Placement]:
        """Placements on ``machine`` sorted by start time."""
        return sorted(self._by_machine[machine], key=lambda p: (p.start, p.end))

    def raw_items_on(self, machine: int) -> list[Placement]:
        """Placements on ``machine`` in insertion order (no sort)."""
        return list(self._by_machine[machine])

    def iter_all(self) -> Iterator[Placement]:
        for items in self._by_machine:
            yield from items

    def machine_load(self, machine: int) -> Time:
        """``L(u)`` — total setup + processing time on the machine (page 2)."""
        return sum((p.length for p in self._by_machine[machine]), Fraction(0))

    def machine_end(self, machine: int) -> Time:
        """Completion time of the machine (max placement end; 0 if empty)."""
        items = self._by_machine[machine]
        return max((p.end for p in items), default=Fraction(0))

    def makespan(self) -> Time:
        """``C_max`` — the latest completion time over all machines."""
        return max((self.machine_end(u) for u in range(self.instance.m)), default=Fraction(0))

    def total_load(self) -> Time:
        """``L(σ) = Σ_u L(u)``."""
        return sum((self.machine_load(u) for u in range(self.instance.m)), Fraction(0))

    def used_machines(self) -> list[int]:
        return [u for u in range(self.instance.m) if self._by_machine[u]]

    def job_pieces(self, job: JobRef) -> list[Placement]:
        """All pieces of one job across all machines."""
        return [p for p in self.iter_all() if p.job == job]

    def job_total(self, job: JobRef) -> Time:
        """Scheduled processing amount of one job."""
        return sum((p.length for p in self.iter_all() if p.job == job), Fraction(0))

    def setup_count(self, cls: int) -> int:
        """Setup multiplicity ``λ_i`` of class ``cls`` in this schedule."""
        return sum(1 for p in self.iter_all() if p.is_setup and p.cls == cls)

    def count_placements(self) -> int:
        return sum(len(items) for items in self._by_machine)

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    def copy(self) -> "Schedule":
        return Schedule(self.instance, self.iter_all())

    def describe(self) -> str:
        used = len(self.used_machines())
        return (
            f"Schedule(makespan={time_str(self.makespan())}, placements="
            f"{self.count_placements()}, machines_used={used}/{self.instance.m})"
        )
