"""The scheduling instance model.

An :class:`Instance` is the quintuple of the paper's Section 1: ``m``
identical machines, ``n`` jobs partitioned into ``c`` non-empty classes
``C_1, ..., C_c``, a processing time ``t_j ∈ N`` per job and a setup time
``s_i`` per class.  Instances are immutable; all aggregate quantities the
algorithms need in O(1) (``P(C_i)``, ``t^(i)_max``, ``N``, ``s_max``) are
computed once at construction, which keeps every per-``T`` dual test at
O(c) as required by Class Jumping (Sections 3.4, 4.4).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Iterable, Iterator, NamedTuple, Sequence

from .errors import InvalidInstanceError


def _as_int(value, what: str) -> int:
    """Exact integer coercion; rejects floats like ``1.5`` loudly."""
    try:
        return operator.index(value)
    except TypeError:
        raise InvalidInstanceError(f"{what} must be an integer, got {value!r}") from None


class JobRef(NamedTuple):
    """Stable identity of a job: class index and position within the class.

    Class indices are 0-based in code (the paper uses 1-based ``i ∈ [c]``).
    """

    cls: int
    idx: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"C{self.cls}#{self.idx}"


@dataclass(frozen=True)
class Instance:
    """An immutable batch-setup scheduling instance.

    Parameters
    ----------
    m:
        Number of identical parallel machines (``m ≥ 1``).
    setups:
        ``setups[i]`` is the setup time ``s_i`` of class ``i`` (non-negative
        integer; the paper assumes ``s_i ≥ 1`` and all provided generators
        follow that, but zero setups are accepted and handled).
    jobs:
        ``jobs[i]`` is the tuple of processing times of the jobs in class
        ``i``; every class is non-empty and every ``t_j ≥ 1``.
    """

    m: int
    setups: tuple[int, ...]
    jobs: tuple[tuple[int, ...], ...]

    # Aggregates (filled in __post_init__, object.__setattr__ because frozen).
    class_processing: tuple[int, ...] = field(init=False, repr=False)
    class_tmax: tuple[int, ...] = field(init=False, repr=False)
    class_sizes: tuple[int, ...] = field(init=False, repr=False)

    # Scalar aggregates cached once at construction (eq/repr stay keyed on
    # (m, setups, jobs) via compare=False/repr=False).
    n: int = field(init=False, repr=False, compare=False)
    total_processing: int = field(init=False, repr=False, compare=False)
    total_load: int = field(init=False, repr=False, compare=False)
    smax: int = field(init=False, repr=False, compare=False)
    tmax: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.m, int) or self.m < 1:
            raise InvalidInstanceError(f"m must be a positive integer, got {self.m!r}")
        if len(self.setups) != len(self.jobs):
            raise InvalidInstanceError(
                f"setups ({len(self.setups)}) and jobs ({len(self.jobs)}) must have "
                "one entry per class"
            )
        if len(self.jobs) == 0:
            raise InvalidInstanceError("instance needs at least one class")
        for i, s in enumerate(self.setups):
            if not isinstance(s, int) or s < 0:
                raise InvalidInstanceError(f"setup s_{i} must be a non-negative int, got {s!r}")
        for i, times in enumerate(self.jobs):
            if len(times) == 0:
                raise InvalidInstanceError(f"class {i} is empty; the paper requires C_i != {{}}")
            for t in times:
                if not isinstance(t, int) or t < 1:
                    raise InvalidInstanceError(
                        f"processing times must be positive ints, class {i} has {t!r}"
                    )
        object.__setattr__(self, "class_processing", tuple(sum(ts) for ts in self.jobs))
        object.__setattr__(self, "class_tmax", tuple(max(ts) for ts in self.jobs))
        object.__setattr__(self, "class_sizes", tuple(len(ts) for ts in self.jobs))
        object.__setattr__(self, "n", sum(self.class_sizes))
        object.__setattr__(self, "total_processing", sum(self.class_processing))
        object.__setattr__(self, "total_load", sum(self.setups) + self.total_processing)
        object.__setattr__(self, "smax", max(self.setups))
        object.__setattr__(self, "tmax", max(self.class_tmax))
        # Lazy per-class caches (built on first use; keyed by class index).
        object.__setattr__(self, "_jobs_frac_cache", {})
        object.__setattr__(self, "_jobs_sorted_cache", {})
        object.__setattr__(self, "_misc_cache", {})
        object.__setattr__(self, "_fast_ctx", None)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @staticmethod
    def build(m: int, classes: Sequence[tuple[int, Sequence[int]]]) -> "Instance":
        """Build from ``[(s_i, [t_j, ...]), ...]`` — the natural literal form."""
        return Instance(
            m=m,
            setups=tuple(_as_int(s, "setup") for s, _ in classes),
            jobs=tuple(tuple(_as_int(t, "processing time") for t in ts) for _, ts in classes),
        )

    @staticmethod
    def from_flat(
        m: int, setups: Sequence[int], job_classes: Sequence[int], job_times: Sequence[int]
    ) -> "Instance":
        """Build from flat parallel arrays (``job_classes[k]`` is 0-based)."""
        if len(job_classes) != len(job_times):
            raise InvalidInstanceError("job_classes and job_times must have equal length")
        buckets: list[list[int]] = [[] for _ in setups]
        for cls, t in zip(job_classes, job_times):
            if not 0 <= cls < len(setups):
                raise InvalidInstanceError(f"job class {cls} out of range [0, {len(setups)})")
            buckets[cls].append(_as_int(t, "processing time"))
        return Instance(
            m=m,
            setups=tuple(_as_int(s, "setup") for s in setups),
            jobs=tuple(map(tuple, buckets)),
        )

    # ------------------------------------------------------------------ #
    # aggregates
    # ------------------------------------------------------------------ #

    @property
    def c(self) -> int:
        """Number of classes."""
        return len(self.setups)

    @property
    def delta(self) -> int:
        """``Δ = max{s_max, t_max}`` — the largest input value (Theorem 8)."""
        return max(self.smax, self.tmax)

    def processing(self, cls: int) -> int:
        """``P(C_i)`` — total processing time of class ``cls``."""
        return self.class_processing[cls]

    def job_time(self, job: JobRef) -> int:
        """Processing time ``t_j`` of a :class:`JobRef`."""
        return self.jobs[job.cls][job.idx]

    def iter_jobs(self) -> Iterator[tuple[JobRef, int]]:
        """Yield ``(JobRef, t_j)`` for every job, grouped by class."""
        for cls, times in enumerate(self.jobs):
            for idx, t in enumerate(times):
                yield JobRef(cls, idx), t

    def class_jobs(self, cls: int) -> list[tuple[JobRef, int]]:
        """All ``(JobRef, t_j)`` of one class (fresh list; safe to mutate)."""
        return [(JobRef(cls, idx), t) for idx, t in enumerate(self.jobs[cls])]

    def class_jobs_frac(self, cls: int) -> tuple[tuple[JobRef, "Fraction"], ...]:
        """Cached ``(JobRef, Fraction(t_j))`` view of one class.

        The preemptive algorithms build :class:`~fractions.Fraction` job
        lists per class on every construction; this cache builds each view
        once per instance instead.  The returned tuple is shared — do not
        mutate item pairs.
        """
        cached = self._jobs_frac_cache.get(cls)
        if cached is None:
            from fractions import Fraction

            cached = tuple(
                (JobRef(cls, idx), Fraction(t)) for idx, t in enumerate(self.jobs[cls])
            )
            self._jobs_frac_cache[cls] = cached
        return cached

    def class_jobs_frac_cached(self, cls: int):
        """The cached Fraction view of ``cls`` if already built, else ``None``.

        Unlike :meth:`class_jobs_frac` this never *builds* the view.  The
        scaled-integer construction paths identity-test view entries
        against it to detect full-class views (whose lengths are the
        instance's integer processing times) without spending O(n_i)
        Fraction allocations on classes that only ever carry derived
        piece views.
        """
        return self._jobs_frac_cache.get(cls)

    def class_jobs_sorted(self, cls: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Cached ``(sorted processing times, prefix sums)`` of one class.

        ``prefix[k] = Σ sorted_times[:k]`` (so ``prefix`` has ``n_i + 1``
        entries).  The scaled-integer dual tests bisect these to count and
        weigh threshold sets (``J⁺``, ``K``, ``C*_i``) in O(log n_i) instead
        of rescanning the class.
        """
        cached = self._jobs_sorted_cache.get(cls)
        if cached is None:
            ts = tuple(sorted(self.jobs[cls]))
            prefix = [0]
            for t in ts:
                prefix.append(prefix[-1] + t)
            cached = (ts, tuple(prefix))
            self._jobs_sorted_cache[cls] = cached
        return cached

    def setups_frac(self) -> tuple["Fraction", ...]:
        """Cached ``Fraction`` view of the setup times.

        The wrap engine and the construction repairs emit one setup
        placement per batch/gap switch; sharing the Fraction objects
        avoids re-normalizing the same integers on every call.
        """
        cached = self._misc_cache.get("setups_frac")
        if cached is None:
            from fractions import Fraction

            cached = tuple(Fraction(s) for s in self.setups)
            self._misc_cache["setups_frac"] = cached
        return cached

    def class_prefix(self, cls: int) -> tuple[int, ...]:
        """Cached prefix sums of one class's processing times in job order.

        ``prefix[k] = Σ jobs[cls][:k]`` (``n_i + 1`` entries, strictly
        increasing since ``t_j ≥ 1``).  The Algorithm-6 store tier bisects
        these to turn quota wraps and machine fills into window emissions
        (:meth:`repro.core.itemstore.ItemStore.emit_window`) — one bulk
        extend per machine instead of per-job placement work.
        """
        cached = self._misc_cache.get(("prefix", cls))
        if cached is None:
            prefix = [0]
            for t in self.jobs[cls]:
                prefix.append(prefix[-1] + t)
            cached = tuple(prefix)
            self._misc_cache[("prefix", cls)] = cached
        return cached

    def class_jobs_view(self, cls: int) -> tuple[tuple[JobRef, int], ...]:
        """Cached ``(JobRef, t_j)`` tuple of one class (integer times).

        The integer construction paths (Algorithm 6, the scaled-int view
        math) only iterate these pairs; caching them skips the per-call
        list/`JobRef` rebuilding of :meth:`class_jobs`.  The returned
        tuple is shared — do not mutate.
        """
        cached = self._misc_cache.get(("jobs_view", cls))
        if cached is None:
            cached = tuple(
                (JobRef(cls, idx), t) for idx, t in enumerate(self.jobs[cls])
            )
            self._misc_cache[("jobs_view", cls)] = cached
        return cached

    def fingerprint(self) -> str:
        """Stable content digest of ``(setups, jobs)`` — machine-count free.

        Two instances share a fingerprint iff they may share caches (the
        :func:`~repro.algos.batch_api.solve_many` rep key, the service
        shard key): the digest covers the class data only, so ``m``
        sweeps of one instance all land on the same fingerprint.  The
        hex string is stable across processes (blake2b of the canonical
        encoding), which lets the service protocol report it and a
        client pin requests to shards deterministically.  Cached in the
        shared misc cache, so ``with_machines(..., share_caches=True)``
        copies inherit it without re-hashing.
        """
        cached = self._misc_cache.get("fingerprint")
        if cached is None:
            import hashlib

            h = hashlib.blake2b(digest_size=16)
            h.update(repr(self.setups).encode())
            h.update(b"|")
            h.update(repr(self.jobs).encode())
            cached = h.hexdigest()
            self._misc_cache["fingerprint"] = cached
        return cached

    def cache_stats(self) -> dict[str, int]:
        """Entry counts of the lazy caches (service eviction accounting).

        ``fast_ctx`` is 0/1; ``batch`` counts the numpy scratch entries
        owned by :mod:`repro.core.batchdual` inside the context.  All
        counts are for the *shared* cache set — cache-sharing
        ``with_machines`` copies report the same numbers.
        """
        ctx = self._fast_ctx
        if ctx is None:
            batch = 0
        else:
            from .batchdual import cache_entries

            batch = cache_entries(ctx)
        return {
            "frac_views": len(self._jobs_frac_cache),
            "sorted_views": len(self._jobs_sorted_cache),
            "misc": len(self._misc_cache),
            "fast_ctx": 0 if ctx is None else 1,
            "batch": batch,
        }

    def release_caches(self) -> None:
        """Drop every lazily built cache (the service LRU eviction hook).

        Clears the per-class view caches *in place* (cache-sharing
        copies hand their memory back too — that is the point of
        evicting a fingerprint) and releases the fast-kernel context,
        including the numpy scratch :mod:`repro.core.batchdual` keeps in
        it.  The instance stays fully usable: every cache rebuilds on
        demand, bit-identically, at the usual construction cost.
        """
        self._jobs_frac_cache.clear()
        self._jobs_sorted_cache.clear()
        self._misc_cache.clear()
        ctx = self._fast_ctx
        if ctx is not None:
            ctx.release()
            object.__setattr__(self, "_fast_ctx", None)

    def fast_ctx(self) -> "DualContext":
        """The per-instance :class:`repro.core.fastnum.DualContext`, cached.

        Built once and reused across every dual-test probe of a solve (the
        binary searches and Class Jumping issue ``O(log)`` probes each).
        """
        ctx = self._fast_ctx
        if ctx is None:
            from .fastnum import DualContext

            ctx = DualContext(self)
            object.__setattr__(self, "_fast_ctx", ctx)
        return ctx

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    def describe(self) -> str:
        """One-line summary used by examples and experiment logs."""
        return (
            f"Instance(m={self.m}, n={self.n}, c={self.c}, N={self.total_load}, "
            f"smax={self.smax}, tmax={self.tmax})"
        )

    def with_machines(self, m: int, *, share_caches: bool = False) -> "Instance":
        """Copy with a different machine count (used by sweeps).

        With ``share_caches=True`` the copy reuses this instance's lazy
        per-class caches (Fraction job views, sorted views with prefix
        sums) and carries a :meth:`DualContext.for_m
        <repro.core.fastnum.DualContext.for_m>` clone of the fast-kernel
        context — all of that data is machine-count independent.
        Validation and aggregate computation are skipped too (the fields
        are copied from this already-validated instance), so the copy is
        O(c) instead of O(n).  This is the primitive behind
        :func:`repro.algos.batch_api.sweep_machines`.
        """
        if not share_caches:
            return Instance(m=m, setups=self.setups, jobs=self.jobs)
        if not isinstance(m, int) or m < 1:
            raise InvalidInstanceError(f"m must be a positive integer, got {m!r}")
        inst = object.__new__(Instance)
        put = object.__setattr__
        put(inst, "m", m)
        for name in (
            "setups", "jobs", "class_processing", "class_tmax", "class_sizes",
            "n", "total_processing", "total_load", "smax", "tmax",
            "_jobs_frac_cache", "_jobs_sorted_cache", "_misc_cache",
        ):
            put(inst, name, getattr(self, name))
        ctx = self._fast_ctx
        put(inst, "_fast_ctx", None if ctx is None else ctx.for_m(m, inst))
        return inst


def concat_instances(m: int, parts: Iterable[Instance]) -> Instance:
    """Union of the classes of several instances on ``m`` machines.

    Used by generators to compose adversarial families from building blocks.
    """
    setups: list[int] = []
    jobs: list[tuple[int, ...]] = []
    for part in parts:
        setups.extend(part.setups)
        jobs.extend(part.jobs)
    return Instance(m=m, setups=tuple(setups), jobs=tuple(jobs))
