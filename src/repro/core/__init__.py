"""Core substrate: instance/schedule model, partitions, bounds, wrapping.

Everything the approximation algorithms in :mod:`repro.algos` build on.
"""

from .bounds import (
    Variant,
    average_load,
    lower_bound,
    setup_plus_tmax,
    t_max_window,
    t_min,
    trivial_upper_bound,
)
from .classification import (
    NonpPartition,
    PmtnPartition,
    alpha,
    alpha_prime,
    beta,
    beta_prime,
    gamma,
    nonp_partition,
    pmtn_partition,
    split_expensive_cheap,
)
from .cancel import CancelToken, SolveCancelled, cancel_scope, check_cancelled
from .errors import (
    ConstructionError,
    InfeasibleScheduleError,
    InvalidInstanceError,
    RejectedMakespanError,
    ReproError,
)
from .instance import Instance, JobRef, concat_instances
from .knapsack import ContinuousSolution, KnapsackItem, solve_continuous, solve_integral
from .numeric import Time, as_time, frac_ceil, frac_floor, time_str
from .schedule import Placement, Schedule, ScheduleColumns
from .validate import (
    is_feasible,
    validate_columns,
    validate_schedule,
    validate_schedule_scalar,
)
from .wrapping import Batch, Gap, WrapResult, WrapSequence, WrapTemplate, template_for_machines, wrap

__all__ = [
    "Variant",
    "average_load",
    "lower_bound",
    "setup_plus_tmax",
    "t_max_window",
    "t_min",
    "trivial_upper_bound",
    "NonpPartition",
    "PmtnPartition",
    "alpha",
    "alpha_prime",
    "beta",
    "beta_prime",
    "gamma",
    "nonp_partition",
    "pmtn_partition",
    "split_expensive_cheap",
    "CancelToken",
    "SolveCancelled",
    "cancel_scope",
    "check_cancelled",
    "ConstructionError",
    "InfeasibleScheduleError",
    "InvalidInstanceError",
    "RejectedMakespanError",
    "ReproError",
    "Instance",
    "JobRef",
    "concat_instances",
    "ContinuousSolution",
    "KnapsackItem",
    "solve_continuous",
    "solve_integral",
    "Time",
    "as_time",
    "frac_ceil",
    "frac_floor",
    "time_str",
    "Placement",
    "Schedule",
    "ScheduleColumns",
    "is_feasible",
    "validate_columns",
    "validate_schedule",
    "validate_schedule_scalar",
    "Batch",
    "Gap",
    "WrapResult",
    "WrapSequence",
    "WrapTemplate",
    "template_for_machines",
    "wrap",
]
