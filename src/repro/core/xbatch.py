"""Cross-instance batched dual tests: one padded grid per micro-batch round.

The PR-2 grids (:mod:`repro.core.batchdual`) vectorize candidate-``T``
sweeps *within* one instance.  A service shard's micro-batch is the
opposite shape: many small instances, each probing a handful of
candidates per search round.  This module stacks those probes — rows of
``(member, tn, td)`` over *different* instances — into one numpy
evaluation per round:

* every member :class:`~repro.core.fastnum.DualContext` contributes its
  per-class columns to padded ``(members, c_max)`` arrays (zero padding
  is neutral for all four duals: a padded class has ``s = P = t_max =
  0``, so it is never expensive, never cheap-with-stars, and adds zero
  setup/load);
* the per-class sorted job views concatenate into one **batch-level flat
  key space** keyed by a global class slot (member offset + class
  offset): slot ``g`` owns keys in ``[g·spacing, (g+1)·spacing)``, with
  one trailing *empty* slot for padded lanes, so all ``rows × c_max``
  job-threshold queries of a round resolve in a single ``searchsorted``
  — the :func:`~repro.core.batchdual._np_flat` trick generalized across
  instances;
* each verdict is **bit-identical** to the scalar kernel: the exact-int
  overflow precheck (:func:`~repro.core.batchdual._grid_is_safe` per
  member, plus the global flat-key bound) drops unsafe members to the
  scalar kernel, the preemptive knapsack lanes resolve scalar lane-by-
  lane exactly like the within-instance grid, and without numpy the
  whole evaluation is a pure-Python loop over
  :mod:`repro.core.fastnum` — numpy stays optional.

The consumer is the lockstep coordinator of
:func:`repro.algos.batch_api.solve_batch` (``xbatch=True``): it advances
every item's bracket search one round at a time and hands each round's
probe rows to :meth:`BatchDualContext.evaluate`.  The differential fuzz
suite (``tests/test_xbatch.py``) asserts row-for-row bit-identity
against the scalar kernel on every kind, including the overflow
boundary.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .batchdual import (
    _GUARD,
    _CHUNK_ELEMS,
    HAVE_NUMPY,
    _grid_is_safe,
    _np,
)
from .fastnum import (
    DualContext,
    NonpVerdict,
    PmtnVerdict,
    SplitVerdict,
    fast_base_core,
    fast_nonp_test,
    fast_pmtn_test,
    fast_split_test,
)
from ..obs.trace import count as obs_count

__all__ = [
    "BatchDualContext",
    "PROBE_KINDS",
    "fast_split_test_xgrid",
    "fast_nonp_test_xgrid",
    "fast_pmtn_test_xgrid",
    "fast_base_core_xgrid",
]

#: The dual-test kinds one batch row can carry.  ``pmtn`` honours a mode
#: (``alpha``/``gamma``); ``pmtn_base`` is Algorithm 4's monotone core.
PROBE_KINDS = ("split", "nonp", "pmtn", "pmtn_base")

#: Below this many fusable rows a padded kernel dispatch costs more than
#: the scalar probes it replaces; purely a performance cutoff (both
#: paths are bit-identical).
_MIN_FUSED_ROWS = 2


def _ceil_div_np(num, den):
    return -((-num) // den)


def _member_cols(ctx) -> tuple:
    """Per-member int64 class columns ``(setups, P, class_tmax)``.

    Parked in the member's shared ``batch_cache`` scratch (m-independent,
    shared by ``for_m`` clones, cleared by the LRU eviction hook) so a
    warm rep pads the batch arrays from ready-made views instead of
    re-converting the Python lists.
    """
    cols = ctx.batch_cache.get("xgrid_cols")
    if cols is None:
        cols = (
            _np.asarray(ctx.setups, dtype=_np.int64),
            _np.asarray(ctx.P, dtype=_np.int64),
            _np.asarray(ctx.class_tmax, dtype=_np.int64),
        )
        ctx.batch_cache["xgrid_cols"] = cols
    return cols


def _member_segments(ctx) -> dict:
    """Per-member pieces of the flat sorted-key layout, batch-independent.

    The batch layout interleaves every member's per-class sorted keys
    into one global key space; the only batch-dependent parts of that
    are the slot offsets and the spacing.  Everything member-local —
    concatenated sorted keys, each key's class id, prefix sums, and the
    per-class counts — is computed once per context and parked in its
    shared ``batch_cache`` scratch, so assembling a fresh batch layout
    is a handful of vectorised ops per member rather than a Python loop
    over every class of every member.
    """
    seg = ctx.batch_cache.get("xgrid_segments")
    if seg is None:
        keys_parts = []
        prefix_parts = []
        counts = _np.empty(ctx.c, dtype=_np.int64)
        plens = _np.empty(ctx.c, dtype=_np.int64)
        for ci in range(ctx.c):
            ts, prefix = ctx.sorted_jobs(ci)
            keys_parts.append(_np.asarray(ts, dtype=_np.int64))
            prefix_parts.append(_np.asarray(prefix, dtype=_np.int64))
            counts[ci] = len(ts)
            plens[ci] = len(prefix)
        seg = {
            "keys": _np.concatenate(keys_parts)
            if keys_parts
            else _np.empty(0, dtype=_np.int64),
            "class_of_key": _np.repeat(
                _np.arange(ctx.c, dtype=_np.int64), counts
            ),
            "prefix": _np.concatenate(prefix_parts)
            if prefix_parts
            else _np.empty(0, dtype=_np.int64),
            "counts": counts,
            "plens": plens,
        }
        ctx.batch_cache["xgrid_segments"] = seg
    return seg


class BatchDualContext:
    """Ragged→flat mapping over the member contexts of one micro-batch.

    ``members`` are the distinct :class:`DualContext` objects of a batch
    (one per fingerprint representative × machine count).  The context
    owns the padded per-class arrays and the global flat sorted-key
    layout; both build lazily on the first fused evaluation, reusing the
    members' instance-cached sorted views.
    """

    def __init__(self, members: Sequence[DualContext]) -> None:
        self.members = list(members)
        self._pad: Optional[dict] = None
        self._flat: Optional[dict] = None
        self._flat_safe: Optional[bool] = None

    def member_index(self, ctx: DualContext) -> int:
        """Index of ``ctx`` in ``members`` (appends unseen contexts)."""
        for i, member in enumerate(self.members):
            if member is ctx:
                return i
        self.members.append(ctx)
        self._pad = self._flat = self._flat_safe = None  # rebuild lazily
        return len(self.members) - 1

    # ------------------------------------------------------------------ #
    # lazily built batch-level layouts
    # ------------------------------------------------------------------ #

    def _padded(self) -> dict:
        """Padded ``(members, c_max)`` class columns + per-member scalars."""
        pad = self._pad
        if pad is None:
            g = len(self.members)
            c_max = max(ctx.c for ctx in self.members)
            S = _np.zeros((g, c_max), dtype=_np.int64)
            P = _np.zeros((g, c_max), dtype=_np.int64)
            tmax = _np.zeros((g, c_max), dtype=_np.int64)
            for k, ctx in enumerate(self.members):
                cS, cP, ctm = _member_cols(ctx)
                S[k, : ctx.c] = cS
                P[k, : ctx.c] = cP
                tmax[k, : ctx.c] = ctm
            pad = {
                "c_max": c_max,
                "S": S,
                "P": P,
                "tmax": tmax,
                "m": _np.asarray([ctx.m for ctx in self.members], dtype=_np.int64),
                "tp": _np.asarray(
                    [ctx.total_processing for ctx in self.members], dtype=_np.int64
                ),
                "spt": _np.asarray(
                    [ctx.spt for ctx in self.members], dtype=_np.int64
                ),
            }
            self._pad = pad
        return pad

    def _flat_layout(self) -> dict:
        """Global flat sorted-key space over every member's classes.

        Class ``ci`` of member ``mi`` owns global slot ``slot_base[mi] +
        ci``; slot ``n_slots`` is the empty dummy slot every padded lane
        points at (searchsorted past the last real key ⟹ count 0,
        weight 0).  ``spacing`` exceeds every job length of every
        member, so slot key ranges stay disjoint.
        """
        flat = self._flat
        if flat is None:
            pad = self._padded()
            g, c_max = len(self.members), pad["c_max"]
            spacing = max(max(ctx.class_tmax) for ctx in self.members) + 2
            cs = [ctx.c for ctx in self.members]
            slot_base = [0] * g
            for k in range(1, g):
                slot_base[k] = slot_base[k - 1] + cs[k - 1]
            n_slots = slot_base[-1] + cs[-1]
            # (members, c_max) global slot ids; padded lanes → dummy slot
            slot = _np.full((g, c_max), n_slots, dtype=_np.int64)
            keys_parts = []
            prefix_parts = []
            counts_parts = []
            plens_parts = []
            for k, ctx in enumerate(self.members):
                seg = _member_segments(ctx)
                slot[k, : ctx.c] = slot_base[k] + _np.arange(ctx.c, dtype=_np.int64)
                keys_parts.append(
                    seg["keys"] + (seg["class_of_key"] + slot_base[k]) * spacing
                )
                prefix_parts.append(seg["prefix"])
                counts_parts.append(seg["counts"])
                plens_parts.append(seg["plens"])
            counts_all = _np.concatenate(counts_parts)  # slot order
            pos = int(counts_all.sum())
            noff = _np.zeros(n_slots + 2, dtype=_np.int64)
            _np.cumsum(counts_all, out=noff[1 : n_slots + 1])
            noff[n_slots + 1] = pos
            poff = _np.zeros(n_slots + 1, dtype=_np.int64)
            _np.cumsum(_np.concatenate(plens_parts), out=poff[1:])
            counts = _np.zeros(n_slots + 1, dtype=_np.int64)
            counts[:n_slots] = counts_all
            # dummy slot: zero keys, a single 0-prefix entry
            prefix_parts.append(_np.zeros(1, dtype=_np.int64))
            flat = {
                "spacing": spacing,
                "slot": slot,
                "n_slots": n_slots,
                "keys": _np.concatenate(keys_parts)
                if keys_parts
                else _np.empty(0, dtype=_np.int64),
                "prefix": _np.concatenate(prefix_parts),
                "noff": noff,
                "poff": poff,
                "counts": counts,
            }
            self._flat = flat
        return flat

    def _flat_keys_safe(self) -> bool:
        """Does the *global* key space fit int64 with headroom?"""
        safe = self._flat_safe
        if safe is None:
            spacing = max(max(ctx.class_tmax) for ctx in self.members) + 2
            n_slots = sum(ctx.c for ctx in self.members)
            safe = (n_slots + 2) * spacing < _GUARD
            self._flat_safe = safe
        return safe

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def scalar_one(self, kind: str, mode: str, mi: int, tn: int, td: int):
        """One probe on the scalar kernel — the exact pure-Python tier."""
        ctx = self.members[mi]
        if kind == "split":
            return fast_split_test(ctx, tn, td)
        if kind == "nonp":
            return fast_nonp_test(ctx, tn, td)
        if kind == "pmtn":
            return fast_pmtn_test(ctx, tn, td, mode)
        if kind == "pmtn_base":
            return fast_base_core(ctx, tn, td)
        raise ValueError(f"unknown probe kind {kind!r}")

    def evaluate(self, kind: str, mode: str, rows: Sequence[tuple[int, int, int]]):
        """Verdicts for ``rows = [(member_idx, tn, td), ...]``, row order.

        Bit-identical to ``[scalar_one(kind, mode, *row) for row in
        rows]`` on every tier: fused numpy for the members whose rows
        clear the exact-int overflow precheck, the scalar kernel for the
        rest (and for everything when numpy is unavailable).
        """
        out: list = [None] * len(rows)
        fused: list[int] = []
        if HAVE_NUMPY and len(rows) >= _MIN_FUSED_ROWS:
            need_flat = kind in ("nonp", "pmtn")
            flat_ok = not need_flat or self._flat_keys_safe()
            if flat_ok:
                by_member: dict[int, list[int]] = {}
                for j, (mi, _, _) in enumerate(rows):
                    by_member.setdefault(mi, []).append(j)
                for mi, idxs in by_member.items():
                    tns = [rows[j][1] for j in idxs]
                    tds = [rows[j][2] for j in idxs]
                    if _grid_is_safe(self.members[mi], tns, tds):
                        fused.extend(idxs)
        if len(fused) < _MIN_FUSED_ROWS:
            fused = []
        if fused:
            obs_count("xbatch.rows_fused", len(fused))
        if len(fused) < len(rows):
            obs_count("xbatch.rows_scalar", len(rows) - len(fused))
        fused_set = set(fused)
        for j, (mi, tn, td) in enumerate(rows):
            if j not in fused_set:
                out[j] = self.scalar_one(kind, mode, mi, tn, td)
        if fused:
            fused.sort()
            mis = _np.asarray([rows[j][0] for j in fused], dtype=_np.int64)
            tns = _np.asarray([rows[j][1] for j in fused], dtype=_np.int64)
            tds = _np.asarray([rows[j][2] for j in fused], dtype=_np.int64)
            if kind == "split":
                verdicts = self._split_rows(mis, tns, tds)
            elif kind == "pmtn_base":
                verdicts = self._base_rows(mis, tns, tds)
            elif kind == "nonp":
                verdicts = self._nonp_rows(mis, tns, tds)
            else:
                verdicts = self._pmtn_rows(mis, tns, tds, mode)
            for j, v in zip(fused, verdicts):
                out[j] = v
        return out

    def _chunks(self, n_rows: int, fine: int = 1):
        c_max = self._padded()["c_max"]
        step = max(1, _CHUNK_ELEMS // max(1, fine * c_max))
        for lo in range(0, n_rows, step):
            yield lo, min(n_rows, lo + step)

    # each kernel below mirrors its scalar twin in repro.core.fastnum
    # (and the within-instance grid in repro.core.batchdual) with the
    # candidate axis as rows and the padded class axis as columns.

    def _split_rows(self, mis, tns, tds) -> list[SplitVerdict]:
        pad = self._padded()
        out: list[SplitVerdict] = []
        for lo, hi in self._chunks(len(mis)):
            mi = mis[lo:hi]
            tn, td = tns[lo:hi, None], tds[lo:hi, None]
            S, P = pad["S"][mi], pad["P"][mi]
            exp = 2 * S * td > tn
            beta = _ceil_div_np(2 * P * td, tn)
            load = pad["tp"][mi] + _np.where(exp, beta * S, S).sum(axis=1)
            m_exp = _np.where(exp, beta, 0).sum(axis=1)
            m = pad["m"][mi]
            acc = (m * tns[lo:hi] >= load * tds[lo:hi]) & (m >= m_exp)
            out.extend(
                SplitVerdict(bool(a), int(l), int(me))
                for a, l, me in zip(acc, load, m_exp)
            )
        return out

    def _base_rows(self, mis, tns, tds) -> list[tuple[int, int]]:
        pad = self._padded()
        out: list[tuple[int, int]] = []
        for lo, hi in self._chunks(len(mis)):
            mi = mis[lo:hi]
            tn, td = tns[lo:hi, None], tds[lo:hi, None]
            S, P = pad["S"][mi], pad["P"][mi]
            total = S + P
            exp = 2 * S * td > tn
            iplus = exp & (total * td >= tn)
            izero = exp & ~iplus & (4 * total * td > 3 * tn)
            iminus = exp & ~iplus & ~izero
            gam = _np.maximum(1, _ceil_div_np(2 * total * td, tn) - 2)
            load = pad["tp"][mi] + _np.where(iplus, gam * S, S).sum(axis=1)
            gsum = _np.where(iplus, gam, 0).sum(axis=1)
            l = izero.sum(axis=1)
            minus = iminus.sum(axis=1)
            m_prime = l + gsum + _ceil_div_np(minus, 2)
            out.extend((int(a), int(b)) for a, b in zip(load, m_prime))
        return out

    def _nonp_rows(self, mis, tns, tds) -> list[NonpVerdict]:
        pad = self._padded()
        flat = self._flat_layout()
        out: list[Optional[NonpVerdict]] = [None] * len(mis)
        trivial = tns < pad["spt"][mis] * tds
        for j in _np.nonzero(trivial)[0]:
            ctx = self.members[int(mis[j])]
            out[int(j)] = NonpVerdict(False, ctx.total_load, ctx.m + 1)  # Note 2
        live = _np.nonzero(~trivial)[0]
        spacing, hi_clip = flat["spacing"], flat["spacing"] - 2
        keys, prefix = flat["keys"], flat["prefix"]
        noff, poff, counts = flat["noff"], flat["poff"], flat["counts"]
        for lo, hi in self._chunks(len(live), fine=4):
            idx = live[lo:hi]
            mi = mis[idx]
            tn, td = tns[idx, None], tds[idx, None]
            td2 = 2 * td
            S, P = pad["S"][mi], pad["P"][mi]
            slot = flat["slot"][mi]
            base = slot * spacing
            std = S * td
            cap = tn - std
            exp = 2 * std > tn
            m_exp = _ceil_div_np(P * td, cap)
            q_big = base + _np.clip(tn // td2, 0, hi_clip)
            cut_big = (
                _np.searchsorted(keys, q_big.ravel(), side="right").reshape(q_big.shape)
                - noff[slot]
            )
            n_big = counts[slot] - cut_big
            w_big = P - prefix[poff[slot] + cut_big]
            q_ge = base + _np.clip((tn - 2 * std) // td2, 0, hi_clip)
            cut_ge = (
                _np.searchsorted(keys, q_ge.ravel(), side="right").reshape(q_ge.shape)
                - noff[slot]
            )
            k_weight = (P - prefix[poff[slot] + cut_ge]) - w_big
            m_chp = n_big + _np.where(
                k_weight > 0, _ceil_div_np(k_weight * td, cap), 0
            )
            m_i = _np.where(exp, m_exp, m_chp)
            load = (
                pad["tp"][mi]
                + (m_i * S).sum(axis=1)
                + _np.where(P * td > m_i * cap, S, 0).sum(axis=1)
            )
            m_prime = m_i.sum(axis=1)
            m = pad["m"][mi]
            acc = (m * tns[idx] >= load * tds[idx]) & (m >= m_prime)
            for k, j in enumerate(idx):
                out[int(j)] = NonpVerdict(bool(acc[k]), int(load[k]), int(m_prime[k]))
        return out  # type: ignore[return-value]

    def _pmtn_rows(self, mis, tns, tds, mode: str) -> list[PmtnVerdict]:
        pad = self._padded()
        flat = self._flat_layout()
        out: list[Optional[PmtnVerdict]] = [None] * len(mis)
        trivial = tns < pad["spt"][mis] * tds
        for j in _np.nonzero(trivial)[0]:
            ctx = self.members[int(mis[j])]
            out[int(j)] = PmtnVerdict(False, ctx.total_load, 0, "trivial", False)
        live = _np.nonzero(~trivial)[0]
        spacing, hi_clip = flat["spacing"], flat["spacing"] - 2
        keys, prefix = flat["keys"], flat["prefix"]
        noff, poff, counts = flat["noff"], flat["poff"], flat["counts"]
        for lo, hi in self._chunks(len(live), fine=4):
            idx = live[lo:hi]
            mi = mis[idx]
            tn, td = tns[idx, None], tds[idx, None]
            td2 = 2 * td
            S, P, tmax = pad["S"][mi], pad["P"][mi], pad["tmax"][mi]
            total = S + P
            std = S * td
            exp = 2 * std > tn
            iplus = exp & (total * td >= tn)
            izero = exp & ~iplus & (4 * total * td > 3 * tn)
            iminus = exp & ~iplus & ~izero
            if mode == "alpha":
                # masked lanes clamp to 1 so no unbounded quotient feeds
                # a product (see the within-instance grid's comment)
                k = _np.where(
                    iplus,
                    _np.maximum(1, (P * td) // _np.where(iplus, tn - std, 1)),
                    1,
                )
            else:
                num2 = 2 * P * td
                bp = num2 // tn
                cond = num2 - bp * tn <= 2 * (tn - std)
                k = _np.where(cond, _np.maximum(bp, 1), _ceil_div_np(num2, tn))
            load = pad["tp"][mi] + _np.where(iplus, k * S, S).sum(axis=1)
            counts_sum = _np.where(iplus, k, 0).sum(axis=1)
            l = izero.sum(axis=1)
            n_minus = iminus.sum(axis=1)
            base_sum = _np.where(iplus, k * S + P, 0)
            chp_plus = ~exp & (4 * std >= tn)
            base_sum = base_sum + _np.where(iminus | chp_plus, total, 0)
            star = ~exp & ~chp_plus & (2 * (S + tmax) * td > tn)
            slot = flat["slot"][mi]
            q = slot * spacing + _np.clip((tn - 2 * std) // td2, 0, hi_clip)
            cut = (
                _np.searchsorted(keys, q.ravel(), side="right").reshape(q.shape)
                - noff[slot]
            )
            cnt = counts[slot] - cut
            p_star = P - prefix[poff[slot] + cut]
            demand2 = _np.where(star, td2 * (S + P), 0).sum(axis=1)
            lstar2 = _np.where(
                star, td2 * (S + p_star) - cnt * (tn - 2 * std), 0
            ).sum(axis=1)
            base = base_sum.sum(axis=1)
            m = pad["m"][mi]
            m_prime = l + counts_sum + _ceil_div_np(n_minus, 2)
            F2 = 2 * (m - l) * tns[idx] - 2 * base * tds[idx]
            acc_simple = (m * tns[idx] >= load * tds[idx]) & (m >= m_prime)
            nice = l == 0
            case3b = ~nice & (F2 >= demand2)
            y_neg = ~nice & ~case3b & (F2 - lstar2 < 0)
            for k_i, j in enumerate(idx):
                j = int(j)
                if nice[k_i]:
                    out[j] = PmtnVerdict(
                        bool(acc_simple[k_i]), int(load[k_i]), int(m_prime[k_i]),
                        "nice", False,
                    )
                elif case3b[k_i]:
                    out[j] = PmtnVerdict(
                        bool(acc_simple[k_i]), int(load[k_i]), int(m_prime[k_i]),
                        "3b", False,
                    )
                elif y_neg[k_i]:
                    out[j] = PmtnVerdict(
                        False, int(load[k_i]), int(m_prime[k_i]), "3a", True
                    )
                else:  # case 3a with the knapsack: scalar lane (rare)
                    out[j] = fast_pmtn_test(
                        self.members[int(mis[j])], int(tns[j]), int(tds[j]), mode
                    )
        return out  # type: ignore[return-value]


# --------------------------------------------------------------------------- #
# row-level entry points (the public xgrid surface the tests differential)
# --------------------------------------------------------------------------- #


def _rows(mis: Sequence[int], tns: Sequence[int], tds: Sequence[int]):
    if not (len(mis) == len(tns) == len(tds)):
        raise ValueError(
            f"parallel row vectors expected: {len(mis)} members, "
            f"{len(tns)} numerators, {len(tds)} denominators"
        )
    rows = list(zip(mis, tns, tds))
    for mi, tn, td in rows:
        if tn <= 0 or td <= 0:
            raise ValueError(f"candidates must be positive rationals, got {tn}/{td}")
    return rows


def fast_split_test_xgrid(
    xctx: BatchDualContext, mis, tns, tds
) -> list[SplitVerdict]:
    """Theorem 7(i) on cross-instance rows ``(member, tn, td)``."""
    return xctx.evaluate("split", "", _rows(mis, tns, tds))


def fast_nonp_test_xgrid(
    xctx: BatchDualContext, mis, tns, tds
) -> list[NonpVerdict]:
    """Theorem 9(i) on cross-instance rows ``(member, tn, td)``."""
    return xctx.evaluate("nonp", "", _rows(mis, tns, tds))


def fast_pmtn_test_xgrid(
    xctx: BatchDualContext, mis, tns, tds, mode: str = "alpha"
) -> list[PmtnVerdict]:
    """Theorem 5(i) on cross-instance rows ``(member, tn, td)``."""
    return xctx.evaluate("pmtn", mode, _rows(mis, tns, tds))


def fast_base_core_xgrid(
    xctx: BatchDualContext, mis, tns, tds
) -> list[tuple[int, int]]:
    """Algorithm 4's monotone core on cross-instance rows."""
    return xctx.evaluate("pmtn_base", "", _rows(mis, tns, tds))
