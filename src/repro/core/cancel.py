"""Cooperative cancellation for long solves.

The dual-approximation searches are loops of *probes* (one dual test
per candidate ``T``), and every probe is a natural stopping point: no
schedule state exists yet, nothing needs unwinding.  A
:class:`CancelToken` makes that boundary available to callers — the
service threads one through every request so an oversized solve can be
abandoned when its deadline passes, instead of occupying a shard worker
until it finishes.

Two design constraints drive the shape:

* **Bit-identity when the token never fires.**  The searches must not
  change a single probe because a token is present, so the token is
  consulted *between* probes only (:func:`check_cancelled`), never woven
  into the numeric paths.  A token that does not fire is invisible.
* **No signature churn through the algorithm stack.**  The probe loops
  live under several layers (``solve`` → variant drivers → the searches
  of :mod:`repro.algos.search`); threading a parameter through all of
  them would touch every construction for a purely orthogonal concern.
  Instead the *owner* of a solve installs the token in a thread-local
  scope (:func:`cancel_scope`) and the probe loops poll the current
  scope.  Solves run entirely on one thread (the service's shard
  workers, or the caller's own), so a thread-local is exact — no token
  ever leaks across concurrent solves.

Tokens can fire two ways: explicitly (:meth:`CancelToken.cancel`, e.g.
tests or a supervisor) or by **deadline** — a ``time.monotonic`` instant
after which the token counts as cancelled without anyone calling in.
Deadlines are how the service implements ``timeout_ms``: the clock keeps
ticking while the request waits in a queue, so queue time counts against
the budget.  ``clock`` is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from .errors import ReproError

__all__ = [
    "CancelToken",
    "SolveCancelled",
    "cancel_scope",
    "check_cancelled",
    "current_token",
]


class SolveCancelled(ReproError):
    """A solve was abandoned at a probe boundary (deadline or cancel())."""


class CancelToken:
    """One cancellable unit of work (a single solve / batch item).

    ``cancelled`` is true once :meth:`cancel` ran or ``clock() >=
    deadline``.  A token never un-cancels.
    """

    __slots__ = ("deadline", "_cancelled", "_clock")

    def __init__(
        self,
        deadline: Optional[float] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.deadline = deadline
        self._cancelled = False
        self._clock = clock

    @classmethod
    def after(
        cls, seconds: float, *, clock: Callable[[], float] = time.monotonic
    ) -> "CancelToken":
        """A token whose deadline is ``seconds`` from now."""
        return cls(deadline=clock() + seconds, clock=clock)

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        if self._cancelled:
            return True
        if self.deadline is not None and self._clock() >= self.deadline:
            self._cancelled = True  # latch: deadline expiry is permanent
            return True
        return False

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (None if there is none; floor 0)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self._clock())

    def check(self) -> None:
        """Raise :class:`SolveCancelled` if the token has fired."""
        if self.cancelled:
            if self.deadline is not None and self._clock() >= self.deadline:
                raise SolveCancelled("solve deadline exceeded")
            raise SolveCancelled("solve cancelled")


class _Scope(threading.local):
    token: Optional[CancelToken] = None


_scope = _Scope()


class cancel_scope:
    """Install ``token`` as this thread's active token for a ``with`` body.

    ``cancel_scope(None)`` is a no-op scope, so callers can thread an
    optional token without branching.  Scopes nest; the previous token is
    restored on exit.
    """

    __slots__ = ("token", "_prev")

    def __init__(self, token: Optional[CancelToken]) -> None:
        self.token = token
        self._prev: Optional[CancelToken] = None

    def __enter__(self) -> Optional[CancelToken]:
        self._prev = _scope.token
        if self.token is not None:
            _scope.token = self.token
        return self.token

    def __exit__(self, *exc) -> None:
        _scope.token = self._prev


def current_token() -> Optional[CancelToken]:
    """The token installed on this thread (None outside any scope)."""
    return _scope.token


def check_cancelled() -> None:
    """Probe-boundary poll: raise if this thread's active token fired.

    One thread-local read when no scope is active — cheap enough for
    every dual-test boundary.
    """
    token = _scope.token
    if token is not None:
        token.check()
