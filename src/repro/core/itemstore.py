"""Index-based item storage for Algorithm 6 — object-free construction.

Algorithm 6 (non-preemptive, Appendix D) builds machines as bottom-to-top
item sequences and repairs them in place (steps 4a/4b).  Until PR 4 every
item was a per-item ``_It`` dataclass; this module replaces that with an
:class:`ItemStore`: four parallel integer columns

    ``cls | job | length | flags``

where an *item* is simply a slot index into them.  ``job`` is the job's
index within its class (``-1`` marks a setup), ``length`` is the scaled
duration (pre-multiplied by the denominator of ``T``, the
:mod:`repro.core.fastnum` convention), and ``flags`` is a bitmask of
:data:`PIECE` / :data:`FROM_STEP3` / :data:`CROSSED` / :data:`REMOVED`.

**Machine membership is a span list** (a CSR-style layout): every bulk
emission appends one contiguous slot range ``[lo, hi)``, and a machine is
the concatenation of its spans in order.  Construction produces 2–3 spans
per machine (one per step that touched it — adjacent ranges merge), so

* materialization is near-memcpy: per span one ``column[lo:hi]`` slice
  per column, handed to
  :meth:`repro.core.schedule.Schedule.extend_runs` which turns the runs
  into columnar rows with prefix-sum starts — no per-item Python object
  exists between the dual test and the finished ``Schedule``;
* step 3's greedy streaming appends exactly one span per machine.

The removal/relocation contract of the repair passes:

* **step 4a (de-preemption)** removes sibling pieces *lazily*:
  :meth:`mark_removed` sets the :data:`REMOVED` bit and leaves the slot
  inside its span — no list churn; every reader (:meth:`alive_last`,
  :meth:`alive_end`, :meth:`configured_class`, :meth:`runs`,
  :meth:`drop_trailing_setups`) skips removed slots, so the *alive* item
  sequence is exactly the physically mutated list of the historical
  implementation.
* **step 4b (relocation)** moves the handful of ``T``-crossing items
  physically — :meth:`detach` splits the containing span,
  :meth:`insert` splices a singleton span at a physical position — so
  relative alive order is preserved.  Positions (:meth:`index`) count
  all slots, removed included, exactly like the historical lists.

The bulk emission primitive :meth:`emit_window` places the portion of a
job stream overlapping a scaled window ``[w0, w1)``: interior jobs are
appended with C-level slice extends (for integer ``T`` — the Theorem-8
search — the instance's cached tuples are extended directly, no per-job
scaling), and at most the two boundary jobs become split pieces.  Both
the step-1 quota wrap (:func:`repro.core.wrapping.wrap_quota_store`) and
the step-2 fill reduce to window emissions.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, Optional, Sequence

from ..obs.trace import count as obs_count
from .errors import ConstructionError

#: The item is a partial piece of its job (siblings live elsewhere).
PIECE = 1
#: The item was streamed in step 3 (the residual sequence ``Q``).
FROM_STEP3 = 2
#: The item pushed its machine past ``T`` when placed in step 3.
CROSSED = 4
#: The item was dropped by step 4a's consolidation (skipped everywhere).
REMOVED = 8


class ItemStore:
    """Parallel int columns + per-machine span lists (see module docstring)."""

    __slots__ = (
        "m", "cls", "job", "length", "flags", "items", "ends",
        "next_machine", "removed_slots",
    )

    def __init__(self, m: int) -> None:
        self.m = m
        self.cls: list[int] = []
        self.job: list[int] = []
        self.length: list[int] = []
        self.flags: list[int] = []
        #: bottom-to-top ``[lo, hi)`` slot spans per machine.
        self.items: list[list[list[int]]] = [[] for _ in range(m)]
        #: running scaled machine ends (valid through step 3).
        self.ends: list[int] = [0] * m
        self.next_machine = 0
        #: slots flagged REMOVED, in removal order (sorted set for runs()).
        self.removed_slots: list[int] = []

    def __len__(self) -> int:
        return len(self.cls)

    # ------------------------------------------------------------------ #
    # emission
    # ------------------------------------------------------------------ #

    def take_machine(self) -> int:
        """The next fresh machine (Algorithm 6 uses them left to right)."""
        u = self.next_machine
        if u >= self.m:
            raise ConstructionError("Algorithm 6 ran out of machines")
        self.next_machine = u + 1
        return u

    def new_item(self, cls: int, job: int, length: int, flags: int = 0) -> int:
        """Allocate a slot (not yet on any machine); ``job=-1`` is a setup."""
        slot = len(self.cls)
        self.cls.append(cls)
        self.job.append(job)
        self.length.append(length)
        self.flags.append(flags)
        return slot

    def _append_span(self, u: int, lo: int, hi: int) -> None:
        """Append slots ``[lo, hi)`` at the top of ``u`` (merging if adjacent)."""
        spans = self.items[u]
        if spans and spans[-1][1] == lo:
            spans[-1][1] = hi
        else:
            spans.append([lo, hi])

    def push(self, u: int, slot: int) -> None:
        """Append ``slot`` at the top of machine ``u``."""
        self._append_span(u, slot, slot + 1)
        self.ends[u] += self.length[slot]

    def place(self, u: int, cls: int, job: int, length: int, flags: int = 0) -> int:
        """:meth:`new_item` + :meth:`push` in one call."""
        slot = self.new_item(cls, job, length, flags)
        self._append_span(u, slot, slot + 1)
        self.ends[u] += length
        return slot

    def emit_window(
        self,
        u: int,
        cls: int,
        idxs: Sequence[int],
        lens: Sequence[int],
        prefix: Sequence[int],
        scale: int,
        w0: int,
        w1: int,
        base_flags: int = 0,
    ) -> list[tuple[int, int]]:
        """Emit the job-stream portion overlapping the scaled window ``[w0, w1)``.

        ``idxs``/``lens``/``prefix`` describe the stream *unscaled* (integer
        processing times; ``prefix[k] = Σ lens[:k]``, strictly increasing);
        ``w0``/``w1`` are scaled by ``scale``.  Job ``k`` occupies the scaled
        interval ``[prefix[k]·scale, prefix[k+1]·scale)``; boundary jobs are
        emitted as :data:`PIECE`-flagged splits, interior jobs as one bulk
        slice extend per column.  The emitted slots are contiguous and land
        as a single span on machine ``u``; ``ends[u]`` grows by ``w1 − w0``.

        Returns the pieces emitted as ``(slot, stream_pos)`` pairs (at most
        two) for the caller's parent map.
        """
        obs_count("itemstore.emit")
        D = scale
        P = prefix
        # P[j+1]·D > w0  ⟺  P[j+1] > w0 // D  (ints), so the first
        # overlapping job is the one before the first prefix entry > w0//D;
        # symmetrically P[j]·D < w1 ⟺ P[j] ≤ (w1-1) // D.
        j0 = bisect_right(P, w0 // D) - 1
        j1 = bisect_right(P, (w1 - 1) // D) - 1
        cls_col, job_col = self.cls, self.job
        len_col, flag_col = self.length, self.flags
        base = len(cls_col)
        pieces: list[tuple[int, int]] = []
        left_cut = P[j0] * D < w0
        right_cut = P[j1 + 1] * D > w1
        if j0 == j1 and left_cut and right_cut:
            # one job spans the whole window: a single interior piece
            cls_col.append(cls)
            job_col.append(idxs[j0])
            len_col.append(w1 - w0)
            flag_col.append(base_flags | PIECE)
            pieces.append((base, j0))
        else:
            if left_cut:
                cls_col.append(cls)
                job_col.append(idxs[j0])
                len_col.append(P[j0 + 1] * D - w0)
                flag_col.append(base_flags | PIECE)
                pieces.append((base, j0))
            lo = j0 + 1 if left_cut else j0
            hi = j1 - 1 if right_cut else j1
            if hi >= lo:
                k = hi - lo + 1
                if D == 1:
                    len_col.extend(lens[lo:hi + 1])
                else:
                    len_col.extend([t * D for t in lens[lo:hi + 1]])
                cls_col.extend([cls] * k)
                job_col.extend(idxs[lo:hi + 1])
                flag_col.extend([base_flags] * k)
            if right_cut:
                slot = len(cls_col)
                cls_col.append(cls)
                job_col.append(idxs[j1])
                len_col.append(w1 - P[j1] * D)
                flag_col.append(base_flags | PIECE)
                pieces.append((slot, j1))
        self._append_span(u, base, len(cls_col))
        self.ends[u] += w1 - w0
        return pieces

    # ------------------------------------------------------------------ #
    # repair primitives (steps 4a/4b)
    # ------------------------------------------------------------------ #

    def alive_last(self, u: int) -> int:
        """The top non-removed slot of machine ``u``, or ``-1`` if none."""
        F = self.flags
        for lo, hi in reversed(self.items[u]):
            for slot in range(hi - 1, lo - 1, -1):
                if not F[slot] & REMOVED:
                    return slot
        return -1

    def alive_end(self, u: int) -> int:
        """Scaled end of machine ``u`` over non-removed slots."""
        F = self.flags
        L = self.length
        total = 0
        for lo, hi in self.items[u]:
            for slot in range(lo, hi):
                if not F[slot] & REMOVED:
                    total += L[slot]
        return total

    def alive_empty(self, u: int) -> bool:
        F = self.flags
        return all(
            F[slot] & REMOVED
            for lo, hi in self.items[u]
            for slot in range(lo, hi)
        )

    def mark_removed(self, slot: int) -> None:
        """Step-4a sibling removal: flag only, no span mutation."""
        self.flags[slot] |= REMOVED
        self.removed_slots.append(slot)

    def detach(self, u: int, slot: int) -> None:
        """Physically take ``slot`` off machine ``u`` (step-4b relocation)."""
        spans = self.items[u]
        for k, (lo, hi) in enumerate(spans):
            if lo <= slot < hi:
                if hi - lo == 1:
                    del spans[k]
                elif slot == lo:
                    spans[k][0] = lo + 1
                elif slot == hi - 1:
                    spans[k][1] = hi - 1
                else:
                    spans[k][1] = slot
                    spans.insert(k + 1, [slot + 1, hi])
                return
        raise ValueError(f"slot {slot} not on machine {u}")

    def insert(self, u: int, pos: int, slot: int) -> None:
        """Splice ``slot`` in at physical position ``pos`` (slots counted
        removed-inclusive, like the historical item lists)."""
        spans = self.items[u]
        acc = 0
        for k, (lo, hi) in enumerate(spans):
            width = hi - lo
            if pos <= acc + width:
                off = pos - acc
                if off == 0:
                    spans.insert(k, [slot, slot + 1])
                elif off == width:
                    spans.insert(k + 1, [slot, slot + 1])
                else:
                    spans[k][1] = lo + off
                    spans.insert(k + 1, [slot, slot + 1])
                    spans.insert(k + 2, [lo + off, hi])
                return
            acc += width
        if pos == acc:
            spans.append([slot, slot + 1])
            return
        raise IndexError(f"position {pos} out of range on machine {u}")

    def index(self, u: int, slot: int) -> int:
        """Physical position of ``slot`` on machine ``u`` (removed-inclusive)."""
        acc = 0
        for lo, hi in self.items[u]:
            if lo <= slot < hi:
                return acc + (slot - lo)
            acc += hi - lo
        raise ValueError(f"slot {slot} not on machine {u}")

    def configured_class(self, u: int, pos: int) -> Optional[int]:
        """Class the machine is set up for just before position ``pos``."""
        F = self.flags
        acc = 0
        prev = None
        for lo, hi in self.items[u]:
            width = hi - lo
            stop = min(hi, lo + (pos - acc))
            for slot in range(lo, stop):
                if not F[slot] & REMOVED:
                    prev = self.cls[slot]
            acc += width
            if acc >= pos:
                break
        return prev

    def drop_trailing_setups(self, u: int) -> None:
        """Pop trailing setups (and dead slots above them) off machine ``u``."""
        spans = self.items[u]
        F, J = self.flags, self.job
        while spans:
            lo, hi = spans[-1]
            top = hi - 1
            if F[top] & REMOVED or J[top] < 0:
                if hi - 1 == lo:
                    spans.pop()
                else:
                    spans[-1][1] = hi - 1
            else:
                break

    # ------------------------------------------------------------------ #
    # hand-off
    # ------------------------------------------------------------------ #

    def runs(self) -> Iterator[tuple[int, Sequence[int], Sequence[int], Sequence[int]]]:
        """Per-machine ``(machine, lengths, clss, jobs)`` gathers, bottom to top.

        The bulk-adoption input of
        :meth:`repro.core.schedule.Schedule.extend_runs` — starts are the
        prefix sums of ``lengths`` (no idle time below the top item, the
        Algorithm-6 invariant).  Spans without removed slots are yielded
        as plain column slices (one machine with one clean span is three
        zero-glue slices); spans the repairs touched fall back to
        per-slot filtering.
        """
        C, J, L, F = self.cls, self.job, self.length, self.flags
        removed = sorted(self.removed_slots)

        def span_clean(lo: int, hi: int) -> bool:
            k = bisect_left(removed, lo)
            return k >= len(removed) or removed[k] >= hi

        for u, spans in enumerate(self.items):
            if not spans:
                continue
            if len(spans) == 1:
                lo, hi = spans[0]
                if not removed or span_clean(lo, hi):
                    yield u, L[lo:hi], C[lo:hi], J[lo:hi]
                    continue
            lens: list[int] = []
            clss: list[int] = []
            jobs: list[int] = []
            for lo, hi in spans:
                if not removed or span_clean(lo, hi):
                    lens.extend(L[lo:hi])
                    clss.extend(C[lo:hi])
                    jobs.extend(J[lo:hi])
                else:
                    for slot in range(lo, hi):
                        if not F[slot] & REMOVED:
                            lens.append(L[slot])
                            clss.append(C[slot])
                            jobs.append(J[slot])
            if lens:
                yield u, lens, clss, jobs

    def flag_counts(self) -> dict[str, int]:
        """Diagnostic tallies of the repair flags (test/fuzz visibility)."""
        pieces = from3 = crossed = removed = 0
        for f in self.flags:
            if f & PIECE:
                pieces += 1
            if f & FROM_STEP3:
                from3 += 1
            if f & CROSSED:
                crossed += 1
            if f & REMOVED:
                removed += 1
        return {
            "pieces": pieces, "from_step3": from3,
            "crossed": crossed, "removed": removed,
        }
