"""Class partitions and minimal machine numbers relative to a makespan ``T``.

This module encodes the definitions of Section 2 (expensive/cheap classes,
``α_i``, ``β_i``), Section 4.1 (``I⁺exp, I⁰exp, I⁻exp``, ``I⁺chp, I⁻chp``,
big jobs ``C*_i``, ``I*chp``, ``α′_i``), Section 4.4 (``β′_i``, ``γ_i``) and
Appendix D (``J⁺``, ``K``, ``m_i``, ``x_i``).  All other modules derive their
case analysis from here, so the boundary conventions (strict vs non-strict
inequalities) are implemented **once** and property-tested:

* expensive: ``s_i >  T/2``;  cheap: ``s_i ≤ T/2``                 (Section 2)
* ``i ∈ I⁺exp``  iff ``T ≤ s_i + P(C_i)``                          (Section 4.1)
* ``i ∈ I⁰exp``  iff ``3T/4 < s_i + P(C_i) < T``
* ``i ∈ I⁻exp``  iff ``s_i + P(C_i) ≤ 3T/4``
* ``i ∈ I⁺chp``  iff ``T/4 ≤ s_i ≤ T/2``;  ``i ∈ I⁻chp`` iff ``s_i < T/4``
* ``C*_i = { j ∈ C_i : s_i + t_j > T/2 }`` for ``i ∈ I⁻chp``;
  ``I*chp = { i ∈ I⁻chp : C*_i ≠ ∅ }``
* ``J⁺ = { j : t_j > T/2 }``;  ``K = ∪_{i∈Ichp} { j ∈ C_i∩J⁻ : s_i+t_j > T/2 }``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

from .instance import Instance, JobRef
from .numeric import Time, TimeLike, as_time, frac_ceil, frac_floor


# --------------------------------------------------------------------------- #
# machine-count quantities (Lemma 1, Section 4.1, Section 4.4)
# --------------------------------------------------------------------------- #


def alpha(instance: Instance, T: TimeLike, cls: int) -> int:
    """``α_i = ⌈P(C_i)/(T−s_i)⌉`` — minimal setups of class i (Lemma 1)."""
    T = as_time(T)
    s = instance.setups[cls]
    if T <= s:
        raise ValueError(
            f"alpha undefined for T={T} <= s_{cls}={s}; callers must ensure T > s_i"
        )
    return frac_ceil(Fraction(instance.processing(cls)) / (T - s))


def alpha_prime(instance: Instance, T: TimeLike, cls: int) -> int:
    """``α′_i = ⌊P(C_i)/(T−s_i)⌋`` (Section 4.1; ≥ 1 for ``i ∈ I⁺exp``)."""
    T = as_time(T)
    s = instance.setups[cls]
    if T <= s:
        raise ValueError(
            f"alpha_prime undefined for T={T} <= s_{cls}={s}; callers must ensure T > s_i"
        )
    return frac_floor(Fraction(instance.processing(cls)) / (T - s))


def beta(instance: Instance, T: TimeLike, cls: int) -> int:
    """``β_i = ⌈2P(C_i)/T⌉`` — minimal machines for an expensive class."""
    T = as_time(T)
    if T <= 0:
        raise ValueError("beta requires T > 0")
    return frac_ceil(Fraction(2 * instance.processing(cls)) / T)


def beta_prime(instance: Instance, T: TimeLike, cls: int) -> int:
    """``β′_i = ⌊2P(C_i)/T⌋`` (Section 4.4)."""
    T = as_time(T)
    if T <= 0:
        raise ValueError("beta_prime requires T > 0")
    return frac_floor(Fraction(2 * instance.processing(cls)) / T)


def gamma(instance: Instance, T: TimeLike, cls: int) -> int:
    """``γ_i`` — machines used by the modified step 1 of Algorithm 2 (§4.4).

    ``γ_i = max{β′_i, 1}`` if the remainder ``P(C_i) − β′_i·T/2`` fits into
    ``T − s_i`` (so the last machine's job load can be folded on top of the
    second-last machine), else ``γ_i = β_i``.
    """
    T = as_time(T)
    P = Fraction(instance.processing(cls))
    s = instance.setups[cls]
    bp = beta_prime(instance, T, cls)
    if P - bp * T / 2 <= T - s:
        return max(bp, 1)
    return beta(instance, T, cls)


# --------------------------------------------------------------------------- #
# expensive / cheap split (Section 2)
# --------------------------------------------------------------------------- #


def split_expensive_cheap(instance: Instance, T: TimeLike) -> tuple[list[int], list[int]]:
    """Return ``(Iexp, Ichp)`` — class indices with ``s_i > T/2`` / ``s_i ≤ T/2``."""
    T = as_time(T)
    half = T / 2
    exp = [i for i, s in enumerate(instance.setups) if s > half]
    chp = [i for i, s in enumerate(instance.setups) if s <= half]
    return exp, chp


# --------------------------------------------------------------------------- #
# preemptive partition (Sections 4.1 / 4.2)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class PmtnPartition:
    """All sets and counts Algorithm 2/3/4 need for a given makespan ``T``."""

    instance: Instance
    T: Time
    exp: tuple[int, ...]
    chp: tuple[int, ...]
    exp_plus: tuple[int, ...]   # I⁺exp : T ≤ s_i + P(C_i)
    exp_zero: tuple[int, ...]   # I⁰exp : 3T/4 < s_i + P(C_i) < T
    exp_minus: tuple[int, ...]  # I⁻exp : s_i + P(C_i) ≤ 3T/4
    chp_plus: tuple[int, ...]   # I⁺chp : T/4 ≤ s_i ≤ T/2
    chp_minus: tuple[int, ...]  # I⁻chp : s_i < T/4
    chp_star: tuple[int, ...]   # I*chp : i ∈ I⁻chp with C*_i ≠ ∅
    star_jobs: dict[int, tuple[JobRef, ...]] = field(repr=False, default_factory=dict)

    @property
    def is_nice(self) -> bool:
        """Definition 1: an instance is *nice* for ``T`` iff ``I⁰exp = ∅``."""
        return not self.exp_zero

    def big_jobs(self, cls: int) -> tuple[JobRef, ...]:
        """``C*_i`` for ``i ∈ I⁻chp`` (empty for other classes)."""
        return self.star_jobs.get(cls, ())

    def non_big_jobs(self, cls: int) -> list[tuple[JobRef, int]]:
        """``C_i \\ C*_i`` with processing times."""
        star = set(self.star_jobs.get(cls, ()))
        return [(j, t) for j, t in self.instance.class_jobs(cls) if j not in star]


def pmtn_partition(instance: Instance, T: TimeLike) -> PmtnPartition:
    """Compute the full Section-4 partition for makespan ``T``."""
    T = as_time(T)
    if T <= 0:
        raise ValueError("partition requires T > 0")
    half, quarter, three_quarter = T / 2, T / 4, 3 * T / 4
    exp: list[int] = []
    chp: list[int] = []
    exp_plus: list[int] = []
    exp_zero: list[int] = []
    exp_minus: list[int] = []
    chp_plus: list[int] = []
    chp_minus: list[int] = []
    chp_star: list[int] = []
    star_jobs: dict[int, tuple[JobRef, ...]] = {}

    for i in range(instance.c):
        s = instance.setups[i]
        total = s + instance.processing(i)
        if s > half:
            exp.append(i)
            if total >= T:
                exp_plus.append(i)
            elif total > three_quarter:
                exp_zero.append(i)
            else:
                exp_minus.append(i)
        else:
            chp.append(i)
            if s >= quarter:
                chp_plus.append(i)
            else:
                chp_minus.append(i)
                stars = tuple(
                    JobRef(i, idx)
                    for idx, t in enumerate(instance.jobs[i])
                    if s + t > half
                )
                if stars:
                    chp_star.append(i)
                    star_jobs[i] = stars

    return PmtnPartition(
        instance=instance,
        T=T,
        exp=tuple(exp),
        chp=tuple(chp),
        exp_plus=tuple(exp_plus),
        exp_zero=tuple(exp_zero),
        exp_minus=tuple(exp_minus),
        chp_plus=tuple(chp_plus),
        chp_minus=tuple(chp_minus),
        chp_star=tuple(chp_star),
        star_jobs=star_jobs,
    )


# --------------------------------------------------------------------------- #
# non-preemptive partition (Appendix D)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class NonpPartition:
    """Sets and machine numbers for Algorithm 6 at makespan ``T``.

    ``L = J⁺ ∪ J(Iexp) ∪ K = ∪_i { j ∈ C_i : s_i + t_j > T/2 }`` (Note 4).
    """

    instance: Instance
    T: Time
    exp: tuple[int, ...]
    chp: tuple[int, ...]
    #: per class: jobs in ``C_i ∩ J⁺`` (cheap classes only; expensive classes
    #: keep their whole job set in L anyway).
    big_jobs: dict[int, tuple[JobRef, ...]] = field(repr=False, default_factory=dict)
    #: per class: jobs in ``C_i ∩ K`` (cheap classes).
    k_jobs: dict[int, tuple[JobRef, ...]] = field(repr=False, default_factory=dict)
    #: minimal machine count ``m_i`` per class.
    machine_counts: tuple[int, ...] = ()

    def m_i(self, cls: int) -> int:
        return self.machine_counts[cls]

    @property
    def m_total(self) -> int:
        """``m' = Σ_i m_i`` (Theorem 9)."""
        return sum(self.machine_counts)

    def x_i(self, cls: int) -> Time:
        """``x_i = P(C_i) − m_i(T − s_i)`` — residual load after steps 1–2."""
        return (
            Fraction(self.instance.processing(cls))
            - self.machine_counts[cls] * (self.T - self.instance.setups[cls])
        )

    def l_jobs(self, cls: int) -> tuple[JobRef, ...]:
        """``C_i ∩ L`` — the jobs scheduled in step 1 for this class."""
        if cls in self.exp:
            return tuple(JobRef(cls, idx) for idx in range(len(self.instance.jobs[cls])))
        return tuple(self.big_jobs.get(cls, ())) + tuple(self.k_jobs.get(cls, ()))


def nonp_partition_fast(instance: Instance, T: TimeLike) -> NonpPartition:
    """:func:`nonp_partition` on scaled integers (identical output).

    The per-job thresholds ``t_j > T/2`` and ``s_i + t_j > T/2`` become
    integer cross-multiplications against ``T = tn/td``, which removes
    the O(n) Fraction comparisons from the Algorithm-6 construction hot
    path.  The Fraction :func:`nonp_partition` remains the reference the
    differential suite checks this against.
    """
    T = as_time(T)
    if T <= 0:
        raise ValueError("partition requires T > 0")
    tn, td = T.numerator, T.denominator
    exp: list[int] = []
    chp: list[int] = []
    big_jobs: dict[int, tuple[JobRef, ...]] = {}
    k_jobs: dict[int, tuple[JobRef, ...]] = {}
    counts: list[int] = []

    for i in range(instance.c):
        s = instance.setups[i]
        s2 = 2 * s * td
        if s2 > tn:  # expensive: s_i > T/2
            exp.append(i)
            cap = tn - s * td
            if cap <= 0:
                raise ValueError(
                    f"alpha undefined for T={T} <= s_{i}={s}; callers must "
                    "ensure T > s_i"
                )
            counts.append(-((-instance.class_processing[i] * td) // cap))
            continue
        chp.append(i)
        if s2 + 2 * instance.class_tmax[i] * td <= tn:
            # s_i + t_max^i ≤ T/2: no job clears the J⁺ (t_j > T/2) or K
            # (s_i + t_j > T/2) thresholds — the whole class is step-2/3
            # residual load and the O(n_i) scan is skipped.
            counts.append(0)
            continue
        big: list[JobRef] = []
        kjs: list[JobRef] = []
        k_processing = 0
        td2 = 2 * td
        for idx, t in enumerate(instance.jobs[i]):
            t2 = t * td2
            if t2 > tn:
                big.append(JobRef(i, idx))
            elif s2 + t2 > tn:
                kjs.append(JobRef(i, idx))
                k_processing += t
        if big:
            big_jobs[i] = tuple(big)
        if kjs:
            k_jobs[i] = tuple(kjs)
        wrap_machines = (
            -((-k_processing * td) // (tn - s * td)) if k_processing else 0
        )
        counts.append(len(big) + wrap_machines)

    return NonpPartition(
        instance=instance,
        T=T,
        exp=tuple(exp),
        chp=tuple(chp),
        big_jobs=big_jobs,
        k_jobs=k_jobs,
        machine_counts=tuple(counts),
    )


def nonp_partition(instance: Instance, T: TimeLike) -> NonpPartition:
    """Compute ``J⁺``, ``K`` and the machine numbers ``m_i`` of Appendix D."""
    T = as_time(T)
    if T <= 0:
        raise ValueError("partition requires T > 0")
    half = T / 2
    exp, chp = split_expensive_cheap(instance, T)
    exp_set = set(exp)
    big_jobs: dict[int, tuple[JobRef, ...]] = {}
    k_jobs: dict[int, tuple[JobRef, ...]] = {}
    counts: list[int] = []

    for i in range(instance.c):
        s = instance.setups[i]
        if i in exp_set:
            counts.append(alpha(instance, T, i))
            continue
        big: list[JobRef] = []
        kjs: list[JobRef] = []
        k_processing = 0
        for idx, t in enumerate(instance.jobs[i]):
            if t > half:
                big.append(JobRef(i, idx))
            elif s + t > half:
                kjs.append(JobRef(i, idx))
                k_processing += t
        if big:
            big_jobs[i] = tuple(big)
        if kjs:
            k_jobs[i] = tuple(kjs)
        wrap_machines = (
            frac_ceil(Fraction(k_processing) / (T - s)) if k_processing else 0
        )
        counts.append(len(big) + wrap_machines)

    return NonpPartition(
        instance=instance,
        T=T,
        exp=tuple(exp),
        chp=tuple(chp),
        big_jobs=big_jobs,
        k_jobs=k_jobs,
        machine_counts=tuple(counts),
    )
