"""Strict feasibility validators — the backbone of the test suite.

A schedule is feasible (Section 1) iff

1. machines are single-threaded: placements on one machine never overlap;
2. *all* jobs are completely scheduled (the pieces of job ``j`` sum to
   ``t_j`` exactly; nothing is over-scheduled);
3. a setup ``s_i`` precedes the processing of class ``i`` whenever a machine
   starts processing load of class ``i`` or switches from another class;
   setups are never preempted (they appear as atomic placements of length
   exactly ``s_i``);
4. variant rules:
   * non-preemptive — every job is a single contiguous piece on one machine,
   * preemptive — pieces of the same job never overlap in time (a job may
     not be parallelized, Section 3.1),
   * splittable — no additional rule.

Conventions: idle time is allowed anywhere; the machine keeps its
configuration across idle gaps (a setup of class ``i`` remains valid until an
item of a different class is processed).  This is the weakest reading of the
model and every construction in the paper satisfies it; all constructions
here are additionally *gap-consistent* (the setup immediately precedes its
batch) but we do not reject foreign schedules that rely on idle gaps.

Everything is exact: all comparisons are on rationals, so "off by 1/10^9"
bugs cannot hide.

Two implementations coexist:

* the **scalar** validator (:func:`validate_schedule_scalar`) — the
  historical placement-by-placement reference, one :class:`Placement` and
  one rational comparison at a time;
* the **columnar** validator (:func:`validate_columns`) — runs directly
  over a :class:`~repro.core.schedule.ScheduleColumns` store at a common
  integer scale, vectorized with numpy int64 when available (same
  optional-``[batch]`` policy and exact-overflow precheck as
  :mod:`repro.core.batchdual`) and falling back to an exact Python-int
  loop otherwise.  Verdicts are **bit-identical** to the scalar
  validator: same accept/reject, same makespan, and on rejection the
  same ``reason`` tag and detail message (checks run in the same order
  and scan rows in the scalar validator's machine-major order) — the
  differential and mutation suites assert this.

:func:`validate_schedule` dispatches: schedules whose column store is
still live are validated columnar (no placement materialization at all);
thawed schedules take the scalar path.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from .bounds import Variant
from .errors import InfeasibleScheduleError
from .instance import Instance, JobRef
from .numeric import Time, TimeLike, as_time, time_str
from .schedule import Placement, Schedule, ScheduleColumns

try:  # pragma: no cover - exercised via both branches in CI matrices
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Conservative ceiling for every vectorized intermediate (int64 headroom).
_GUARD = 1 << 62


def validate_schedule(
    schedule: Schedule,
    variant: Variant,
    makespan_bound: Optional[TimeLike] = None,
) -> Time:
    """Validate ``schedule`` for ``variant``; return its makespan.

    Raises :class:`InfeasibleScheduleError` with a machine-readable
    ``reason`` tag on the first violation found.  Columnar schedules are
    checked by the vectorized columnar validator; thawed schedules by the
    scalar reference — identical verdicts either way.
    """
    cols = schedule.columns()
    if cols is not None:
        return validate_columns(schedule.instance, cols, variant, makespan_bound)
    return validate_schedule_scalar(schedule, variant, makespan_bound)


def validate_schedule_scalar(
    schedule: Schedule,
    variant: Variant,
    makespan_bound: Optional[TimeLike] = None,
) -> Time:
    """The placement-by-placement reference validator."""
    _check_placement_sanity(schedule)
    _check_machine_overlap(schedule)
    _check_setup_states(schedule)
    _check_job_completeness(schedule)
    if variant is Variant.NONPREEMPTIVE:
        _check_nonpreemptive(schedule)
    elif variant is Variant.PREEMPTIVE:
        _check_no_self_parallelism(schedule)
    cmax = schedule.makespan()
    if makespan_bound is not None:
        bound = as_time(makespan_bound)
        if cmax > bound:
            raise InfeasibleScheduleError(
                "makespan",
                f"makespan {time_str(cmax)} exceeds bound {time_str(bound)}",
            )
    return cmax


def is_feasible(
    schedule: Schedule,
    variant: Variant,
    makespan_bound: Optional[TimeLike] = None,
) -> bool:
    """Boolean wrapper around :func:`validate_schedule`."""
    try:
        validate_schedule(schedule, variant, makespan_bound)
    except InfeasibleScheduleError:
        return False
    return True


# --------------------------------------------------------------------------- #
# columnar validator
# --------------------------------------------------------------------------- #


def validate_columns(
    instance: Instance,
    cols: ScheduleColumns,
    variant: Variant,
    makespan_bound: Optional[TimeLike] = None,
    *,
    use_numpy: Optional[bool] = None,
) -> Time:
    """Validate a column store directly; verdicts match the scalar validator.

    ``use_numpy=None`` engages the int64 tier when numpy is importable and
    the exact-integer precheck clears; ``False`` forces the Python-int
    tier; ``True`` requires numpy (raises when absent).  Both tiers are
    bit-identical by construction and differential-tested.

    One reason tag is columnar-only: ``"bad-machine"`` rejects rows whose
    machine index falls outside ``[0, m)``.  A :class:`Schedule` can
    never hold such a placement (``add`` refuses it), so the scalar
    validator has no corresponding rule — but a raw column store built
    by hand can, and both tiers must reject it identically.
    """
    L, starts, lengths = cols.scaled()
    n = len(cols)
    if use_numpy is True and _np is None:
        raise RuntimeError("use_numpy=True but numpy is not installed")
    mach = cols.machine
    if n and not 0 <= min(mach) <= max(mach) < instance.m:
        k = next(k for k in range(n) if not 0 <= mach[k] < instance.m)
        raise InfeasibleScheduleError(
            "bad-machine",
            f"machine {mach[k]} out of range [0, {instance.m}): row {k}",
        )
    if (
        use_numpy is not False
        and _np is not None
        and n > 0
        and _columns_safe(instance, cols, L, starts, lengths)
    ):
        try:
            cmax = _validate_columns_np(instance, cols, L, starts, lengths, variant)
        except InfeasibleScheduleError as e:
            # Sever the traceback: its frames hold the zero-copy
            # np.frombuffer views of the live array('q') columns, and a
            # caller keeping the exception would leave the buffers
            # exported — any later append to the same schedule would die
            # with BufferError ("cannot resize an array that is
            # exporting buffers").  The message carries all diagnostics.
            raise e.with_traceback(None) from None
    else:
        cmax = _validate_columns_py(instance, cols, L, starts, lengths, variant)
    if makespan_bound is not None:
        bound = as_time(makespan_bound)
        if cmax > bound:
            raise InfeasibleScheduleError(
                "makespan",
                f"makespan {time_str(cmax)} exceeds bound {time_str(bound)}",
            )
    return cmax


def _columns_safe(instance, cols, L, starts, lengths) -> bool:
    """Exact-integer bound on every int64 intermediate of the numpy tier.

    A miss only costs speed — the caller drops to the Python-int tier,
    never precision.  Bounds checked: scaled starts/ends/lengths, the
    expected per-row quantities (``s_i·L``, ``t_j·L``), and the
    accumulated per-job totals (bounded by the total scheduled length).
    """
    mx_s = max(map(abs, starts), default=0)
    mx_l = max(map(abs, lengths), default=0)
    tot_l = sum(map(abs, lengths))
    return (
        mx_s + mx_l < _GUARD
        and tot_l < _GUARD
        and L * max(instance.smax, instance.tmax, 1) < _GUARD
        and L * instance.total_processing < _GUARD
    )


# ---- shared error formatting (tags and messages match the scalar checks) -- #


def _raise_sanity(instance: Instance, p: Placement, code: int) -> None:
    if code == 1:
        raise InfeasibleScheduleError("negative-start", str(p))
    if code == 2:
        raise InfeasibleScheduleError("bad-class", str(p))
    if code == 3:
        expected = Fraction(instance.setups[p.cls])
        raise InfeasibleScheduleError(
            "setup-preempted",
            f"{p} has length {time_str(p.length)}, setup s_{p.cls} is "
            f"{time_str(expected)} (setups may not be split)",
        )
    if code == 4:
        raise InfeasibleScheduleError("unknown-job", str(p))
    if code == 5:
        raise InfeasibleScheduleError("empty-piece", str(p))
    if code == 6:
        raise InfeasibleScheduleError(
            "piece-too-long",
            f"{p}: piece longer than t_j={instance.job_time(p.job)}",
        )
    raise AssertionError(f"unknown sanity code {code}")  # pragma: no cover


def _sanity_code(instance: Instance, cols: ScheduleColumns, k: int) -> int:
    """First violated sanity sub-rule of row ``k`` (0 = clean).

    Same per-row precedence as the scalar ``_check_placement_sanity``.
    """
    if cols.start_num[k] < 0:
        return 1
    c = cols.cls[k]
    if not 0 <= c < instance.c:
        return 2
    d = cols.den[k]
    ln = cols.length_num[k]
    idx = cols.job_idx[k]
    if idx < 0:  # setup
        if ln != instance.setups[c] * d:
            return 3
        return 0
    if idx >= instance.class_sizes[c]:
        return 4
    if ln <= 0:
        return 5
    if ln > instance.jobs[c][idx] * d:
        return 6
    return 0


def _raise_overlap(cols: ScheduleColumns, prev: int, cur: int) -> None:
    p, q = cols.row_placement(prev), cols.row_placement(cur)
    raise InfeasibleScheduleError("overlap", f"machine {p.machine}: {p} overlaps {q}")


def _raise_setup_missing(cols: ScheduleColumns, k: int, state: Optional[int]) -> None:
    p = cols.row_placement(k)
    raise InfeasibleScheduleError(
        "setup-missing",
        f"machine {p.machine}: {p} processed while machine is set up "
        f"for {'nothing' if state is None else f'class {state}'}",
    )


def _raise_incomplete(instance: Instance, job: JobRef, got: Time) -> None:
    raise InfeasibleScheduleError(
        "job-incomplete",
        f"{job}: scheduled {time_str(got)} of t_j={instance.job_time(job)}",
    )


def _raise_preempted(cols: ScheduleColumns, first: int, second: int) -> None:
    p, q = cols.row_placement(first), cols.row_placement(second)
    raise InfeasibleScheduleError(
        "job-preempted", f"{q.job} split into pieces {p} and {q}"
    )


def _raise_parallel(cols: ScheduleColumns, prev: int, cur: int) -> None:
    p, q = cols.row_placement(prev), cols.row_placement(cur)
    raise InfeasibleScheduleError(
        "job-parallel", f"{p.job}: piece {p} runs in parallel with {q}"
    )


# ---- Python-int tier ------------------------------------------------------ #


def _validate_columns_py(
    instance: Instance, cols: ScheduleColumns, L, starts, lengths, variant: Variant
) -> Time:
    n = len(cols)
    m = instance.m
    mach, jidx, clsa = cols.machine, cols.job_idx, cols.cls

    # Machine-major row order == the scalar validator's iter_all order.
    rows_by_machine: list[list[int]] = [[] for _ in range(m)]
    for k in range(n):
        rows_by_machine[mach[k]].append(k)

    # 1. placement sanity
    for rows in rows_by_machine:
        for k in rows:
            code = _sanity_code(instance, cols, k)
            if code:
                _raise_sanity(instance, cols.row_placement(k), code)

    # 2. machine overlap — all machines, before any setup-state check
    #    (the scalar validator runs the checks as whole passes, so a
    #    schedule violating both on different machines must report the
    #    overlap; the numpy tier does the same)
    cmax_sc = 0
    sorted_by_machine: list[list[int]] = []
    for rows in rows_by_machine:
        rows_sorted = sorted(rows, key=lambda k: (starts[k], starts[k] + lengths[k]))
        sorted_by_machine.append(rows_sorted)
        prev_end = None
        prev_k = -1
        for k in rows_sorted:
            s, e = starts[k], starts[k] + lengths[k]
            if prev_end is not None and s < prev_end:
                _raise_overlap(cols, prev_k, k)
            prev_end, prev_k = e, k
            if e > cmax_sc:
                cmax_sc = e

    # 3. setup states
    for rows_sorted in sorted_by_machine:
        state: Optional[int] = None
        for k in rows_sorted:
            if jidx[k] < 0:
                state = clsa[k]
            elif state != clsa[k]:
                _raise_setup_missing(cols, k, state)

    # 4. job completeness
    totals: dict[tuple[int, int], int] = {}
    for k in range(n):
        if jidx[k] >= 0:
            key = (clsa[k], jidx[k])
            totals[key] = totals.get(key, 0) + lengths[k]
    for job, t in instance.iter_jobs():
        got = totals.pop((job.cls, job.idx), 0)
        if got != t * L:
            _raise_incomplete(instance, job, Fraction(got, L))
    # extra pieces of non-existent jobs are caught in sanity already

    # 5. variant rules
    if variant is Variant.NONPREEMPTIVE:
        seen: dict[tuple[int, int], int] = {}
        for rows in rows_by_machine:
            for k in rows:
                if jidx[k] < 0:
                    continue
                key = (clsa[k], jidx[k])
                if key in seen:
                    _raise_preempted(cols, seen[key], k)
                seen[key] = k
    elif variant is Variant.PREEMPTIVE:
        pieces: dict[tuple[int, int], list[int]] = {}
        for rows in rows_by_machine:
            for k in rows:
                if jidx[k] >= 0:
                    pieces.setdefault((clsa[k], jidx[k]), []).append(k)
        for key, plist in pieces.items():
            plist.sort(key=lambda k: (starts[k], starts[k] + lengths[k]))
            for prev, cur in zip(plist, plist[1:]):
                if starts[cur] < starts[prev] + lengths[prev]:
                    _raise_parallel(cols, prev, cur)

    return Fraction(cmax_sc, L) if n else Fraction(0)


# ---- numpy int64 tier ----------------------------------------------------- #


def _col_array(col):
    """Zero-copy int64 view of an ``array('q')`` column (copy for lists)."""
    if isinstance(col, list):
        return _np.asarray(col, dtype=_np.int64)
    return _np.frombuffer(col, dtype=_np.int64) if len(col) else _np.empty(0, _np.int64)


def _validate_columns_np(
    instance: Instance, cols: ScheduleColumns, L, starts, lengths, variant: Variant
) -> Time:
    n = len(cols)
    c = instance.c
    mach = _col_array(cols.machine)
    sn = _col_array(starts)
    ln = _col_array(lengths)
    clsa = _col_array(cols.cls)
    jidx = _col_array(cols.job_idx)
    is_setup = jidx < 0

    # Machine-major, insertion-stable order (== the scalar iter_all order).
    order0 = _np.argsort(mach, kind="stable")

    # per-class / per-job expected quantities at scale L
    setups_L = _np.asarray(instance.setups, dtype=_np.int64) * L
    sizes = _np.asarray(instance.class_sizes, dtype=_np.int64)
    joff = _np.zeros(c + 1, dtype=_np.int64)
    _np.cumsum(sizes, out=joff[1:])
    flat_t = _np.asarray(
        [t for times in instance.jobs for t in times], dtype=_np.int64
    )

    # 1. placement sanity (per-row precedence == the scalar sub-rule order)
    cls_clip = _np.clip(clsa, 0, c - 1)
    idx_clip = _np.clip(jidx, 0, None)
    idx_clip = _np.minimum(idx_clip, sizes[cls_clip] - 1)
    key_clip = joff[cls_clip] + idx_clip
    conds = [
        sn < 0,
        (clsa < 0) | (clsa >= c),
        is_setup & (ln != setups_L[cls_clip]),
        ~is_setup & (jidx >= sizes[cls_clip]),
        ~is_setup & (ln <= 0),
        ~is_setup & (ln > flat_t[key_clip] * L),
    ]
    viol = _np.select(conds, [1, 2, 3, 4, 5, 6], default=0)
    if viol.any():
        in_order = viol[order0]
        k = int(order0[int(_np.argmax(in_order > 0))])
        _raise_sanity(instance, cols.row_placement(k), int(viol[k]))

    # 2. machine overlap (machine-major, (start, end)-sorted, stable)
    end = sn + ln
    order = _np.lexsort((end, sn, mach))
    sm, ss, se = mach[order], sn[order], end[order]
    same = sm[1:] == sm[:-1]
    bad = same & (ss[1:] < se[:-1])
    if bad.any():
        i = int(_np.argmax(bad))
        _raise_overlap(cols, int(order[i]), int(order[i + 1]))

    # 3. setup states: forward-fill the last setup position per machine
    pos = _np.arange(n, dtype=_np.int64)
    setup_pos = _np.where(is_setup[order], pos, -1)
    ff = _np.maximum.accumulate(setup_pos)
    new_mach = _np.empty(n, dtype=bool)
    new_mach[0] = True
    new_mach[1:] = sm[1:] != sm[:-1]
    mstart = _np.maximum.accumulate(_np.where(new_mach, pos, 0))
    configured = ff >= mstart
    cls_o = clsa[order]
    state_cls = _np.where(configured, cls_o[_np.maximum(ff, 0)], -1)
    bad = ~is_setup[order] & (state_cls != cls_o)
    if bad.any():
        i = int(_np.argmax(bad))
        state = int(state_cls[i])
        _raise_setup_missing(cols, int(order[i]), None if state < 0 else state)

    # 4. job completeness (exact: int64 adds, bounded by the precheck)
    n_jobs = int(joff[-1])
    totals = _np.zeros(n_jobs, dtype=_np.int64)
    jrows = ~is_setup
    if jrows.any():
        keys = joff[clsa[jrows]] + jidx[jrows]
        _np.add.at(totals, keys, ln[jrows])
    expected = flat_t * L
    bad = totals != expected
    if bad.any():
        j = int(_np.argmax(bad))
        cls = int(_np.searchsorted(joff, j, side="right")) - 1
        job = JobRef(cls, j - int(joff[cls]))
        _raise_incomplete(instance, job, Fraction(int(totals[j]), L))

    # 5. variant rules
    if variant is Variant.NONPREEMPTIVE:
        rows_j = order0[~is_setup[order0]]
        if rows_j.size:
            keys_in_order = joff[clsa[rows_j]] + jidx[rows_j]
            counts = _np.bincount(keys_in_order, minlength=n_jobs)
            if (counts > 1).any():
                perm = _np.argsort(keys_in_order, kind="stable")
                sk = keys_in_order[perm]
                dup_mark = _np.zeros(rows_j.size, dtype=bool)
                dup_mark[perm[1:][sk[1:] == sk[:-1]]] = True
                p2 = int(_np.argmax(dup_mark))  # first 2nd-occurrence, iter order
                key = keys_in_order[p2]
                p1 = int(_np.argmax(keys_in_order == key))
                _raise_preempted(cols, int(rows_j[p1]), int(rows_j[p2]))
    elif variant is Variant.PREEMPTIVE:
        rows_j = _np.nonzero(~is_setup)[0]
        if rows_j.size:
            keys = joff[clsa[rows_j]] + jidx[rows_j]
            # first-appearance position of each job in iter_all order
            iter_rank = _np.empty(n, dtype=_np.int64)
            iter_rank[order0] = pos
            jorder = _np.lexsort((end[rows_j], sn[rows_j], keys))
            kk = keys[jorder]
            same = kk[1:] == kk[:-1]
            bad = same & (sn[rows_j][jorder][1:] < end[rows_j][jorder][:-1])
            if bad.any():
                # match the scalar validator: first violating *job* in
                # first-appearance order, then its first violating pair
                bad_idx = _np.nonzero(bad)[0]
                bad_keys = kk[bad_idx + 1]
                first_app = _np.full(n_jobs, n, dtype=_np.int64)
                _np.minimum.at(first_app, keys, iter_rank[rows_j])
                pick = bad_idx[int(_np.argmin(first_app[bad_keys]))]
                _raise_parallel(
                    cols,
                    int(rows_j[jorder[pick]]),
                    int(rows_j[jorder[pick + 1]]),
                )

    cmax_sc = int(end.max()) if n else 0
    return Fraction(cmax_sc, L) if n else Fraction(0)


# --------------------------------------------------------------------------- #
# individual scalar rules (exposed for targeted unit tests)
# --------------------------------------------------------------------------- #


def _check_placement_sanity(schedule: Schedule) -> None:
    inst = schedule.instance
    for p in schedule.iter_all():
        if p.start < 0:
            raise InfeasibleScheduleError("negative-start", str(p))
        if not 0 <= p.cls < inst.c:
            raise InfeasibleScheduleError("bad-class", str(p))
        if p.is_setup:
            expected = Fraction(inst.setups[p.cls])
            if p.length != expected:
                raise InfeasibleScheduleError(
                    "setup-preempted",
                    f"{p} has length {time_str(p.length)}, setup s_{p.cls} is "
                    f"{time_str(expected)} (setups may not be split)",
                )
        else:
            job = p.job
            assert job is not None
            if not (0 <= job.cls < inst.c and 0 <= job.idx < len(inst.jobs[job.cls])):
                raise InfeasibleScheduleError("unknown-job", str(p))
            if job.cls != p.cls:
                raise InfeasibleScheduleError(
                    "class-mismatch", f"{p}: piece tagged class {p.cls}, job is {job}"
                )
            if p.length <= 0:
                raise InfeasibleScheduleError("empty-piece", str(p))
            if p.length > inst.job_time(job):
                raise InfeasibleScheduleError(
                    "piece-too-long",
                    f"{p}: piece longer than t_j={inst.job_time(job)}",
                )


def _check_machine_overlap(schedule: Schedule) -> None:
    for u in range(schedule.instance.m):
        items = schedule.items_on(u)
        for prev, cur in zip(items, items[1:]):
            if cur.start < prev.end:
                raise InfeasibleScheduleError(
                    "overlap",
                    f"machine {u}: {prev} overlaps {cur}",
                )


def _check_setup_states(schedule: Schedule) -> None:
    """The machine must be configured for class ``i`` when it processes it."""
    for u in range(schedule.instance.m):
        state: Optional[int] = None
        for p in schedule.items_on(u):
            if p.is_setup:
                state = p.cls
            else:
                if state != p.cls:
                    raise InfeasibleScheduleError(
                        "setup-missing",
                        f"machine {u}: {p} processed while machine is set up "
                        f"for {'nothing' if state is None else f'class {state}'}",
                    )


def _check_job_completeness(schedule: Schedule) -> None:
    inst = schedule.instance
    totals: dict[JobRef, Fraction] = {}
    for p in schedule.iter_all():
        if not p.is_setup:
            assert p.job is not None
            totals[p.job] = totals.get(p.job, Fraction(0)) + p.length
    for job, t in inst.iter_jobs():
        got = totals.pop(job, Fraction(0))
        if got != t:
            raise InfeasibleScheduleError(
                "job-incomplete",
                f"{job}: scheduled {time_str(got)} of t_j={t}",
            )
    if totals:  # pieces of jobs that do not exist are caught in sanity already
        raise InfeasibleScheduleError("job-unknown", f"extra pieces: {totals}")


def _check_no_self_parallelism(schedule: Schedule) -> None:
    """Preemptive rule: a job never runs on two machines at the same time."""
    pieces: dict[JobRef, list[Placement]] = {}
    for p in schedule.iter_all():
        if not p.is_setup:
            assert p.job is not None
            pieces.setdefault(p.job, []).append(p)
    for job, plist in pieces.items():
        plist.sort(key=lambda p: (p.start, p.end))
        for prev, cur in zip(plist, plist[1:]):
            if cur.start < prev.end:
                raise InfeasibleScheduleError(
                    "job-parallel",
                    f"{job}: piece {prev} runs in parallel with {cur}",
                )


def _check_nonpreemptive(schedule: Schedule) -> None:
    """Non-preemptive rule: one contiguous piece per job."""
    seen: dict[JobRef, Placement] = {}
    for p in schedule.iter_all():
        if p.is_setup:
            continue
        assert p.job is not None
        if p.job in seen:
            raise InfeasibleScheduleError(
                "job-preempted",
                f"{p.job} split into pieces {seen[p.job]} and {p}",
            )
        seen[p.job] = p
    # piece length == t_j is then implied by completeness, checked separately.
