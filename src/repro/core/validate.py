"""Strict feasibility validators — the backbone of the test suite.

A schedule is feasible (Section 1) iff

1. machines are single-threaded: placements on one machine never overlap;
2. *all* jobs are completely scheduled (the pieces of job ``j`` sum to
   ``t_j`` exactly; nothing is over-scheduled);
3. a setup ``s_i`` precedes the processing of class ``i`` whenever a machine
   starts processing load of class ``i`` or switches from another class;
   setups are never preempted (they appear as atomic placements of length
   exactly ``s_i``);
4. variant rules:
   * non-preemptive — every job is a single contiguous piece on one machine,
   * preemptive — pieces of the same job never overlap in time (a job may
     not be parallelized, Section 3.1),
   * splittable — no additional rule.

Conventions: idle time is allowed anywhere; the machine keeps its
configuration across idle gaps (a setup of class ``i`` remains valid until an
item of a different class is processed).  This is the weakest reading of the
model and every construction in the paper satisfies it; all constructions
here are additionally *gap-consistent* (the setup immediately precedes its
batch) but we do not reject foreign schedules that rely on idle gaps.

Everything is exact: all comparisons are on rationals, so "off by 1/10^9"
bugs cannot hide.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from .bounds import Variant
from .errors import InfeasibleScheduleError
from .instance import JobRef
from .numeric import Time, TimeLike, as_time, time_str
from .schedule import Placement, Schedule


def validate_schedule(
    schedule: Schedule,
    variant: Variant,
    makespan_bound: Optional[TimeLike] = None,
) -> Time:
    """Validate ``schedule`` for ``variant``; return its makespan.

    Raises :class:`InfeasibleScheduleError` with a machine-readable
    ``reason`` tag on the first violation found.
    """
    _check_placement_sanity(schedule)
    _check_machine_overlap(schedule)
    _check_setup_states(schedule)
    _check_job_completeness(schedule)
    if variant is Variant.NONPREEMPTIVE:
        _check_nonpreemptive(schedule)
    elif variant is Variant.PREEMPTIVE:
        _check_no_self_parallelism(schedule)
    cmax = schedule.makespan()
    if makespan_bound is not None:
        bound = as_time(makespan_bound)
        if cmax > bound:
            raise InfeasibleScheduleError(
                "makespan",
                f"makespan {time_str(cmax)} exceeds bound {time_str(bound)}",
            )
    return cmax


def is_feasible(
    schedule: Schedule,
    variant: Variant,
    makespan_bound: Optional[TimeLike] = None,
) -> bool:
    """Boolean wrapper around :func:`validate_schedule`."""
    try:
        validate_schedule(schedule, variant, makespan_bound)
    except InfeasibleScheduleError:
        return False
    return True


# --------------------------------------------------------------------------- #
# individual rules (exposed for targeted unit tests)
# --------------------------------------------------------------------------- #


def _check_placement_sanity(schedule: Schedule) -> None:
    inst = schedule.instance
    for p in schedule.iter_all():
        if p.start < 0:
            raise InfeasibleScheduleError("negative-start", str(p))
        if not 0 <= p.cls < inst.c:
            raise InfeasibleScheduleError("bad-class", str(p))
        if p.is_setup:
            expected = Fraction(inst.setups[p.cls])
            if p.length != expected:
                raise InfeasibleScheduleError(
                    "setup-preempted",
                    f"{p} has length {time_str(p.length)}, setup s_{p.cls} is "
                    f"{time_str(expected)} (setups may not be split)",
                )
        else:
            job = p.job
            assert job is not None
            if not (0 <= job.cls < inst.c and 0 <= job.idx < len(inst.jobs[job.cls])):
                raise InfeasibleScheduleError("unknown-job", str(p))
            if job.cls != p.cls:
                raise InfeasibleScheduleError(
                    "class-mismatch", f"{p}: piece tagged class {p.cls}, job is {job}"
                )
            if p.length <= 0:
                raise InfeasibleScheduleError("empty-piece", str(p))
            if p.length > inst.job_time(job):
                raise InfeasibleScheduleError(
                    "piece-too-long",
                    f"{p}: piece longer than t_j={inst.job_time(job)}",
                )


def _check_machine_overlap(schedule: Schedule) -> None:
    for u in range(schedule.instance.m):
        items = schedule.items_on(u)
        for prev, cur in zip(items, items[1:]):
            if cur.start < prev.end:
                raise InfeasibleScheduleError(
                    "overlap",
                    f"machine {u}: {prev} overlaps {cur}",
                )


def _check_setup_states(schedule: Schedule) -> None:
    """The machine must be configured for class ``i`` when it processes it."""
    for u in range(schedule.instance.m):
        state: Optional[int] = None
        for p in schedule.items_on(u):
            if p.is_setup:
                state = p.cls
            else:
                if state != p.cls:
                    raise InfeasibleScheduleError(
                        "setup-missing",
                        f"machine {u}: {p} processed while machine is set up "
                        f"for {'nothing' if state is None else f'class {state}'}",
                    )


def _check_job_completeness(schedule: Schedule) -> None:
    inst = schedule.instance
    totals: dict[JobRef, Fraction] = {}
    for p in schedule.iter_all():
        if not p.is_setup:
            assert p.job is not None
            totals[p.job] = totals.get(p.job, Fraction(0)) + p.length
    for job, t in inst.iter_jobs():
        got = totals.pop(job, Fraction(0))
        if got != t:
            raise InfeasibleScheduleError(
                "job-incomplete",
                f"{job}: scheduled {time_str(got)} of t_j={t}",
            )
    if totals:  # pieces of jobs that do not exist are caught in sanity already
        raise InfeasibleScheduleError("job-unknown", f"extra pieces: {totals}")


def _check_no_self_parallelism(schedule: Schedule) -> None:
    """Preemptive rule: a job never runs on two machines at the same time."""
    pieces: dict[JobRef, list[Placement]] = {}
    for p in schedule.iter_all():
        if not p.is_setup:
            assert p.job is not None
            pieces.setdefault(p.job, []).append(p)
    for job, plist in pieces.items():
        plist.sort(key=lambda p: (p.start, p.end))
        for prev, cur in zip(plist, plist[1:]):
            if cur.start < prev.end:
                raise InfeasibleScheduleError(
                    "job-parallel",
                    f"{job}: piece {prev} runs in parallel with {cur}",
                )


def _check_nonpreemptive(schedule: Schedule) -> None:
    """Non-preemptive rule: one contiguous piece per job."""
    seen: dict[JobRef, Placement] = {}
    for p in schedule.iter_all():
        if p.is_setup:
            continue
        assert p.job is not None
        if p.job in seen:
            raise InfeasibleScheduleError(
                "job-preempted",
                f"{p.job} split into pieces {seen[p.job]} and {p}",
            )
        seen[p.job] = p
    # piece length == t_j is then implied by completeness, checked separately.
