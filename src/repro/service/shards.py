"""Shard workers: fingerprint-affine micro-batched dispatch, supervised.

A shard is one worker thread plus one FIFO queue plus one
:class:`~repro.service.cache.InstanceLRU` of warm representatives.  The
service routes every request whose instance hashes to this shard here —
and only here — so the lazily filled per-instance caches (plain dicts,
no locks) are touched by exactly one thread.  The worker drains its
queue in micro-batches of up to ``max_batch`` requests and dispatches
each batch through :func:`repro.algos.batch_api.solve_batch` with the
shard's LRU as the cross-batch representative table.

On top of the PR-5 dispatch plumbing, a shard is **fault-tolerant**:

* **Deadlines** — work whose :class:`~repro.core.cancel.CancelToken`
  has expired is skipped at dequeue (a structured ``timeout`` error,
  no solve); in-flight work carries its token into ``solve_batch``,
  where the probe loops abort it cooperatively.
* **Supervision** — a worker thread that dies (anything escaping the
  dispatch loop, including ``BaseException``s that per-item isolation
  cannot catch) resolves its in-flight futures with structured
  ``internal`` errors and is restarted under a bounded exponential
  backoff (``max_restarts`` / ``restart_backoff``).  A shard that
  exhausts its restart budget is **failed**: everything queued and
  everything submitted later resolves immediately with an ``internal``
  error instead of hanging.
* **Shedding** — the queue is bounded (``queue_bound``); submits
  against a full queue are rejected with a retryable ``overloaded``
  error instead of queueing without bound.
* **Shutdown** — ``close()`` resolves every pending *and* in-flight
  future with a ``shutdown`` error even when the worker outlives the
  join timeout; awaiting clients are never left hanging.

Results travel back to the asyncio event loop with
``loop.call_soon_threadsafe`` onto per-request futures; a failed batch
is retried item by item so one bad request cannot poison the others in
its micro-batch.  Future resolution is **idempotent** (first writer
wins, later attempts see a done future and skip), which is what makes
the shutdown/supervision sweeps race-safe against a worker that is
still running.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from dataclasses import dataclass
from typing import NamedTuple, Optional

from ..algos.batch_api import solve_batch
from ..core.cancel import SolveCancelled
from .cache import InstanceLRU, LRUStats
from .faults import FaultPlan
from .protocol import ServiceError

__all__ = ["Shard", "ShardStats", "shard_index"]

log = logging.getLogger("repro.service")


def shard_index(fingerprint: str, shards: int) -> int:
    """Deterministic shard of a fingerprint (stable across processes)."""
    return int(fingerprint[:16], 16) % shards


@dataclass(frozen=True)
class ShardStats:
    """One shard's dispatch + robustness counters plus its LRU's counters."""

    index: int
    requests: int
    batches: int
    max_batch_seen: int
    timeouts: int          # deadline expiries (at dequeue, pre-dispatch, in flight)
    shed: int              # submits rejected because the queue was full
    restarts: int          # worker threads restarted by the supervisor
    worker_deaths: int     # worker threads that died (restarted or not)
    failed: bool           # restart budget exhausted; shard serves errors only
    lru: LRUStats


class _Work(NamedTuple):
    item: object        # BatchItem
    future: object      # asyncio.Future
    loop: object        # the event loop that owns the future
    cancel: object = None  # Optional[CancelToken] (the request's deadline)


class Shard:
    """One supervised fingerprint-affine worker (see module docstring)."""

    def __init__(self, index: int, *, max_batch: int, max_instances: int,
                 kernel: str = "fast", queue_bound: int = 64,
                 max_restarts: int = 3, restart_backoff: float = 0.05,
                 faults: Optional[FaultPlan] = None) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.index = index
        self.max_batch = max_batch
        self.kernel = kernel
        self.queue_bound = queue_bound
        self.max_restarts = max_restarts
        self.restart_backoff = restart_backoff
        self.lru = InstanceLRU(max_instances)
        self._faults = faults
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._threads = [
            threading.Thread(
                target=self._run, name=f"repro-shard-{index}", daemon=True
            )
        ]
        self._requests = 0
        self._batches = 0
        self._max_batch_seen = 0
        # Counters are single-writer: *_w only from the worker thread,
        # *_l only from the event-loop thread; stats() sums them, so no
        # increment is ever lost to an unlocked read-modify-write race.
        self._timeouts_w = 0
        self._timeouts_l = 0
        self._shed = 0          # loop thread (shedding happens at submit)
        self._restarts = 0      # worker thread (supervision is sequential)
        self._deaths = 0
        self._inflight: tuple[_Work, ...] = ()
        self._started = False
        self._closed = False
        self._failed = False

    # ------------------------------------------------------------------ #
    # lifecycle (event-loop side)
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        if not self._started:
            self._started = True
            self._threads[0].start()

    def submit(self, work: _Work) -> None:
        if self._closed or not self._started:
            raise RuntimeError("shard is not running")
        if self._failed:
            raise ServiceError.internal(
                f"shard {self.index} is failed (worker restart budget exhausted)"
            )
        # Shed policy: reject-new with a retryable error.  qsize() is
        # approximate under concurrency, but the only writer besides us
        # is the worker popping — so the estimate only ever *overshoots*
        # the true backlog, never hides an overload.
        if self._queue.qsize() >= self.queue_bound:
            self._shed += 1
            raise ServiceError.overloaded(
                f"shard {self.index} queue full ({self.queue_bound} pending); "
                f"retry after backoff"
            )
        self._queue.put(work)
        # TOCTOU guards: close()/failure may have completed (worker gone,
        # queue drained) between the checks above and our put, in which
        # case nothing will ever drain this work — fail it ourselves
        # rather than leave the submitter awaiting a future forever.
        # Safe to race the other sweeps: queue pops are atomic and each
        # work item is resolved by whoever pops it (resolution is
        # idempotent on the futures).
        if self._failed:
            self._drain_failed()
        elif self._closed and not self._worker_alive():
            self._abandon_pending()

    def note_loop_timeout(self) -> None:
        """Count a deadline expiry detected before dispatch (loop thread)."""
        self._timeouts_l += 1

    def signal_close(self) -> None:
        """Phase 1 of shutdown: refuse new work, enqueue the sentinel.

        Non-blocking, so the service can signal every shard before the
        (potentially slow) joins — shutdown latency is the longest
        shard's drain, not the sum.
        """
        if self._started and not self._closed:
            self._closed = True
            self._queue.put(None)

    def close(self, join_timeout: float = 10.0) -> None:
        """Stop after finishing already-queued work; release the LRU.

        The LRU (and its instances' cache dicts) is only torn down once
        every worker thread is confirmed dead — clearing it while a long
        micro-batch is still solving would have two threads mutating
        unlocked dicts.  A worker that outlives the join timeout keeps
        its caches and dies with the process (daemon thread) — but its
        pending **and in-flight futures are still resolved** with a
        structured ``shutdown`` error, so no client is left hanging on
        a wedged solve (resolution is idempotent: if the solve does
        finish later, its late result meets an already-done future).
        """
        self.signal_close()
        if self._started:
            if not self._join_workers(join_timeout):
                self._fail_inflight(ServiceError.shutdown(
                    "service shut down while the request was in flight"
                ))
                self._abandon_pending()
                return
            self._abandon_pending()  # anything that raced in behind the sentinel
        self.lru.clear()

    def stats(self) -> ShardStats:
        return ShardStats(
            index=self.index,
            requests=self._requests,
            batches=self._batches,
            max_batch_seen=self._max_batch_seen,
            timeouts=self._timeouts_w + self._timeouts_l,
            shed=self._shed,
            restarts=self._restarts,
            worker_deaths=self._deaths,
            failed=self._failed,
            lru=self.lru.stats(),
        )

    # ------------------------------------------------------------------ #
    # join/teardown helpers
    # ------------------------------------------------------------------ #

    def _worker_alive(self) -> bool:
        return any(t.is_alive() for t in self._threads)

    def _join_workers(self, timeout: float) -> bool:
        """Join every worker generation (restarts append new threads).

        Polls because the supervisor may spawn a replacement while we
        join the dying generation; returns False once the deadline
        passes with any thread still alive.
        """
        deadline = time.monotonic() + timeout
        while True:
            alive = [t for t in self._threads if t.is_alive()]
            if not alive:
                return True
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            alive[0].join(timeout=min(remaining, 0.05))

    def _fail_inflight(self, error: ServiceError) -> None:
        """Resolve whatever the worker was solving when we gave up on it."""
        inflight, self._inflight = self._inflight, ()
        for work in inflight:
            self._resolve(work, None, error)

    def _abandon_pending(self) -> None:
        """Fail queued work that will never run (shutdown), don't hang it.

        A submit that raced ``close()`` can land its work *behind* the
        sentinel; silently dropping it would block its ``await future``
        forever.  Called by the worker on exit and again by ``close()``
        after the join, when the queue is single-threaded again.
        """
        self._drain_queue(ServiceError.shutdown())

    def _drain_failed(self) -> None:
        """Fail queued work on a permanently failed shard."""
        self._drain_queue(ServiceError.internal(
            f"shard {self.index} is failed (worker restart budget exhausted)"
        ))

    def _drain_queue(self, error: ServiceError) -> None:
        while True:
            try:
                work = self._queue.get_nowait()
            except queue.Empty:
                return
            if work is not None:
                self._resolve(work, None, error)

    # ------------------------------------------------------------------ #
    # result delivery (any thread -> event loop)
    # ------------------------------------------------------------------ #

    def _resolve(self, work: _Work, result, error) -> None:
        self._resolve_batch([(work, result, error)])

    def _resolve_batch(self, outcomes) -> None:
        """Settle many futures with one loop wakeup per event loop.

        ``call_soon_threadsafe`` costs a cross-thread wakeup each call;
        resolving a whole micro-batch through a single callback keeps the
        per-request orchestration overhead flat as batches grow.  The
        ``done()`` guard makes resolution idempotent — shutdown and
        supervision sweeps may race the worker for the same future, and
        whoever gets there first wins.
        """
        by_loop: dict = {}
        for work, result, error in outcomes:
            by_loop.setdefault(work.loop, []).append((work.future, result, error))
        for loop, entries in by_loop.items():
            def settle(entries=entries) -> None:
                for fut, result, error in entries:
                    if fut.done():  # cancelled, or already resolved by a sweep
                        continue
                    if error is None:
                        fut.set_result(result)
                    else:
                        fut.set_exception(error)

            try:
                loop.call_soon_threadsafe(settle)
            except RuntimeError:  # pragma: no cover - loop closed mid-shutdown
                pass

    # ------------------------------------------------------------------ #
    # worker (shard-thread side)
    # ------------------------------------------------------------------ #

    def _drain(self) -> list[_Work] | None:
        """Block for one work unit, then soak up a micro-batch."""
        head = self._queue.get()
        if head is None:
            return None
        batch = [head]
        while len(batch) < self.max_batch:
            try:
                nxt = self._queue.get_nowait()
            except queue.Empty:
                break
            if nxt is None:  # sentinel: finish this batch, then exit
                self._queue.put(None)
                break
            batch.append(nxt)
        return batch

    def _expire(self, batch: list[_Work]) -> list[_Work]:
        """Skip dequeued work whose deadline already passed: no solve."""
        live: list[_Work] = []
        for work in batch:
            token = work.cancel
            if token is not None and token.cancelled:
                self._timeouts_w += 1
                self._resolve(work, None, ServiceError.timeout(
                    "request deadline expired while queued"
                ))
            else:
                live.append(work)
        return live

    def _request_error(self, exc: Exception) -> ServiceError:
        """Map one request's failure onto the wire taxonomy.

        The full exception goes to the server-side log; the structured
        error carries only the code and a generic message (plus the
        original as ``__cause__`` for in-process callers).
        """
        if isinstance(exc, SolveCancelled):
            self._timeouts_w += 1
            return ServiceError.timeout(
                "request deadline exceeded mid-solve"
            )
        if isinstance(exc, ServiceError):
            return exc
        log.exception("shard %d: request failed", self.index)
        error = ServiceError.internal()
        error.__cause__ = exc
        return error

    def _dispatch(self, live: list[_Work]) -> None:
        """Solve one micro-batch; every future in ``live`` gets resolved."""
        self._batches += 1
        self._requests += len(live)
        self._max_batch_seen = max(self._max_batch_seen, len(live))
        before = None
        if self._faults is not None:
            self._faults.on_batch_start(self.index)  # may raise WorkerKilled
            before = self._faults.item_hook(self.index)
        cancels = [w.cancel for w in live]
        try:
            results = solve_batch(
                [w.item for w in live], kernel=self.kernel, reps=self.lru,
                cancels=cancels, before_solve=before,
            )
        except Exception:
            # Isolate the offender: re-run item by item so the rest of
            # the micro-batch still gets its (bit-identical) answers and
            # only the failing/expired request carries the error.
            for work in live:
                try:
                    result = solve_batch(
                        [work.item], kernel=self.kernel, reps=self.lru,
                        cancels=[work.cancel], before_solve=before,
                    )[0]
                except Exception as exc:  # noqa: BLE001 - mapped to taxonomy
                    self._resolve(work, None, self._request_error(exc))
                else:
                    self._resolve(work, result, None)
        else:
            self._resolve_batch(
                [(work, result, None) for work, result in zip(live, results)]
            )

    def _run(self) -> None:
        try:
            while True:
                batch = self._drain()
                if batch is None:
                    self._abandon_pending()
                    return
                live = self._expire(batch)
                if not live:
                    continue
                self._inflight = tuple(live)
                self._dispatch(live)
                self._inflight = ()
        except BaseException as exc:  # noqa: BLE001 - supervised worker death
            self._supervise(exc)

    def _supervise(self, exc: BaseException) -> None:
        """The shard supervisor: runs in the dying worker's last breath.

        Resolves the in-flight micro-batch with structured errors, then
        either restarts a fresh worker generation (bounded exponential
        backoff) or marks the shard failed and fails its whole queue.
        CPython guarantees we get here for any exception raised in the
        worker, so death is never silent.
        """
        self._deaths += 1
        log.error("shard %d: worker died: %r", self.index, exc, exc_info=exc)
        inflight, self._inflight = self._inflight, ()
        death = ServiceError(
            "internal", "shard worker died mid-batch", retryable=True
        )
        death.__cause__ = exc if isinstance(exc, Exception) else None
        for work in inflight:
            self._resolve(work, None, death)
        if self._closed:
            self._abandon_pending()
            return
        if self._restarts >= self.max_restarts:
            self._failed = True
            log.error(
                "shard %d: restart budget (%d) exhausted, failing shard",
                self.index, self.max_restarts,
            )
            self._drain_failed()
            return
        self._restarts += 1
        backoff = min(self.restart_backoff * (2 ** (self._restarts - 1)), 2.0)
        time.sleep(backoff)
        if self._closed:  # closed while backing off: drain, don't restart
            self._abandon_pending()
            return
        replacement = threading.Thread(
            target=self._run,
            name=f"repro-shard-{self.index}-r{self._restarts}",
            daemon=True,
        )
        self._threads.append(replacement)
        log.warning(
            "shard %d: restarting worker (attempt %d/%d, backoff %.3fs)",
            self.index, self._restarts, self.max_restarts, backoff,
        )
        replacement.start()
