"""Shard workers: fingerprint-affine micro-batched dispatch, supervised.

A shard is one worker thread plus one FIFO queue plus one
:class:`~repro.service.cache.InstanceLRU` of warm representatives.  The
service routes every request whose instance hashes to this shard here —
and only here — so the lazily filled per-instance caches (plain dicts,
no locks) are touched by exactly one thread.  The worker drains its
queue in micro-batches of up to ``max_batch`` requests and dispatches
each batch through :func:`repro.algos.batch_api.solve_batch` with the
shard's LRU as the cross-batch representative table.

On top of the PR-5 dispatch plumbing, a shard is **fault-tolerant**:

* **Deadlines** — work whose :class:`~repro.core.cancel.CancelToken`
  has expired is skipped at dequeue (a structured ``timeout`` error,
  no solve); in-flight work carries its token into ``solve_batch``,
  where the probe loops abort it cooperatively.
* **Supervision** — a worker thread that dies (anything escaping the
  dispatch loop, including ``BaseException``s that per-item isolation
  cannot catch) resolves its in-flight futures with structured
  ``internal`` errors and is restarted under a bounded exponential
  backoff (``max_restarts`` / ``restart_backoff``).  A shard that
  exhausts its restart budget is **failed**: everything queued and
  everything submitted later resolves immediately with an ``internal``
  error instead of hanging.
* **Shedding** — the queue is bounded (``queue_bound``); submits
  against a full queue are rejected with a retryable ``overloaded``
  error instead of queueing without bound.
* **Shutdown** — ``close()`` resolves every pending *and* in-flight
  future with a ``shutdown`` error even when the worker outlives the
  join timeout; awaiting clients are never left hanging.

Results travel back to the asyncio event loop with
``loop.call_soon_threadsafe`` onto per-request futures; a failed batch
is retried item by item so one bad request cannot poison the others in
its micro-batch.  Future resolution is **idempotent** (first writer
wins, later attempts see a done future and skip), which is what makes
the shutdown/supervision sweeps race-safe against a worker that is
still running.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import NamedTuple, Optional

from ..algos.batch_api import solve_batch
from ..core.cancel import SolveCancelled
from ..obs.metrics import Metrics
from ..obs.trace import TraceScope, TraceWriter
from .cache import InstanceLRU, LRUStats
from .faults import FaultPlan, WorkerKilled
from .procworker import WorkerProc, result_from_wire, work_to_wire
from .protocol import ServiceError

__all__ = ["ProcessShard", "Shard", "ShardStats", "shard_index"]

log = logging.getLogger("repro.service")


def shard_index(fingerprint: str, shards: int) -> int:
    """Deterministic shard of a fingerprint (stable across processes)."""
    return int(fingerprint[:16], 16) % shards


@dataclass(frozen=True)
class ShardStats:
    """One shard's dispatch + robustness counters plus its LRU's counters."""

    index: int
    requests: int
    batches: int
    max_batch_seen: int
    timeouts: int          # deadline expiries (at dequeue, pre-dispatch, in flight)
    shed: int              # submits rejected because the queue was full
    restarts: int          # worker threads restarted by the supervisor
    worker_deaths: int     # worker threads that died (restarted or not)
    failed: bool           # restart budget exhausted; shard serves errors only
    lru: LRUStats
    queue_depth: int = 0   # requests waiting in the shard queue right now
    inflight: int = 0      # requests handed to the worker, not yet resolved


class _Work(NamedTuple):
    item: object        # BatchItem
    future: object      # asyncio.Future
    loop: object        # the event loop that owns the future
    cancel: object = None  # Optional[CancelToken] (the request's deadline)
    times: object = None   # Optional[RequestTimes] (per-stage clock card)


class Shard:
    """One supervised fingerprint-affine worker (see module docstring)."""

    def __init__(self, index: int, *, max_batch: int, max_instances: int,
                 kernel: str = "fast", queue_bound: int = 64,
                 max_restarts: int = 3, restart_backoff: float = 0.05,
                 faults: Optional[FaultPlan] = None,
                 xbatch: bool = False) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.index = index
        self.max_batch = max_batch
        self.kernel = kernel
        self.xbatch = xbatch
        self.queue_bound = queue_bound
        self.max_restarts = max_restarts
        self.restart_backoff = restart_backoff
        self.lru = InstanceLRU(max_instances)
        self._faults = faults
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._threads = [
            threading.Thread(
                target=self._run, name=f"repro-shard-{index}", daemon=True
            )
        ]
        self._requests = 0
        self._batches = 0
        self._max_batch_seen = 0
        # Counters are single-writer: *_w only from the worker thread,
        # *_l only from the event-loop thread; stats() sums them, so no
        # increment is ever lost to an unlocked read-modify-write race.
        self._timeouts_w = 0
        self._timeouts_l = 0
        self._shed = 0          # loop thread (shedding happens at submit)
        self._restarts = 0      # worker thread (supervision is sequential)
        self._deaths = 0
        # Worker-thread-writer metrics: queue/assembly/solve stage
        # histograms plus the solver counters folded from each batch's
        # TraceScope.  Snapshot via metrics_obj() (loop side, lock-free;
        # see that method for the read-side caveat).
        self.metrics = Metrics()
        #: Optional TraceWriter the service installs; the worker writes
        #: one span summary per dispatched micro-batch.
        self.trace: Optional[TraceWriter] = None
        self._inflight: tuple[_Work, ...] = ()
        self._started = False
        self._closed = False
        self._failed = False

    # ------------------------------------------------------------------ #
    # lifecycle (event-loop side)
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        if not self._started:
            self._started = True
            self._threads[0].start()

    def submit(self, work: _Work) -> None:
        if self._closed or not self._started:
            raise RuntimeError("shard is not running")
        if self._failed:
            raise ServiceError.internal(
                f"shard {self.index} is failed (worker restart budget exhausted)"
            )
        # Shed policy: reject-new with a retryable error.  qsize() is
        # approximate under concurrency, but the only writer besides us
        # is the worker popping — so the estimate only ever *overshoots*
        # the true backlog, never hides an overload.
        if self._queue.qsize() >= self.queue_bound:
            self._shed += 1
            raise ServiceError.overloaded(
                f"shard {self.index} queue full ({self.queue_bound} pending); "
                f"retry after backoff"
            )
        if work.times is not None:
            work.times.enqueued = time.monotonic()
        self._queue.put(work)
        # TOCTOU guards: close()/failure may have completed (worker gone,
        # queue drained) between the checks above and our put, in which
        # case nothing will ever drain this work — fail it ourselves
        # rather than leave the submitter awaiting a future forever.
        # Safe to race the other sweeps: queue pops are atomic and each
        # work item is resolved by whoever pops it (resolution is
        # idempotent on the futures).
        if self._failed:
            self._drain_failed()
        elif self._closed and not self._worker_alive():
            self._abandon_pending()

    def note_loop_timeout(self) -> None:
        """Count a deadline expiry detected before dispatch (loop thread)."""
        self._timeouts_l += 1

    def signal_close(self) -> None:
        """Phase 1 of shutdown: refuse new work, enqueue the sentinel.

        Non-blocking, so the service can signal every shard before the
        (potentially slow) joins — shutdown latency is the longest
        shard's drain, not the sum.
        """
        if self._started and not self._closed:
            self._closed = True
            self._queue.put(None)

    def close(self, join_timeout: float = 10.0) -> None:
        """Stop after finishing already-queued work; release the LRU.

        The LRU (and its instances' cache dicts) is only torn down once
        every worker thread is confirmed dead — clearing it while a long
        micro-batch is still solving would have two threads mutating
        unlocked dicts.  A worker that outlives the join timeout keeps
        its caches and dies with the process (daemon thread) — but its
        pending **and in-flight futures are still resolved** with a
        structured ``shutdown`` error, so no client is left hanging on
        a wedged solve (resolution is idempotent: if the solve does
        finish later, its late result meets an already-done future).
        """
        self.signal_close()
        if self._started:
            if not self._join_workers(join_timeout):
                self._fail_inflight(ServiceError.shutdown(
                    "service shut down while the request was in flight"
                ))
                self._abandon_pending()
                # The abandon sweep just consumed the close sentinel; a
                # shed worker that eventually finishes its solve would
                # otherwise park in queue.get() forever.  Re-arm it so
                # the zombie exits the moment it comes back for work.
                self._queue.put(None)
                return
            self._abandon_pending()  # anything that raced in behind the sentinel
        self.lru.clear()

    @property
    def failed(self) -> bool:
        """True once the restart budget is exhausted (serves errors only)."""
        return self._failed

    def _lru_stats(self) -> LRUStats:
        """The shard's warm-cache counters (overridden by process shards)."""
        return self.lru.stats()

    def stats(self) -> ShardStats:
        return ShardStats(
            index=self.index,
            requests=self._requests,
            batches=self._batches,
            max_batch_seen=self._max_batch_seen,
            timeouts=self._timeouts_w + self._timeouts_l,
            shed=self._shed,
            restarts=self._restarts,
            worker_deaths=self._deaths,
            failed=self._failed,
            lru=self._lru_stats(),
            queue_depth=self._queue.qsize(),
            inflight=len(self._inflight),
        )

    def metrics_obj(self) -> dict:
        """Snapshot this shard's metrics (loop side, no locks).

        The worker owns the writes; this read can race a counter-dict
        insert (new glossary key mid-snapshot raises ``RuntimeError``
        from dict iteration), so retry a few times.  The key set
        stabilizes after the first batches, making a retry storm
        impossible in practice; values may lag by an in-flight batch,
        which is the documented single-writer trade.
        """
        return self._metrics_snapshot().to_obj()

    def _metrics_snapshot(self) -> Metrics:
        for _ in range(8):
            try:
                return Metrics.from_obj(self.metrics.to_obj())
            except RuntimeError:  # counters grew mid-iteration; retry
                continue
        return Metrics.from_obj(self.metrics.to_obj())

    # ------------------------------------------------------------------ #
    # join/teardown helpers
    # ------------------------------------------------------------------ #

    def _worker_alive(self) -> bool:
        return any(t.is_alive() for t in self._threads)

    def _join_workers(self, timeout: float) -> bool:
        """Join every worker generation (restarts append new threads).

        Polls because the supervisor may spawn a replacement while we
        join the dying generation; returns False once the deadline
        passes with any thread still alive.
        """
        deadline = time.monotonic() + timeout
        while True:
            alive = [t for t in self._threads if t.is_alive()]
            if not alive:
                return True
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            alive[0].join(timeout=min(remaining, 0.05))

    def _fail_inflight(self, error: ServiceError) -> None:
        """Resolve whatever the worker was solving when we gave up on it."""
        inflight, self._inflight = self._inflight, ()
        for work in inflight:
            self._resolve(work, None, error)

    def _abandon_pending(self) -> None:
        """Fail queued work that will never run (shutdown), don't hang it.

        A submit that raced ``close()`` can land its work *behind* the
        sentinel; silently dropping it would block its ``await future``
        forever.  Called by the worker on exit and again by ``close()``
        after the join, when the queue is single-threaded again.
        """
        self._drain_queue(ServiceError.shutdown())

    def _drain_failed(self) -> None:
        """Fail queued work on a permanently failed shard."""
        self._drain_queue(ServiceError.internal(
            f"shard {self.index} is failed (worker restart budget exhausted)"
        ))

    def _drain_queue(self, error: ServiceError) -> None:
        while True:
            try:
                work = self._queue.get_nowait()
            except queue.Empty:
                return
            if work is not None:
                self._resolve(work, None, error)

    # ------------------------------------------------------------------ #
    # result delivery (any thread -> event loop)
    # ------------------------------------------------------------------ #

    def _resolve(self, work: _Work, result, error) -> None:
        self._resolve_batch([(work, result, error)])

    def _resolve_batch(self, outcomes) -> None:
        """Settle many futures with one loop wakeup per event loop.

        ``call_soon_threadsafe`` costs a cross-thread wakeup each call;
        resolving a whole micro-batch through a single callback keeps the
        per-request orchestration overhead flat as batches grow.  The
        ``done()`` guard makes resolution idempotent — shutdown and
        supervision sweeps may race the worker for the same future, and
        whoever gets there first wins.
        """
        by_loop: dict = {}
        for work, result, error in outcomes:
            by_loop.setdefault(work.loop, []).append((work.future, result, error))
        for loop, entries in by_loop.items():
            def settle(entries=entries) -> None:
                for fut, result, error in entries:
                    if fut.done():  # cancelled, or already resolved by a sweep
                        continue
                    if error is None:
                        fut.set_result(result)
                    else:
                        fut.set_exception(error)

            try:
                loop.call_soon_threadsafe(settle)
            except RuntimeError:  # pragma: no cover - loop closed mid-shutdown
                pass

    # ------------------------------------------------------------------ #
    # worker (shard-thread side)
    # ------------------------------------------------------------------ #

    def _drain(self) -> list[_Work] | None:
        """Block for one work unit, then soak up a micro-batch."""
        head = self._queue.get()
        if head is None:
            return None
        return self._soak(head)

    def _drain_nowait(self) -> list[_Work] | None:
        """Non-blocking :meth:`_drain`: ``[]`` when the queue is empty.

        The process backend's pipelined pump uses this to top up the
        child's in-flight window without blocking while a batch is
        already being solved.
        """
        try:
            head = self._queue.get_nowait()
        except queue.Empty:
            return []
        if head is None:
            return None
        return self._soak(head)

    def _soak(self, head: _Work) -> list[_Work]:
        batch = [head]
        while len(batch) < self.max_batch:
            try:
                nxt = self._queue.get_nowait()
            except queue.Empty:
                break
            if nxt is None:  # sentinel: finish this batch, then exit
                self._queue.put(None)
                break
            batch.append(nxt)
        return batch

    def _expire(self, batch: list[_Work]) -> list[_Work]:
        """Skip dequeued work whose deadline already passed: no solve.

        Also the queue-stage observation point: both backends dequeue
        through here on their worker/pump thread (the metrics writer),
        so "queue" means the same thing thread- and process-side.
        """
        live: list[_Work] = []
        now = time.monotonic()
        for work in batch:
            times = work.times
            if times is not None:
                times.dequeued = now
                if times.enqueued is not None:
                    self.metrics.observe("queue", now - times.enqueued)
            token = work.cancel
            if token is not None and token.cancelled:
                self._timeouts_w += 1
                self._resolve(work, None, ServiceError.timeout(
                    "request deadline expired while queued"
                ))
            else:
                live.append(work)
        return live

    def _request_error(self, exc: Exception) -> ServiceError:
        """Map one request's failure onto the wire taxonomy.

        The full exception goes to the server-side log; the structured
        error carries only the code and a generic message (plus the
        original as ``__cause__`` for in-process callers).
        """
        if isinstance(exc, SolveCancelled):
            self._timeouts_w += 1
            return ServiceError.timeout(
                "request deadline exceeded mid-solve"
            )
        if isinstance(exc, ServiceError):
            return exc
        log.exception("shard %d: request failed", self.index)
        error = ServiceError.internal()
        error.__cause__ = exc
        return error

    def _dispatch(self, live: list[_Work]) -> None:
        """Solve one micro-batch; every future in ``live`` gets resolved.

        The batch runs under an armed :class:`TraceScope` — bit-identity
        is a proven invariant of the seams (the armed/disarmed fuzz
        suites), so always-on service counters cost one dict bump per
        seam hit and change no numbers.  The scope's counters fold into
        the shard metrics; per request, "solve" observes the duration of
        the micro-batch that carried it (items in a batch are
        indistinguishable solve-wise — they ran together).
        """
        self._batches += 1
        self._requests += len(live)
        self._max_batch_seen = max(self._max_batch_seen, len(live))
        before = None
        if self._faults is not None:
            self._faults.on_batch_start(self.index)  # may raise WorkerKilled
            before = self._faults.item_hook(self.index)
        t0 = time.monotonic()
        for work in live:
            times = work.times
            if times is not None:
                times.solve_start = t0
                if times.dequeued is not None:
                    self.metrics.observe("assembly", t0 - times.dequeued)
        cancels = [w.cancel for w in live]
        with TraceScope(f"shard{self.index}", propagate=False) as scope:
            try:
                results = solve_batch(
                    [w.item for w in live], kernel=self.kernel, reps=self.lru,
                    cancels=cancels, before_solve=before, xbatch=self.xbatch,
                )
            except Exception:
                # Isolate the offender: re-run item by item so the rest
                # of the micro-batch still gets its (bit-identical)
                # answers and only the failing/expired request carries
                # the error.
                for work in live:
                    try:
                        result = solve_batch(
                            [work.item], kernel=self.kernel, reps=self.lru,
                            cancels=[work.cancel], before_solve=before,
                            xbatch=self.xbatch,
                        )[0]
                    except Exception as exc:  # noqa: BLE001 - mapped to taxonomy
                        self._resolve(work, None, self._request_error(exc))
                    else:
                        self._resolve(work, result, None)
                self._note_solved(live, t0, scope)
                return
        results_list = list(zip(live, results))
        self._note_solved(live, t0, scope)
        self._resolve_batch(
            [(work, result, None) for work, result in results_list]
        )

    def _note_solved(self, live: list[_Work], t0: float, scope) -> None:
        """Fold one batch's trace into the metrics; emit its span."""
        t1 = time.monotonic()
        for work in live:
            times = work.times
            if times is not None:
                times.solve_end = t1
            self.metrics.observe("solve", t1 - t0)
        self.metrics.add_counts(scope.counts)
        trace = self.trace
        if trace is not None:
            trace.write({
                "name": f"shard{self.index}.batch", "t0": t0, "dur": t1 - t0,
                "n": len(live), "counts": dict(scope.counts),
            })

    def _run(self) -> None:
        try:
            while True:
                batch = self._drain()
                if batch is None:
                    self._abandon_pending()
                    return
                live = self._expire(batch)
                if not live:
                    continue
                self._inflight = tuple(live)
                self._dispatch(live)
                self._inflight = ()
        except BaseException as exc:  # noqa: BLE001 - supervised worker death
            self._supervise(exc)

    def _supervise(self, exc: BaseException) -> None:
        """The shard supervisor: runs in the dying worker's last breath.

        Resolves the in-flight micro-batch with structured errors, then
        either restarts a fresh worker generation (bounded exponential
        backoff) or marks the shard failed and fails its whole queue.
        CPython guarantees we get here for any exception raised in the
        worker, so death is never silent.
        """
        self._deaths += 1
        log.error("shard %d: worker died: %r", self.index, exc, exc_info=exc)
        inflight, self._inflight = self._inflight, ()
        death = ServiceError(
            "internal", "shard worker died mid-batch", retryable=True
        )
        death.__cause__ = exc if isinstance(exc, Exception) else None
        for work in inflight:
            self._resolve(work, None, death)
        if self._closed:
            self._abandon_pending()
            return
        if self._restarts >= self.max_restarts:
            self._failed = True
            log.error(
                "shard %d: restart budget (%d) exhausted, failing shard",
                self.index, self.max_restarts,
            )
            self._drain_failed()
            return
        self._restarts += 1
        backoff = min(self.restart_backoff * (2 ** (self._restarts - 1)), 2.0)
        time.sleep(backoff)
        if self._closed:  # closed while backing off: drain, don't restart
            self._abandon_pending()
            return
        replacement = threading.Thread(
            target=self._run,
            name=f"repro-shard-{self.index}-r{self._restarts}",
            daemon=True,
        )
        self._threads.append(replacement)
        log.warning(
            "shard %d: restarting worker (attempt %d/%d, backoff %.3fs)",
            self.index, self._restarts, self.max_restarts, backoff,
        )
        replacement.start()


class _WorkerProcDied(Exception):
    """Internal: a shard's child process died mid-batch (unwinds to the
    supervisor, which restarts the shard under the bounded backoff)."""


class ProcessShard(Shard):
    """A shard whose solves run in a supervised child **process**.

    Same interface, queueing, supervision, and accounting as
    :class:`Shard` — the worker thread stays, but it becomes a *pump*:
    micro-batches are serialized over a length-prefixed pipe to a child
    running :mod:`repro.service.procworker`, and the columnar results
    decoded on return (see that module for the protocol).  The pump is
    *pipelined* (:data:`PIPELINE_DEPTH`): while the child solves one
    batch, the next is already encoded and shipped, so the wire codec
    and the pipe round trip overlap the solve instead of serializing
    with it — the process backend's throughput tax is one batch's
    latency, not per-batch dead time.  The child
    rebuilds per-instance caches locally under the same
    :class:`~repro.service.cache.InstanceLRU` bound; its counters ride
    back on every result frame and are folded across child generations
    by :meth:`_lru_stats`, so service-level cache accounting is backend
    agnostic.

    What the process boundary buys over threads:

    * **Crash containment** — a child that segfaults, OOMs, or is
      SIGKILLed resolves its in-flight requests with the existing
      retryable ``internal``/``timeout`` taxonomy and is replaced under
      the PR-6 bounded restart backoff; nothing else in the service is
      touched.
    * **Hard deadlines** — when every in-flight request carries a
      deadline and the last of them has been expired for more than
      ``hard_kill_grace_ms`` with no result, the child is SIGKILLed:
      even a solve that never reaches a cooperative probe boundary (a
      wedged extension, a non-cooperative busy loop) cannot hold the
      shard past its deadline.  The kill waits for the *latest* deadline
      in the batch on purpose — the child solves items sequentially, so
      an earlier item's expiry says nothing about whether the child is
      stuck or legitimately working on a later item.
    * **Liveness** — the child heartbeats every ``heartbeat_ms``; a
      child that goes silent (frozen, suspended, dead pipe) is killed
      and treated as a crash.  A merely *busy* child keeps beating (the
      beat thread shares the child's GIL timeslices), so slow is never
      misread as dead.

    Every fault decision — batch-level (:class:`~repro.service.faults.
    KillWorker`, :class:`~repro.service.faults.SigKill`) *and*
    item-level — is adjudicated here in the parent against the single
    authoritative plan; the child only receives mechanical directives
    inside the batch frame (see :meth:`FaultPlan.item_directives`), so a
    restarted child can never re-fire faults from reset state.
    """

    def __init__(self, index: int, *, hard_kill_grace_ms: int = 200,
                 heartbeat_ms: int = 100, **kwargs) -> None:
        super().__init__(index, **kwargs)
        self.hard_kill_grace = max(hard_kill_grace_ms, 0) / 1000.0
        self.heartbeat_ms = heartbeat_ms
        self._child: Optional[WorkerProc] = None
        self._batch_seq = 0
        # Child-side LRU accounting: the live child's latest snapshot
        # plus the folded totals of every dead generation.
        self._lru_live: Optional[dict] = None
        self._lru_dead = {"hits": 0, "misses": 0, "evictions": 0,
                          "peak_entries": 0}
        # Child-side metrics, same live/dead split: the child's solver
        # counters and its "solve" histogram ride every result frame
        # (cumulative snapshot); dead generations fold on retire so a
        # crash never loses more than its in-flight batch's numbers.
        self._met_live: Optional[dict] = None
        self._met_dead = Metrics()
        # Shadow replay of the live child's LRU, in send order (see
        # _slim_plan): real keys are fingerprints *provably* warm
        # child-side; "?N" phantom slots model the worst-case
        # displacement of items whose LRU touch the parent cannot
        # guarantee (deadline- or directive-carrying requests may be
        # skipped before their reps.get).  Reset with every child spawn.
        self._shadow: OrderedDict[str, None] = OrderedDict()
        self._shadow_seq = 0

    # ------------------------------------------------------------------ #
    # child lifecycle (pump-thread side, plus start()/close() on the
    # loop side)
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        if not self._started:
            # Spawn the child before the pump thread exists, so service
            # start-up pays the interpreter launch instead of the first
            # request (bench clocks and tail latencies stay clean).
            # Respawns after a crash remain lazy via _ensure_child() on
            # the next dispatch.
            self._ensure_child()
        super().start()

    def _ensure_child(self) -> WorkerProc:
        child = self._child
        if child is not None and child.alive():
            return child
        if child is not None:  # died idle between batches: replace quietly
            log.warning("shard %d: worker process gone, respawning", self.index)
            self._retire_child()
        child = WorkerProc(
            self.index,
            kernel=self.kernel,
            max_instances=self.lru.max_entries,
            heartbeat_ms=self.heartbeat_ms,
            xbatch=self.xbatch,
        )
        child.start()
        self._child = child
        self._shadow.clear()  # fresh child, empty LRU: everything is cold
        return child

    def _retire_child(self) -> None:
        """Fold the child's cache+metrics counters into totals, reap it."""
        child, self._child = self._child, None
        live, self._lru_live = self._lru_live, None
        if live:
            dead = self._lru_dead
            dead["hits"] += live.get("hits", 0)
            dead["misses"] += live.get("misses", 0)
            dead["evictions"] += live.get("evictions", 0)
            dead["peak_entries"] = max(
                dead["peak_entries"], live.get("peak_entries", 0)
            )
        met_live, self._met_live = self._met_live, None
        if met_live:
            self._met_dead.merge(Metrics.from_obj(met_live))
        if child is not None:
            child.destroy()

    def _lru_stats(self) -> LRUStats:
        live = self._lru_live or {}
        dead = self._lru_dead
        return LRUStats(
            entries=live.get("entries", 0),
            peak_entries=max(dead["peak_entries"], live.get("peak_entries", 0)),
            hits=dead["hits"] + live.get("hits", 0),
            misses=dead["misses"] + live.get("misses", 0),
            evictions=dead["evictions"] + live.get("evictions", 0),
            max_entries=self.lru.max_entries,
        )

    def close(self, join_timeout: float = 10.0) -> None:
        """Graceful drain, then — unlike threads — hard-kill a wedge.

        The thread backend can only *shed* a wedged worker at shutdown
        (resolve its futures and abandon the daemon thread to die with
        the process).  Here the wedge is an OS process we own: after the
        same future-shedding sweep, the child is SIGKILLed and reaped,
        so a non-cooperative hang never outlives ``close()``.
        """
        self.signal_close()
        if self._started:
            if not self._join_workers(join_timeout):
                self._fail_inflight(ServiceError.shutdown(
                    "service shut down while the request was in flight"
                ))
                self._abandon_pending()
                self._queue.put(None)  # re-arm the sentinel (sweep ate it)
                child = self._child
                if child is not None:
                    child.kill()  # unblocks the pump via EOF
                self._join_workers(2.0)
                self._retire_child()
                return
            self._abandon_pending()
        self._retire_child()
        self.lru.clear()  # parent-side table (unused here, kept invariant)

    # ------------------------------------------------------------------ #
    # pipelined pump (pump-thread side)
    # ------------------------------------------------------------------ #

    #: Batches kept in flight toward the child.  Depth 2 is classic
    #: double buffering: while the child solves batch k, the pump
    #: already encodes and ships batch k+1 — the wire codec and the
    #: pipe round trip leave the critical path instead of serializing
    #: with every solve.
    PIPELINE_DEPTH = 2

    def _run(self) -> None:
        try:
            # (child, batch_id, live) in child order; every entry's
            # works are also in self._inflight so supervision, close(),
            # and crash sweeps can resolve the whole window.
            pending: deque = deque()
            draining = False
            while True:
                if draining:
                    batch: list[_Work] | None = []
                elif pending:
                    batch = self._drain_nowait()
                else:
                    batch = self._drain()
                if batch is None:  # close sentinel
                    draining = True
                    batch = []
                if batch:
                    live = self._expire(batch)
                    if live:
                        self._inflight = self._inflight + tuple(live)
                        pending.append(self._send(live, pending))
                if not pending:
                    if draining:
                        self._abandon_pending()
                        return
                    continue
                if (not draining and batch
                        and len(pending) < self.PIPELINE_DEPTH):
                    continue  # top the window up before blocking
                child, batch_id, live = pending.popleft()
                rest = tuple(w for _, _, lv in pending for w in lv)
                self._await_result(child, batch_id, live, doomed=rest)
                self._inflight = rest
        except BaseException as exc:  # noqa: BLE001 - supervised worker death
            self._supervise(exc)

    def _send(self, live: list[_Work], pending) -> tuple:
        """Encode one micro-batch and ship it; the result comes later."""
        self._batches += 1
        self._requests += len(live)
        self._max_batch_seen = max(self._max_batch_seen, len(live))
        sigkill = False
        if self._faults is not None:
            try:
                self._faults.on_batch_start(self.index)
            except WorkerKilled:
                # The injected pre-dispatch death: the child dies with
                # this worker generation, exactly like the thread path.
                self._retire_child()
                raise
            sigkill = self._faults.sigkill_now(self.index)
        if pending:
            # Earlier batches already ride this child generation: reuse
            # it.  If it died meanwhile, the send below fails and the
            # whole in-flight window unwinds through _child_failure.
            child = self._child
        else:
            child = None
        if child is None:
            try:
                child = self._ensure_child()
            except Exception as exc:  # noqa: BLE001 - supervised spawn failure
                died = _WorkerProcDied(
                    f"shard {self.index}: worker process failed to start"
                )
                died.__cause__ = exc
                raise died
        self._batch_seq += 1
        batch_id = self._batch_seq
        wire = self._encode_batch(live)
        try:
            child.send_batch(batch_id, wire)
        except Exception as exc:  # noqa: BLE001 - child died, pipe broke
            doomed = [w for _, _, lv in pending for w in lv]
            self._child_failure(
                list(live) + doomed, "worker pipe broke mid-send", cause=exc
            )
        # Assembly ends when the batch is shipped.  The "solve" stage is
        # owned by the child (it rides home on the result frame); the
        # parent-side solve_start/solve_end stamps exist only for the
        # slow-request log and include the pipe round trip.
        t_sent = time.monotonic()
        for work in live:
            times = work.times
            if times is not None:
                times.solve_start = t_sent
                if times.dequeued is not None:
                    self.metrics.observe("assembly", t_sent - times.dequeued)
        if sigkill:
            child.kill()  # injected mid-flight crash (frames go EOF)
        return child, batch_id, live

    def _encode_batch(self, live: list[_Work]) -> list:
        """Wire-encode one batch, slimming items the child can rebuild.

        The instance payload dominates the per-item pipe cost, so items
        whose fingerprint is *provably* resolvable child-side cross slim
        (fingerprint + machine count, no setups/jobs).  Provable means:
        the fingerprint is a real key in :attr:`_shadow` — the parent's
        deterministic replay of the child LRU's get/admit/evict sequence
        — or a payload-carrying item earlier in this same batch supplies
        it (the child's decode loop keeps a batch-local table precisely
        for that).

        The shadow must never claim warmth the child might lack, so any
        item whose LRU touch is *uncertain* — it carries a deadline
        token or a fault directive, either of which can abort the item
        before its ``reps.get`` — is replayed as a **phantom** slot:
        the touch counts toward eviction pressure (as if it admitted a
        brand-new entry) but never marks its own fingerprint warm.
        Whatever the child actually did, the shadow's real keys stay a
        subset of the child's table.  Item faults are also adjudicated
        HERE, against the parent's single authoritative plan, and cross
        the pipe as mechanical directives — a restarted child must never
        re-fire from reset plan state.
        """
        shadow = self._shadow
        avail = {fp for fp in shadow if not fp.startswith("?")}
        wire = []
        touches = []
        for w in live:
            directive = (
                self._faults.item_directives(self.index)
                if self._faults is not None else None
            )
            fp = w.item.instance.fingerprint()
            slim = fp in avail
            if not slim:
                avail.add(fp)  # its payload rides this frame from here on
            touches.append((fp, w.cancel is None and directive is None))
            wire.append(work_to_wire(w.item, w.cancel, directive, slim=slim))
        max_entries = self.lru.max_entries
        for fp, certain in touches:
            if certain and fp in shadow:
                shadow.move_to_end(fp)
                continue
            if not certain:
                self._shadow_seq += 1
                fp = f"?{self._shadow_seq}"
            while len(shadow) >= max_entries:
                shadow.popitem(last=False)
            shadow[fp] = None
        return wire

    def _child_failure(self, live, reason, cause=None):
        """The child is gone with ``live`` in flight: resolve and unwind.

        Requests whose deadline already expired resolve as ``timeout``
        (they were going to time out regardless of the crash — and for
        a hard kill, the timeout *is* the resolution); the rest are
        left for :meth:`Shard._supervise` to resolve with the standard
        retryable worker-death ``internal`` error when the exception
        raised here unwinds the pump.  Both writes race nothing:
        settlement order is FIFO per event loop and idempotent.
        """
        self._retire_child()
        for work in live:
            token = work.cancel
            if token is not None and token.cancelled:
                self._timeouts_w += 1
                self._resolve(work, None, ServiceError.timeout(
                    "request deadline exceeded; worker process terminated"
                ))
        died = _WorkerProcDied(f"shard {self.index}: {reason}")
        if cause is not None:
            died.__cause__ = cause
        raise died

    def _await_result(self, child: WorkerProc, batch_id: int, live,
                      doomed=()) -> None:
        """Block for one batch's result frame, supervising the child.

        ``doomed`` is the rest of the in-flight window (batches shipped
        behind this one): they share the child's fate on a crash, and
        the hard-kill rule is evaluated over the *whole* window — the
        kill only arms when every in-flight request carries a deadline.
        """
        kill_at = None
        tokens = [w.cancel for w in live] + [w.cancel for w in doomed]
        if tokens and all(t is not None and t.deadline is not None for t in tokens):
            # Hard-kill horizon: the *latest* deadline in flight plus
            # grace.  Never keyed on the earliest — the child works the
            # window sequentially, and killing at the first expiry would
            # murder a healthy child that is busy on a later item.
            budget = max(t.remaining() for t in tokens)
            kill_at = time.monotonic() + budget + self.hard_kill_grace
        hb_timeout = max(20 * self.heartbeat_ms / 1000.0, 2.0)
        killed: Optional[str] = None
        while True:
            try:
                msg = child.frames.get(timeout=0.05)
            except queue.Empty:
                now = time.monotonic()
                if killed is None:
                    if kill_at is not None and now >= kill_at:
                        killed = ("hard deadline exceeded (cooperative "
                                  "cancellation never landed)")
                        log.warning("shard %d: %s, killing worker process",
                                    self.index, killed)
                        child.kill()
                    elif now - child.last_frame > hb_timeout:
                        killed = "worker process stopped heartbeating"
                        log.error("shard %d: %s, killing it", self.index, killed)
                        child.kill()
                continue  # a killed child surfaces as EOF shortly
            if msg is None:  # EOF: the child is gone, with the whole window
                self._child_failure(
                    list(live) + list(doomed),
                    killed or "worker process died mid-batch",
                )
            if not (isinstance(msg, tuple) and msg and msg[0] == "result"):
                continue
            # Tolerant unpack: frames from PR-7 children carry 4 fields;
            # current children append the metrics snapshot and the
            # batch's span summaries.
            got_id, outcomes, lru_obj = msg[1], msg[2], msg[3]
            met_obj = msg[4] if len(msg) > 4 else None
            spans = msg[5] if len(msg) > 5 else ()
            if got_id != batch_id:  # stale frame from a raced teardown
                continue
            self._lru_live = lru_obj
            if met_obj is not None:
                self._met_live = met_obj
            trace = self.trace
            if trace is not None:
                for record in spans:
                    trace.write(record)
            self._resolve_outcomes(live, outcomes)
            return

    def metrics_obj(self) -> dict:
        """Pump-side stages merged with the child's counters+solve.

        Shapes match the thread backend exactly: queue/assembly come
        from the pump (observed in :meth:`_expire`/:meth:`_send`),
        solve and the solver counters from the child generations
        (live snapshot + dead totals).
        """
        for _ in range(8):
            try:
                merged = Metrics.from_obj(self.metrics.to_obj())
                merged.merge(self._met_dead)
                live = self._met_live
                if live:
                    merged.merge(Metrics.from_obj(live))
                return merged.to_obj()
            except RuntimeError:  # pump folded a child mid-read; retry
                continue
        return self._metrics_snapshot().to_obj()  # pragma: no cover

    def _resolve_outcomes(self, live, outcomes) -> None:
        now = time.monotonic()
        for work in live:
            if work.times is not None:
                work.times.solve_end = now
        entries = []
        for work, outcome in zip(live, outcomes):
            if outcome[0] == "ok":
                try:
                    result = result_from_wire(outcome[1], work.item.instance)
                except Exception as exc:  # noqa: BLE001 - malformed frame
                    log.exception("shard %d: malformed worker result", self.index)
                    error = ServiceError.internal("malformed worker result")
                    error.__cause__ = exc
                    entries.append((work, None, error))
                else:
                    entries.append((work, result, None))
            else:
                _, code, message, retryable = outcome
                if code == "timeout":
                    self._timeouts_w += 1  # parent owns the timeout counters
                entries.append(
                    (work, None, ServiceError(code, message, retryable=retryable))
                )
        for work in live[len(outcomes):]:  # defensive: never hang a client
            entries.append(
                (work, None, ServiceError.internal("worker result missing"))
            )
        self._resolve_batch(entries)
