"""Shard worker threads: fingerprint-affine micro-batched dispatch.

A shard is one worker thread plus one FIFO queue plus one
:class:`~repro.service.cache.InstanceLRU` of warm representatives.  The
service routes every request whose instance hashes to this shard here —
and only here — so the lazily filled per-instance caches (plain dicts,
no locks) are touched by exactly one thread.  The worker drains its
queue in micro-batches of up to ``max_batch`` requests and dispatches
each batch through :func:`repro.algos.batch_api.solve_batch` with the
shard's LRU as the cross-batch representative table.

Results travel back to the asyncio event loop with
``loop.call_soon_threadsafe`` onto per-request futures; a failed batch
is retried item by item so one bad request cannot poison the others in
its micro-batch.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import NamedTuple

from ..algos.batch_api import solve_batch
from .cache import InstanceLRU, LRUStats

__all__ = ["Shard", "ShardStats", "shard_index"]


def shard_index(fingerprint: str, shards: int) -> int:
    """Deterministic shard of a fingerprint (stable across processes)."""
    return int(fingerprint[:16], 16) % shards


@dataclass(frozen=True)
class ShardStats:
    """One shard's dispatch counters plus its LRU table's counters."""

    index: int
    requests: int
    batches: int
    max_batch_seen: int
    lru: LRUStats


class _Work(NamedTuple):
    item: object        # BatchItem
    future: object      # asyncio.Future
    loop: object        # the event loop that owns the future


class Shard:
    """One fingerprint-affine worker (see module docstring)."""

    def __init__(self, index: int, *, max_batch: int, max_instances: int,
                 kernel: str = "fast") -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.index = index
        self.max_batch = max_batch
        self.kernel = kernel
        self.lru = InstanceLRU(max_instances)
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._thread = threading.Thread(
            target=self._run, name=f"repro-shard-{index}", daemon=True
        )
        self._requests = 0
        self._batches = 0
        self._max_batch_seen = 0
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle (event-loop side)
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        if not self._started:
            self._started = True
            self._thread.start()

    def submit(self, work: _Work) -> None:
        if self._closed or not self._started:
            raise RuntimeError("shard is not running")
        self._queue.put(work)
        # TOCTOU guard: close() may have completed (worker exited and
        # drained) between the check above and our put, in which case
        # nothing will ever drain this work — fail it ourselves rather
        # than leave the submitter awaiting a future forever.  Safe to
        # race the other abandon sweeps: queue pops are atomic and each
        # work item is resolved by whoever pops it.
        if self._closed and not self._thread.is_alive():
            self._abandon_pending()

    def signal_close(self) -> None:
        """Phase 1 of shutdown: refuse new work, enqueue the sentinel.

        Non-blocking, so the service can signal every shard before the
        (potentially slow) joins — shutdown latency is the longest
        shard's drain, not the sum.
        """
        if self._started and not self._closed:
            self._closed = True
            self._queue.put(None)

    def close(self, join_timeout: float = 10.0) -> None:
        """Stop after finishing already-queued work; release the LRU.

        The LRU (and its instances' cache dicts) is only torn down once
        the worker thread is confirmed dead — clearing it while a long
        micro-batch is still solving would have two threads mutating
        unlocked dicts.  A worker that outlives the join timeout keeps
        its state and dies with the process (daemon thread).
        """
        self.signal_close()
        if self._started:
            self._thread.join(timeout=join_timeout)
            if self._thread.is_alive():  # pragma: no cover - pathological solve
                return
            self._abandon_pending()  # anything that raced in behind the sentinel
        self.lru.clear()

    def stats(self) -> ShardStats:
        return ShardStats(
            index=self.index,
            requests=self._requests,
            batches=self._batches,
            max_batch_seen=self._max_batch_seen,
            lru=self.lru.stats(),
        )

    # ------------------------------------------------------------------ #
    # worker (shard-thread side)
    # ------------------------------------------------------------------ #

    def _drain(self) -> list[_Work] | None:
        """Block for one work unit, then soak up a micro-batch."""
        head = self._queue.get()
        if head is None:
            return None
        batch = [head]
        while len(batch) < self.max_batch:
            try:
                nxt = self._queue.get_nowait()
            except queue.Empty:
                break
            if nxt is None:  # sentinel: finish this batch, then exit
                self._queue.put(None)
                break
            batch.append(nxt)
        return batch

    def _resolve(self, work: _Work, result, error) -> None:
        self._resolve_batch([(work, result, error)])

    def _resolve_batch(self, outcomes) -> None:
        """Settle many futures with one loop wakeup per event loop.

        ``call_soon_threadsafe`` costs a cross-thread wakeup each call;
        resolving a whole micro-batch through a single callback keeps the
        per-request orchestration overhead flat as batches grow.
        """
        by_loop: dict = {}
        for work, result, error in outcomes:
            by_loop.setdefault(work.loop, []).append((work.future, result, error))
        for loop, entries in by_loop.items():
            def settle(entries=entries) -> None:
                for fut, result, error in entries:
                    if fut.cancelled():
                        continue
                    if error is None:
                        fut.set_result(result)
                    else:
                        fut.set_exception(error)

            try:
                loop.call_soon_threadsafe(settle)
            except RuntimeError:  # pragma: no cover - loop closed mid-shutdown
                pass

    def _abandon_pending(self) -> None:
        """Fail queued work that will never run (shutdown), don't hang it.

        A submit that raced ``close()`` can land its work *behind* the
        sentinel; silently dropping it would block its ``await future``
        forever.  Called by the worker on exit and again by ``close()``
        after the join, when the queue is single-threaded again.
        """
        while True:
            try:
                work = self._queue.get_nowait()
            except queue.Empty:
                return
            if work is not None:
                self._resolve(
                    work, None,
                    RuntimeError("service closed before the request was processed"),
                )

    def _run(self) -> None:
        while True:
            batch = self._drain()
            if batch is None:
                self._abandon_pending()
                return
            self._batches += 1
            self._requests += len(batch)
            self._max_batch_seen = max(self._max_batch_seen, len(batch))
            try:
                results = solve_batch(
                    [w.item for w in batch], kernel=self.kernel, reps=self.lru
                )
            except Exception:
                # Isolate the offender: re-run item by item so the rest
                # of the micro-batch still gets its (bit-identical)
                # answers and only the bad request carries the error.
                for work in batch:
                    try:
                        result = solve_batch(
                            [work.item], kernel=self.kernel, reps=self.lru
                        )[0]
                    except Exception as exc:  # noqa: BLE001 - forwarded to caller
                        self._resolve(work, None, exc)
                    else:
                        self._resolve(work, result, None)
                continue
            self._resolve_batch(
                [(work, result, None) for work, result in zip(batch, results)]
            )
