"""JSON-lines front ends: stdio and local TCP, over one shared handler.

Both transports speak the :mod:`repro.service.protocol` line protocol
and share the connection handler: requests are parsed in arrival order,
dispatched concurrently through :meth:`SolveService.submit`, and the
responses are written back **in request order** (a writer coroutine
drains a FIFO of response futures) — deterministic output for any
interleaving of completions.  A per-connection admission window of
``max_inflight`` bounds parsed-but-unanswered requests, so a
fast-pipelining client cannot queue unbounded work.

Housekeeping ops: ``ping`` answers inline; ``stats`` (the engine's
counters plus the process's ``ru_maxrss``) and ``metrics`` (mergeable
counters + per-stage latency histograms, JSON or Prometheus text)
snapshot at their position in the response order, so they
deterministically count every request that precedes them on the
connection; ``shutdown`` acknowledges, then closes the connection — and
stops a TCP server.

Every failure goes on the wire as a structured
:class:`~repro.service.protocol.ServiceError` object.  Unexpected
(``internal``) failures never leak exception text to the client: the
wire carries the code and a generic message, the full traceback goes to
the ``repro.service`` logger.
"""

from __future__ import annotations

import asyncio
import json
import logging
import sys
import time
from typing import Awaitable, Callable, Optional

from .engine import SolveService
from .protocol import (
    METRICS_FORMATS,
    ProtocolError,
    ServiceError,
    error_line,
    metrics_line,
    request_from_obj,
    response_line,
)

__all__ = ["handle_lines", "serve_stdio", "serve_tcp"]

log = logging.getLogger("repro.service")


def _normalize_maxrss(ru_maxrss: int, platform: str) -> int:
    """``ru_maxrss`` as KiB, whatever unit ``platform`` reported it in.

    POSIX leaves the ``ru_maxrss`` unit unspecified and the platforms
    disagree: Linux and the BSDs report **kibibytes**, macOS reports
    **bytes**.  ``stats`` payloads must be comparable across deploys,
    so everything is normalized to KiB here (split out from
    :func:`_maxrss_kib` purely so the per-platform arithmetic is unit
    testable without faking ``getrusage`` wholesale).
    """
    return ru_maxrss // 1024 if platform == "darwin" else ru_maxrss


def _maxrss_kib() -> Optional[int]:
    """Peak RSS of this process in KiB (None where unsupported)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return _normalize_maxrss(usage, sys.platform)


async def handle_lines(
    service: SolveService,
    readline: Callable[[], Awaitable[bytes]],
    write_line: Callable[[str], Awaitable[None]],
) -> bool:
    """Serve one connection; returns True when a shutdown was requested."""
    responses: asyncio.Queue = asyncio.Queue()
    window = asyncio.Semaphore(service.config.max_inflight)
    shutdown = False

    async def writer() -> None:
        while True:
            fut = await responses.get()
            if fut is None:
                return
            try:
                try:
                    line = await fut
                except asyncio.CancelledError:  # pragma: no cover - shutdown race
                    raise
                except Exception:  # noqa: BLE001 - reported on the wire
                    log.exception("response future failed")
                    line = error_line(None, ServiceError.internal())
                await write_line(line)
            finally:
                # Must release even when write_line raises (client gone):
                # a leaked slot would wedge the reader's window.acquire()
                # forever once max_inflight requests are outstanding.
                window.release()

    async def solve_one(obj: dict) -> str:
        request_id = obj.get("id") if isinstance(obj, dict) else None
        try:
            request = request_from_obj(obj)
            result = await service.submit(request)
            t0 = time.monotonic()
            line = response_line(request.id, result)
            service.observe_encode(time.monotonic() - t0)
            return line
        except ServiceError as exc:  # already taxonomized (timeout/shed/...)
            return error_line(request_id, exc)
        except (ProtocolError, ValueError) as exc:
            return error_line(request_id, ServiceError.bad_request(str(exc)))
        except asyncio.CancelledError:
            raise
        except Exception:  # noqa: BLE001 - id must survive any failure
            # Generic code on the wire; the details stay server-side.
            log.exception("request %r failed", request_id)
            return error_line(request_id, ServiceError.internal())

    async def immediate(line: str) -> str:
        return line

    async def stats_line(request_id) -> str:
        payload = service.stats().to_obj()
        payload["maxrss_kib"] = _maxrss_kib()
        return json.dumps(
            {"id": request_id, "ok": True, "stats": payload}, separators=(",", ":")
        )

    async def metrics_reply(request_id, fmt: str) -> str:
        return metrics_line(request_id, service.metrics_obj(), fmt)

    writer_task = asyncio.create_task(writer())
    try:
        while True:
            if writer_task.done():  # write side failed: connection is dead
                break
            raw = await readline()
            if not raw:  # EOF
                break
            raw = raw.strip()
            if not raw:
                continue
            # Backpressure: stop reading when max_inflight responses are
            # pending.  Wait on the writer too — if it dies (broken pipe)
            # its slots are never released, and blocking here forever
            # would leak the connection handler.
            acquired = asyncio.ensure_future(window.acquire())
            await asyncio.wait(
                {acquired, writer_task}, return_when=asyncio.FIRST_COMPLETED
            )
            if not acquired.done():
                acquired.cancel()
                break
            try:
                obj = json.loads(raw)
            except json.JSONDecodeError as exc:
                responses.put_nowait(asyncio.ensure_future(immediate(
                    error_line(None, ServiceError.bad_request(f"bad JSON: {exc}"))
                )))
                continue
            op = obj.get("op", "solve") if isinstance(obj, dict) else "solve"
            request_id = obj.get("id") if isinstance(obj, dict) else None
            if op == "ping":
                responses.put_nowait(asyncio.ensure_future(immediate(
                    json.dumps({"id": request_id, "ok": True, "pong": True},
                               separators=(",", ":"))
                )))
            elif op == "stats":
                # Enqueued as a *bare coroutine*: the writer evaluates it
                # only once every earlier response has been written, so
                # the snapshot deterministically counts all requests that
                # precede it on this connection (a task would snapshot at
                # parse time, while earlier solves are still in flight).
                responses.put_nowait(stats_line(request_id))
            elif op == "metrics":
                # Same bare-coroutine discipline as stats: the snapshot
                # evaluates at its position in the response order.
                fmt = obj.get("format", "json")
                if fmt not in METRICS_FORMATS:
                    responses.put_nowait(asyncio.ensure_future(immediate(
                        error_line(request_id, ServiceError.bad_request(
                            f"metrics format must be one of "
                            f"{list(METRICS_FORMATS)}, got {fmt!r}"
                        ))
                    )))
                else:
                    responses.put_nowait(metrics_reply(request_id, fmt))
            elif op == "shutdown":
                responses.put_nowait(asyncio.ensure_future(immediate(
                    json.dumps({"id": request_id, "ok": True, "bye": True},
                               separators=(",", ":"))
                )))
                shutdown = True
                break
            elif op == "solve":
                responses.put_nowait(asyncio.create_task(solve_one(obj)))
            else:
                responses.put_nowait(asyncio.ensure_future(immediate(
                    error_line(request_id, ServiceError.bad_request(f"unknown op {op!r}"))
                )))
    finally:
        responses.put_nowait(None)
        try:
            await writer_task
        except Exception:  # noqa: BLE001 - writer died with the connection
            pass
        # If the writer died early, undelivered response tasks are still
        # queued — cancel them so no solve keeps running for a dead peer.
        while not responses.empty():
            fut = responses.get_nowait()
            if fut is None:
                continue
            if asyncio.isfuture(fut):
                fut.cancel()
            else:  # a never-awaited bare coroutine (stats)
                fut.close()
    return shutdown


async def serve_stdio(service: SolveService) -> None:
    """Serve JSON lines on stdin/stdout until EOF (or a shutdown op)."""
    loop = asyncio.get_running_loop()
    stdin = sys.stdin.buffer
    stdout = sys.stdout

    async def readline() -> bytes:
        return await loop.run_in_executor(None, stdin.readline)

    async def write_line(line: str) -> None:
        stdout.write(line + "\n")
        stdout.flush()

    await handle_lines(service, readline, write_line)


async def serve_tcp(service: SolveService, host: str = "127.0.0.1", port: int = 0):
    """Start a TCP server; returns the listening ``asyncio.Server``.

    A ``shutdown`` op on any connection sets the event stashed on the
    returned server as ``repro_shutdown`` — the intended local
    single-operator lifecycle is ``await server.repro_shutdown.wait()``
    then ``server.close()`` (what ``python -m repro.service --tcp``
    does); callers that manage lifetime themselves can ignore it.
    """
    done = asyncio.Event()

    async def on_connection(reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        async def readline() -> bytes:
            try:
                return await reader.readline()
            except ConnectionError:  # pragma: no cover - client vanished
                return b""

        async def write_line(line: str) -> None:
            writer.write(line.encode() + b"\n")
            await writer.drain()

        try:
            if await handle_lines(service, readline, write_line):
                done.set()
        finally:
            writer.close()

    server = await asyncio.start_server(on_connection, host, port)
    server.repro_shutdown = done  # type: ignore[attr-defined]
    return server
