"""Per-shard LRU of warm instance representatives, with real eviction.

The batched engine's speed comes from reusing one representative
instance's lazy caches per fingerprint (:func:`repro.algos.batch_api.
solve_batch` with a caller-owned ``reps`` mapping).  A service that
keeps every representative forever trades that speed for unbounded
memory — exactly the ``solve_many`` growth the service layer exists to
fix.  :class:`InstanceLRU` is the bounded mapping a shard passes as
``reps``: hits refresh recency, admitting past the bound evicts the
least-recently-used representative *and releases its caches*
(:meth:`~repro.core.instance.Instance.release_caches`, which clears the
shared view dicts in place and drops the fast-kernel context with its
numpy scratch).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..core.instance import Instance

__all__ = ["InstanceLRU", "LRUStats"]


@dataclass(frozen=True)
class LRUStats:
    """Counters of one LRU table (monotone except ``entries``)."""

    entries: int
    peak_entries: int
    hits: int
    misses: int
    evictions: int
    max_entries: int


class InstanceLRU:
    """Bounded ``fingerprint → Instance`` mapping with release-on-evict.

    Implements exactly the mapping protocol ``solve_batch`` touches
    (``get`` / ``__setitem__``), plus ``__len__``/``__contains__`` for
    accounting.  Not thread-safe by design: each service shard owns one
    table and is the only thread that touches it (the sharding-by-
    fingerprint invariant).  ``peak_entries`` can never exceed
    ``max_entries`` — eviction happens *before* admission.
    """

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._table: OrderedDict[str, Instance] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._peak = 0

    def get(self, fingerprint: str, default: Optional[Instance] = None):
        inst = self._table.get(fingerprint)
        if inst is None:
            self._misses += 1
            return default
        self._hits += 1
        self._table.move_to_end(fingerprint)
        return inst

    def __setitem__(self, fingerprint: str, instance: Instance) -> None:
        table = self._table
        if fingerprint in table:
            table[fingerprint] = instance
            table.move_to_end(fingerprint)
            return
        while len(table) >= self.max_entries:
            _, evicted = table.popitem(last=False)
            evicted.release_caches()
            self._evictions += 1
        table[fingerprint] = instance
        self._peak = max(self._peak, len(table))

    def peek(self, fingerprint: str) -> Optional[Instance]:
        """Lookup without touching counters or recency.

        The process-worker wire probes with this to decide whether an
        incoming item can reuse a warm representative instead of
        decoding its payload — the real ``get`` (hit/miss accounting,
        recency refresh) still happens once per item inside
        ``solve_batch``, keeping cache counters backend-identical.
        """
        return self._table.get(fingerprint)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._table

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        """Evict everything (shutdown hook): releases every cache set."""
        while self._table:
            _, evicted = self._table.popitem(last=False)
            evicted.release_caches()
            self._evictions += 1

    def stats(self) -> LRUStats:
        return LRUStats(
            entries=len(self._table),
            peak_entries=self._peak,
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            max_entries=self.max_entries,
        )
