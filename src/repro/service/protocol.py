"""JSON-lines wire protocol of the solve service.

One request per line, one response line per request, exact integers
end to end.  Times (``T``, bounds, makespans, starts/lengths) are exact
rationals encoded as an ``int`` (denominator 1) or a two-element
``[numerator, denominator]`` list — floats are **rejected**, the service
inherits the library's bit-exactness guarantee and refuses lossy input.

Request shape (``op`` defaults to ``"solve"``)::

    {"id": 7, "op": "solve",
     "instance": {"m": 8, "setups": [3, 5], "jobs": [[4, 2], [6]]},
     "variant": "nonpreemptive",        # default
     "algorithm": "three_halves",       # default; or "eps" / "two"
     "eps": [1, 100],                   # only used by "eps"
     "bounds_only": true,               # or "schedules": false
     "ms": [2, 4, 8]}                   # optional machine range → sweep

``ms`` turns the request into a machine sweep (one result per count, the
instance's own ``m`` ignored); otherwise one result at ``instance.m``.
``bounds_only`` (equivalently ``"schedules": false``) resolves the
certified ``T*``/ratio/lower-bound certificate without constructing a
schedule.  Housekeeping ops: ``{"op": "ping"}``, ``{"op": "stats"}``,
``{"op": "metrics", "format": "json"|"prometheus"}`` (counters and
per-stage latency histograms, see :mod:`repro.obs.metrics`) and
``{"op": "shutdown"}`` (acknowledges, then closes the connection).

Response shape::

    {"id": 7, "ok": true, "results": [<result>, ...]}
    {"id": 7, "ok": false,
     "error": {"code": "<code>", "message": "<one line>", "retryable": false}}

Errors are **structured**: ``code`` is one of the closed taxonomy
:data:`ERROR_CODES` — ``bad_request`` (malformed line/field/name; fix
the request), ``timeout`` (the request's ``timeout_ms`` budget expired
in queue or mid-solve), ``overloaded`` (shed at admission because the
target shard's queue was full; safe to retry after backoff),
``shutdown`` (the service stopped before the request ran; safe to
retry elsewhere), ``internal`` (unexpected server-side failure; the
message is generic — details go to server logs, never the wire).
``retryable`` says whether resubmitting the identical request can
succeed: true for ``overloaded``/``shutdown``, false otherwise.

``timeout_ms`` (optional positive int) gives a request a deadline: the
clock starts at admission and keeps running while the request waits in
its shard's queue, and an in-flight solve is cooperatively cancelled at
the next dual-test probe boundary once the budget is spent.

A full solve result carries the certificate plus the schedule as the
columnar row projection (:meth:`repro.core.schedule.Schedule.rows` —
parallel arrays at one common ``scale``); a bounds-only result carries
the same certificate fields with ``makespan_bound`` instead.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Union

from ..algos.api import SolveResult
from ..algos.batch_api import BatchItem, SweepPoint, _validate_request
from ..core.bounds import Variant
from ..core.errors import InvalidInstanceError
from ..core.instance import Instance

__all__ = [
    "ERROR_CODES",
    "METRICS_FORMATS",
    "ProtocolError",
    "ServiceError",
    "SolveRequest",
    "encode_time",
    "parse_time",
    "instance_to_obj",
    "instance_from_obj",
    "request_from_obj",
    "result_to_obj",
    "response_line",
    "error_line",
    "metrics_line",
]


class ProtocolError(ValueError):
    """A malformed request line / field (reported, never fatal)."""


# --------------------------------------------------------------------------- #
# the error taxonomy
# --------------------------------------------------------------------------- #

#: The closed set of wire error codes, mapped to whether resubmitting the
#: identical request can succeed (the default ``retryable`` per code).
ERROR_CODES = {
    "bad_request": False,   # the request itself is wrong; retrying can't help
    "timeout": False,       # the same budget would expire the same way
    "overloaded": True,     # shed at admission; retry after backoff
    "shutdown": True,       # never ran; retry against a live replica
    "internal": False,      # server-side failure; details in server logs
}


class ServiceError(Exception):
    """One structured service failure: ``{code, message, retryable}``.

    The only error shape the service puts on the wire (and the only
    exception :meth:`SolveService.submit` raises for request-level
    failures).  ``code`` must be in :data:`ERROR_CODES`; ``retryable``
    defaults per code and says whether the *identical* request can be
    resubmitted with hope of success.
    """

    def __init__(self, code: str, message: str, retryable: Optional[bool] = None):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}; expected one of "
                             f"{sorted(ERROR_CODES)}")
        self.code = code
        self.message = message
        self.retryable = ERROR_CODES[code] if retryable is None else bool(retryable)
        super().__init__(f"[{code}] {message}")

    def to_obj(self) -> dict:
        return {"code": self.code, "message": self.message,
                "retryable": self.retryable}

    # Terse constructors: keep call sites at one line per failure mode.
    @classmethod
    def bad_request(cls, message: str) -> "ServiceError":
        return cls("bad_request", message)

    @classmethod
    def timeout(cls, message: str = "request deadline exceeded") -> "ServiceError":
        return cls("timeout", message)

    @classmethod
    def overloaded(cls, message: str = "shard queue full, request shed") -> "ServiceError":
        return cls("overloaded", message)

    @classmethod
    def shutdown(cls, message: str = "service shut down before the request "
                 "was processed") -> "ServiceError":
        return cls("shutdown", message)

    @classmethod
    def internal(cls, message: str = "internal error") -> "ServiceError":
        return cls("internal", message)


# --------------------------------------------------------------------------- #
# scalars
# --------------------------------------------------------------------------- #


def encode_time(value):
    """An exact rational as JSON: plain int, or ``[num, den]``."""
    f = Fraction(value)
    if f.denominator == 1:
        return int(f)
    return [f.numerator, f.denominator]


def parse_time(value, what: str = "time") -> Fraction:
    """Inverse of :func:`encode_time`; floats are rejected loudly."""
    if isinstance(value, bool):
        raise ProtocolError(f"{what} must be an int or [num, den], got {value!r}")
    if isinstance(value, int):
        return Fraction(value)
    if (
        isinstance(value, (list, tuple))
        and len(value) == 2
        and all(isinstance(v, int) and not isinstance(v, bool) for v in value)
    ):
        num, den = value
        if den <= 0:
            raise ProtocolError(f"{what} denominator must be positive, got {den}")
        return Fraction(num, den)
    raise ProtocolError(
        f"{what} must be an exact int or [numerator, denominator] pair "
        f"(floats are not accepted), got {value!r}"
    )


def _int_list(value, what: str) -> list[int]:
    if not isinstance(value, list) or any(
        not isinstance(v, int) or isinstance(v, bool) for v in value
    ):
        raise ProtocolError(f"{what} must be a list of ints, got {value!r}")
    return value


# --------------------------------------------------------------------------- #
# instances
# --------------------------------------------------------------------------- #


def instance_to_obj(instance: Instance) -> dict:
    return {
        "m": instance.m,
        "setups": list(instance.setups),
        "jobs": [list(ts) for ts in instance.jobs],
    }


def instance_from_obj(obj) -> Instance:
    if not isinstance(obj, dict):
        raise ProtocolError(f"instance must be an object, got {obj!r}")
    m = obj.get("m")
    if not isinstance(m, int) or isinstance(m, bool):
        raise ProtocolError(f"instance.m must be an int, got {m!r}")
    setups = _int_list(obj.get("setups"), "instance.setups")
    jobs_obj = obj.get("jobs")
    if not isinstance(jobs_obj, list):
        raise ProtocolError(f"instance.jobs must be a list of lists, got {jobs_obj!r}")
    jobs = [_int_list(ts, f"instance.jobs[{i}]") for i, ts in enumerate(jobs_obj)]
    try:
        return Instance(m=m, setups=tuple(setups), jobs=tuple(map(tuple, jobs)))
    except InvalidInstanceError as exc:
        raise ProtocolError(f"invalid instance: {exc}") from None


# --------------------------------------------------------------------------- #
# requests
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class SolveRequest:
    """One validated service request (the in-process submit unit).

    ``schedules=False`` is the bounds-only mode; ``ms`` makes the request
    a machine sweep.  ``id`` is the caller's correlation value, echoed on
    the response line (``None`` for in-process use).  ``timeout_ms``
    (optional) is the request's total deadline budget — queue wait plus
    solve time; an expired request resolves as a structured ``timeout``
    error instead of an answer.
    """

    instance: Instance
    variant: Variant = Variant.NONPREEMPTIVE
    algorithm: str = "three_halves"
    eps: Fraction = field(default_factory=lambda: Fraction(1, 100))
    schedules: bool = True
    ms: Optional[tuple[int, ...]] = None
    id: object = None
    timeout_ms: Optional[int] = None

    def to_item(self) -> BatchItem:
        """The :func:`~repro.algos.batch_api.solve_batch` work unit."""
        return BatchItem(
            instance=self.instance,
            variant=self.variant,
            algorithm=self.algorithm,
            eps=self.eps,
            schedules=self.schedules,
            ms=self.ms,
        )


def request_from_obj(obj) -> SolveRequest:
    """Parse and validate one ``op: solve`` request object.

    Everything checked here raises :class:`ProtocolError` (malformed
    JSON shapes) or ``ValueError`` (bad variant/algorithm names, via the
    batch engine's up-front validation) before any solving starts.
    """
    if not isinstance(obj, dict):
        raise ProtocolError(f"request must be a JSON object, got {obj!r}")
    unknown = set(obj) - {
        "id", "op", "instance", "variant", "algorithm", "eps",
        "schedules", "bounds_only", "ms", "timeout_ms",
    }
    if unknown:
        raise ProtocolError(f"unknown request fields: {sorted(unknown)}")
    if "instance" not in obj:
        raise ProtocolError("solve request needs an 'instance' field")
    instance = instance_from_obj(obj["instance"])

    schedules = obj.get("schedules")
    bounds_only = obj.get("bounds_only")
    for name, flag in (("schedules", schedules), ("bounds_only", bounds_only)):
        if flag is not None and not isinstance(flag, bool):
            raise ProtocolError(f"{name} must be a boolean, got {flag!r}")
    if schedules is None:
        schedules = not bool(bounds_only)
    elif bounds_only is not None and bounds_only == schedules:
        raise ProtocolError(
            f"contradictory flags: schedules={schedules} with bounds_only={bounds_only}"
        )

    ms = obj.get("ms")
    if ms is not None:
        ms = tuple(_int_list(ms, "ms"))
        if not ms or any(m < 1 for m in ms):
            raise ProtocolError(f"ms must be a non-empty list of positive ints, got {list(ms)}")

    eps = obj.get("eps")
    eps = Fraction(1, 100) if eps is None else parse_time(eps, "eps")
    if eps <= 0:
        raise ProtocolError(f"eps must be positive, got {eps}")

    timeout_ms = obj.get("timeout_ms")
    if timeout_ms is not None and (
        not isinstance(timeout_ms, int) or isinstance(timeout_ms, bool)
        or timeout_ms < 1
    ):
        raise ProtocolError(
            f"timeout_ms must be a positive int (milliseconds), got {timeout_ms!r}"
        )

    algorithm = obj.get("algorithm", "three_halves")
    variant = _validate_request(
        obj.get("variant", Variant.NONPREEMPTIVE), algorithm, schedules
    )
    return SolveRequest(
        instance=instance, variant=variant, algorithm=algorithm, eps=eps,
        schedules=schedules, ms=ms, id=obj.get("id"), timeout_ms=timeout_ms,
    )


# --------------------------------------------------------------------------- #
# results
# --------------------------------------------------------------------------- #


def _schedule_obj(schedule) -> dict:
    rows = schedule.rows()
    return {
        "scale": int(rows.scale),
        "machine": [int(v) for v in rows.machine],
        "start_num": [int(v) for v in rows.start_num],
        "length_num": [int(v) for v in rows.length_num],
        "cls": [int(v) for v in rows.cls],
        "job_idx": [int(v) for v in rows.job_idx],
    }


def result_to_obj(result):
    """One solve outcome as JSON: ``SolveResult``/``SweepPoint``/sweep list."""
    if isinstance(result, list):
        return [result_to_obj(r) for r in result]
    if isinstance(result, SweepPoint):
        return {
            "kind": "bounds",
            "m": result.m,
            "variant": result.variant.value,
            "algorithm": result.algorithm,
            "T": encode_time(result.T),
            "ratio_bound": encode_time(result.ratio_bound),
            "opt_lower_bound": encode_time(result.opt_lower_bound),
            "makespan_bound": encode_time(result.makespan_bound),
            "accept_calls": result.accept_calls,
        }
    if isinstance(result, SolveResult):
        return {
            "kind": "solve",
            "m": result.schedule.instance.m,
            "variant": result.variant.value,
            "algorithm": result.algorithm,
            "T": encode_time(result.T),
            "ratio_bound": encode_time(result.ratio_bound),
            "opt_lower_bound": encode_time(result.opt_lower_bound),
            "makespan": encode_time(result.makespan),
            "schedule": _schedule_obj(result.schedule),
        }
    raise TypeError(f"unexpected result type {type(result).__name__}")  # pragma: no cover


def response_line(request_id, results) -> str:
    """The success line for one request (``results`` is always a list)."""
    if not isinstance(results, list):
        results = [results]
    payload = {"id": request_id, "ok": True, "results": [result_to_obj(r) for r in results]}
    return json.dumps(payload, separators=(",", ":"))


def error_line(request_id, error: Union["ServiceError", str]) -> str:
    """The failure line for one request (always the structured shape).

    Accepts a :class:`ServiceError` or, as a convenience, a bare string
    (encoded as a non-retryable ``internal`` error) so ad-hoc callers
    cannot reintroduce free-form wire errors.
    """
    if not isinstance(error, ServiceError):
        error = ServiceError.internal(str(error))
    return json.dumps(
        {"id": request_id, "ok": False, "error": error.to_obj()},
        separators=(",", ":"),
    )


#: Exposition formats the ``{"op": "metrics"}`` request accepts.
METRICS_FORMATS = ("json", "prometheus")


def metrics_line(request_id, metrics_obj: dict, fmt: str = "json") -> str:
    """The response line for one ``{"op": "metrics"}`` request.

    ``fmt="json"`` carries the all-int mergeable snapshot verbatim
    (``"metrics"`` key) — exact over the wire, re-mergeable by an
    aggregator.  ``fmt="prometheus"`` carries the Prometheus text
    exposition of the same snapshot as one string (``"metrics_text"``),
    for scrapers that want the standard format.
    """
    from ..obs.metrics import render_prometheus

    if fmt not in METRICS_FORMATS:
        raise ProtocolError(
            f"metrics format must be one of {list(METRICS_FORMATS)}, got {fmt!r}"
        )
    if fmt == "prometheus":
        payload = {"id": request_id, "ok": True,
                   "metrics_text": render_prometheus(metrics_obj)}
    else:
        payload = {"id": request_id, "ok": True, "metrics": metrics_obj}
    return json.dumps(payload, separators=(",", ":"))
