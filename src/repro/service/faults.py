"""Deterministic fault injection for the service layer.

The robustness machinery of :mod:`repro.service` — shard supervision,
deadlines, shedding, structured errors — is only trustworthy if it can
be *driven*: every failure path needs a way to fire on demand, in a
test, deterministically.  A :class:`FaultPlan` is that driver: a fixed,
seeded list of fault specs consumed by the shard workers (via two narrow
hooks) and by the chaos harness (for client-side faults).

The four injection points mirror the real-world failure modes the
supervisor must survive:

* :class:`KillWorker` — raise :class:`WorkerKilled` (a ``BaseException``,
  so it sails past the shard's per-item ``except Exception`` isolation)
  at the start of a shard's N-th micro-batch dispatch: the worker thread
  dies exactly the way an un-catchable defect would.
* :class:`DelaySolve` — sleep inside ``solve_batch`` just before an
  item's solve: an artificially slow request, used to push work past its
  ``timeout_ms`` deadline while it is *in flight*.
* :class:`RaiseInBatch` — raise a ``RuntimeError`` inside
  ``solve_batch``: an unexpected per-request failure, exercising the
  micro-batch isolation fallback and the ``internal`` error path.
* :class:`DropConnection` — a **client-side** fault: the chaos harness
  closes its connection after sending N requests mid-burst.  The plan
  only carries the spec (:meth:`FaultPlan.drop_connection_after`); the
  server side must simply survive it.

Counters are kept **per shard** (requests route to shards by instance
fingerprint, which is deterministic), so a plan fires at the same
points on every run of the same request sequence.  ``seed`` feeds the
:meth:`FaultPlan.preset` builders, which derive their thresholds from a
``random.Random(seed)`` — the fixed plan set the chaos bench runs under.

Plans round-trip through JSON (:meth:`to_obj` / :meth:`from_obj`) so
``python -m repro.service --faults '<json>'`` can arm a subprocess.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

__all__ = [
    "DelaySolve",
    "DropConnection",
    "FaultPlan",
    "KillWorker",
    "RaiseInBatch",
    "WorkerKilled",
]


class WorkerKilled(BaseException):
    """The injected worker-thread death (intentionally not an Exception).

    Deriving from ``BaseException`` is the point: the shard's dispatch
    loop isolates per-request failures with ``except Exception``, so an
    injected kill must not be catchable there — it has to unwind the
    whole worker thread and trigger the supervisor, exactly like a
    genuine un-catchable defect would.
    """


@dataclass(frozen=True)
class KillWorker:
    """Kill a shard worker at the start of its ``after_batches+1``-th dispatch."""

    shard: Optional[int] = None   # None: fires on whichever shard gets there
    after_batches: int = 1
    times: int = 1


@dataclass(frozen=True)
class DelaySolve:
    """Sleep ``seconds`` before solving a shard's ``after_items+1``-th item."""

    seconds: float = 0.2
    shard: Optional[int] = None
    after_items: int = 0
    times: int = 1


@dataclass(frozen=True)
class RaiseInBatch:
    """Raise inside ``solve_batch`` before a shard's ``after_items+1``-th item."""

    shard: Optional[int] = None
    after_items: int = 0
    times: int = 1
    message: str = "injected solve failure"


@dataclass(frozen=True)
class DropConnection:
    """Client-side: the harness drops its connection after N requests."""

    after_requests: int = 8


_KINDS = {
    "kill_worker": KillWorker,
    "delay_solve": DelaySolve,
    "raise_in_batch": RaiseInBatch,
    "drop_connection": DropConnection,
}
_KIND_OF = {cls: kind for kind, cls in _KINDS.items()}


class FaultPlan:
    """A fixed, seeded set of faults with deterministic firing state.

    One plan instance is shared by every shard of one service (hook
    calls are serialized under an internal lock); ``fired`` exposes how
    often each kind actually fired, so tests and the chaos bench can
    assert the plan was exercised, and stats can be reconciled against
    injected damage.
    """

    def __init__(self, faults: Sequence = (), seed: int = 0) -> None:
        for fault in faults:
            if type(fault) not in _KIND_OF:
                raise ValueError(f"unknown fault spec {fault!r}")
        self.faults = tuple(faults)
        self.seed = seed
        self._lock = threading.Lock()
        self._remaining = [
            getattr(fault, "times", 0) for fault in self.faults
        ]
        self._batches: dict[int, int] = {}   # shard -> dispatches started
        self._items: dict[int, int] = {}     # shard -> items reached
        self.fired: dict[str, int] = {kind: 0 for kind in _KINDS}

    # ------------------------------------------------------------------ #
    # worker-side hooks (called from shard threads)
    # ------------------------------------------------------------------ #

    def on_batch_start(self, shard: int) -> None:
        """Hook: a shard is about to dispatch a micro-batch.  May kill it."""
        with self._lock:
            count = self._batches.get(shard, 0) + 1
            self._batches[shard] = count
            for idx, fault in enumerate(self.faults):
                if (
                    isinstance(fault, KillWorker)
                    and (fault.shard is None or fault.shard == shard)
                    and count > fault.after_batches
                    and self._remaining[idx] > 0
                ):
                    self._remaining[idx] -= 1
                    self.fired["kill_worker"] += 1
                    raise WorkerKilled(
                        f"injected kill: shard {shard}, batch {count}"
                    )

    def on_item(self, shard: int, item) -> None:
        """Hook: a shard is about to solve one batch item (via ``before_solve``)."""
        delays: list[DelaySolve] = []
        raises: list[RaiseInBatch] = []
        with self._lock:
            count = self._items.get(shard, 0) + 1
            self._items[shard] = count
            for idx, fault in enumerate(self.faults):
                if self._remaining[idx] <= 0:
                    continue
                if isinstance(fault, DelaySolve) and (
                    fault.shard is None or fault.shard == shard
                ) and count > fault.after_items:
                    self._remaining[idx] -= 1
                    self.fired["delay_solve"] += 1
                    delays.append(fault)
                elif isinstance(fault, RaiseInBatch) and (
                    fault.shard is None or fault.shard == shard
                ) and count > fault.after_items:
                    self._remaining[idx] -= 1
                    self.fired["raise_in_batch"] += 1
                    raises.append(fault)
        for fault in delays:          # sleep outside the lock
            time.sleep(fault.seconds)
        if raises:
            raise RuntimeError(raises[0].message)

    def item_hook(self, shard: int) -> Callable:
        """The ``before_solve`` callable a shard passes to ``solve_batch``."""
        return lambda item: self.on_item(shard, item)

    # ------------------------------------------------------------------ #
    # client-side spec (consumed by the chaos harness, not the server)
    # ------------------------------------------------------------------ #

    def drop_connection_after(self) -> Optional[int]:
        """Requests to send before dropping the connection (None: don't)."""
        for fault in self.faults:
            if isinstance(fault, DropConnection):
                return fault.after_requests
        return None

    # ------------------------------------------------------------------ #
    # JSON round-trip (the ``--faults`` CLI flag)
    # ------------------------------------------------------------------ #

    def to_obj(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [
                {"kind": _KIND_OF[type(fault)], **fault.__dict__}
                for fault in self.faults
            ],
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "FaultPlan":
        if not isinstance(obj, dict) or not isinstance(obj.get("faults"), list):
            raise ValueError(f"fault plan must be {{seed, faults: [...]}}, got {obj!r}")
        faults = []
        for spec in obj["faults"]:
            kind = spec.get("kind")
            if kind not in _KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; expected one of {sorted(_KINDS)}"
                )
            fields = {k: v for k, v in spec.items() if k != "kind"}
            try:
                faults.append(_KINDS[kind](**fields))
            except TypeError as exc:
                raise ValueError(f"bad fields for fault {kind!r}: {exc}") from None
        return cls(faults, seed=obj.get("seed", 0))

    # ------------------------------------------------------------------ #
    # the fixed chaos-bench plan set
    # ------------------------------------------------------------------ #

    PRESETS = ("kill", "delay", "raise", "drop")

    @classmethod
    def preset(cls, name: str, seed: int = 0) -> "FaultPlan":
        """One of the fixed chaos scenarios, thresholds derived from ``seed``.

        ``kill``  — kill shard 0 early, then again (restart supervision);
        ``delay`` — slow two solves well past a short deadline;
        ``raise`` — three injected in-batch failures (isolation fallback);
        ``drop``  — client vanishes mid-burst.
        """
        rng = random.Random(seed)
        if name == "kill":
            faults: tuple = (
                KillWorker(shard=0, after_batches=rng.randint(1, 3)),
                KillWorker(shard=0, after_batches=rng.randint(4, 6)),
            )
        elif name == "delay":
            faults = (
                DelaySolve(seconds=0.25, after_items=rng.randint(0, 3), times=2),
            )
        elif name == "raise":
            faults = (
                RaiseInBatch(after_items=rng.randint(0, 3), times=3),
            )
        elif name == "drop":
            faults = (DropConnection(after_requests=rng.randint(6, 12)),)
        else:
            raise ValueError(
                f"unknown preset {name!r}; expected one of {cls.PRESETS}"
            )
        return cls(faults, seed=seed)
