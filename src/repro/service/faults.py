"""Deterministic fault injection for the service layer.

The robustness machinery of :mod:`repro.service` — shard supervision,
deadlines, shedding, structured errors — is only trustworthy if it can
be *driven*: every failure path needs a way to fire on demand, in a
test, deterministically.  A :class:`FaultPlan` is that driver: a fixed,
seeded list of fault specs consumed by the shard workers (via two narrow
hooks) and by the chaos harness (for client-side faults).

The four injection points mirror the real-world failure modes the
supervisor must survive:

* :class:`KillWorker` — raise :class:`WorkerKilled` (a ``BaseException``,
  so it sails past the shard's per-item ``except Exception`` isolation)
  at the start of a shard's N-th micro-batch dispatch: the worker thread
  dies exactly the way an un-catchable defect would.
* :class:`DelaySolve` — sleep inside ``solve_batch`` just before an
  item's solve: an artificially slow request, used to push work past its
  ``timeout_ms`` deadline while it is *in flight*.
* :class:`RaiseInBatch` — raise a ``RuntimeError`` inside
  ``solve_batch``: an unexpected per-request failure, exercising the
  micro-batch isolation fallback and the ``internal`` error path.
* :class:`WedgeSolve` — a **busy loop** before an item's solve that
  ignores cooperative cancellation entirely (no probe boundaries, no
  token checks): the non-cooperative hang a ``timeout_ms`` deadline
  cannot interrupt.  The two worker backends differ by construction
  here, and both behaviors are asserted in ``tests/test_service_faults``:
  a **thread** backend cannot preempt the wedge — it can only shed the
  wedged request at shutdown (``close()`` resolves the future with a
  ``shutdown`` error while the loop runs on in the daemon thread) —
  while a **process** backend SIGKILLs the wedged child once the batch
  deadline plus ``hard_kill_grace_ms`` passes and resolves the request
  with a ``timeout`` error.
* :class:`SigKill` — a **process-targeted** fault: the parent-side
  supervisor SIGKILLs a shard's live child immediately after handing it
  a micro-batch, simulating a segfault/OOM mid-solve.  Meaningful only
  under ``workers="process"`` (a thread backend has no process to
  kill); adjudicated by the supervisor via :meth:`FaultPlan.sigkill_now`
  so a restarted child never resets the firing state.
* :class:`DropConnection` — a **client-side** fault: the chaos harness
  closes its connection after sending N requests mid-burst.  The plan
  only carries the spec (:meth:`FaultPlan.drop_connection_after`); the
  server side must simply survive it.

Under the process backend **every** firing decision is made by the
parent supervisor against the single authoritative plan: batch-level
kills via :meth:`FaultPlan.on_batch_start` / :meth:`FaultPlan.sigkill_now`,
and item-level faults via :meth:`FaultPlan.item_directives`, whose
mechanical outcome (sleep / busy-spin / raise) ships over the pipe for
the child to execute (:func:`execute_directive`).  Arming children with
their own plan copy would be wrong twice over: a freshly restarted
child would re-fire already-consumed faults from reset state (burning
the restart budget, or re-wedging on the recovery request), and
``fired`` counts would be invisible to the parent the tests assert on.

Counters are kept **per shard** (requests route to shards by instance
fingerprint, which is deterministic), so a plan fires at the same
points on every run of the same request sequence.  ``seed`` feeds the
:meth:`FaultPlan.preset` builders, which derive their thresholds from a
``random.Random(seed)`` — the fixed plan set the chaos bench runs under.

Plans round-trip through JSON (:meth:`to_obj` / :meth:`from_obj`) so
``python -m repro.service --faults '<json>'`` can arm a subprocess.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

__all__ = [
    "DelaySolve",
    "DropConnection",
    "FaultPlan",
    "KillWorker",
    "RaiseInBatch",
    "SigKill",
    "WedgeSolve",
    "WorkerKilled",
    "execute_directive",
]


def execute_directive(directive: Optional[dict], *,
                      clock: Callable[[], float] = time.monotonic,
                      sleep: Callable[[float], None] = time.sleep) -> None:
    """Execute one item directive from :meth:`FaultPlan.item_directives`.

    Runs wherever the item is actually solved: in the shard thread
    (thread backend, via :meth:`FaultPlan.on_item`) or in the child
    process (process backend, directive shipped inside the batch frame).
    Order matters and mirrors the historical hook: sleep the delays,
    spin the wedges, then raise.

    ``clock`` and ``sleep`` are injectable (the same pattern as
    :class:`repro.core.cancel.CancelToken` and
    :class:`repro.obs.trace.TraceScope`) so tests can drive the wedge's
    busy-wait and the delay deterministically without wall-clock waits.
    """
    if not directive:
        return
    for seconds in directive.get("delays", ()):
        sleep(seconds)
    for seconds in directive.get("wedges", ()):
        # Busy-wait, never sleep, never check a token: the point is
        # a hang cooperative cancellation cannot reach.
        end = clock() + seconds
        while clock() < end:
            pass
    message = directive.get("raise")
    if message is not None:
        raise RuntimeError(message)


class WorkerKilled(BaseException):
    """The injected worker-thread death (intentionally not an Exception).

    Deriving from ``BaseException`` is the point: the shard's dispatch
    loop isolates per-request failures with ``except Exception``, so an
    injected kill must not be catchable there — it has to unwind the
    whole worker thread and trigger the supervisor, exactly like a
    genuine un-catchable defect would.
    """


@dataclass(frozen=True)
class KillWorker:
    """Kill a shard worker at the start of its ``after_batches+1``-th dispatch."""

    shard: Optional[int] = None   # None: fires on whichever shard gets there
    after_batches: int = 1
    times: int = 1


@dataclass(frozen=True)
class DelaySolve:
    """Sleep ``seconds`` before solving a shard's ``after_items+1``-th item."""

    seconds: float = 0.2
    shard: Optional[int] = None
    after_items: int = 0
    times: int = 1


@dataclass(frozen=True)
class RaiseInBatch:
    """Raise inside ``solve_batch`` before a shard's ``after_items+1``-th item."""

    shard: Optional[int] = None
    after_items: int = 0
    times: int = 1
    message: str = "injected solve failure"


@dataclass(frozen=True)
class WedgeSolve:
    """Busy-loop ``seconds`` before a shard's ``after_items+1``-th item.

    Unlike :class:`DelaySolve` (a plain sleep a thread scheduler can
    work around), the wedge spins without ever checking a cancel token
    — the worker is *gone* for the duration as far as cooperative
    cancellation is concerned.  See the module docstring for how the
    two backends shed it.
    """

    seconds: float = 2.0
    shard: Optional[int] = None
    after_items: int = 0
    times: int = 1


@dataclass(frozen=True)
class SigKill:
    """SIGKILL a shard's child right after its ``after_batches+1``-th dispatch.

    Process backend only; adjudicated parent-side
    (:meth:`FaultPlan.sigkill_now`) so the in-flight micro-batch is
    already in the child when the kill lands — the crash-containment
    path, not the pre-dispatch :class:`KillWorker` path.
    """

    shard: Optional[int] = None
    after_batches: int = 1
    times: int = 1


@dataclass(frozen=True)
class DropConnection:
    """Client-side: the harness drops its connection after N requests."""

    after_requests: int = 8


_KINDS = {
    "kill_worker": KillWorker,
    "delay_solve": DelaySolve,
    "raise_in_batch": RaiseInBatch,
    "wedge_solve": WedgeSolve,
    "sigkill": SigKill,
    "drop_connection": DropConnection,
}
_KIND_OF = {cls: kind for kind, cls in _KINDS.items()}


class FaultPlan:
    """A fixed, seeded set of faults with deterministic firing state.

    One plan instance is shared by every shard of one service (hook
    calls are serialized under an internal lock); ``fired`` exposes how
    often each kind actually fired, so tests and the chaos bench can
    assert the plan was exercised, and stats can be reconciled against
    injected damage.
    """

    def __init__(self, faults: Sequence = (), seed: int = 0) -> None:
        for fault in faults:
            if type(fault) not in _KIND_OF:
                raise ValueError(f"unknown fault spec {fault!r}")
        self.faults = tuple(faults)
        self.seed = seed
        self._lock = threading.Lock()
        self._remaining = [
            getattr(fault, "times", 0) for fault in self.faults
        ]
        self._batches: dict[int, int] = {}   # shard -> dispatches started
        self._items: dict[int, int] = {}     # shard -> items reached
        self.fired: dict[str, int] = {kind: 0 for kind in _KINDS}

    # ------------------------------------------------------------------ #
    # worker-side hooks (called from shard threads)
    # ------------------------------------------------------------------ #

    def on_batch_start(self, shard: int) -> None:
        """Hook: a shard is about to dispatch a micro-batch.  May kill it."""
        with self._lock:
            count = self._batches.get(shard, 0) + 1
            self._batches[shard] = count
            for idx, fault in enumerate(self.faults):
                if (
                    isinstance(fault, KillWorker)
                    and (fault.shard is None or fault.shard == shard)
                    and count > fault.after_batches
                    and self._remaining[idx] > 0
                ):
                    self._remaining[idx] -= 1
                    self.fired["kill_worker"] += 1
                    raise WorkerKilled(
                        f"injected kill: shard {shard}, batch {count}"
                    )

    def item_directives(self, shard: int) -> Optional[dict]:
        """Consume firing state for one item; return what should happen.

        Counts one item reached on ``shard`` and returns the mechanical
        directive ``{"delays": [s, ...], "wedges": [s, ...], "raise":
        msg | None}`` — or ``None`` when nothing fires.  This is the
        decide-without-execute half of :meth:`on_item`: the process
        backend calls it in the *parent* (the single authoritative plan
        — a restarted child must never re-fire from reset state) and
        ships the directive across the pipe for the child to execute
        (:func:`execute_directive`).
        """
        delays: list[float] = []
        wedges: list[float] = []
        raise_msg: Optional[str] = None
        with self._lock:
            count = self._items.get(shard, 0) + 1
            self._items[shard] = count
            for idx, fault in enumerate(self.faults):
                if self._remaining[idx] <= 0:
                    continue
                if isinstance(fault, DelaySolve) and (
                    fault.shard is None or fault.shard == shard
                ) and count > fault.after_items:
                    self._remaining[idx] -= 1
                    self.fired["delay_solve"] += 1
                    delays.append(fault.seconds)
                elif isinstance(fault, WedgeSolve) and (
                    fault.shard is None or fault.shard == shard
                ) and count > fault.after_items:
                    self._remaining[idx] -= 1
                    self.fired["wedge_solve"] += 1
                    wedges.append(fault.seconds)
                elif isinstance(fault, RaiseInBatch) and (
                    fault.shard is None or fault.shard == shard
                ) and count > fault.after_items:
                    self._remaining[idx] -= 1
                    self.fired["raise_in_batch"] += 1
                    if raise_msg is None:
                        raise_msg = fault.message
        if not delays and not wedges and raise_msg is None:
            return None
        return {"delays": delays, "wedges": wedges, "raise": raise_msg}

    def on_item(self, shard: int, item) -> None:
        """Hook: a shard is about to solve one batch item (via ``before_solve``)."""
        execute_directive(self.item_directives(shard))

    def item_hook(self, shard: int) -> Callable:
        """The ``before_solve`` callable a shard passes to ``solve_batch``."""
        return lambda item: self.on_item(shard, item)

    def sigkill_now(self, shard: int) -> bool:
        """Hook: should the supervisor SIGKILL ``shard``'s child mid-batch?

        Called by the process-shard supervisor right after
        :meth:`on_batch_start` for the same dispatch (the batch count it
        reads is the one that call just recorded).  Parent-side by
        design: the parent holds the single authoritative plan, so a
        restarted child cannot reset the firing state.
        """
        with self._lock:
            count = self._batches.get(shard, 0)
            for idx, fault in enumerate(self.faults):
                if (
                    isinstance(fault, SigKill)
                    and (fault.shard is None or fault.shard == shard)
                    and count > fault.after_batches
                    and self._remaining[idx] > 0
                ):
                    self._remaining[idx] -= 1
                    self.fired["sigkill"] += 1
                    return True
        return False

    # ------------------------------------------------------------------ #
    # client-side spec (consumed by the chaos harness, not the server)
    # ------------------------------------------------------------------ #

    def drop_connection_after(self) -> Optional[int]:
        """Requests to send before dropping the connection (None: don't)."""
        for fault in self.faults:
            if isinstance(fault, DropConnection):
                return fault.after_requests
        return None

    # ------------------------------------------------------------------ #
    # JSON round-trip (the ``--faults`` CLI flag)
    # ------------------------------------------------------------------ #

    def to_obj(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [
                {"kind": _KIND_OF[type(fault)], **fault.__dict__}
                for fault in self.faults
            ],
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "FaultPlan":
        if not isinstance(obj, dict) or not isinstance(obj.get("faults"), list):
            raise ValueError(f"fault plan must be {{seed, faults: [...]}}, got {obj!r}")
        faults = []
        for spec in obj["faults"]:
            kind = spec.get("kind")
            if kind not in _KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; expected one of {sorted(_KINDS)}"
                )
            fields = {k: v for k, v in spec.items() if k != "kind"}
            try:
                faults.append(_KINDS[kind](**fields))
            except TypeError as exc:
                raise ValueError(f"bad fields for fault {kind!r}: {exc}") from None
        return cls(faults, seed=obj.get("seed", 0))

    # ------------------------------------------------------------------ #
    # the fixed chaos-bench plan set
    # ------------------------------------------------------------------ #

    PRESETS = ("kill", "delay", "raise", "drop", "wedge", "sigkill")

    @classmethod
    def preset(cls, name: str, seed: int = 0) -> "FaultPlan":
        """One of the fixed chaos scenarios, thresholds derived from ``seed``.

        ``kill``    — kill shard 0 early, then again (restart supervision);
        ``delay``   — slow two solves well past a short deadline;
        ``raise``   — three injected in-batch failures (isolation fallback);
        ``drop``    — client vanishes mid-burst;
        ``wedge``   — one non-cooperative busy hang (shed at shutdown on
        threads, hard-killed on deadline under processes);
        ``sigkill`` — SIGKILL shard 0's child mid-batch (process backend).
        """
        rng = random.Random(seed)
        if name == "kill":
            faults: tuple = (
                KillWorker(shard=0, after_batches=rng.randint(1, 3)),
                KillWorker(shard=0, after_batches=rng.randint(4, 6)),
            )
        elif name == "delay":
            faults = (
                DelaySolve(seconds=0.25, after_items=rng.randint(0, 3), times=2),
            )
        elif name == "raise":
            faults = (
                RaiseInBatch(after_items=rng.randint(0, 3), times=3),
            )
        elif name == "drop":
            faults = (DropConnection(after_requests=rng.randint(6, 12)),)
        elif name == "wedge":
            faults = (
                WedgeSolve(seconds=1.0, after_items=rng.randint(0, 2)),
            )
        elif name == "sigkill":
            faults = (
                SigKill(shard=0, after_batches=rng.randint(1, 3)),
            )
        else:
            raise ValueError(
                f"unknown preset {name!r}; expected one of {cls.PRESETS}"
            )
        return cls(faults, seed=seed)
