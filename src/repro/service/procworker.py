"""Process shard worker: child main loop, pipe framing, wire codecs.

One process shard (:class:`repro.service.shards.ProcessShard`) owns one
supervised child process running :func:`main` below — spawned as
``python -m repro.service.procworker`` with the shard's knobs on the
command line.  Parent and child speak a length-prefixed binary frame
protocol over the child's stdin/stdout pipes:

* **Frames** are ``uint32 nparts``, then ``nparts`` little-endian
  ``uint64`` part lengths, then the parts.  Part 0 is a pickle
  **protocol 5** payload; the remaining parts are its out-of-band
  :class:`pickle.PickleBuffer` buffers, in ``buffer_callback`` order.
  That is the zero-copy hand-off the columnar backend was built for:
  a result schedule travels as six raw ``int64`` column buffers
  (:meth:`~repro.core.schedule.ScheduleColumns.to_ipc`), not as pickled
  Python objects — with an in-band exact-int fallback for the rare
  big-int overflow rows.
* **Requests** cross as the service's exact-rational wire encoding
  (:func:`~repro.service.protocol.instance_to_obj` /
  :func:`~repro.service.protocol.encode_time`), so a process shard's
  inputs are bit-equal to what a JSON front end would deliver.
  Deadlines cross as ``remaining_ms`` *budgets* computed with the
  parent token's own (injectable) clock — the child re-arms a local
  monotonic token, so parent/child clocks never need to agree on an
  epoch.
* **Liveness** is a heartbeat frame every ``--heartbeat-ms`` from a
  child-side daemon thread.  A busy solve keeps heartbeating (the GIL
  timeslices the beat thread in); only a truly frozen or dead process
  goes silent, which is exactly what the parent supervisor wants to
  distinguish from "slow".

The child mirrors the thread backend's dispatch semantics exactly —
same :func:`~repro.algos.batch_api.solve_batch` call, same per-item
isolation retry, same error taxonomy mapping, its own
:class:`~repro.service.cache.InstanceLRU` under the same bound — so
responses stay bit-identical to the thread backend and to looped
``solve()``.  Stray ``print``\\ s from library code cannot corrupt the
frame stream: the child re-points ``stdout`` at ``stderr`` on startup
and keeps a private duplicate of the real pipe for frames.
"""

from __future__ import annotations

import argparse
import os
import pickle
import struct
import subprocess
import sys
import threading
import time
from queue import Empty, SimpleQueue
from typing import Optional

from ..algos.api import SolveResult
from ..algos.batch_api import BatchItem, SweepPoint, solve_batch
from ..core.bounds import Variant
from ..core.cancel import CancelToken, SolveCancelled
from ..core.schedule import Schedule, ScheduleColumns
from ..obs.metrics import Metrics
from ..obs.trace import TraceScope
from .cache import InstanceLRU
from .faults import execute_directive
from .protocol import (
    ServiceError,
    encode_time,
    instance_from_obj,
    instance_to_obj,
    parse_time,
)

__all__ = ["WorkerProc", "read_frame", "write_frame", "main"]

_HEAD = struct.Struct("<I")
_PLEN = struct.Struct("<Q")
_MAX_PARTS = 1 << 16
_MAX_PART_LEN = 1 << 40
#: Requested OS pipe capacity for the frame streams.  A 16-item result
#: frame tops the 64 KiB Linux default, so with the previous frame still
#: undrained the child's coalesced write *blocks on the parent's read
#: latency* — measured as ~1 ms of dead time per batch on the child's
#: solve thread.  A megabyte of kernel-side slack decouples the two.
_PIPE_CAPACITY = 1 << 20


def _widen_pipe(fileobj) -> None:
    """Best-effort bump of a pipe's kernel buffer (Linux ``F_SETPIPE_SZ``)."""
    try:
        import fcntl

        fcntl.fcntl(fileobj.fileno(), fcntl.F_SETPIPE_SZ, _PIPE_CAPACITY)
    except (ImportError, AttributeError, OSError, ValueError):
        pass  # non-Linux, pipe-max-size cap, or closed fd: the default works


# --------------------------------------------------------------------------- #
# framing
# --------------------------------------------------------------------------- #


#: Frames up to this size are coalesced into one ``write``.  A result
#: frame is ~100 tiny parts (each schedule ships six column buffers);
#: written one by one through a small pipe buffer that is ~100 write
#: syscalls and as many reader wake-ups — measured at ~1ms per batch,
#: serialized with the child's solving.  One join + one write makes it
#: one syscall.  Above the cap, fall back to streaming the parts so a
#: huge frame never doubles its own memory.
_COALESCE_MAX = 4 << 20


def write_frame(stream, obj) -> None:
    """Write one frame: pickle-5 payload + out-of-band buffers."""
    buffers: list[pickle.PickleBuffer] = []
    payload = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    parts: list = [payload]
    parts.extend(buf.raw() for buf in buffers)  # raw(): flat B-format views
    head = [_HEAD.pack(len(parts))]
    head.extend(_PLEN.pack(len(part)) for part in parts)
    if sum(len(part) for part in parts) <= _COALESCE_MAX:
        stream.write(b"".join(head + parts))
    else:  # pragma: no cover - only multi-megabyte frames
        stream.write(b"".join(head))
        for part in parts:
            stream.write(part)
    stream.flush()


def _read_exact(stream, n: int) -> Optional[bytes]:
    """Exactly ``n`` bytes; None at a clean boundary, EOFError mid-read."""
    chunks = []
    while n:
        block = stream.read(n)
        if not block:
            if not chunks:
                return None
            raise EOFError("stream truncated mid-read")
        chunks.append(block)
        n -= len(block)
    return b"".join(chunks)


def read_frame(stream):
    """Read one frame; ``None`` on clean EOF, :class:`EOFError` mid-frame."""
    head = _read_exact(stream, _HEAD.size)
    if head is None:
        return None
    (nparts,) = _HEAD.unpack(head)
    if not 1 <= nparts <= _MAX_PARTS:
        raise EOFError(f"corrupt frame header: {nparts} parts")
    lens = []
    for _ in range(nparts):
        raw = _read_exact(stream, _PLEN.size)
        if raw is None:
            raise EOFError("truncated frame (length table)")
        (plen,) = _PLEN.unpack(raw)
        if plen > _MAX_PART_LEN:
            raise EOFError(f"corrupt frame part length: {plen}")
        lens.append(plen)
    parts = []
    for plen in lens:
        data = _read_exact(stream, plen)
        if data is None:
            raise EOFError("truncated frame (payload)")
        parts.append(data)
    return pickle.loads(parts[0], buffers=parts[1:])


# --------------------------------------------------------------------------- #
# wire codecs (items parent -> child, results child -> parent)
# --------------------------------------------------------------------------- #


def work_to_wire(item: BatchItem, token: Optional[CancelToken],
                 directive: Optional[dict] = None, *,
                 slim: bool = False) -> dict:
    """One batch item as wire data (exact-rational request encoding).

    The deadline crosses as a remaining-time *budget* read through the
    token's own clock, so injected test clocks propagate through the
    pipe: the child arms a fresh monotonic token with the same budget.
    ``directive`` is an already-adjudicated item-fault directive
    (:meth:`~repro.service.faults.FaultPlan.item_directives`) the child
    executes mechanically — firing decisions never happen child-side.

    ``slim=True`` omits the instance payload (setups/jobs), keeping only
    the machine count and the fingerprint.  The caller must *prove* the
    child can resolve the fingerprint at decode time — either from its
    LRU or from a payload-carrying item earlier in the same batch (see
    ``ProcessShard._slim_plan``'s shadow-LRU argument).  The payload is
    the dominant per-item pipe cost, so warm traffic crosses in a few
    dozen bytes instead of re-shipping data the child already holds.
    """
    remaining_ms = None
    if token is not None:
        if token.cancelled:
            remaining_ms = 0.0
        else:
            remaining = token.remaining()
            if remaining is not None:
                remaining_ms = remaining * 1000.0
    return {
        "instance": (
            {"m": item.instance.m} if slim else instance_to_obj(item.instance)
        ),
        "slim": slim,
        # The parent's (cached) content fingerprint rides along as a
        # cache key: the pipe is a trusted intra-host boundary, so the
        # child can use it to reuse a warm representative — or to seed
        # its own instance's digest — without re-hashing the payload.
        "fp": item.instance.fingerprint(),
        "variant": item.variant.value,
        "algorithm": item.algorithm,
        "eps": encode_time(item.eps),
        "schedules": item.schedules,
        "ms": list(item.ms) if item.ms is not None else None,
        "remaining_ms": remaining_ms,
        "fault": directive,
    }


def _item_from_wire(obj: dict, lru: Optional[InstanceLRU] = None,
                    local: Optional[dict] = None) -> BatchItem:
    """Rebuild one batch item, skipping decode work a warm cache makes moot.

    When the wire fingerprint is already warm in the child's LRU — or
    was decoded from a payload-carrying item earlier in this batch
    (``local``) — the item reuses that representative through an O(c)
    cache-sharing ``with_machines`` copy — exactly the sharing
    ``solve_batch`` would set up anyway — instead of re-validating and
    re-hashing the payload.  Cold items decode normally and inherit the
    parent's fingerprint, so the blake2b digest is computed once per
    request service-wide (on the parent, which needed it for shard
    routing regardless).  *Slim* items carry no payload at all; the
    parent only sends them when its shadow replay of this LRU proves a
    representative is resolvable, so a slim miss is a protocol bug —
    raised loudly and absorbed by crash containment (retryable errors,
    fresh child, full payloads on retry).
    """
    fp = obj.get("fp")
    instance = None
    if fp is not None:
        rep = lru.peek(fp) if lru is not None else None
        if rep is None and local is not None:
            rep = local.get(fp)
        if rep is not None:
            instance = rep.with_machines(obj["instance"]["m"], share_caches=True)
    if instance is None:
        if obj.get("slim"):
            raise RuntimeError(
                f"slim wire item without a warm representative for {fp!r} "
                "(parent shadow-LRU desync)"
            )
        instance = instance_from_obj(obj["instance"])
        if fp is not None:
            instance._misc_cache["fingerprint"] = fp
            if local is not None:
                local[fp] = instance
    return BatchItem(
        instance=instance,
        variant=Variant(obj["variant"]),
        algorithm=obj["algorithm"],
        eps=parse_time(obj["eps"], "eps"),
        schedules=obj["schedules"],
        ms=tuple(obj["ms"]) if obj["ms"] is not None else None,
    )


def _token_from_wire(obj: dict) -> Optional[CancelToken]:
    remaining_ms = obj.get("remaining_ms")
    if remaining_ms is None:
        return None
    return CancelToken.after(remaining_ms / 1000.0)


def result_to_wire(result) -> dict:
    """One solve outcome as wire data (child side).

    Certificates use the exact-rational encoding; schedules leave as
    columnar IPC payloads whose int64 buffers the protocol-5 pickler
    ships out-of-band.
    """
    if isinstance(result, list):  # an ms sweep
        return {"kind": "list", "results": [result_to_wire(r) for r in result]}
    if isinstance(result, SweepPoint):
        return {
            "kind": "bounds",
            "m": result.m,
            "variant": result.variant.value,
            "algorithm": result.algorithm,
            "T": encode_time(result.T),
            "ratio_bound": encode_time(result.ratio_bound),
            "opt_lower_bound": encode_time(result.opt_lower_bound),
            "accept_calls": result.accept_calls,
        }
    if isinstance(result, SolveResult):
        sched = result.schedule
        cols = sched.columns()
        if cols is None:  # thawed (identity-level repairs): re-encode
            cols = ScheduleColumns.from_placements(sched.iter_all())
        return {
            "kind": "solve",
            "m": sched.instance.m,
            "variant": result.variant.value,
            "algorithm": result.algorithm,
            "T": encode_time(result.T),
            "ratio_bound": encode_time(result.ratio_bound),
            "opt_lower_bound": encode_time(result.opt_lower_bound),
            "schedule": cols.to_ipc(),
        }
    raise TypeError(f"unexpected solve result type: {type(result)!r}")


def result_from_wire(obj: dict, base_instance):
    """Inverse of :func:`result_to_wire` (parent side).

    ``base_instance`` is the parent's own instance for the request —
    the rebuilt schedule hangs off it (or a ``with_machines`` sibling
    for sweep entries), never off anything unpickled.
    """
    kind = obj["kind"]
    if kind == "list":
        return [result_from_wire(r, base_instance) for r in obj["results"]]
    variant = Variant(obj["variant"])
    T = parse_time(obj["T"], "T")
    ratio_bound = parse_time(obj["ratio_bound"], "ratio_bound")
    opt_lower_bound = parse_time(obj["opt_lower_bound"], "opt_lower_bound")
    if kind == "bounds":
        return SweepPoint(
            m=obj["m"],
            variant=variant,
            algorithm=obj["algorithm"],
            T=T,
            ratio_bound=ratio_bound,
            opt_lower_bound=opt_lower_bound,
            accept_calls=obj["accept_calls"],
        )
    if kind != "solve":
        raise ValueError(f"unknown result kind {kind!r}")
    cols = ScheduleColumns.from_ipc(obj["schedule"])
    m = obj["m"]
    instance = base_instance
    if instance.m != m:
        instance = instance.with_machines(m)
    return SolveResult(
        schedule=Schedule.from_columns(instance, cols),
        variant=variant,
        algorithm=obj["algorithm"],
        T=T,
        ratio_bound=ratio_bound,
        opt_lower_bound=opt_lower_bound,
    )


# --------------------------------------------------------------------------- #
# child side
# --------------------------------------------------------------------------- #


def _error_outcome(exc: Exception) -> tuple:
    """Map one request's failure onto the wire taxonomy (child side).

    The same mapping as ``Shard._request_error``; the parent re-raises
    the tuple as a :class:`ServiceError` and owns the timeout counters.
    """
    if isinstance(exc, SolveCancelled):
        return ("err", "timeout", "request deadline exceeded mid-solve", False)
    if isinstance(exc, ServiceError):
        return ("err", exc.code, exc.message, exc.retryable)
    import traceback

    traceback.print_exc(file=sys.stderr)
    return ("err", "internal", "internal error", False)


def _run_batch(items_wire, *, lru, kernel, xbatch=False, metrics=None,
               spans=None, span_name="batch") -> list[tuple]:
    """Solve one micro-batch: the child-side mirror of ``Shard._dispatch``.

    With ``metrics`` (a :class:`~repro.obs.metrics.Metrics`), the batch
    runs under an armed :class:`TraceScope` whose counters fold into it
    and whose "solve" histogram gets one observation per item — the
    child *owns* the solve stage, so the parent's merged snapshot has
    the same shape as the thread backend's without double counting.
    With ``spans`` (a list), a per-batch span summary is appended
    (timestamps are child-monotonic).
    """
    # `local` holds instances decoded from payload-carrying items in THIS
    # batch, so slim siblings behind them resolve even when the LRU is
    # still cold (solve_batch only admits after all items are decoded).
    local: dict = {}
    items = [_item_from_wire(obj, lru, local) for obj in items_wire]
    tokens = [_token_from_wire(obj) for obj in items_wire]
    # Item-fault directives were adjudicated by the parent plan; keyed by
    # item identity so the per-item isolation retry below replays the
    # same directive on the same item (never a fresh firing decision).
    directives = {
        id(item): obj["fault"]
        for item, obj in zip(items, items_wire)
        if obj.get("fault")
    }
    before = (
        (lambda item: execute_directive(directives.get(id(item))))
        if directives else None
    )
    t0 = time.monotonic()
    with TraceScope(span_name, propagate=False) as scope:
        try:
            results = solve_batch(
                items, kernel=kernel, reps=lru, cancels=tokens,
                before_solve=before, xbatch=xbatch,
            )
        except Exception:
            # Same per-item isolation as the thread backend: one bad
            # request must not poison its micro-batch.
            outcomes = []
            for item, token in zip(items, tokens):
                try:
                    result = solve_batch(
                        [item], kernel=kernel, reps=lru,
                        cancels=[token], before_solve=before, xbatch=xbatch,
                    )[0]
                except Exception as exc:  # noqa: BLE001 - mapped to taxonomy
                    outcomes.append(_error_outcome(exc))
                else:
                    outcomes.append(("ok", result_to_wire(result)))
        else:
            outcomes = [("ok", result_to_wire(result)) for result in results]
    dur = time.monotonic() - t0
    if metrics is not None:
        for _ in items:
            metrics.observe("solve", dur)
        metrics.add_counts(scope.counts)
    if spans is not None:
        spans.append({
            "name": span_name, "t0": t0, "dur": dur,
            "n": len(items), "counts": dict(scope.counts),
        })
    return outcomes


def _lru_obj(lru: InstanceLRU) -> dict:
    stats = lru.stats()
    return {
        "entries": stats.entries,
        "peak_entries": stats.peak_entries,
        "hits": stats.hits,
        "misses": stats.misses,
        "evictions": stats.evictions,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.procworker",
        description="One process-shard child worker (spawned by ProcessShard).",
    )
    parser.add_argument("--shard", type=int, required=True)
    parser.add_argument("--kernel", default="fast")
    parser.add_argument("--max-instances", type=int, default=8)
    parser.add_argument("--heartbeat-ms", type=int, default=100)
    parser.add_argument("--xbatch", action="store_true")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    # Keep the frame pipe pure: duplicate the real stdout for frames,
    # then point fd 1 at stderr so stray prints can't corrupt a frame.
    # Both frame streams get megabyte buffers — a result frame easily
    # tops the 8 KiB default, and every refill/flush is a syscall on
    # the solve thread's critical path.
    out = os.fdopen(os.dup(sys.stdout.fileno()), "wb", buffering=1 << 20)
    os.dup2(sys.stderr.fileno(), sys.stdout.fileno())
    inp = os.fdopen(os.dup(sys.stdin.fileno()), "rb", buffering=1 << 20)

    lru = InstanceLRU(args.max_instances)
    metrics = Metrics()  # cumulative; a snapshot rides every result frame
    wlock = threading.Lock()

    with wlock:
        write_frame(out, ("ready", os.getpid()))

    stop = threading.Event()
    beat_s = max(args.heartbeat_ms, 1) / 1000.0

    def _beat() -> None:
        while not stop.wait(beat_s):
            try:
                with wlock:
                    write_frame(out, ("hb",))
            except (OSError, ValueError):  # parent gone: die quietly
                return

    threading.Thread(target=_beat, name="repro-procworker-hb", daemon=True).start()

    try:
        while True:
            msg = read_frame(inp)
            if msg is None or msg[0] == "close":
                return 0
            if msg[0] != "batch":
                continue
            _, batch_id, items_wire = msg
            spans: list = []
            outcomes = _run_batch(
                items_wire, lru=lru, kernel=args.kernel, xbatch=args.xbatch,
                metrics=metrics, spans=spans,
                span_name=f"shard{args.shard}.batch",
            )
            with wlock:
                write_frame(out, (
                    "result", batch_id, outcomes, _lru_obj(lru),
                    metrics.to_obj(), spans,
                ))
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        return 0
    finally:
        stop.set()


# --------------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------------- #


class WorkerProc:
    """Parent-side handle of one child worker process.

    Owns the :class:`subprocess.Popen`, a reader thread that drains the
    child's frame stream into :attr:`frames` (heartbeats are consumed
    here, bumping :attr:`last_frame`), and the write lock for the
    request pipe.  ``None`` on :attr:`frames` marks EOF — the child is
    gone and no further frame will ever arrive.
    """

    def __init__(self, shard: int, *, kernel: str, max_instances: int,
                 heartbeat_ms: int = 100, xbatch: bool = False) -> None:
        self.shard = shard
        self.kernel = kernel
        self.max_instances = max_instances
        self.heartbeat_ms = heartbeat_ms
        self.xbatch = xbatch
        self.proc: Optional[subprocess.Popen] = None
        self.pid: Optional[int] = None
        self.frames: SimpleQueue = SimpleQueue()
        self.last_frame = time.monotonic()
        self._wlock = threading.Lock()
        self._reader: Optional[threading.Thread] = None

    def start(self, ready_timeout: float = 60.0) -> None:
        """Spawn the child and block until its ready frame."""
        # `-c` instead of `-m`: runpy would re-execute a module the
        # package already imported (and warn about it on stderr).
        cmd = [
            sys.executable, "-c",
            "from repro.service.procworker import main; raise SystemExit(main())",
            "--shard", str(self.shard),
            "--kernel", self.kernel,
            "--max-instances", str(self.max_instances),
            "--heartbeat-ms", str(self.heartbeat_ms),
        ]
        if self.xbatch:
            cmd.append("--xbatch")
        env = dict(os.environ)
        # The child must import the same `repro` this process runs —
        # works from a source checkout (PYTHONPATH=src) and from an
        # installed package alike.
        import repro

        pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        prev = env.get("PYTHONPATH")
        env["PYTHONPATH"] = pkg_root + (os.pathsep + prev if prev else "")
        self.proc = subprocess.Popen(
            cmd, stdin=subprocess.PIPE, stdout=subprocess.PIPE, env=env,
            bufsize=1 << 20,  # frame streams routinely top the 8 KiB default
        )
        _widen_pipe(self.proc.stdin)
        _widen_pipe(self.proc.stdout)
        self.pid = self.proc.pid
        self.last_frame = time.monotonic()
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"repro-procshard-{self.shard}-reader",
            daemon=True,
        )
        self._reader.start()
        try:
            msg = self.frames.get(timeout=ready_timeout)
        except Empty:
            self.destroy()
            raise RuntimeError(
                f"shard {self.shard}: worker process never became ready"
            ) from None
        if not (isinstance(msg, tuple) and msg and msg[0] == "ready"):
            self.destroy()
            raise RuntimeError(
                f"shard {self.shard}: worker process died during startup"
            )

    def _read_loop(self) -> None:
        stream = self.proc.stdout
        while True:
            try:
                msg = read_frame(stream)
            except Exception:  # noqa: BLE001 - any read failure is EOF to us
                msg = None
            self.last_frame = time.monotonic()
            if msg is None:
                self.frames.put(None)
                return
            if isinstance(msg, tuple) and msg and msg[0] == "hb":
                continue
            self.frames.put(msg)

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def send_batch(self, batch_id: int, items_wire: list) -> None:
        with self._wlock:
            write_frame(self.proc.stdin, ("batch", batch_id, items_wire))

    def kill(self) -> None:
        """SIGKILL the child (hard deadline / liveness / injected fault).

        Safe from any thread; the reader thread surfaces the death as
        EOF on :attr:`frames`.
        """
        proc = self.proc
        if proc is not None and proc.poll() is None:
            try:
                proc.kill()
            except OSError:  # pragma: no cover - already reaped
                pass

    def destroy(self, close_timeout: float = 1.0) -> None:
        """Tear the child down: graceful close frame, then SIGKILL; reap."""
        proc = self.proc
        if proc is None:
            return
        if proc.poll() is None:
            try:
                with self._wlock:
                    write_frame(proc.stdin, ("close",))
            except (OSError, ValueError):
                pass
            try:
                proc.wait(timeout=close_timeout)
            except subprocess.TimeoutExpired:
                self.kill()
        try:
            proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - kill is SIGKILL
            pass
        for stream in (proc.stdin, proc.stdout):
            try:
                stream.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        if self._reader is not None:
            self._reader.join(timeout=2.0)


if __name__ == "__main__":
    raise SystemExit(main())
