"""CLI: ``python -m repro.service`` — JSON-lines solve service.

Stdio by default (one request per stdin line, one response per stdout
line, exits on EOF); ``--tcp HOST:PORT`` serves a local TCP socket
instead (``PORT`` 0 picks a free port, printed on stderr).  See
:mod:`repro.service.protocol` for the line format.

Example session::

    $ python -m repro.service --shards 2 <<'EOF'
    {"id": 1, "instance": {"m": 2, "setups": [2, 1], "jobs": [[3, 4], [5]]}}
    {"id": 2, "instance": {"m": 2, "setups": [2, 1], "jobs": [[3, 4], [5]]},
     "bounds_only": true, "ms": [2, 3, 4]}
    {"id": 3, "op": "stats"}
    EOF
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys

from ..obs.trace import TraceWriter
from .engine import ServiceConfig, SolveService
from .faults import FaultPlan
from .server import serve_stdio, serve_tcp


def _parse_faults(text: str) -> FaultPlan:
    """``--faults`` value: a preset name or a FaultPlan JSON object."""
    if text in FaultPlan.PRESETS:
        return FaultPlan.preset(text)
    try:
        return FaultPlan.from_obj(json.loads(text))
    except (json.JSONDecodeError, ValueError) as exc:
        raise argparse.ArgumentTypeError(
            f"expected one of {FaultPlan.PRESETS} or FaultPlan JSON: {exc}"
        ) from None


def _parse_endpoint(text: str) -> tuple[str, int]:
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise argparse.ArgumentTypeError(f"expected HOST:PORT, got {text!r}")
    return host or "127.0.0.1", int(port)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Async sharded solve service (JSON lines over stdio or TCP).",
    )
    parser.add_argument(
        "--tcp", type=_parse_endpoint, metavar="HOST:PORT", default=None,
        help="serve a local TCP socket instead of stdio (port 0 = auto)",
    )
    parser.add_argument("--shards", type=int, default=4,
                        help="worker threads / cache-affinity shards (default 4)")
    parser.add_argument("--workers", choices=["thread", "process"],
                        default="thread",
                        help="shard backend: in-process worker threads, or "
                             "one supervised child process per shard (crash "
                             "containment, hard deadlines, multicore; "
                             "default thread)")
    parser.add_argument("--hard-kill-grace-ms", type=int, default=200,
                        help="process backend: grace past the last in-flight "
                             "deadline before a silent child is SIGKILLed "
                             "(default 200)")
    parser.add_argument("--max-batch", type=int, default=16,
                        help="micro-batch size per shard dispatch (default 16)")
    parser.add_argument("--max-inflight", type=int, default=64,
                        help="global admitted-request window (default 64)")
    parser.add_argument("--max-instances", type=int, default=8,
                        help="per-shard LRU bound on warm instances (default 8)")
    parser.add_argument("--kernel", choices=["fast", "fraction"], default="fast",
                        help="numeric kernel for every solve (default fast)")
    parser.add_argument("--queue-bound", type=int, default=64,
                        help="per-shard pending-queue bound; submits beyond it "
                             "are shed with a retryable 'overloaded' error "
                             "(default 64)")
    parser.add_argument("--max-restarts", type=int, default=3,
                        help="worker restarts per shard before the shard is "
                             "declared failed (default 3)")
    parser.add_argument("--restart-backoff", type=float, default=0.05,
                        help="first restart delay in seconds, doubling per "
                             "restart (default 0.05)")
    parser.add_argument("--xbatch", action="store_true",
                        help="fuse each micro-batch's dual tests across "
                             "instances into one padded grid evaluation "
                             "(bit-identical results; fast kernel only)")
    parser.add_argument("--faults", type=_parse_faults, metavar="PLAN",
                        default=None,
                        help="arm a deterministic fault plan (testing only): "
                             "a preset name (kill/delay/raise/drop/wedge/"
                             "sigkill) or FaultPlan JSON")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="dump one JSONL span summary per dispatched "
                             "micro-batch (solver counters, solve wall time) "
                             "to FILE; summarize with "
                             "'python -m repro.experiments obs FILE'")
    parser.add_argument("--slow-ms", type=int, default=None, metavar="MS",
                        help="log any request slower than MS milliseconds "
                             "end to end, with its per-stage breakdown, to "
                             "the repro.service logger (default: off)")
    return parser


async def _amain(args: argparse.Namespace) -> int:
    config = ServiceConfig(
        shards=args.shards,
        max_batch=args.max_batch,
        max_inflight=args.max_inflight,
        max_instances=args.max_instances,
        kernel=args.kernel,
        queue_bound=args.queue_bound,
        max_restarts=args.max_restarts,
        restart_backoff=args.restart_backoff,
        workers=args.workers,
        hard_kill_grace_ms=args.hard_kill_grace_ms,
        xbatch=args.xbatch,
        slow_ms=args.slow_ms,
    )
    trace = TraceWriter(args.trace) if args.trace is not None else None
    async with SolveService(config, faults=args.faults, trace=trace) as service:
        if args.tcp is None:
            await serve_stdio(service)
        else:
            host, port = args.tcp
            server = await serve_tcp(service, host, port)
            bound = server.sockets[0].getsockname()
            print(f"repro.service listening on {bound[0]}:{bound[1]}",
                  file=sys.stderr, flush=True)
            # SIGTERM drains gracefully: stop accepting, finish what's
            # queued (the `async with` exit), resolve stragglers with
            # structured shutdown errors — same path as the shutdown op.
            loop = asyncio.get_running_loop()
            try:
                loop.add_signal_handler(signal.SIGTERM, server.repro_shutdown.set)
            except NotImplementedError:  # pragma: no cover - non-Unix loops
                pass
            try:
                await server.repro_shutdown.wait()
            finally:
                try:
                    loop.remove_signal_handler(signal.SIGTERM)
                except (NotImplementedError, ValueError):  # pragma: no cover
                    pass
                server.close()
                await server.wait_closed()
    if trace is not None:
        # Spans are flushed per record, so even an abnormal exit loses
        # nothing; this just releases the handle on the graceful path.
        trace.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
