"""``repro.service`` — an async, sharded solve service over the batched engine.

The near-linear algorithms are fast enough that the bottleneck of a
service-shaped deployment (the ROADMAP north star: heavy request traffic
against one library process) is request *orchestration*, not the dual
tests: a naive server calls :func:`repro.solve` once per request, cold
caches every time, and grows per-instance state without bound.  This
subsystem turns the :mod:`repro.algos.batch_api` engine into a service:

* **Requests** (:class:`~repro.service.protocol.SolveRequest`) carry an
  instance plus variant / algorithm / ``eps``, an optional machine range
  ``ms`` (a sweep), and a ``schedules``/``bounds_only`` flag.
* **Sharding** — each request is routed by its instance's
  :meth:`~repro.core.instance.Instance.fingerprint`, so one instance's
  cache set (Fraction/sorted views, :class:`~repro.core.fastnum.DualContext`,
  numpy scratch) lives on exactly one shard worker thread; the lazily
  filled caches are never shared across threads.
* **Micro-batching** — each shard drains its queue in batches of up to
  ``max_batch`` requests and dispatches them through
  :func:`~repro.algos.batch_api.solve_batch` /
  :func:`~repro.algos.batch_api.sweep_machines`, coalescing equal
  fingerprints onto one warm representative.
* **Eviction** — per-shard :class:`~repro.service.cache.InstanceLRU`
  tables bound the warm set (``max_instances`` per shard); evicted
  representatives hand their memory back through
  :meth:`~repro.core.instance.Instance.release_caches`.
* **Backpressure** — a global ``max_inflight`` admission semaphore
  bounds the dispatch pipeline, the JSON-lines front ends apply the
  same window per connection, and each shard sheds work beyond its
  bounded queue (``queue_bound``) with a retryable ``overloaded`` error.
* **Determinism** — responses are bit-identical to looped ``solve()``
  under any interleaving (asserted by ``tests/test_service.py``'s seeded
  async fuzz), and each connection's responses come back in request
  order.
* **Fault tolerance** — requests carry optional ``timeout_ms``
  deadlines (cooperatively cancelled at probe boundaries); dead shard
  workers are supervised and restarted under a bounded backoff; a shard
  past its restart budget fails fast and its fingerprint range reroutes
  to the survivors (degraded mode, surfaced via ``stats``); every
  failure is a structured :class:`~repro.service.protocol.ServiceError`
  from a closed taxonomy (``bad_request`` / ``timeout`` / ``overloaded``
  / ``shutdown`` / ``internal``) with retryability semantics.  All of it
  is driven deterministically by :class:`~repro.service.faults.FaultPlan`
  injection (``tests/test_service_faults.py``, the chaos mode of
  ``benchmarks/service_smoke.py``).
* **Worker backends** — ``ServiceConfig(workers="thread"|"process")``
  picks what a shard's solves run on.  Threads (default) buy cache
  affinity under the GIL at zero serialization cost; **process** shards
  (:class:`~repro.service.shards.ProcessShard` supervising a
  :mod:`repro.service.procworker` child over a length-prefixed pipe)
  add what threads cannot: crash containment, heartbeat liveness,
  SIGKILL-backed *hard* deadlines (``hard_kill_grace_ms``), and real
  multicore on multi-CPU hosts.  Responses are bit-identical across
  backends; the pipe cost is bounded by a payload-eliding slim wire
  over a parent-side shadow replay of the child's LRU.

Front ends: ``python -m repro.service`` speaks JSON lines over stdio, or
over a local TCP socket with ``--tcp HOST:PORT``
(:mod:`repro.service.server` / :mod:`repro.service.__main__`).  The
in-process entry point is :class:`~repro.service.engine.SolveService`.
"""

from .cache import InstanceLRU
from .engine import ServiceConfig, ServiceStats, SolveService
from .faults import FaultPlan
from .protocol import ERROR_CODES, ProtocolError, ServiceError, SolveRequest
from .server import serve_stdio, serve_tcp

__all__ = [
    "ERROR_CODES",
    "FaultPlan",
    "InstanceLRU",
    "ProtocolError",
    "ServiceConfig",
    "ServiceError",
    "ServiceStats",
    "SolveRequest",
    "SolveService",
    "serve_stdio",
    "serve_tcp",
]
