"""The asyncio solve service: admission, routing, and lifecycle.

:class:`SolveService` is the in-process face of the subsystem (the
JSON-lines front ends in :mod:`repro.service.server` are thin wrappers
over it).  One event loop submits requests; a pool of shard worker
threads (:mod:`repro.service.shards`) solves them in micro-batches.

Guarantees:

* **Bit-identity** — every response equals the corresponding fresh
  ``solve()`` / ``sweep_machines`` call, whatever the interleaving:
  requests only ever share *caches* (proven bit-identical by the batch
  engine's differential suites), never verdicts.
* **Affinity** — requests for one fingerprint always land on the same
  shard (``shard_index``), so no per-instance cache dict is touched by
  two threads.
* **Backpressure** — at most ``max_inflight`` requests are dispatched
  at once; further ``submit`` calls wait on the admission semaphore,
  and each shard additionally bounds its queue (``queue_bound``),
  shedding overflow with a retryable ``overloaded`` error.
* **Bounded memory** — each shard's warm-instance table is an LRU of
  ``max_instances`` entries with release-on-evict.
* **Bounded time** — a request with ``timeout_ms`` set resolves within
  its deadline (plus one probe) or fails with a ``timeout`` error; the
  deadline clock starts at admission, so it covers queueing as well as
  the solve itself.
* **Supervision** — a dead shard worker is restarted under a bounded
  backoff and its in-flight requests fail with structured (retryable)
  errors instead of hanging; a shard past its restart budget fails
  fast.  ``stats()`` accounts for every shed, timed-out, and restarted
  unit.
"""

from __future__ import annotations

import asyncio
import logging
import numbers
import time
from dataclasses import dataclass
from typing import Iterable, Optional

from ..algos.batch_api import _validate_request
from ..core.cancel import CancelToken
from ..core.fastnum import validate_kernel
from ..obs.metrics import Metrics, RequestTimes
from ..obs.trace import TraceWriter
from .faults import FaultPlan
from .protocol import ServiceError, SolveRequest
from .shards import ProcessShard, Shard, ShardStats, _Work, shard_index

__all__ = ["ServiceConfig", "ServiceStats", "SolveService"]

log = logging.getLogger("repro.service")


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one :class:`SolveService`.

    ``shards`` bounds cache-affinity parallelism (worker threads);
    ``max_batch`` the micro-batch size a shard coalesces per dispatch;
    ``max_inflight`` the global number of admitted-but-unanswered
    requests (the backpressure window, also applied per connection by
    the servers); ``max_instances`` the per-shard LRU bound on warm
    representatives (the peak-cache-entries guarantee is
    ``shards × max_instances``).

    Robustness knobs: ``queue_bound`` caps each shard's pending queue —
    submits beyond it are shed with a retryable ``overloaded`` error;
    ``max_restarts`` bounds how many times a shard's dead worker thread
    is restarted before the shard is declared failed; ``restart_backoff``
    is the first restart's delay in seconds (doubling per restart,
    capped at 2s).

    ``workers`` selects the shard backend: ``"thread"`` (default) runs
    each shard's solves on its worker thread in-process; ``"process"``
    runs them in a supervised child process per shard
    (:class:`~repro.service.shards.ProcessShard`) — crash containment,
    SIGKILL-backed hard deadlines, and true multicore scaling, at the
    cost of per-request serialization and per-child cache rebuilds.
    ``hard_kill_grace_ms`` (process backend only) is how long past the
    last in-flight deadline a child may go silent before it is
    SIGKILLed.

    ``xbatch=True`` dispatches each micro-batch through the
    cross-instance lockstep coordinator
    (``solve_batch(..., xbatch=True)``): all items' bracket searches
    advance in rounds and each round's dual-test probes fuse into one
    padded :class:`~repro.core.xbatch.BatchDualContext` kernel call.
    Responses are bit-identical either way (pinned by
    ``tests/test_xbatch.py``); both backends honour the knob.
    """

    shards: int = 4
    max_batch: int = 16
    max_inflight: int = 64
    max_instances: int = 8
    kernel: str = "fast"
    queue_bound: int = 64
    max_restarts: int = 3
    restart_backoff: float = 0.05
    workers: str = "thread"
    hard_kill_grace_ms: int = 200
    xbatch: bool = False
    #: Log any request whose total lifecycle (submit -> result) takes at
    #: least this many milliseconds, with its per-stage breakdown, to the
    #: ``repro.service`` logger.  ``None`` disables the slow-request log.
    slow_ms: Optional[int] = None

    def __post_init__(self) -> None:
        validate_kernel(self.kernel)
        if self.workers not in ("thread", "process"):
            raise ValueError(
                f"workers must be 'thread' or 'process', got {self.workers!r}"
            )
        if not isinstance(self.xbatch, bool):
            raise ValueError(f"xbatch must be a bool, got {self.xbatch!r}")
        if (
            isinstance(self.hard_kill_grace_ms, bool)
            or not isinstance(self.hard_kill_grace_ms, int)
            or self.hard_kill_grace_ms < 0
        ):
            raise ValueError(
                "hard_kill_grace_ms must be a non-negative int, "
                f"got {self.hard_kill_grace_ms!r}"
            )
        for name in ("shards", "max_batch", "max_inflight", "max_instances",
                     "queue_bound"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int) or value < 1:
                raise ValueError(f"{name} must be a positive int, got {value!r}")
        if (
            isinstance(self.max_restarts, bool)
            or not isinstance(self.max_restarts, int)
            or self.max_restarts < 0
        ):
            raise ValueError(
                f"max_restarts must be a non-negative int, got {self.max_restarts!r}"
            )
        if (
            isinstance(self.restart_backoff, bool)
            or not isinstance(self.restart_backoff, numbers.Real)
            or not self.restart_backoff >= 0
        ):
            raise ValueError(
                "restart_backoff must be a non-negative number (seconds), "
                f"got {self.restart_backoff!r}"
            )
        if self.slow_ms is not None and (
            isinstance(self.slow_ms, bool)
            or not isinstance(self.slow_ms, int)
            or self.slow_ms < 1
        ):
            raise ValueError(
                f"slow_ms must be a positive int or None, got {self.slow_ms!r}"
            )


@dataclass(frozen=True)
class ServiceStats:
    """Aggregate + per-shard service counters (one ``stats()`` snapshot)."""

    requests: int
    batches: int
    peak_inflight: int
    max_inflight: int
    warm_instances: int
    peak_instances: int        # Σ per-shard LRU peaks
    max_instances: int         # configured bound: shards × per-shard bound
    cache_hits: int
    cache_misses: int
    evictions: int
    timeouts: int              # requests failed on their deadline
    shed: int                  # requests rejected by full shard queues
    restarts: int              # shard workers restarted (threads or processes)
    worker_deaths: int         # shard workers that died
    failed_shards: int         # shards past their restart budget
    workers: str               # backend: "thread" | "process"
    rerouted: int              # requests rerouted off failed shards
    degraded_shards: tuple[int, ...]  # failed shard indices serving reroutes
    queue_depth: int           # Σ per-shard pending queue depths (now)
    inflight: int              # admitted-but-unanswered requests (now)
    shards: tuple[ShardStats, ...]

    def to_obj(self) -> dict:
        """JSON-shaped snapshot (the ``{"op": "stats"}`` payload)."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "peak_inflight": self.peak_inflight,
            "max_inflight": self.max_inflight,
            "warm_instances": self.warm_instances,
            "peak_instances": self.peak_instances,
            "max_instances": self.max_instances,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "evictions": self.evictions,
            "timeouts": self.timeouts,
            "shed": self.shed,
            "restarts": self.restarts,
            "worker_deaths": self.worker_deaths,
            "failed_shards": self.failed_shards,
            "workers": self.workers,
            "rerouted": self.rerouted,
            "degraded_shards": list(self.degraded_shards),
            "queue_depth": self.queue_depth,
            "inflight": self.inflight,
            "shards": [
                {
                    "index": s.index,
                    "requests": s.requests,
                    "batches": s.batches,
                    "max_batch_seen": s.max_batch_seen,
                    "timeouts": s.timeouts,
                    "shed": s.shed,
                    "restarts": s.restarts,
                    "worker_deaths": s.worker_deaths,
                    "failed": s.failed,
                    "queue_depth": s.queue_depth,
                    "inflight": s.inflight,
                    "entries": s.lru.entries,
                    "peak_entries": s.lru.peak_entries,
                    "hits": s.lru.hits,
                    "misses": s.lru.misses,
                    "evictions": s.lru.evictions,
                }
                for s in self.shards
            ],
        }


class SolveService:
    """Async sharded solve service over the batched engine.

    Use as an async context manager (or call :meth:`start` /
    :meth:`aclose` explicitly)::

        async with SolveService(ServiceConfig(shards=4)) as svc:
            result = await svc.submit(SolveRequest(instance=inst))

    :meth:`submit` returns exactly what the corresponding synchronous
    call would: a ``SolveResult`` (or :class:`~repro.algos.batch_api.
    SweepPoint` for bounds-only), or a list of them for an ``ms`` sweep.
    Failures surface as :class:`~repro.service.protocol.ServiceError`
    (``timeout`` / ``overloaded`` / ``shutdown`` / ``internal``), so
    callers can branch on ``exc.code`` / ``exc.retryable``.
    :meth:`submit_many` preserves input order.

    ``faults`` arms a deterministic :class:`~repro.service.faults.
    FaultPlan` — test/bench only; production services pass none.
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 faults: Optional[FaultPlan] = None,
                 trace: Optional[TraceWriter] = None) -> None:
        self.config = config or ServiceConfig()
        self.faults = faults
        # Loop-thread-writer metrics (admission/total; the servers add
        # encode).  Shard workers own queue/assembly/solve and the
        # solver counters; metrics_obj() merges everything.
        self._metrics = Metrics()
        shard_kwargs = dict(
            max_batch=self.config.max_batch,
            max_instances=self.config.max_instances,
            kernel=self.config.kernel,
            queue_bound=self.config.queue_bound,
            max_restarts=self.config.max_restarts,
            restart_backoff=self.config.restart_backoff,
            faults=faults,
            xbatch=self.config.xbatch,
        )
        if self.config.workers == "process":
            self._shards: list[Shard] = [
                ProcessShard(
                    i,
                    hard_kill_grace_ms=self.config.hard_kill_grace_ms,
                    **shard_kwargs,
                )
                for i in range(self.config.shards)
            ]
        else:
            self._shards = [
                Shard(i, **shard_kwargs) for i in range(self.config.shards)
            ]
        if trace is not None:
            for shard in self._shards:
                shard.trace = trace
        self._sem = asyncio.Semaphore(self.config.max_inflight)
        self._inflight = 0
        self._peak_inflight = 0
        self._rerouted = 0
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "SolveService":
        if self._closed:
            raise RuntimeError("service is closed")
        if not self._started:
            self._started = True
            for shard in self._shards:
                shard.start()
        return self

    async def __aenter__(self) -> "SolveService":
        return self.start()

    async def aclose(self) -> None:
        """Finish queued work, stop the workers, release every cache.

        Requests still pending or in flight when a worker refuses to
        die in time resolve with a ``shutdown`` error — never hang.
        """
        if self._closed:
            return
        self._closed = True
        loop = asyncio.get_running_loop()
        for shard in self._shards:
            shard.signal_close()  # all sentinels first: joins overlap
        for shard in self._shards:
            await loop.run_in_executor(None, shard.close)

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #

    async def submit(self, request: SolveRequest):
        """Solve one request (validated now, dispatched under backpressure).

        The ``timeout_ms`` deadline starts *here* — it covers the wait
        for an admission slot, the shard queue, and the solve itself.
        """
        if not self._started or self._closed:
            raise RuntimeError("service is not running (use 'async with' or start())")
        # Fail fast in the caller's task: names checked before dispatch,
        # so a bad request never occupies a backpressure slot.
        _validate_request(request.variant, request.algorithm, request.schedules)
        item = request.to_item()
        token = None
        if request.timeout_ms is not None:
            token = CancelToken.after(request.timeout_ms / 1000.0)
        fingerprint = request.instance.fingerprint()
        shard = self._route(shard_index(fingerprint, len(self._shards)))
        loop = asyncio.get_running_loop()
        times = RequestTimes()
        times.submit = time.monotonic()
        await self._sem.acquire()
        times.admitted = time.monotonic()
        self._metrics.observe("admission", times.admitted - times.submit)
        self._inflight += 1
        self._peak_inflight = max(self._peak_inflight, self._inflight)
        try:
            if token is not None and token.cancelled:
                # Expired while waiting for admission: never reaches a shard.
                shard.note_loop_timeout()
                raise ServiceError.timeout(
                    "request deadline expired awaiting admission"
                )
            future = loop.create_future()
            shard.submit(_Work(
                item=item, future=future, loop=loop, cancel=token, times=times,
            ))
            return await future
        finally:
            self._inflight -= 1
            self._sem.release()
            times.done = time.monotonic()
            self._metrics.observe("total", times.done - times.submit)
            self._maybe_log_slow(request, fingerprint, times)

    def _route(self, index: int) -> Shard:
        """Degraded-mode routing: walk off a failed shard to a survivor.

        Normally the fingerprint's home shard.  Once a shard exhausts
        its restart budget, its fingerprint range reroutes to the next
        surviving shard (deterministic walk, so a fingerprint keeps one
        home per failed-set) instead of serving errors forever — cache
        affinity degrades (the survivor rebuilds warm state) but the
        range stays *served*.  Surfaced via ``stats().rerouted`` and
        ``stats().degraded_shards``; with no survivor left, the home
        shard's structured ``internal`` failure propagates as before.
        """
        shard = self._shards[index]
        if shard.failed:
            n = len(self._shards)
            for offset in range(1, n):
                survivor = self._shards[(index + offset) % n]
                if not survivor.failed:
                    self._rerouted += 1
                    return survivor
        return shard

    def _maybe_log_slow(self, request: SolveRequest, fingerprint: str,
                        times: RequestTimes) -> None:
        """Log one slow request's per-stage breakdown (``config.slow_ms``).

        Taxonomy-safe: the line carries the routing fingerprint, the
        request's variant/algorithm names, and stage timings — never the
        instance payload.  Stages a request did not reach (shed at
        admission, process backend's child-side solve) are simply
        absent from the breakdown.
        """
        slow_ms = self.config.slow_ms
        if slow_ms is None or times.submit is None or times.done is None:
            return
        total_ms = (times.done - times.submit) * 1000.0
        if total_ms < slow_ms:
            return
        log.warning(
            "slow request: fingerprint=%s variant=%s algorithm=%s "
            "total_ms=%.3f stages=%s",
            fingerprint, request.variant.value, request.algorithm,
            total_ms, times.stage_ms(),
        )

    async def submit_many(self, requests: Iterable[SolveRequest]) -> list:
        """Submit concurrently, return results in request order."""
        return list(
            await asyncio.gather(*(self.submit(req) for req in requests))
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> ServiceStats:
        shard_stats = tuple(shard.stats() for shard in self._shards)
        return ServiceStats(
            requests=sum(s.requests for s in shard_stats),
            batches=sum(s.batches for s in shard_stats),
            peak_inflight=self._peak_inflight,
            max_inflight=self.config.max_inflight,
            warm_instances=sum(s.lru.entries for s in shard_stats),
            peak_instances=sum(s.lru.peak_entries for s in shard_stats),
            max_instances=self.config.shards * self.config.max_instances,
            cache_hits=sum(s.lru.hits for s in shard_stats),
            cache_misses=sum(s.lru.misses for s in shard_stats),
            evictions=sum(s.lru.evictions for s in shard_stats),
            timeouts=sum(s.timeouts for s in shard_stats),
            shed=sum(s.shed for s in shard_stats),
            restarts=sum(s.restarts for s in shard_stats),
            worker_deaths=sum(s.worker_deaths for s in shard_stats),
            failed_shards=sum(1 for s in shard_stats if s.failed),
            workers=self.config.workers,
            rerouted=self._rerouted,
            degraded_shards=tuple(s.index for s in shard_stats if s.failed),
            queue_depth=sum(s.queue_depth for s in shard_stats),
            inflight=self._inflight,
            shards=shard_stats,
        )

    def metrics_obj(self) -> dict:
        """One mergeable metrics snapshot for the whole service.

        Loop-side admission/total/encode merged with every shard's
        queue/assembly/solve histograms and solver counters — identical
        shape on both worker backends (the process backend's solve stage
        and counters ride home on result frames; see
        :meth:`~repro.service.shards.ProcessShard.metrics_obj`).
        """
        merged = Metrics.from_obj(self._metrics.to_obj())
        for shard in self._shards:
            merged.merge(Metrics.from_obj(shard.metrics_obj()))
        return merged.to_obj()

    def observe_encode(self, seconds: float) -> None:
        """Record one response's wire-encode latency (servers, loop side)."""
        self._metrics.observe("encode", seconds)
