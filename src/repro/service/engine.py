"""The asyncio solve service: admission, routing, and lifecycle.

:class:`SolveService` is the in-process face of the subsystem (the
JSON-lines front ends in :mod:`repro.service.server` are thin wrappers
over it).  One event loop submits requests; a pool of shard worker
threads (:mod:`repro.service.shards`) solves them in micro-batches.

Guarantees:

* **Bit-identity** — every response equals the corresponding fresh
  ``solve()`` / ``sweep_machines`` call, whatever the interleaving:
  requests only ever share *caches* (proven bit-identical by the batch
  engine's differential suites), never verdicts.
* **Affinity** — requests for one fingerprint always land on the same
  shard (``shard_index``), so no per-instance cache dict is touched by
  two threads.
* **Backpressure** — at most ``max_inflight`` requests are dispatched
  at once; further ``submit`` calls wait on the admission semaphore, so
  shard queues hold at most ``max_inflight`` entries total.
* **Bounded memory** — each shard's warm-instance table is an LRU of
  ``max_instances`` entries with release-on-evict.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Iterable

from ..algos.batch_api import _validate_request
from ..core.fastnum import validate_kernel
from .protocol import SolveRequest
from .shards import Shard, ShardStats, _Work, shard_index

__all__ = ["ServiceConfig", "ServiceStats", "SolveService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one :class:`SolveService`.

    ``shards`` bounds cache-affinity parallelism (worker threads);
    ``max_batch`` the micro-batch size a shard coalesces per dispatch;
    ``max_inflight`` the global number of admitted-but-unanswered
    requests (the backpressure window, also applied per connection by
    the servers); ``max_instances`` the per-shard LRU bound on warm
    representatives (the peak-cache-entries guarantee is
    ``shards × max_instances``).
    """

    shards: int = 4
    max_batch: int = 16
    max_inflight: int = 64
    max_instances: int = 8
    kernel: str = "fast"

    def __post_init__(self) -> None:
        validate_kernel(self.kernel)
        for name in ("shards", "max_batch", "max_inflight", "max_instances"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{name} must be a positive int, got {value!r}")


@dataclass(frozen=True)
class ServiceStats:
    """Aggregate + per-shard service counters (one ``stats()`` snapshot)."""

    requests: int
    batches: int
    peak_inflight: int
    max_inflight: int
    warm_instances: int
    peak_instances: int        # Σ per-shard LRU peaks
    max_instances: int         # configured bound: shards × per-shard bound
    cache_hits: int
    cache_misses: int
    evictions: int
    shards: tuple[ShardStats, ...]

    def to_obj(self) -> dict:
        """JSON-shaped snapshot (the ``{"op": "stats"}`` payload)."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "peak_inflight": self.peak_inflight,
            "max_inflight": self.max_inflight,
            "warm_instances": self.warm_instances,
            "peak_instances": self.peak_instances,
            "max_instances": self.max_instances,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "evictions": self.evictions,
            "shards": [
                {
                    "index": s.index,
                    "requests": s.requests,
                    "batches": s.batches,
                    "max_batch_seen": s.max_batch_seen,
                    "entries": s.lru.entries,
                    "peak_entries": s.lru.peak_entries,
                    "hits": s.lru.hits,
                    "misses": s.lru.misses,
                    "evictions": s.lru.evictions,
                }
                for s in self.shards
            ],
        }


class SolveService:
    """Async sharded solve service over the batched engine.

    Use as an async context manager (or call :meth:`start` /
    :meth:`aclose` explicitly)::

        async with SolveService(ServiceConfig(shards=4)) as svc:
            result = await svc.submit(SolveRequest(instance=inst))

    :meth:`submit` returns exactly what the corresponding synchronous
    call would: a ``SolveResult`` (or :class:`~repro.algos.batch_api.
    SweepPoint` for bounds-only), or a list of them for an ``ms`` sweep.
    :meth:`submit_many` preserves input order.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self._shards = [
            Shard(
                i,
                max_batch=self.config.max_batch,
                max_instances=self.config.max_instances,
                kernel=self.config.kernel,
            )
            for i in range(self.config.shards)
        ]
        self._sem = asyncio.Semaphore(self.config.max_inflight)
        self._inflight = 0
        self._peak_inflight = 0
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "SolveService":
        if self._closed:
            raise RuntimeError("service is closed")
        if not self._started:
            self._started = True
            for shard in self._shards:
                shard.start()
        return self

    async def __aenter__(self) -> "SolveService":
        return self.start()

    async def aclose(self) -> None:
        """Finish queued work, stop the workers, release every cache."""
        if self._closed:
            return
        self._closed = True
        loop = asyncio.get_running_loop()
        for shard in self._shards:
            shard.signal_close()  # all sentinels first: joins overlap
        for shard in self._shards:
            await loop.run_in_executor(None, shard.close)

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #

    async def submit(self, request: SolveRequest):
        """Solve one request (validated now, dispatched under backpressure)."""
        if not self._started or self._closed:
            raise RuntimeError("service is not running (use 'async with' or start())")
        # Fail fast in the caller's task: names checked before dispatch,
        # so a bad request never occupies a backpressure slot.
        _validate_request(request.variant, request.algorithm, request.schedules)
        item = request.to_item()
        fingerprint = request.instance.fingerprint()
        shard = self._shards[shard_index(fingerprint, len(self._shards))]
        loop = asyncio.get_running_loop()
        await self._sem.acquire()
        self._inflight += 1
        self._peak_inflight = max(self._peak_inflight, self._inflight)
        try:
            future = loop.create_future()
            shard.submit(_Work(item=item, future=future, loop=loop))
            return await future
        finally:
            self._inflight -= 1
            self._sem.release()

    async def submit_many(self, requests: Iterable[SolveRequest]) -> list:
        """Submit concurrently, return results in request order."""
        return list(
            await asyncio.gather(*(self.submit(req) for req in requests))
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> ServiceStats:
        shard_stats = tuple(shard.stats() for shard in self._shards)
        return ServiceStats(
            requests=sum(s.requests for s in shard_stats),
            batches=sum(s.batches for s in shard_stats),
            peak_inflight=self._peak_inflight,
            max_inflight=self.config.max_inflight,
            warm_instances=sum(s.lru.entries for s in shard_stats),
            peak_instances=sum(s.lru.peak_entries for s in shard_stats),
            max_instances=self.config.shards * self.config.max_instances,
            cache_hits=sum(s.lru.hits for s in shard_stats),
            cache_misses=sum(s.lru.misses for s in shard_stats),
            evictions=sum(s.lru.evictions for s in shard_stats),
            shards=shard_stats,
        )
