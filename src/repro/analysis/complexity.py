"""Empirical runtime scaling — verifies the near-linear claims (S1).

The abstract claims O(n), O(n log 1/ε), O(n+c log(c+m)), O(n log(n+Δ)) and
O(n log n).  We time each algorithm over geometrically growing ``n`` and
fit ``time ≈ a·n^b`` by least squares on the log-log points; ``b`` close
to 1 (we accept < 1.35, generous for log factors and interpreter noise)
certifies near-linear behaviour.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.instance import Instance


@dataclass(frozen=True)
class ScalingPoint:
    n: int
    seconds: float


@dataclass(frozen=True)
class ScalingFit:
    points: tuple[ScalingPoint, ...]
    exponent: float        # b in time ~ a * n^b
    r_squared: float

    def is_near_linear(self, threshold: float = 1.35) -> bool:
        return self.exponent <= threshold


def time_algorithm(
    fn: Callable[[Instance], object],
    instances: Sequence[tuple[str, Instance]],
    repeats: int = 3,
) -> list[ScalingPoint]:
    """Best-of-``repeats`` wall time per instance (reduces scheduler noise)."""
    points = []
    for _, inst in instances:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn(inst)
            best = min(best, time.perf_counter() - t0)
        points.append(ScalingPoint(n=inst.n, seconds=best))
    return points


def fit_loglog(points: Sequence[ScalingPoint]) -> ScalingFit:
    """Least-squares fit of log(time) vs log(n)."""
    if len(points) < 2:
        raise ValueError("need at least two points to fit")
    xs = [math.log(p.n) for p in points]
    ys = [math.log(max(p.seconds, 1e-9)) for p in points]
    n = len(xs)
    mx, my = sum(xs) / n, sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    b = sxy / sxx if sxx else 0.0
    a = my - b * mx
    ss_res = sum((y - (a + b * x)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - my) ** 2 for y in ys)
    r2 = 1.0 - ss_res / ss_tot if ss_tot else 1.0
    return ScalingFit(points=tuple(points), exponent=b, r_squared=r2)
