"""ASCII Gantt rendering — regenerates the paper's schedule figures.

The paper's Figures 1-13 are machine/time diagrams with setups drawn dark
and guide lines at ``T/4, T/2, 3T/4, T, 5T/4, 3T/2``.  :func:`render_gantt`
draws the same thing in text: one row per machine, setups as ``#``-blocks
labelled ``s<i>``, job pieces as letter-blocks (one letter per class), and
a marker ruler on top.  Exact rational times are mapped to columns by
rounding; adjacent items never visually overlap because column boundaries
are computed from cumulative positions.

Since PR 4 the renderer reads the schedule through the bulk
:meth:`~repro.core.schedule.Schedule.rows` projection — scaled-integer
columns (numpy views when installed) instead of materialized
:class:`~repro.core.schedule.Placement` objects — and maps times to
columns with exact integer half-even rounding, so the drawing is
bit-identical to the historical Fraction arithmetic.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Optional, Sequence

from ..core.numeric import Time, TimeLike, as_time, time_str
from ..core.schedule import Schedule

_CLASS_GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"


def class_glyph(cls: int) -> str:
    return _CLASS_GLYPHS[cls % len(_CLASS_GLYPHS)]


def _round_div(p: int, q: int) -> int:
    """``round(p / q)`` with half-to-even ties, exactly like ``round(Fraction)``."""
    fl, r = divmod(p, q)
    r2 = 2 * r
    if r2 > q or (r2 == q and fl % 2):
        return fl + 1
    return fl


def render_gantt(
    schedule: Schedule,
    width: int = 96,
    markers: Optional[Mapping[str, TimeLike]] = None,
    title: str = "",
    machines: Optional[Sequence[int]] = None,
    horizon: Optional[TimeLike] = None,
) -> str:
    """Render ``schedule`` as ASCII art.

    ``markers`` maps labels (e.g. ``"T"``) to times drawn as a ruler;
    ``machines`` restricts the rows; ``horizon`` fixes the time scale
    (default: max(makespan, markers)).
    """
    marks = {k: as_time(v) for k, v in (markers or {}).items()}
    end = as_time(horizon) if horizon is not None else Fraction(0)
    end = max([end, schedule.makespan(), *marks.values()] or [Fraction(1)])
    if end <= 0:
        end = Fraction(1)
    rows = list(machines) if machines is not None else list(range(schedule.instance.m))

    def col(t: Time) -> int:
        return min(width, round(width * t / end))

    lines: list[str] = []
    if title:
        lines.append(title)
    # marker ruler
    if marks:
        ruler = [" "] * (width + 1)
        labels = [" "] * (width + 1)
        for name, t in sorted(marks.items(), key=lambda kv: kv[1]):
            c = col(t)
            ruler[c] = "|"
            for k, ch in enumerate(name):
                pos = c + k
                if pos <= width:
                    labels[pos] = ch
        lines.append("      " + "".join(labels).rstrip())
        lines.append("      " + "".join(ruler).rstrip())

    # bulk row projection: one integer column set, no Placement/Fraction
    # per item; col(num/scale) = round(width·num·end.den / (scale·end.num))
    sr = schedule.rows()
    kn = width * end.denominator
    kd = sr.scale * end.numerator
    by_machine: dict[int, list[int]] = {}
    for k in range(len(sr)):
        by_machine.setdefault(int(sr.machine[k]), []).append(k)

    for u in rows:
        row = ["."] * (width + 1)
        ks = by_machine.get(u, ())
        for k in sorted(
            ks, key=lambda k: (sr.start_num[k], sr.start_num[k] + sr.length_num[k])
        ):
            sn = int(sr.start_num[k])
            en = sn + int(sr.length_num[k])
            a = min(width, _round_div(sn * kn, kd))
            b = min(width, _round_div(en * kn, kd))
            if b <= a:
                b = min(width, a + 1)
            setup = sr.job_idx[k] < 0
            cls = int(sr.cls[k])
            glyph = "#" if setup else class_glyph(cls)
            for c in range(a, b):
                row[c] = glyph
            # label setups with the class index where room permits
            if setup:
                label = f"s{cls}"
                if b - a >= len(label) + 1:
                    for j, ch in enumerate(label):
                        row[a + 1 + j] = ch
        lines.append(f"M{u:>3}  " + "".join(row).rstrip(".") )
    # legend
    classes = sorted({int(c) for c in sr.cls})
    legend = ", ".join(f"{class_glyph(i)}=class {i}" for i in classes[:12])
    lines.append(f"      [{legend}{', …' if len(classes) > 12 else ''}]  "
                 f"(#=setup, horizon={time_str(end)})")
    return "\n".join(lines)


def render_template(gaps: Sequence[tuple[int, TimeLike, TimeLike]], m: int,
                    width: int = 96, title: str = "wrap template") -> str:
    """Render a wrap template's gaps (Figure 6): ``=`` marks free gap time."""
    gaps = [(u, as_time(a), as_time(b)) for u, a, b in gaps]
    end = max(b for _, _, b in gaps)
    lines = [title]

    def col(t: Time) -> int:
        return min(width, round(width * t / end))

    by_machine = {u: (a, b) for u, a, b in gaps}
    for u in range(m):
        row = ["."] * (width + 1)
        if u in by_machine:
            a, b = by_machine[u]
            for c in range(col(a), max(col(a) + 1, col(b))):
                row[c] = "="
            la, lb = f"a{u}", f"b{u}"
            for k, ch in enumerate(la):
                if col(a) + k <= width:
                    row[col(a) + k] = ch
        lines.append(f"M{u:>3}  " + "".join(row).rstrip("."))
    lines.append(f"      (==free gap, horizon={time_str(end)})")
    return "\n".join(lines)
