"""Analysis utilities: Gantt rendering, metrics, runtime fits, tables."""

from .complexity import ScalingFit, ScalingPoint, fit_loglog, time_algorithm
from .gantt import class_glyph, render_gantt, render_template
from .metrics import ScheduleMetrics, evaluate_schedule
from .reporting import fmt_ratio, fmt_time, format_markdown, format_table

__all__ = [
    "ScalingFit",
    "ScalingPoint",
    "fit_loglog",
    "time_algorithm",
    "class_glyph",
    "render_gantt",
    "render_template",
    "ScheduleMetrics",
    "evaluate_schedule",
    "fmt_ratio",
    "fmt_time",
    "format_markdown",
    "format_table",
]
