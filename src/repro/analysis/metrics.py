"""Schedule quality metrics used by the experiments and EXPERIMENTS.md."""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..core.bounds import Variant, lower_bound
from ..core.numeric import Time, TimeLike, as_time
from ..core.schedule import Schedule


@dataclass(frozen=True)
class ScheduleMetrics:
    """Quality summary of one schedule against the best available reference."""

    makespan: Time
    reference: Time            # exact OPT when known, else the dual/input LB
    reference_kind: str        # "opt" | "lower-bound"
    ratio: Fraction            # makespan / reference (≥ true ratio if LB)
    setup_time: Time           # total time spent in setups
    setup_share: Fraction      # setup_time / total busy time
    machines_used: int
    utilization: Fraction      # busy time / (m * makespan)

    def row(self) -> dict:
        return {
            "makespan": float(self.makespan),
            "reference": float(self.reference),
            "ratio": float(self.ratio),
            "setup_share": float(self.setup_share),
            "machines": self.machines_used,
            "utilization": float(self.utilization),
        }


def evaluate_schedule(
    schedule: Schedule,
    variant: Variant,
    opt: Optional[TimeLike] = None,
) -> ScheduleMetrics:
    """Compute :class:`ScheduleMetrics` vs exact OPT (if given) or the LB."""
    inst = schedule.instance
    cmax = schedule.makespan()
    if opt is not None:
        ref = as_time(opt)
        kind = "opt"
    else:
        ref = lower_bound(inst, variant)
        kind = "lower-bound"
    setup_time = sum(
        (p.length for p in schedule.iter_all() if p.is_setup), Fraction(0)
    )
    busy = schedule.total_load()
    used = len(schedule.used_machines())
    return ScheduleMetrics(
        makespan=cmax,
        reference=ref,
        reference_kind=kind,
        ratio=Fraction(cmax) / Fraction(ref) if ref > 0 else Fraction(0),
        setup_time=setup_time,
        setup_share=Fraction(setup_time) / busy if busy > 0 else Fraction(0),
        machines_used=used,
        utilization=Fraction(busy) / (inst.m * cmax) if cmax > 0 else Fraction(0),
    )
