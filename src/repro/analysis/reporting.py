"""Plain-text and Markdown table rendering for experiment outputs."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width table (monospace terminals)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[k]) for r in cells) for k in range(len(headers))]
    out = []
    if title:
        out.append(title)
    sep = "-+-".join("-" * w for w in widths)
    out.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    out.append(sep)
    for row in cells[1:]:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def format_markdown(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """GitHub-flavoured Markdown table (for EXPERIMENTS.md)."""
    out = ["| " + " | ".join(str(h) for h in headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def fmt_ratio(x) -> str:
    return f"{float(x):.4f}"


def fmt_time(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"
