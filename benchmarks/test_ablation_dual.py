"""Benchmark A2 — dual-test internals: α vs γ counting, ε granularity.

The γ machine count (Section 4.4) exists purely to make Class Jumping's
jump structure tractable; both counts give valid 3/2-duals.  The benches
compare their test cost and the construction cost, plus the ε-search cost
as a function of 1/ε (the O(n log 1/ε) claim of Theorem 2).
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algos.api import solve
from repro.algos.pmtn_general import pmtn_dual_schedule, pmtn_dual_test
from repro.core import Variant, t_min


@pytest.mark.parametrize("mode", ["alpha", "gamma"])
def test_pmtn_dual_test_mode(benchmark, medium_instance, mode):
    T = 2 * t_min(medium_instance, Variant.PREEMPTIVE)
    d = benchmark(lambda: pmtn_dual_test(medium_instance, T, mode))
    assert d.accepted
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["case"] = d.case


@pytest.mark.parametrize("mode", ["alpha", "gamma"])
def test_pmtn_dual_construction_mode(benchmark, medium_instance, mode):
    T = 2 * t_min(medium_instance, Variant.PREEMPTIVE)
    sched = benchmark(lambda: pmtn_dual_schedule(medium_instance, T, mode))
    assert sched.makespan() <= Fraction(3, 2) * T


@pytest.mark.parametrize("inv_eps", [4, 64, 1024])
def test_eps_granularity(benchmark, medium_instance, inv_eps):
    eps = Fraction(1, inv_eps)
    res = benchmark(lambda: solve(medium_instance, Variant.PREEMPTIVE, "eps", eps=eps))
    benchmark.extra_info["inv_eps"] = inv_eps
    benchmark.extra_info["ratio_bound"] = float(res.ratio_bound)
    assert res.ratio_bound <= Fraction(3, 2) * (1 + eps)
