"""Benchmark A1 — Class Jumping vs the alternatives it replaces.

Three ways to find a 3/2-certified makespan:

* Class Jumping (Algorithms 1/4) — O(log(c+m)) dual tests, *exact* flip;
* exhaustive piece scan — exact flip, O(#pieces) dual tests;
* (3/2+ε) binary search (Theorem 2) — O(log 1/ε) tests, ε-approximate.

The benchmarks demonstrate the paper's point: jumping gets exactness at
binary-search-like cost.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algos.jumping_pmtn import find_flip_pmtn
from repro.algos.jumping_split import find_flip_splittable
from repro.algos.search import binary_search_dual, slow_flip_splittable
from repro.algos.splittable import split_dual_schedule, split_dual_test
from repro.core import Variant


def test_split_class_jumping(benchmark, medium_instance):
    T_star, calls = benchmark(lambda: find_flip_splittable(medium_instance))
    benchmark.extra_info["dual_tests"] = calls
    benchmark.extra_info["flip"] = str(T_star)


def test_split_slow_reference(benchmark, medium_instance):
    T_star = benchmark(lambda: slow_flip_splittable(medium_instance))
    assert T_star == find_flip_splittable(medium_instance)[0]


def test_split_eps_binary_search(benchmark, medium_instance):
    inst = medium_instance

    def run():
        return binary_search_dual(
            inst,
            Variant.SPLITTABLE,
            lambda T: split_dual_test(inst, T).accepted,
            lambda T: split_dual_schedule(inst, T),
            eps=Fraction(1, 100),
        )

    sr = benchmark(run)
    benchmark.extra_info["dual_tests"] = sr.accept_calls
    # eps search never beats the exact flip from below
    assert sr.T >= find_flip_splittable(inst)[0]


def test_pmtn_class_jumping(benchmark, medium_instance):
    T_star, _, calls = benchmark(lambda: find_flip_pmtn(medium_instance, use_base_jump=True))
    benchmark.extra_info["dual_tests"] = calls
    benchmark.extra_info["flip"] = str(T_star)


def test_pmtn_exhaustive_scan(benchmark, medium_instance):
    fast = find_flip_pmtn(medium_instance, use_base_jump=True)
    slow = benchmark(lambda: find_flip_pmtn(medium_instance, use_base_jump=False))
    assert fast[:2] == slow[:2]
