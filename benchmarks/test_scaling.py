"""Benchmark S1 — the near-linear scaling series (abstract's running times).

The series n ∈ {100, 400, 1600} per algorithm gives the log-log slope the
paper's complexity claims predict (≈ 1 up to logarithmic factors); the
asserted fits run in repro.experiments.scaling / tests, here we produce the
raw timing rows.
"""

from __future__ import annotations

import pytest

from repro.algos.api import solve
from repro.core import Variant
from repro.generators import uniform_instance

SIZES = [100, 400, 1600]


def _instance(n: int):
    c = max(2, n // 20)
    return uniform_instance(m=max(2, n // 50), c=c, n_per_class=max(1, n // c), seed=17)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("variant", list(Variant), ids=str)
def test_three_halves_scaling(benchmark, variant, n):
    inst = _instance(n)
    benchmark.extra_info["n"] = inst.n
    benchmark.extra_info["variant"] = str(variant)
    benchmark(lambda: solve(inst, variant, "three_halves"))


@pytest.mark.parametrize("n", SIZES)
def test_two_approx_scaling(benchmark, n):
    inst = _instance(n)
    benchmark.extra_info["n"] = inst.n
    benchmark(lambda: solve(inst, Variant.NONPREEMPTIVE, "two"))
