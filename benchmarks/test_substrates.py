"""Substrate microbenchmarks: wrap engine, knapsack, validators, exact DP.

These pin the costs of the building blocks the near-linear claims rest on
(Lemma 7's O(|Q|+|ω|) wrap, the O(c log c) knapsack, the O(n) validator).
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algos.twoapprox import two_approx_splittable
from repro.core import (
    Batch,
    KnapsackItem,
    Schedule,
    Variant,
    WrapSequence,
    solve_continuous,
    template_for_machines,
    validate_schedule,
    wrap,
)
from repro.exact import exact_nonpreemptive_opt
from repro.generators import uniform_instance


def test_wrap_large_sequence(benchmark, large_instance):
    inst = large_instance
    height = -(-inst.total_load // inst.m)
    template = template_for_machines(list(range(inst.m)), inst.smax, inst.smax + height)
    seq = WrapSequence.of([Batch.of(i, inst.class_jobs(i)) for i in range(inst.c)])

    def run():
        sched = Schedule(inst)
        return wrap(sched, seq, template)

    res = benchmark(run)
    benchmark.extra_info["items"] = seq.length
    benchmark.extra_info["splits"] = res.splits


def test_validator_large(benchmark, large_instance):
    sched = two_approx_splittable(large_instance).schedule
    cmax = benchmark(lambda: validate_schedule(sched, Variant.SPLITTABLE))
    benchmark.extra_info["placements"] = sched.count_placements()
    assert cmax > 0


def test_continuous_knapsack(benchmark):
    items = [KnapsackItem.of(i, Fraction(i % 17 + 1), Fraction(i % 23 + 1)) for i in range(500)]
    sol = benchmark(lambda: solve_continuous(items, Fraction(1500)))
    assert sol.value > 0


def test_exact_dp_reference(benchmark):
    inst = uniform_instance(m=3, c=3, n_per_class=4, seed=9)  # n = 12
    opt = benchmark(lambda: exact_nonpreemptive_opt(inst))
    benchmark.extra_info["n"] = inst.n
    assert opt >= 1
