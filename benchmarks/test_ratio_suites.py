"""Benchmark R1 — measured-ratio sweeps over the named suites.

Benchmarks the full evaluation loop (solve + validate + reference) per
suite and stores the worst measured ratios in ``extra_info`` — these are
the numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algos.api import solve
from repro.core import Variant, validate_schedule
from repro.exact import exact_nonpreemptive_opt
from repro.generators import adversarial_suite, small_exact_suite


def test_small_suite_vs_exact_opt(benchmark):
    """three_halves vs exact OPT on every small instance (the true ratio)."""
    suite = small_exact_suite()

    def run():
        worst = Fraction(0)
        for _, inst in suite:
            res = solve(inst, Variant.NONPREEMPTIVE, "three_halves")
            cmax = validate_schedule(res.schedule, Variant.NONPREEMPTIVE)
            worst = max(worst, Fraction(cmax) / exact_nonpreemptive_opt(inst))
        return worst

    worst = benchmark(run)
    benchmark.extra_info["worst_true_ratio"] = float(worst)
    assert worst <= Fraction(3, 2)


@pytest.mark.parametrize("variant", list(Variant), ids=str)
def test_adversarial_suite_three_halves(benchmark, variant):
    suite = adversarial_suite()

    def run():
        worst = Fraction(0)
        for _, inst in suite:
            res = solve(inst, variant, "three_halves")
            cmax = validate_schedule(res.schedule, variant)
            worst = max(worst, Fraction(cmax) / Fraction(res.opt_lower_bound))
        return worst

    worst = benchmark(run)
    benchmark.extra_info["worst_ratio_vs_dual_lb"] = float(worst)
    assert worst <= Fraction(3, 2) * (1 + Fraction(1, 2**40))
