"""Shared fixtures for the benchmark harness (pytest-benchmark).

Benchmarks regenerate the paper's artifacts (see DESIGN.md §3):

* ``test_table1_algorithms.py``  — T1: every implementable Table-1 cell
* ``test_figures.py``            — F1-F13: figure regeneration
* ``test_scaling.py``            — S1: near-linear runtime series
* ``test_ablation_jumping.py``   — A1: Class Jumping vs alternatives
* ``test_ablation_dual.py``      — A2: α vs γ dual counting
* ``test_substrates.py``         — wrap engine / knapsack / validators
* ``test_ratio_suites.py``       — R1: measured-ratio sweeps
"""

from __future__ import annotations

import pytest

from repro.core import Instance
from repro.generators import uniform_instance, zipf_instance


@pytest.fixture(scope="session")
def medium_instance() -> Instance:
    """The standard medium workload: m=8, c=12, n=72."""
    return uniform_instance(m=8, c=12, n_per_class=6, seed=101)


@pytest.fixture(scope="session")
def large_instance() -> Instance:
    """n≈800 for the heavier benches."""
    return uniform_instance(m=16, c=40, n_per_class=20, seed=202)


@pytest.fixture(scope="session")
def heavy_tailed_instance() -> Instance:
    return zipf_instance(m=8, c=16, seed=303)
