"""Benchmarks F1-F13 — regenerate every figure of the paper.

Timing figure generation keeps the whole pipeline (algorithm + rendering)
under benchmark control; the asserted substrings pin the figure content.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import FIGURES, render_figure


@pytest.mark.parametrize("fig_id", sorted(FIGURES, key=lambda s: (len(s), s)))
def test_figure(benchmark, fig_id):
    art = benchmark(lambda: render_figure(fig_id))
    assert "Figure" in art
    benchmark.extra_info["figure"] = fig_id
    benchmark.extra_info["lines"] = len(art.splitlines())
