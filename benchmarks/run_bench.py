"""Performance trajectory benchmark: ``python benchmarks/run_bench.py``.

Times the solve engine on the standard medium/large/zipf workloads plus a
``wide`` many-class fixture (the paper's setup-dominated regime), writing a
flat ``{bench_name: seconds}`` JSON (default ``BENCH_PR10.json`` in the
repository root; ``BENCH_PR1.json``..``BENCH_PR9.json`` are the preserved
earlier snapshots).

Eleven bench families:

* ``solve/<fixture>/<variant>/<kernel>`` — single ``repro.solve`` calls on
  both numeric kernels (``fast`` scaled-int default vs the ``fraction``
  reference), exactly the PR-1 series, kept for trajectory diffs.
* ``sweep/<fixture>/<variant>/{loop,full,bounds}`` — a machine-count sweep
  through the batched engine.  ``loop`` is the baseline a caller without
  the engine pays: one fresh instance + full ``solve()`` per machine
  count (cold per-instance caches, matching this file's long-standing
  convention).  ``full`` is ``sweep_machines`` returning bit-identical
  ``SolveResult`` objects (shared caches/DualContext); ``bounds`` is
  ``sweep_machines(schedules=False)`` returning the certified
  ``T*``/bound curve (same certificates, no schedule materialization —
  the capacity-planning/service shape).
* ``many/<fixture>/<variant>/{loop,batch}`` — a service-shaped stream of
  repeated/related requests through ``solve_many`` (full schedules).
* ``gridnonp/wide/{scalar,grid,auto}`` — bounds-only non-preemptive
  machine sweeps on the many-class ``wide`` fixture with the grid
  evaluator forced off / forced on / auto.  Since PR 5's ``class_tmax``
  short-circuit the *scalar* probes win at every measured ``c``
  (Experiment S3 re-run up to 3200 classes), so the auto policy keeps
  them; the acceptance check is now the derived
  ``speedup/gridauto/wide`` — the auto policy must track the measured
  winner (CI floor 0.8, noise allowance on ms-scale cells).
  ``speedup/gridnonp/wide`` (scalar over forced-grid) is kept for
  trajectory diffs against the PR-3/PR-4 snapshots.
* ``nonpconstruct/<fixture>/{fast,fraction}`` — Algorithm 6's
  construction alone (``nonp_dual_schedule`` at the accepted integer
  ``T*``, schedule fully materialized): the PR-4 index-based
  ``ItemStore`` tier against the per-item ``_It``/Fraction reference.
  The derived ``speedup/nonp-construct/<fixture>`` family is the
  acceptance series for the object-free construction; CI asserts a
  no-regression floor on the medium fixture in smoke mode.
* ``service/<fixture>/{loop,batch}`` — the PR-5 async sharded service
  (:mod:`repro.service`) at 4 shards answering the mixed request burst
  of Experiment S5 (all three variants, alternating full-schedule /
  bounds-only singles plus bounds-only machine-range sweeps, across a
  4-fingerprint pool at the fixture's scale) versus the naive
  one-request-at-a-time ``solve()`` loop over the identical answer
  units.  The service cell restarts the service per repetition (cold
  LRUs, shard threads started outside the clock) and times the burst
  only.  ``service/<fixture>/peak_instances`` /
  ``.../max_instances`` record the LRU accounting — eviction must keep
  the warm set at or under the configured bound.  The derived
  ``speedup/service/<fixture>`` is the PR-5 acceptance series (≥ 3× on
  medium at 4 shards).
* ``procshards/<fixture>/{thread,process}/w{1,2,4}`` — the PR-7 worker
  backends head to head: the identical S5 mixed burst through the
  service with thread shards vs supervised **process** shards at 1, 2,
  and 4 workers (child spawn happens at service start, outside the
  clock).  The derived ``speedup/procshards/<fixture>/w<n>`` ratios are
  thread-over-process at matched worker count; the headline
  ``speedup/procshards/<fixture>`` is the 4-worker point, where process
  shards buy real multicore against the GIL-bound thread backend.  The
  single-worker medium ratio is the pipe-overhead acceptance cell: CI
  asserts process stays within 0.8x of thread there (the pure
  serialization cost, no parallelism to hide behind).  Both the
  headline and the floor presume parent and child get their own CPU —
  check ``meta/cpu_count`` (the CI assert skips below 2).
* ``xbatch/<shape>/{seq,fused}`` — the PR-8 cross-instance batched dual
  tests: one service micro-batch (16 bounds-only ``eps`` solves, mixed
  variants) through ``solve_batch`` with per-item probe loops vs the
  lockstep coordinator fusing each round's probes across instances into
  one padded grid evaluation.  Identical probe streams and bit-identical
  verdicts on both sides (``use_grid=False``; the drift regression pins
  the streams), warm instance caches.  The derived
  ``speedup/xbatch/<shape>`` is the PR-8 acceptance series (≥ 1.3× on
  the medium micro-batch; CI smoke floor 1.1).
* ``plans/<fixture>/<variant>/{warm,cold}`` — the PR-9 pair-native plan
  tier: one bounds-only single solve (``solve_batch`` with a single
  ``schedules=False`` item, ``use_grid=False``) — exactly the probe-plan
  search plus certificate assembly the plan tier rewrote onto normalized
  ``(num, den)`` pairs.  ``warm`` reuses one instance (hot caches, the
  service's repeated-dispatch regime); ``cold`` rebuilds the instance
  each run.  The derived ``speedup/plans/<fixture>/<variant>`` is the
  warm fraction-driver over warm fast-plan ratio, and the headline
  ``speedup/plans/<fixture>`` is the *minimum* of the splittable and
  preemptive cells — the two flip searches whose `Fraction` bookkeeping
  the PR-8 profiling flagged (acceptance ≥ 1.3× on large; CI smoke
  floor 1.1 on medium).
* ``obs/<fixture>/{off,armed}`` — the PR-10 tracing overhead cells: one
  warm bounds-only solve (scalar probes, the seam-densest shape) with no
  :class:`~repro.obs.trace.TraceScope` vs inside an armed one.  The
  derived ``speedup/obs/<fixture>`` (off over armed) is the acceptance
  series — CI smoke asserts ≥ 0.95 on medium, i.e. armed tracing costs
  at most ~5% on the probe-heaviest path (and disarmed strictly less).
* ``shortcut/<fixture>/nonp/{on,off}`` — cold ``solve(nonpreemptive)``
  with the ``fast_nonp_test`` cheap-class ``class_tmax`` short-circuit
  enabled vs disabled.  The deliberately *baseline-neutral* family the
  ROADMAP required before landing the shortcut: the skip also collapses
  the cold-cache cost every ``loop`` baseline above pays, so trajectory
  diffs against PR-4 numbers should consult this family instead of
  crediting the sweep engines.

Derived ``speedup/...`` entries record the corresponding baseline-over-
engine ratios (dimensionless).  Each measurement is the best of
``--reps`` runs on freshly constructed instances.

``--smoke`` restricts to the medium fixture with fewer repetitions — used
by CI to catch gross regressions without burning minutes.  The
``gridnonp`` family runs in smoke mode too (it is the acceptance check
for the flattened non-preemptive grid).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algos.api import solve  # noqa: E402
from repro.algos.batch_api import solve_many, sweep_machines  # noqa: E402
from repro.core import batchdual  # noqa: E402
from repro.core.bounds import Variant  # noqa: E402
from repro.core.instance import Instance  # noqa: E402
from repro.generators import uniform_instance, zipf_instance  # noqa: E402

FIXTURES = {
    "medium": lambda: uniform_instance(m=8, c=12, n_per_class=6, seed=101),
    "large": lambda: uniform_instance(m=16, c=40, n_per_class=20, seed=202),
    "zipf": lambda: zipf_instance(m=8, c=16, seed=303),
    "wide": lambda: uniform_instance(m=24, c=400, n_per_class=2, seed=404),
}
KERNELS = ("fast", "fraction")


def fresh(inst: Instance, m: int | None = None) -> Instance:
    return Instance(m=inst.m if m is None else m, setups=inst.setups, jobs=inst.jobs)


def sweep_ms(inst: Instance) -> list[int]:
    """Machine counts for the sweep benches: 2..2m in m/8-ish steps."""
    step = max(1, inst.m // 8)
    return list(range(2, 2 * inst.m + 1, step))


def service_ms(inst: Instance) -> list[int]:
    """A service-shaped request stream: repeated + related machine counts."""
    from repro.experiments.scaling import service_stream_ms

    return service_stream_ms(inst.m)


def best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_solve(inst: Instance, variant: Variant, kernel: str, reps: int) -> float:
    """Best-of-``reps`` wall time of one solve, cold caches each run."""
    return best_of(
        lambda: solve(fresh(inst), variant, "three_halves", kernel=kernel), reps
    )


def bench_nonp_construct(inst: Instance, fixture_name: str, reps: int) -> dict[str, float]:
    """Construction-only timings at the accepted ``T*`` (both tiers).

    The instance is warmed first (shared caches, like a sweep point), so
    the cell isolates exactly the work the PR-4 ``ItemStore`` flattened:
    steps 1-4 plus materialization into columns.  ``rows()`` forces the
    lazily adopted columns so the fast cell pays materialization too.
    """
    from repro.algos.nonpreemptive import nonp_dual_schedule, three_halves_nonpreemptive

    warm = fresh(inst)
    T = three_halves_nonpreemptive(warm, build_schedule=False).T
    out: dict[str, float] = {}
    for kernel in KERNELS:
        out[f"nonpconstruct/{fixture_name}/{kernel}"] = best_of(
            lambda k=kernel: nonp_dual_schedule(warm, T, kernel=k).rows(), reps
        )
    out[f"speedup/nonp-construct/{fixture_name}"] = (
        out[f"nonpconstruct/{fixture_name}/fraction"]
        / out[f"nonpconstruct/{fixture_name}/fast"]
    )
    return out


def bench_service(inst: Instance, fixture_name: str, reps: int) -> dict[str, float]:
    """The mixed S5 burst: 4-shard service vs naive per-request loop.

    One Experiment-S5 measurement (``run_service_throughput`` is the
    single harness — same pool/burst builders, same best-of protocol)
    pinned at the acceptance point: 4 shards, 2 warm instances per
    shard.
    """
    from repro.experiments.scaling import run_service_throughput

    timing = run_service_throughput(
        inst, shard_counts=(4,), rounds=2, repeats=reps, max_instances=2
    )[0]
    return {
        f"service/{fixture_name}/loop": timing.loop_seconds,
        f"service/{fixture_name}/batch": timing.service_seconds,
        f"speedup/service/{fixture_name}": timing.speedup,
        f"service/{fixture_name}/peak_instances": float(timing.peak_instances),
        f"service/{fixture_name}/max_instances": float(timing.max_instances),
    }


def bench_procshards(inst: Instance, fixture_name: str, reps: int) -> dict[str, float]:
    """Thread vs process shard backends on the identical S5 burst.

    Pure backend-vs-backend (no naive-loop baseline — that lives in the
    ``service`` family): the same mixed burst through ``SolveService``
    with ``workers="thread"`` and ``workers="process"`` at matched
    worker counts.  Each measurement restarts the service per repetition
    (cold LRUs; shard threads and worker children start outside the
    clock) and times the burst only.

    Interpret against ``meta/cpu_count``: with a single CPU the parent's
    pump/loop threads and every worker child timeshare one core, so the
    family records scheduler contention, not serialization overhead or
    scaling — the ``w1`` acceptance ratio is only meaningful (and only
    asserted in CI) on >= 2 CPUs.
    """
    import asyncio

    from repro.experiments.scaling import service_burst, service_pool
    from repro.service.engine import ServiceConfig, SolveService

    pool = service_pool(inst)
    counts = (1, 2, 4)
    out: dict[str, float] = {}
    secs: dict[tuple[str, int], float] = {}
    for workers in ("thread", "process"):
        for w in counts:
            config = ServiceConfig(shards=w, max_instances=2, workers=workers)

            async def once(config=config):
                async with SolveService(config) as svc:
                    burst = service_burst(pool, rounds=2)
                    t0 = time.perf_counter()
                    await svc.submit_many(burst)
                    return time.perf_counter() - t0

            best = min(asyncio.run(once()) for _ in range(reps))
            secs[(workers, w)] = best
            out[f"procshards/{fixture_name}/{workers}/w{w}"] = best
    for w in counts:
        out[f"speedup/procshards/{fixture_name}/w{w}"] = (
            secs[("thread", w)] / secs[("process", w)]
        )
    out[f"speedup/procshards/{fixture_name}"] = (
        secs[("thread", counts[-1])] / secs[("process", counts[-1])]
    )
    return out


def bench_plans(inst: Instance, fixture_name: str, reps: int) -> dict[str, float]:
    """Pair-native probe plans: warm/cold single-solve search latency (PR 9).

    Bounds-only single solves isolate the search layer: the plan
    generators' probes, memo table, bracket bookkeeping and certificate
    assembly — no schedule construction.  ``use_grid=False`` on both
    sides so the cell measures the scalar plan drive, not the flattened
    grids.  The cells are microseconds-scale, so each measurement times
    an inner block and divides.
    """
    from repro.algos.batch_api import BatchItem, solve_batch

    def block(fn, inner: int) -> float:
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            for _ in range(inner):
                fn()
            best = min(best, (time.perf_counter() - t0) / inner)
        return best

    out: dict[str, float] = {}
    warm_by_variant: dict[Variant, float] = {}
    inst_warm = fresh(inst)
    for variant in Variant:
        item = BatchItem(
            instance=inst_warm, variant=variant, algorithm="three_halves",
            schedules=False,
        )
        for kern in KERNELS:  # prime the shared caches outside the clock
            solve_batch([item], kernel=kern, use_grid=False)
        warm = block(
            lambda: solve_batch([item], kernel="fast", use_grid=False), inner=20
        )
        warm_frac = block(
            lambda: solve_batch([item], kernel="fraction", use_grid=False), inner=20
        )
        cold = block(
            lambda v=variant: solve_batch(
                [BatchItem(instance=fresh(inst), variant=v,
                           algorithm="three_halves", schedules=False)],
                kernel="fast", use_grid=False,
            ),
            inner=5,
        )
        out[f"plans/{fixture_name}/{variant.value}/warm"] = warm
        out[f"plans/{fixture_name}/{variant.value}/cold"] = cold
        out[f"speedup/plans/{fixture_name}/{variant.value}"] = warm_frac / warm
        warm_by_variant[variant] = warm_frac / warm
    out[f"speedup/plans/{fixture_name}"] = min(
        warm_by_variant[Variant.SPLITTABLE], warm_by_variant[Variant.PREEMPTIVE]
    )
    return out


def bench_shortcut(inst: Instance, fixture_name: str, reps: int) -> dict[str, float]:
    """Cold non-preemptive solves with the class_tmax short-circuit on/off."""
    from repro.core import fastnum

    out: dict[str, float] = {}
    saved = fastnum.CHEAP_TMAX_SHORTCUT
    try:
        for label, flag in (("on", True), ("off", False)):
            fastnum.CHEAP_TMAX_SHORTCUT = flag
            out[f"shortcut/{fixture_name}/nonp/{label}"] = bench_solve(
                inst, Variant.NONPREEMPTIVE, "fast", reps
            )
    finally:
        fastnum.CHEAP_TMAX_SHORTCUT = saved
    out[f"speedup/shortcut/{fixture_name}"] = (
        out[f"shortcut/{fixture_name}/nonp/off"]
        / out[f"shortcut/{fixture_name}/nonp/on"]
    )
    return out


def bench_grid_nonp(reps: int) -> dict[str, float]:
    """Flattened nonp grid vs scalar probes at large ``c`` (wide fixture)."""
    if not batchdual.HAVE_NUMPY:
        return {}
    inst = FIXTURES["wide"]()
    ms = sweep_ms(inst)
    out: dict[str, float] = {}
    for label, grid in (("scalar", False), ("grid", True), ("auto", None)):
        out[f"gridnonp/wide/{label}"] = best_of(
            lambda g=grid: sweep_machines(
                fresh(inst), ms, Variant.NONPREEMPTIVE, schedules=False, use_grid=g
            ),
            reps,
        )
    out["speedup/gridnonp/wide"] = (
        out["gridnonp/wide/scalar"] / out["gridnonp/wide/grid"]
    )
    # The auto policy must track the measured winner (the acceptance
    # check since the class_tmax shortcut flipped the crossover: scalar
    # probes win at every measured c, so auto == scalar modulo noise).
    out["speedup/gridauto/wide"] = (
        min(out["gridnonp/wide/scalar"], out["gridnonp/wide/grid"])
        / out["gridnonp/wide/auto"]
    )
    return out


def bench_xbatch(reps: int) -> dict[str, float]:
    """Cross-instance fused dual tests vs per-item probe loops (PR 8).

    One service micro-batch (16 bounds-only ``eps`` solves — the shard
    dispatch shape at the default ``max_batch``) per fixture shape,
    solved through ``solve_batch`` with ``xbatch=False`` (one Python
    probe loop per item) and ``xbatch=True`` (the lockstep coordinator
    fusing each round's probes across instances into one padded grid
    evaluation).  Both sides run scalar per-probe streams
    (``use_grid=False``), so the cell isolates exactly what the fused
    path replaces: the probe *streams* are identical by construction
    (the drift regression in ``tests/test_xbatch.py`` pins this) and
    the verdicts bit-identical — only the evaluator changes.  Instances
    are warmed outside the clock (warm per-instance caches, the
    service's repeated-dispatch regime; both sides share the state).

    The fixture shapes are micro-batch compositions, not the
    single-instance ``FIXTURES``: ``medium``/``wide`` draw uniform
    many-class instances in the near-linear regime the paper targets
    (``m`` close to ``c``, where the bracket searches are longest);
    ``zipf`` draws heavy-tailed class sizes at moderate job times.
    Variants round-robin through all three.  The derived
    ``speedup/xbatch/<shape>`` family is the acceptance series
    (≥ 1.3× on medium; the CI smoke floor asserts 1.1 for noise).
    """
    if not batchdual.HAVE_NUMPY:
        return {}
    import random
    from fractions import Fraction

    from repro.algos.batch_api import BatchItem, solve_batch

    def zipf_classes(seed: int, c: int) -> Instance:
        rng = random.Random(seed)
        classes = []
        for i in range(c):
            njobs = max(1, int(6 / (1 + i % 11)))  # zipf-ish class sizes
            classes.append(
                (rng.randint(0, 30), [rng.randint(1, 20) for _ in range(njobs)])
            )
        return Instance.build(rng.randint(max(2, c // 2), c), classes)

    def microbatch(shape: str) -> list:
        variants = (Variant.SPLITTABLE, Variant.NONPREEMPTIVE, Variant.PREEMPTIVE)
        items = []
        for i in range(16):  # the service's default max_batch
            if shape == "medium":
                inst = uniform_instance(
                    m=300 - 2 * i, c=300, n_per_class=2, seed=800 + i, tmax=20
                )
            elif shape == "zipf":
                inst = zipf_classes(860 + i, 250)
            else:  # wide
                inst = uniform_instance(
                    m=400 - 2 * i, c=400, n_per_class=2, seed=880 + i, tmax=20
                )
            items.append(
                BatchItem(
                    instance=inst,
                    variant=variants[i % 3],
                    algorithm="eps",
                    eps=Fraction(1, 1000),
                    schedules=False,
                )
            )
        return items

    out: dict[str, float] = {}
    for shape in ("medium", "zipf", "wide"):
        items = microbatch(shape)
        for xb in (False, True):  # warm the shared instance caches
            solve_batch(items, xbatch=xb, use_grid=False)
        seq = best_of(
            lambda: solve_batch(items, xbatch=False, use_grid=False), reps
        )
        fused = best_of(
            lambda: solve_batch(items, xbatch=True, use_grid=False), reps
        )
        out[f"xbatch/{shape}/seq"] = seq
        out[f"xbatch/{shape}/fused"] = fused
        out[f"speedup/xbatch/{shape}"] = seq / fused
    return out


def bench_obs(reps: int, shapes: tuple[str, ...]) -> dict[str, float]:
    """Tracing overhead: warm bounds-only solves, disarmed vs armed (PR 10).

    The obs contract is "near-zero cost disarmed, cheap armed": every
    seam (probe counting in ``drive_plan``, memo hit/call, dispatch
    decisions, xbatch rounds, ItemStore emits) is one thread-local read
    plus a ``None`` check when no :class:`~repro.obs.trace.TraceScope`
    is armed, and one dict bump when one is.  This family puts a number
    on both sides: the same warm bounds-only solve (the plan tier's
    probe-heavy search shape, scalar probes — the seam-densest path per
    unit work) with no scope vs inside an armed scope.  The derived
    ``speedup/obs/<fixture>`` is the median per-rep off-over-armed
    ratio — 1.0 means free; the
    CI smoke floor asserts ≥ 0.95 on medium (≤ 5% armed overhead, which
    bounds the disarmed overhead from above since disarmed does
    strictly less work per seam).
    """
    from repro.algos.batch_api import BatchItem, solve_batch
    from repro.obs.trace import TraceScope

    def paired(fn, inner: int) -> tuple[float, float, float]:
        # The armed scope is entered OUTSIDE the timed region: the
        # service arms one TraceScope per micro-batch, so the per-solve
        # question is what the *seams* cost inside an armed scope, not
        # what scope construction costs per solve (that is per-batch
        # and amortized like the rest of dispatch overhead).
        #
        # Off and armed blocks run as adjacent pairs within each rep,
        # and the reported ratio is the MEDIAN of the per-rep ratios:
        # adjacent blocks (~5 ms apart) share the same noise
        # environment, so each ratio is a clean paired sample even when
        # the absolute cell time drifts 50% between reps on a shared
        # runner — independent best-of minima do not survive that
        # drift.  The pair order flips every rep so a scheduler
        # preemption that tends to land on the *second* busy block of a
        # pair does not bias one side.  GC is paused while timing (as
        # timeit does): the earlier bench families leave enough garbage
        # that a collection landing inside one block swamps the seam
        # cost.
        def timed_off() -> float:
            t0 = time.perf_counter()
            for _ in range(inner):
                fn()
            return (time.perf_counter() - t0) / inner

        def timed_armed() -> float:
            with TraceScope():
                t0 = time.perf_counter()
                for _ in range(inner):
                    fn()
                return (time.perf_counter() - t0) / inner

        ratios: list[float] = []
        best_off = best_armed = float("inf")
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for rep in range(reps):
                if rep % 2 == 0:
                    off = timed_off()
                    armed = timed_armed()
                else:
                    armed = timed_armed()
                    off = timed_off()
                ratios.append(off / armed)
                best_off = min(best_off, off)
                best_armed = min(best_armed, armed)
        finally:
            if gc_was_enabled:
                gc.enable()
        ratios.sort()
        return best_off, best_armed, ratios[len(ratios) // 2]

    out: dict[str, float] = {}
    for fixture_name in shapes:
        inst = FIXTURES[fixture_name]()
        item = BatchItem(
            instance=inst, variant=Variant.NONPREEMPTIVE,
            algorithm="three_halves", schedules=False,
        )
        solve_batch([item], use_grid=False)  # warm the shared caches

        def run_one(item=item):
            solve_batch([item], use_grid=False)

        # Best-of-passes on the *ratio*: the claim is an upper bound on
        # armed overhead, and noise only ever inflates the apparent
        # overhead of a whole pass (a busy core biases every pair in
        # it), so the cleanest pass — the one with the highest median
        # ratio — is the accurate one.  Early-exit once a pass shows
        # the overhead comfortably inside the CI floor.
        off = armed = ratio = None
        for _ in range(3):
            pass_off, pass_armed, pass_ratio = paired(run_one, inner=200)
            if ratio is None or pass_ratio > ratio:
                off, armed, ratio = pass_off, pass_armed, pass_ratio
            if ratio >= 0.98:
                break
        out[f"obs/{fixture_name}/off"] = off
        out[f"obs/{fixture_name}/armed"] = armed
        out[f"speedup/obs/{fixture_name}"] = ratio
    return out


def run(fixtures: dict, reps: int, plans_only: bool = False) -> dict[str, float]:
    results: dict[str, float] = {}

    def record(name: str, value: float) -> None:
        results[name] = value
        unit = "x" if name.startswith("speedup/") else " s"
        shown = f"{value:9.2f} x" if unit == "x" else f"{value * 1000:9.3f} ms"
        print(f"{name:50s} {shown}")

    if plans_only:
        for fixture_name, make in fixtures.items():
            for name, value in bench_plans(make(), fixture_name, max(reps, 3)).items():
                record(name, value)
        return results

    for fixture_name, make in fixtures.items():
        inst = make()
        for variant in Variant:
            times = {}
            for kernel in KERNELS:
                seconds = bench_solve(inst, variant, kernel, reps)
                times[kernel] = seconds
                record(f"solve/{fixture_name}/{variant.value}/{kernel}", seconds)
            record(
                f"speedup/{fixture_name}/{variant.value}",
                times["fraction"] / times["fast"],
            )

        ms = sweep_ms(inst)
        stream = service_ms(inst)
        for variant in Variant:
            loop = best_of(
                lambda: [solve(fresh(inst, m), variant) for m in ms], reps
            )
            full = best_of(lambda: sweep_machines(fresh(inst), ms, variant), reps)
            bounds = best_of(
                lambda: sweep_machines(fresh(inst), ms, variant, schedules=False),
                reps,
            )
            record(f"sweep/{fixture_name}/{variant.value}/loop", loop)
            record(f"sweep/{fixture_name}/{variant.value}/full", full)
            record(f"sweep/{fixture_name}/{variant.value}/bounds", bounds)
            record(f"speedup/sweep/{fixture_name}/{variant.value}/full", loop / full)
            record(
                f"speedup/sweep/{fixture_name}/{variant.value}/bounds", loop / bounds
            )

            many_loop = best_of(
                lambda: [solve(fresh(inst, m), variant) for m in stream], reps
            )
            many_batch = best_of(
                lambda: solve_many([fresh(inst, m) for m in stream], variant), reps
            )
            record(f"many/{fixture_name}/{variant.value}/loop", many_loop)
            record(f"many/{fixture_name}/{variant.value}/batch", many_batch)
            record(
                f"speedup/many/{fixture_name}/{variant.value}", many_loop / many_batch
            )
        for name, value in bench_nonp_construct(inst, fixture_name, max(reps, 3)).items():
            record(name, value)
        for name, value in bench_service(inst, fixture_name, max(reps, 3)).items():
            record(name, value)
        for name, value in bench_procshards(inst, fixture_name, max(reps, 3)).items():
            record(name, value)
        for name, value in bench_plans(inst, fixture_name, max(reps, 3)).items():
            record(name, value)
        for name, value in bench_shortcut(inst, fixture_name, reps).items():
            record(name, value)
    for name, value in bench_grid_nonp(max(reps, 3)).items():
        record(name, value)
    for name, value in bench_xbatch(max(reps, 5)).items():
        record(name, value)
    obs_shapes = tuple(k for k in fixtures if k in ("medium", "wide")) or ("medium",)
    for name, value in bench_obs(max(reps, 21), obs_shapes).items():
        record(name, value)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR10.json"),
        help="output JSON path (default: repo-root BENCH_PR10.json)",
    )
    parser.add_argument("--reps", type=int, default=7, help="repetitions per cell")
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: medium fixture only, 2 repetitions",
    )
    parser.add_argument(
        "--plans-only", action="store_true",
        help="run only the plans family (the PyPy CI job's cheap profile)",
    )
    args = parser.parse_args(argv)

    fixtures = {"medium": FIXTURES["medium"]} if args.smoke else dict(FIXTURES)
    reps = 2 if args.smoke else args.reps
    results = run(fixtures, reps, plans_only=args.plans_only)
    results["meta/have_numpy"] = 1.0 if batchdual.HAVE_NUMPY else 0.0
    # The procshards family is only a serialization-overhead measurement
    # when parent and child can actually run in parallel; on one CPU it
    # measures timesharing.  Record the count so readers (and the CI
    # floor assert) can tell which regime produced the numbers.
    results["meta/cpu_count"] = float(os.cpu_count() or 1)
    out = Path(args.output)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {len(results)} entries to {out} (python {platform.python_version()})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
