"""Performance trajectory benchmark: ``python benchmarks/run_bench.py``.

Times ``repro.solve`` on the standard medium/large/zipf workloads for all
three variants, on both numeric kernels:

* ``fast``     — the scaled-integer kernel (:mod:`repro.core.fastnum` plus
  the integer construction paths), the library default;
* ``fraction`` — the preserved pre-kernel Fraction-only reference path.

Results are written as a flat ``{bench_name: seconds}`` JSON (default
``BENCH_PR1.json`` in the repository root) so future PRs can diff the
trajectory.  Bench names follow ``solve/<fixture>/<variant>/<kernel>``;
derived ``speedup/<fixture>/<variant>`` entries record the
fraction-over-fast ratio (dimensionless, for convenience).

Each measurement is the best of ``--reps`` runs on a freshly constructed
instance (cold per-instance caches), so the per-solve cache building is
charged to every run of both kernels alike.

``--smoke`` restricts to the medium fixture with fewer repetitions — used
by CI to catch gross regressions without burning minutes.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algos.api import solve  # noqa: E402
from repro.core.bounds import Variant  # noqa: E402
from repro.core.instance import Instance  # noqa: E402
from repro.generators import uniform_instance, zipf_instance  # noqa: E402

FIXTURES = {
    "medium": lambda: uniform_instance(m=8, c=12, n_per_class=6, seed=101),
    "large": lambda: uniform_instance(m=16, c=40, n_per_class=20, seed=202),
    "zipf": lambda: zipf_instance(m=8, c=16, seed=303),
}
KERNELS = ("fast", "fraction")


def bench_solve(inst: Instance, variant: Variant, kernel: str, reps: int) -> float:
    """Best-of-``reps`` wall time of one solve, cold caches each run."""
    best = float("inf")
    for _ in range(reps):
        fresh = Instance(m=inst.m, setups=inst.setups, jobs=inst.jobs)
        t0 = time.perf_counter()
        solve(fresh, variant, "three_halves", kernel=kernel)
        best = min(best, time.perf_counter() - t0)
    return best


def run(fixtures: dict, reps: int) -> dict[str, float]:
    results: dict[str, float] = {}
    for fixture_name, make in fixtures.items():
        inst = make()
        for variant in Variant:
            times = {}
            for kernel in KERNELS:
                seconds = bench_solve(inst, variant, kernel, reps)
                name = f"solve/{fixture_name}/{variant.value}/{kernel}"
                results[name] = seconds
                times[kernel] = seconds
                print(f"{name:45s} {seconds * 1000:9.3f} ms")
            speedup = times["fraction"] / times["fast"]
            results[f"speedup/{fixture_name}/{variant.value}"] = speedup
            print(f"{'speedup/' + fixture_name + '/' + variant.value:45s} {speedup:9.2f} x")
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR1.json"),
        help="output JSON path (default: repo-root BENCH_PR1.json)",
    )
    parser.add_argument("--reps", type=int, default=7, help="repetitions per cell")
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: medium fixture only, 2 repetitions",
    )
    args = parser.parse_args(argv)

    fixtures = {"medium": FIXTURES["medium"]} if args.smoke else dict(FIXTURES)
    reps = 2 if args.smoke else args.reps
    results = run(fixtures, reps)
    out = Path(args.output)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {len(results)} entries to {out} (python {platform.python_version()})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
