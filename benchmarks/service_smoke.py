"""Service smoke harness: ``python benchmarks/service_smoke.py``.

Boots ``python -m repro.service`` as a real subprocess (stdio JSON-lines
front end, 4 shards, deliberately tight ``--max-instances 1``), fires a
mixed 50-request burst (all three variants, full-schedule and
bounds-only singles, machine-range sweeps, across four instance
fingerprints), and asserts:

* **bit-identity** — every response equals the naive in-process
  ``solve()`` loop's answer, field for field (schedules compared as
  sorted row multisets);
* **bounded memory** — the reported LRU peak stays at or under the
  configured bound and eviction actually ran (two of the burst's four
  fingerprints share a shard, which has a single warm slot), and the
  subprocess's peak RSS stays under a generous ceiling;
* **liveness/ordering** — one response line per request, ids echoed in
  request order.

``--faults`` switches to the **chaos smoke**: the same subprocess
harness armed with each fixed :meth:`FaultPlan.preset` in turn (worker
kills, injected delays against short deadlines, in-batch raises, a
non-cooperative wedge against short deadlines, a client that drops its
connection mid-burst — plus mid-batch SIGKILLs under the process
backend) and asserts the robustness contract — the run finishes within
a bounded wall time, every request resolves as either a bit-identical
answer or a structured error from the closed taxonomy,
restart/timeout/shed counters reconcile with the observed errors, and
the server always exits cleanly.

``--workers process`` runs every scenario against the process-isolated
shard backend instead of worker threads; the assertions are identical
(the two backends are bit-compatible by contract).

``--xbatch`` boots the service with the cross-instance fused dual-test
path (``--xbatch`` on the server command line) in whichever mode is
selected — including chaos, so the fault presets also exercise the
lockstep coordinator.  Every assertion is unchanged: the fused path is
bit-identical by contract, so the same reference answers must come back.

Used by CI on both dependency footprints (numpy and minimal — the
service must behave identically on the scalar tier), in both modes and
with both backends.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import subprocess
import sys
import time
from fractions import Fraction
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algos.api import solve  # noqa: E402
from repro.core.bounds import Variant  # noqa: E402
from repro.core.instance import Instance  # noqa: E402
from repro.experiments.scaling import service_burst, service_pool  # noqa: E402
from repro.generators import uniform_instance  # noqa: E402
from repro.service.faults import FaultPlan  # noqa: E402
from repro.service.protocol import ERROR_CODES, instance_to_obj, parse_time  # noqa: E402

BURST_SIZE = 50
MAX_RSS_KIB = 600_000  # ~586 MiB — an order of magnitude above observed (~40 MiB)
CHAOS_BURST = 16
CHAOS_WALL_S = 120.0  # hard per-scenario ceiling: chaos must stay bounded
ENV = dict(
    os.environ,
    PYTHONPATH=str(Path(__file__).resolve().parent.parent / "src")
    + os.pathsep
    + os.environ.get("PYTHONPATH", ""),
)


def build_requests() -> list[dict]:
    inst = uniform_instance(m=8, c=12, n_per_class=6, seed=101)
    burst = service_burst(service_pool(inst), rounds=1)[:BURST_SIZE]
    out = []
    for k, req in enumerate(burst):
        obj = {
            "id": k,
            "instance": instance_to_obj(req.instance),
            "variant": req.variant.value,
            "schedules": req.schedules,
        }
        if req.ms is not None:
            obj["ms"] = list(req.ms)
        out.append(obj)
    return out


def reference_results(obj: dict) -> list:
    inst = Instance(
        m=obj["instance"]["m"],
        setups=tuple(obj["instance"]["setups"]),
        jobs=tuple(map(tuple, obj["instance"]["jobs"])),
    )
    ms = obj.get("ms", [inst.m])
    variant = Variant(obj["variant"])  # solve() dispatches on identity
    return [
        solve(Instance(m=m, setups=inst.setups, jobs=inst.jobs), variant)
        for m in ms
    ]


def schedule_key(sched_obj: dict) -> list[tuple]:
    scale = sched_obj["scale"]
    return sorted(
        (m, Fraction(s, scale), Fraction(l, scale), c, j)
        for m, s, l, c, j in zip(
            sched_obj["machine"], sched_obj["start_num"], sched_obj["length_num"],
            sched_obj["cls"], sched_obj["job_idx"],
        )
    )


def reference_schedule_key(schedule) -> list[tuple]:
    return sorted(
        (p.machine, p.start, p.length, p.cls, -1 if p.job is None else p.job.idx)
        for p in schedule.iter_all()
    )


def check_metrics_replies(json_reply: dict, prom_reply: dict,
                          n_requests: int) -> None:
    """The two ``metrics`` exposition variants, shape- and sanity-checked."""
    assert json_reply["ok"] and json_reply["id"] == "metrics"
    metrics = json_reply["metrics"]
    assert sorted(metrics["stages"]) == sorted(
        ["admission", "queue", "assembly", "solve", "encode", "total"]
    ), f"unexpected stage set: {sorted(metrics['stages'])}"
    for stage in ("admission", "queue", "solve", "total"):
        hist = metrics["stages"][stage]
        assert hist["count"] == n_requests, (
            f"stage {stage}: observed {hist['count']} of {n_requests} requests"
        )
        # the wire shape is all-int so merges stay exact
        assert isinstance(hist["total_us"], int)
        assert all(isinstance(b, int) for b in hist["buckets"])
    counters = metrics["counters"]
    assert any(k.startswith("probe.") for k in counters), (
        f"no probe counters in {sorted(counters)}"
    )
    assert prom_reply["ok"] and prom_reply["id"] == "metrics-prom"
    text = prom_reply["metrics_text"]
    assert "# TYPE repro_stage_seconds histogram" in text
    assert 'repro_stage_seconds_count{stage="solve"}' in text


def smoke(workers: str = "thread", xbatch: bool = False) -> int:
    requests = build_requests()
    lines = [json.dumps(o) for o in requests]
    lines.append(json.dumps({"id": "stats", "op": "stats"}))
    lines.append(json.dumps({"id": "metrics", "op": "metrics"}))
    lines.append(json.dumps(
        {"id": "metrics-prom", "op": "metrics", "format": "prometheus"}
    ))
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.service",
            "--shards", "4", "--max-instances", "1",
            "--workers", workers,
        ]
        + (["--xbatch"] if xbatch else []),
        input="\n".join(lines) + "\n",
        capture_output=True, text=True, env=ENV, timeout=600,
    )
    assert proc.returncode == 0, f"service exited {proc.returncode}: {proc.stderr}"
    replies = [json.loads(line) for line in proc.stdout.splitlines() if line.strip()]
    assert len(replies) == len(requests) + 3, (
        f"expected {len(requests) + 3} response lines, got {len(replies)}"
    )
    assert [r["id"] for r in replies[:-3]] == [o["id"] for o in requests], (
        "responses out of request order"
    )
    check_metrics_replies(replies[-2], replies[-1], len(requests))

    solves = bounds = 0
    for obj, reply in zip(requests, replies):
        assert reply["ok"], f"request {obj['id']} failed: {reply.get('error')}"
        refs = reference_results(obj)
        got = reply["results"]
        assert len(got) == len(refs), f"request {obj['id']}: result count mismatch"
        for res, ref in zip(got, refs):
            assert parse_time(res["T"]) == ref.T, f"request {obj['id']}: T mismatch"
            assert parse_time(res["ratio_bound"]) == ref.ratio_bound
            assert parse_time(res["opt_lower_bound"]) == ref.opt_lower_bound
            if res["kind"] == "solve":
                solves += 1
                assert parse_time(res["makespan"]) == ref.makespan
                assert schedule_key(res["schedule"]) == reference_schedule_key(
                    ref.schedule
                ), f"request {obj['id']}: schedule rows differ"
            else:
                bounds += 1

    stats_reply = replies[-3]
    assert stats_reply["ok"] and stats_reply["id"] == "stats"
    stats = stats_reply["stats"]
    assert stats["requests"] == len(requests)
    assert stats["peak_instances"] <= stats["max_instances"], (
        f"LRU peak {stats['peak_instances']} exceeded bound {stats['max_instances']}"
    )
    assert stats["evictions"] > 0, "burst was sized to force at least one eviction"
    maxrss = stats.get("maxrss_kib")
    if maxrss is not None:
        assert maxrss < MAX_RSS_KIB, f"service RSS {maxrss} KiB over {MAX_RSS_KIB} KiB"
    assert stats["workers"] == workers
    mode = f"{workers}+xbatch" if xbatch else workers
    print(
        f"service smoke ok [{mode}]: {len(requests)} requests "
        f"({solves} schedules, {bounds} bounds) bit-identical; peak warm "
        f"{stats['peak_instances']}/{stats['max_instances']}, "
        f"{stats['evictions']} evictions, batches {stats['batches']}, "
        f"maxrss {maxrss} KiB"
    )
    return 0


# --------------------------------------------------------------------------- #
# chaos mode: the fixed FaultPlan preset set
# --------------------------------------------------------------------------- #


def chaos_requests(timeout_ms: int | None = None) -> list[dict]:
    """A small deterministic burst over two fingerprints (chaos payload)."""
    pool = [
        uniform_instance(m=3, c=3, n_per_class=3, seed=7),
        uniform_instance(m=4, c=2, n_per_class=4, seed=9),
    ]
    out = []
    for k in range(CHAOS_BURST):
        inst = pool[k % len(pool)]
        obj = {
            "id": k,
            "instance": instance_to_obj(inst),
            "variant": Variant.NONPREEMPTIVE.value,
            "schedules": k % 3 != 0,
        }
        if timeout_ms is not None:
            obj["timeout_ms"] = timeout_ms
        out.append(obj)
    return out


def check_reply(obj: dict, reply: dict, expect_codes: set[str]) -> str:
    """One chaos reply: bit-identical answer, or a well-formed error.

    Returns the outcome — ``"ok"`` or the error code — for accounting.
    """
    assert reply["id"] == obj["id"], f"id mismatch: {reply} vs {obj}"
    if reply["ok"]:
        refs = reference_results(obj)
        got = reply["results"]
        assert len(got) == len(refs)
        for res, ref in zip(got, refs):
            assert parse_time(res["T"]) == ref.T, f"request {obj['id']}: T mismatch"
            assert parse_time(res["ratio_bound"]) == ref.ratio_bound
            assert parse_time(res["opt_lower_bound"]) == ref.opt_lower_bound
            if res["kind"] == "solve":
                assert parse_time(res["makespan"]) == ref.makespan
                assert schedule_key(res["schedule"]) == reference_schedule_key(
                    ref.schedule
                ), f"request {obj['id']}: schedule rows differ"
        return "ok"
    error = reply["error"]
    assert isinstance(error, dict), f"unstructured error: {error!r}"
    assert error["code"] in ERROR_CODES, f"unknown code {error['code']!r}"
    assert error["code"] in expect_codes, (
        f"request {obj['id']}: unexpected {error['code']!r} "
        f"(allowed: {sorted(expect_codes)}): {error['message']}"
    )
    assert isinstance(error["retryable"], bool)
    return error["code"]


def reconcile(stats: dict, outcomes: list[str]) -> None:
    """Counters must account for every shed / timed-out / restarted unit."""
    assert stats["timeouts"] == outcomes.count("timeout"), (
        f"stats.timeouts={stats['timeouts']} vs "
        f"{outcomes.count('timeout')} timeout replies"
    )
    assert stats["shed"] == outcomes.count("overloaded")
    assert stats["restarts"] <= 3  # the default max_restarts bound
    assert stats["worker_deaths"] >= stats["restarts"]
    assert stats["failed_shards"] == 0, "chaos presets stay within the budget"


def run_stdio_scenario(name: str, expect_codes: set[str],
                       timeout_ms: int | None = None,
                       workers: str = "thread",
                       xbatch: bool = False) -> str:
    plan = FaultPlan.preset(name)
    objs = chaos_requests(timeout_ms)
    lines = [json.dumps(o) for o in objs]
    lines.append(json.dumps({"id": "stats", "op": "stats"}))
    start = time.monotonic()
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.service",
            "--shards", "1", "--max-batch", "2",
            "--workers", workers,
            "--faults", json.dumps(plan.to_obj()),
        ]
        + (["--xbatch"] if xbatch else []),
        input="\n".join(lines) + "\n",
        capture_output=True, text=True, env=ENV, timeout=CHAOS_WALL_S,
    )
    wall = time.monotonic() - start
    assert wall < CHAOS_WALL_S, f"{name}: wall {wall:.1f}s over bound"
    assert proc.returncode == 0, f"{name}: exited {proc.returncode}: {proc.stderr}"
    replies = [json.loads(line) for line in proc.stdout.splitlines() if line.strip()]
    assert len(replies) == len(objs) + 1, (
        f"{name}: expected {len(objs) + 1} replies, got {len(replies)}"
    )
    outcomes = [
        check_reply(obj, reply, expect_codes)
        for obj, reply in zip(objs, replies)
    ]
    stats_reply = replies[-1]
    assert stats_reply["ok"] and stats_reply["id"] == "stats"
    reconcile(stats_reply["stats"], outcomes)
    errors = len(outcomes) - outcomes.count("ok")
    assert errors > 0, f"{name}: the injected fault never surfaced"
    return (
        f"{name}: {outcomes.count('ok')} ok / {errors} structured errors, "
        f"deaths {stats_reply['stats']['worker_deaths']}, "
        f"restarts {stats_reply['stats']['restarts']}, "
        f"timeouts {stats_reply['stats']['timeouts']}, wall {wall:.1f}s"
    )


def run_drop_scenario(workers: str = "thread", xbatch: bool = False) -> str:
    """Client vanishes mid-burst; the server must shrug and keep serving."""
    plan = FaultPlan.preset("drop")
    drop_after = plan.drop_connection_after()
    objs = chaos_requests()
    start = time.monotonic()
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service",
            "--tcp", "127.0.0.1:0", "--shards", "1",
            "--workers", workers,
        ]
        + (["--xbatch"] if xbatch else []),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=ENV,
    )
    try:
        banner = proc.stderr.readline()
        assert "listening on" in banner, f"no banner: {banner!r}"
        host, port = banner.rsplit(" ", 1)[-1].strip().rsplit(":", 1)

        async def drive():
            # Connection 1: pipeline `drop_after` requests, vanish unread.
            _, writer = await asyncio.open_connection(host, int(port))
            for obj in objs[:drop_after]:
                writer.write((json.dumps(obj) + "\n").encode())
            await writer.drain()
            writer.close()
            # Connection 2: the rest of the burst, read everything.
            reader, writer = await asyncio.open_connection(host, int(port))
            tail = objs[drop_after:]
            for obj in tail:
                writer.write((json.dumps(obj) + "\n").encode())
            writer.write(
                (json.dumps({"id": "stats", "op": "stats"}) + "\n").encode()
            )
            writer.write(
                (json.dumps({"id": "bye", "op": "shutdown"}) + "\n").encode()
            )
            await writer.drain()
            replies = [
                json.loads(await reader.readline()) for _ in range(len(tail) + 2)
            ]
            writer.close()
            return replies

        replies = asyncio.run(asyncio.wait_for(drive(), timeout=CHAOS_WALL_S))
        tail = objs[drop_after:]
        outcomes = [
            check_reply(obj, reply, set()) for obj, reply in zip(tail, replies)
        ]
        assert outcomes == ["ok"] * len(tail)  # a dropped peer harms nobody
        stats_reply = replies[len(tail)]
        assert stats_reply["ok"]
        reconcile(stats_reply["stats"], outcomes)
        assert replies[-1]["bye"] is True
        assert proc.wait(timeout=CHAOS_WALL_S) == 0
        wall = time.monotonic() - start
        assert wall < CHAOS_WALL_S, f"drop: wall {wall:.1f}s over bound"
        return (
            f"drop: dropped after {drop_after}, {len(tail)} follow-up ok, "
            f"clean exit, wall {wall:.1f}s"
        )
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def chaos(workers: str = "thread", xbatch: bool = False) -> int:
    summaries = [
        run_stdio_scenario("kill", {"internal"}, workers=workers,
                           xbatch=xbatch),
        # 100 ms budget vs two injected 250 ms stalls on one worker:
        # the stalled solves and everything queued behind them time out.
        run_stdio_scenario("delay", {"timeout"}, timeout_ms=100,
                           workers=workers, xbatch=xbatch),
        run_stdio_scenario("raise", {"internal"}, workers=workers,
                           xbatch=xbatch),
        # A non-cooperative 1 s busy wedge against 600 ms budgets (long
        # enough to survive a process-backend child spawn, short enough
        # to die inside the wedge): threads surface the timeouts once the
        # wedge ends; processes hard-kill the wedged child at deadline +
        # grace and restart it.
        run_stdio_scenario("wedge", {"timeout"}, timeout_ms=600,
                           workers=workers, xbatch=xbatch),
        run_drop_scenario(workers=workers, xbatch=xbatch),
    ]
    if workers == "process":
        # Mid-batch SIGKILL is process-specific: a thread backend has no
        # child to kill, so the fault would never fire there.
        summaries.append(
            run_stdio_scenario("sigkill", {"internal", "timeout"},
                               workers=workers, xbatch=xbatch)
        )
    mode = f"{workers}+xbatch" if xbatch else workers
    for line in summaries:
        print(f"chaos {line}")
    print(f"service chaos ok [{mode}]: {len(summaries)} scenarios, "
          f"every response bit-identical or structured")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--faults", action="store_true",
        help="run the chaos smoke (fixed FaultPlan presets) instead",
    )
    parser.add_argument(
        "--workers", choices=["thread", "process"], default="thread",
        help="shard worker backend to smoke (default thread)",
    )
    parser.add_argument(
        "--xbatch", action="store_true",
        help="boot the service with the fused cross-instance dual-test "
             "path (same assertions: fused answers are bit-identical)",
    )
    args = parser.parse_args(argv)
    if args.faults:
        return chaos(args.workers, xbatch=args.xbatch)
    return smoke(args.workers, xbatch=args.xbatch)


if __name__ == "__main__":
    raise SystemExit(main())
