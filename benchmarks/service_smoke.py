"""Service smoke harness: ``python benchmarks/service_smoke.py``.

Boots ``python -m repro.service`` as a real subprocess (stdio JSON-lines
front end, 4 shards, deliberately tight ``--max-instances 1``), fires a
mixed 50-request burst (all three variants, full-schedule and
bounds-only singles, machine-range sweeps, across four instance
fingerprints), and asserts:

* **bit-identity** — every response equals the naive in-process
  ``solve()`` loop's answer, field for field (schedules compared as
  sorted row multisets);
* **bounded memory** — the reported LRU peak stays at or under the
  configured bound and eviction actually ran (two of the burst's four
  fingerprints share a shard, which has a single warm slot), and the
  subprocess's peak RSS stays under a generous ceiling;
* **liveness/ordering** — one response line per request, ids echoed in
  request order.

Used by CI on both dependency footprints (numpy and minimal — the
service must behave identically on the scalar tier).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from fractions import Fraction
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algos.api import solve  # noqa: E402
from repro.core.bounds import Variant  # noqa: E402
from repro.core.instance import Instance  # noqa: E402
from repro.experiments.scaling import service_burst, service_pool  # noqa: E402
from repro.generators import uniform_instance  # noqa: E402
from repro.service.protocol import instance_to_obj, parse_time  # noqa: E402

BURST_SIZE = 50
MAX_RSS_KIB = 600_000  # ~586 MiB — an order of magnitude above observed (~40 MiB)


def build_requests() -> list[dict]:
    inst = uniform_instance(m=8, c=12, n_per_class=6, seed=101)
    burst = service_burst(service_pool(inst), rounds=1)[:BURST_SIZE]
    out = []
    for k, req in enumerate(burst):
        obj = {
            "id": k,
            "instance": instance_to_obj(req.instance),
            "variant": req.variant.value,
            "schedules": req.schedules,
        }
        if req.ms is not None:
            obj["ms"] = list(req.ms)
        out.append(obj)
    return out


def reference_results(obj: dict) -> list:
    inst = Instance(
        m=obj["instance"]["m"],
        setups=tuple(obj["instance"]["setups"]),
        jobs=tuple(map(tuple, obj["instance"]["jobs"])),
    )
    ms = obj.get("ms", [inst.m])
    variant = Variant(obj["variant"])  # solve() dispatches on identity
    return [
        solve(Instance(m=m, setups=inst.setups, jobs=inst.jobs), variant)
        for m in ms
    ]


def schedule_key(sched_obj: dict) -> list[tuple]:
    scale = sched_obj["scale"]
    return sorted(
        (m, Fraction(s, scale), Fraction(l, scale), c, j)
        for m, s, l, c, j in zip(
            sched_obj["machine"], sched_obj["start_num"], sched_obj["length_num"],
            sched_obj["cls"], sched_obj["job_idx"],
        )
    )


def reference_schedule_key(schedule) -> list[tuple]:
    return sorted(
        (p.machine, p.start, p.length, p.cls, -1 if p.job is None else p.job.idx)
        for p in schedule.iter_all()
    )


def main() -> int:
    requests = build_requests()
    lines = [json.dumps(o) for o in requests]
    lines.append(json.dumps({"id": "stats", "op": "stats"}))
    env = dict(
        os.environ,
        PYTHONPATH=str(Path(__file__).resolve().parent.parent / "src")
        + os.pathsep
        + os.environ.get("PYTHONPATH", ""),
    )
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.service",
            "--shards", "4", "--max-instances", "1",
        ],
        input="\n".join(lines) + "\n",
        capture_output=True, text=True, env=env, timeout=600,
    )
    assert proc.returncode == 0, f"service exited {proc.returncode}: {proc.stderr}"
    replies = [json.loads(line) for line in proc.stdout.splitlines() if line.strip()]
    assert len(replies) == len(requests) + 1, (
        f"expected {len(requests) + 1} response lines, got {len(replies)}"
    )
    assert [r["id"] for r in replies[:-1]] == [o["id"] for o in requests], (
        "responses out of request order"
    )

    solves = bounds = 0
    for obj, reply in zip(requests, replies):
        assert reply["ok"], f"request {obj['id']} failed: {reply.get('error')}"
        refs = reference_results(obj)
        got = reply["results"]
        assert len(got) == len(refs), f"request {obj['id']}: result count mismatch"
        for res, ref in zip(got, refs):
            assert parse_time(res["T"]) == ref.T, f"request {obj['id']}: T mismatch"
            assert parse_time(res["ratio_bound"]) == ref.ratio_bound
            assert parse_time(res["opt_lower_bound"]) == ref.opt_lower_bound
            if res["kind"] == "solve":
                solves += 1
                assert parse_time(res["makespan"]) == ref.makespan
                assert schedule_key(res["schedule"]) == reference_schedule_key(
                    ref.schedule
                ), f"request {obj['id']}: schedule rows differ"
            else:
                bounds += 1

    stats_reply = replies[-1]
    assert stats_reply["ok"] and stats_reply["id"] == "stats"
    stats = stats_reply["stats"]
    assert stats["requests"] == len(requests)
    assert stats["peak_instances"] <= stats["max_instances"], (
        f"LRU peak {stats['peak_instances']} exceeded bound {stats['max_instances']}"
    )
    assert stats["evictions"] > 0, "burst was sized to force at least one eviction"
    maxrss = stats.get("maxrss_kib")
    if maxrss is not None:
        assert maxrss < MAX_RSS_KIB, f"service RSS {maxrss} KiB over {MAX_RSS_KIB} KiB"
    print(
        f"service smoke ok: {len(requests)} requests ({solves} schedules, "
        f"{bounds} bounds) bit-identical; peak warm "
        f"{stats['peak_instances']}/{stats['max_instances']}, "
        f"{stats['evictions']} evictions, batches {stats['batches']}, "
        f"maxrss {maxrss} KiB"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
