"""Benchmark T1 — every implementable Table-1 cell on the medium workload.

Each benchmark times one (variant, algorithm) cell and records the measured
approximation ratio against the certified dual lower bound in
``extra_info`` — the data behind the reproduction of Table 1.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algos.api import solve
from repro.baselines import (
    full_split_schedule,
    grouped_lpt_schedule,
    job_lpt_schedule,
    monma_potts_schedule,
    next_fit_schedule,
)
from repro.core import Variant, validate_schedule

OURS = [
    (Variant.NONPREEMPTIVE, "two"),
    (Variant.NONPREEMPTIVE, "eps"),
    (Variant.NONPREEMPTIVE, "three_halves"),
    (Variant.PREEMPTIVE, "two"),
    (Variant.PREEMPTIVE, "eps"),
    (Variant.PREEMPTIVE, "three_halves"),
    (Variant.SPLITTABLE, "two"),
    (Variant.SPLITTABLE, "eps"),
    (Variant.SPLITTABLE, "three_halves"),
]


@pytest.mark.parametrize("variant,algorithm", OURS, ids=lambda p: str(p))
def test_table1_ours(benchmark, medium_instance, variant, algorithm):
    result = benchmark(lambda: solve(medium_instance, variant, algorithm))
    cmax = validate_schedule(result.schedule, variant)
    ratio = Fraction(cmax) / Fraction(result.opt_lower_bound)
    benchmark.extra_info["variant"] = str(variant)
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["ratio_vs_dual_lb"] = float(ratio)
    benchmark.extra_info["guarantee"] = float(result.ratio_bound)
    # the certified contract: makespan <= ratio_bound * T
    assert cmax <= result.ratio_bound * result.T * (1 + Fraction(1, 2**40))


BASELINES = [
    ("monma_potts[10]", Variant.PREEMPTIVE, monma_potts_schedule, 2.0),
    ("next_fit[6]", Variant.NONPREEMPTIVE, next_fit_schedule, 3.0),
    ("grouped_lpt", Variant.NONPREEMPTIVE, grouped_lpt_schedule, None),
    ("job_lpt", Variant.NONPREEMPTIVE, job_lpt_schedule, None),
    ("full_split", Variant.SPLITTABLE, full_split_schedule, None),
]


@pytest.mark.parametrize("name,variant,runner,bound", BASELINES, ids=lambda p: str(p))
def test_table1_baselines(benchmark, medium_instance, name, variant, runner, bound):
    schedule = benchmark(lambda: runner(medium_instance))
    cmax = validate_schedule(schedule, variant)
    ref = solve(medium_instance, variant, "three_halves").opt_lower_bound
    benchmark.extra_info["algorithm"] = name
    benchmark.extra_info["ratio_vs_dual_lb"] = float(Fraction(cmax) / Fraction(ref))
    if bound is not None:
        from repro.core import lower_bound

        assert cmax <= bound * lower_bound(medium_instance, variant)
