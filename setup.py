"""Shim for legacy tooling; the src-layout package is declared in pyproject.toml."""

from setuptools import setup

setup()
