"""Tests for Algorithm 3 / Theorem 5 (general preemptive instances)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Instance, RejectedMakespanError, Variant, validate_schedule
from repro.core.bounds import t_min
from repro.algos.pmtn_general import PmtnBuildParts, pmtn_dual_schedule, pmtn_dual_test
from repro.algos.twoapprox import two_approx_grouped

from .conftest import mk


def inst_strategy(max_m=8, max_classes=6, max_jobs=5, max_t=20, max_s=12):
    return st.builds(
        Instance.build,
        st.integers(1, max_m),
        st.lists(
            st.tuples(
                st.integers(1, max_s),
                st.lists(st.integers(1, max_t), min_size=1, max_size=max_jobs),
            ),
            min_size=1,
            max_size=max_classes,
        ),
    )


def general_case_instance() -> Instance:
    """An instance with a non-empty I0exp and an I*chp knapsack at T=20.

    T = 20: class 0: s=11 > 10, s+P=16 ∈ (15,20) → I0exp (large machine).
    class 1: s=12, P=16 → I+exp.  class 2: s=3 < 5, job 9: 3+9=12 > 10 → star.
    class 3: s=2 < 5, small jobs → I-chp non-star.
    """
    return mk(
        4,
        (11, [5]),
        (12, [8, 8]),
        (3, [9, 2]),
        (2, [3, 3]),
    )


def accepted_3a_instance() -> Instance:
    """Accepted at T=20 with case 3a: 8 large machines feed the bottoms.

    l = 8 large classes (11,[5]); 5 star classes (3,[8]) with demand 55 over
    free time F = 40 and L* = 20; the knapsack selects two, splits one
    (x = 6/7) and leaves two for the large-machine bottoms.
    """
    return mk(10, *([(11, [5])] * 8 + [(3, [8])] * 5))


class TestDualTestCases:
    def test_trivial_rejection_below_note1(self):
        inst = mk(3, (5, [10]), (1, [1]))
        d = pmtn_dual_test(inst, 10)  # Note 1: OPT >= 15
        assert not d.accepted
        assert d.case == "trivial"

    def test_nice_case_delegates(self):
        inst = mk(6, (12, [8, 8, 8]), (4, [3, 3]))
        d = pmtn_dual_test(inst, 20)
        assert d.case == "nice"
        assert d.accepted

    def test_general_case_detected(self):
        inst = general_case_instance()
        d = pmtn_dual_test(inst, 20)
        assert d.case in ("3a", "3b")
        assert d.l == 1
        assert d.partition.exp_zero == (0,)

    def test_case_3a_y_negative_rejected(self):
        # residual machines entirely eaten by I+exp: F = 0 < L* → reject
        inst = mk(
            3,
            (11, [5]),            # I0exp at T=20
            (12, [8, 8]),         # I+exp, α'=floor(16/8)=2 → residual full
            (3, [9, 9]),          # star class: 3+9=12 > 10
            (2, [9, 2]),          # star class: 2+9=11 > 10
        )
        d = pmtn_dual_test(inst, 20)
        assert d.case == "3a"
        assert not d.accepted
        assert any("F < L*" in r for r in d.reject_reasons)

    def test_case_3a_accepted_with_knapsack(self):
        inst = accepted_3a_instance()
        d = pmtn_dual_test(inst, 20)
        assert d.case == "3a"
        assert d.accepted
        assert d.knapsack is not None
        # exactly one split class, some unselected classes
        assert d.split_class is not None
        assert len(d.unselected) >= 1
        # the paper's tightness: the derived nice load fills (m-l)T exactly
        assert d.F == 40 and d.L_star == 20 and d.demand_star == 55

    def test_rejects_on_machines(self):
        inst = mk(2, (11, [5]), (12, [8, 8]), (12, [8, 8]))
        d = pmtn_dual_test(inst, 20)
        assert not d.accepted
        assert d.machines_needed > 2

    def test_T_must_be_positive(self):
        with pytest.raises(ValueError):
            pmtn_dual_test(mk(1, (1, [1])), 0)


class TestDualSchedule:
    def test_rejected_raises(self):
        inst = mk(2, (11, [5]), (12, [8, 8]), (12, [8, 8]))
        with pytest.raises(RejectedMakespanError):
            pmtn_dual_schedule(inst, 20)

    @pytest.mark.parametrize("mode", ["alpha", "gamma"])
    def test_general_example_schedule(self, mode):
        inst = general_case_instance()
        T = Fraction(20)
        d = pmtn_dual_test(inst, T, mode)
        assert d.accepted, d.reject_reasons
        parts = PmtnBuildParts(dual=d)
        sched = pmtn_dual_schedule(inst, T, mode, parts_out=parts)
        cmax = validate_schedule(sched, Variant.PREEMPTIVE)
        assert cmax <= Fraction(3, 2) * T
        # the I0exp class occupies exactly one (large) machine, from T/2
        zero_cls = d.partition.exp_zero[0]
        placements = [p for p in sched.iter_all() if p.cls == zero_cls]
        assert {p.machine for p in placements} == {0}
        assert min(p.start for p in placements) == T / 2

    @pytest.mark.parametrize("mode", ["alpha", "gamma"])
    def test_accepted_3a_schedule(self, mode):
        inst = accepted_3a_instance()
        T = Fraction(20)
        sched = pmtn_dual_schedule(inst, T, mode)
        cmax = validate_schedule(sched, Variant.PREEMPTIVE)
        assert cmax <= Fraction(3, 2) * T
        d = pmtn_dual_test(inst, T, mode)
        # unselected classes pay an extra setup: lambda_i = 2 in the schedule
        for i in d.unselected:
            assert sched.setup_count(i) == 2

    def test_large_machine_bottoms_stay_in_half(self):
        inst = general_case_instance()
        T = Fraction(20)
        sched = pmtn_dual_schedule(inst, T)
        d = pmtn_dual_test(inst, T)
        for u in range(d.l):
            for p in sched.items_on(u):
                if p.cls != d.partition.exp_zero[u]:
                    assert p.end <= T / 2, f"bottom item {p} crosses T/2"

    @settings(max_examples=200, deadline=None)
    @given(inst=inst_strategy(), num=st.integers(0, 8))
    def test_accepted_builds_valid_three_halves(self, inst, num):
        tmin = t_min(inst, Variant.PREEMPTIVE)
        T = tmin + tmin * Fraction(num, 8)
        for mode in ("alpha", "gamma"):
            d = pmtn_dual_test(inst, T, mode)
            if not d.accepted:
                continue
            sched = pmtn_dual_schedule(inst, T, mode)
            cmax = validate_schedule(sched, Variant.PREEMPTIVE)
            assert cmax <= Fraction(3, 2) * T

    @settings(max_examples=100, deadline=None)
    @given(inst=inst_strategy())
    def test_2tmin_always_accepted(self, inst):
        """T = 2·Tmin ≥ OPT must be accepted (Theorem 5(i) contrapositive)."""
        T = 2 * t_min(inst, Variant.PREEMPTIVE)
        for mode in ("alpha", "gamma"):
            d = pmtn_dual_test(inst, T, mode)
            assert d.accepted, (inst.describe(), mode, d.reject_reasons)

    @settings(max_examples=80, deadline=None)
    @given(inst=inst_strategy(max_m=6))
    def test_schedule_first_contract(self, inst):
        """Any T ≥ a known-feasible makespan must be accepted."""
        T0 = two_approx_grouped(inst).schedule.makespan()
        for mode in ("alpha", "gamma"):
            d = pmtn_dual_test(inst, T0, mode)
            assert d.accepted, (inst.describe(), mode, d.reject_reasons)
