"""Cross-instance batched dual tests — differential proof of bit-identity.

The xbatch path (``solve_batch(..., xbatch=True)``) fuses many items'
dual-test probes into one padded :class:`repro.core.xbatch.
BatchDualContext` evaluation per lockstep round.  None of that may change
a single answer, so this suite is the PR's center of gravity:

* **kernel differential** — every ``fast_*_xgrid`` evaluator row-for-row
  against the scalar kernel, on every kind/mode, with ragged class
  counts, mixed safe/overflowing members, and numpy absent;
* **engine differential** — seeded fuzz over heterogeneous micro-batches
  (mixed variants, algorithms, eps, machine counts, schedules/bounds,
  sweeps, duplicate fingerprints): ``xbatch=True`` output equals
  ``xbatch=False`` output field for field, placements included;
* **error parity** — invalid items and expired deadlines raise the same
  error either way (first-error contract, cancellation taxonomy);
* **probe-drift regression** — the probe row stream an item emits under
  lockstep equals its solo stream, pinned both against the sequential
  driver and against batch composition.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.algos.api import solve
from repro.algos.batch_api import BatchItem, SweepPoint, solve_batch
from repro.algos.jumping_pmtn import flip_plan_pmtn, pmtn_probe_evaluator
from repro.algos.jumping_split import flip_plan_splittable, split_probe_evaluator
from repro.core import batchdual, xbatch
from repro.core.bounds import Variant
from repro.core.cancel import CancelToken, SolveCancelled
from repro.core.instance import Instance
from repro.core.validate import validate_schedule
from repro.core.xbatch import (
    BatchDualContext,
    fast_base_core_xgrid,
    fast_nonp_test_xgrid,
    fast_pmtn_test_xgrid,
    fast_split_test_xgrid,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

BIG = 10**16  # scales t_max·den / den·num products past the int64 guard


def rand_instance(rng: random.Random, *, scale: int = 1) -> Instance:
    """A small random instance; ``scale`` pushes values past int64 safety."""
    c = rng.randint(1, 5)
    classes = []
    for _ in range(c):
        setup = rng.randint(0, 8) * scale
        jobs = [rng.randint(1, 12) * scale for _ in range(rng.randint(1, 4))]
        classes.append((setup, jobs))
    return Instance.build(rng.randint(1, 6), classes)


def rand_searchy_instance(rng: random.Random) -> Instance:
    """Setup-heavy, ``m`` ≈ ``c`` — the shape whose flip searches run many
    rounds (``t_min`` rejected, real bracket work) instead of accepting
    immediately."""
    c = rng.randint(4, 12)
    classes = [
        (rng.randint(0, 30),
         [rng.randint(1, 20) for _ in range(rng.randint(1, 5))])
        for _ in range(c)
    ]
    return Instance.build(rng.randint(max(2, c - 2), c), classes)


def probe_times(rng: random.Random, inst: Instance, k: int) -> list[Fraction]:
    """Candidate ``T`` values spanning reject → accept for ``inst``."""
    from repro.core.bounds import t_min

    lo = t_min(inst, Variant.SPLITTABLE)
    times = []
    for _ in range(k):
        num = rng.randint(1, 4)
        den = rng.randint(1, 3)
        times.append(lo + Fraction(num, den) * lo / 2)
    times.append(lo)
    times.append(2 * lo)
    return [t for t in times if t > 0]


def placements_key(schedule):
    return sorted(
        (p.machine, p.start, p.length, p.cls, p.job) for p in schedule.iter_all()
    )


def assert_same_output(got, ref):
    """One solve_batch output entry vs its reference, field for field."""
    if isinstance(got, list):
        assert isinstance(ref, list) and len(got) == len(ref)
        for g, r in zip(got, ref):
            assert_same_output(g, r)
        return
    if isinstance(got, SweepPoint):
        assert isinstance(ref, SweepPoint)
        assert got == ref
        return
    assert got.variant == ref.variant
    assert got.algorithm == ref.algorithm
    assert got.T == ref.T
    assert got.ratio_bound == ref.ratio_bound
    assert got.opt_lower_bound == ref.opt_lower_bound
    assert got.makespan == ref.makespan
    assert placements_key(got.schedule) == placements_key(ref.schedule)


# --------------------------------------------------------------------------- #
# kernel differential: fused xgrid evaluators vs the scalar kernel
# --------------------------------------------------------------------------- #


KINDS = [("split", ""), ("nonp", ""), ("pmtn", "alpha"), ("pmtn", "gamma"),
         ("pmtn_base", "")]


def member_rows(rng: random.Random, insts, k: int):
    """Shuffled ``(member, tn, td)`` rows spanning every member's bracket."""
    rows = []
    for mi, inst in enumerate(insts):
        for T in probe_times(rng, inst, k):
            rows.append((mi, T.numerator, T.denominator))
    rng.shuffle(rows)
    return rows


def verdict_fields(kind: str, v):
    if kind == "pmtn_base":
        return v  # (load, m_prime) int tuple
    return tuple(v.__dict__.items()) if hasattr(v, "__dict__") else v


class TestXGridKernelDifferential:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("kind,mode", KINDS)
    def test_fused_rows_match_scalar(self, seed, kind, mode):
        rng = random.Random(1000 + seed)
        insts = [rand_instance(rng) for _ in range(4)]
        xctx = BatchDualContext([inst.fast_ctx() for inst in insts])
        rows = member_rows(rng, insts, 3)
        got = xctx.evaluate(kind, mode, rows)
        want = [xctx.scalar_one(kind, mode, *row) for row in rows]
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert verdict_fields(kind, g) == verdict_fields(kind, w)

    @pytest.mark.parametrize("kind,mode", KINDS)
    def test_overflow_members_fall_back_bit_identical(self, kind, mode):
        """Members past the int64 guard drop to scalar, mixed with safe ones."""
        rng = random.Random(7)
        insts = [rand_instance(rng), rand_instance(rng, scale=BIG)]
        xctx = BatchDualContext([inst.fast_ctx() for inst in insts])
        rows = member_rows(rng, insts, 4)
        got = xctx.evaluate(kind, mode, rows)
        want = [xctx.scalar_one(kind, mode, *row) for row in rows]
        for g, w in zip(got, want):
            assert verdict_fields(kind, g) == verdict_fields(kind, w)

    @pytest.mark.parametrize("kind,mode", KINDS)
    def test_without_numpy_pure_python(self, kind, mode, monkeypatch):
        monkeypatch.setattr(xbatch, "HAVE_NUMPY", False)
        rng = random.Random(11)
        insts = [rand_instance(rng) for _ in range(3)]
        xctx = BatchDualContext([inst.fast_ctx() for inst in insts])
        rows = member_rows(rng, insts, 3)
        got = xctx.evaluate(kind, mode, rows)
        want = [xctx.scalar_one(kind, mode, *row) for row in rows]
        for g, w in zip(got, want):
            assert verdict_fields(kind, g) == verdict_fields(kind, w)

    def test_module_level_wrappers(self):
        rng = random.Random(21)
        insts = [rand_instance(rng) for _ in range(3)]
        xctx = BatchDualContext([inst.fast_ctx() for inst in insts])
        rows = member_rows(rng, insts, 2)
        mis = [r[0] for r in rows]
        tns = [r[1] for r in rows]
        tds = [r[2] for r in rows]
        for fn, kind, mode in (
            (fast_split_test_xgrid, "split", ""),
            (fast_nonp_test_xgrid, "nonp", ""),
            (fast_base_core_xgrid, "pmtn_base", ""),
        ):
            got = fn(xctx, mis, tns, tds)
            want = [
                xctx.scalar_one(kind, mode, mi, tn, td)
                for mi, tn, td in zip(mis, tns, tds)
            ]
            for g, w in zip(got, want):
                assert verdict_fields(kind, g) == verdict_fields(kind, w)
        got = fast_pmtn_test_xgrid(xctx, mis, tns, tds, "gamma")
        want = [
            xctx.scalar_one("pmtn", "gamma", mi, tn, td)
            for mi, tn, td in zip(mis, tns, tds)
        ]
        for g, w in zip(got, want):
            assert verdict_fields("pmtn", g) == verdict_fields("pmtn", w)

    def test_row_vector_validation(self):
        xctx = BatchDualContext([rand_instance(random.Random(3)).fast_ctx()])
        with pytest.raises(ValueError):
            fast_split_test_xgrid(xctx, [0, 0], [1], [1])
        with pytest.raises(ValueError):
            fast_split_test_xgrid(xctx, [0], [0], [1])  # non-positive T
        with pytest.raises(ValueError):
            xctx.evaluate("nope", "", [(0, 1, 1)])

    def test_member_index_appends_and_dedups(self):
        rng = random.Random(5)
        a = rand_instance(rng).fast_ctx()
        b = rand_instance(rng).fast_ctx()
        xctx = BatchDualContext([a])
        assert xctx.member_index(a) == 0
        assert xctx.member_index(b) == 1
        assert xctx.member_index(b) == 1
        assert xctx.members == [a, b]


# --------------------------------------------------------------------------- #
# engine differential: solve_batch(xbatch=True) vs solve_batch(xbatch=False)
# --------------------------------------------------------------------------- #


VARIANTS = list(Variant)


def rand_batch(rng: random.Random, size: int) -> list[BatchItem]:
    """A heterogeneous micro-batch like a service shard would dispatch."""
    items = []
    pool = [
        rand_searchy_instance(rng) if rng.random() < 0.4 else rand_instance(rng)
        for _ in range(max(2, size // 2))
    ]
    for _ in range(size):
        inst = rng.choice(pool)
        if rng.random() < 0.3:  # same fingerprint, different m
            inst = inst.with_machines(rng.randint(1, 7))
        variant = rng.choice(VARIANTS)
        roll = rng.random()
        schedules = rng.random() < 0.5
        if roll < 0.6:
            algorithm = "three_halves"
        elif roll < 0.85:
            algorithm = "eps"
        else:
            algorithm = "two"
            schedules = True  # "two" is schedule-only
        ms = None
        if rng.random() < 0.15 and algorithm != "two":
            ms = tuple(sorted({rng.randint(1, 6) for _ in range(3)}))
        items.append(BatchItem(
            instance=inst,
            variant=variant,
            algorithm=algorithm,
            eps=Fraction(1, rng.choice([3, 10, 100])),
            schedules=schedules,
            ms=ms,
        ))
    return items


class TestSolveBatchDifferential:
    @pytest.mark.parametrize("seed", range(12))
    def test_fuzz_bit_identical(self, seed):
        rng = random.Random(9000 + seed)
        items = rand_batch(rng, rng.randint(2, 8))
        ref = solve_batch(items, xbatch=False)
        got = solve_batch(items, xbatch=True)
        assert len(got) == len(ref)
        for g, r in zip(got, ref):
            assert_same_output(g, r)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_homogeneous_variant_batches(self, variant):
        rng = random.Random(hash(variant.value) & 0xFFFF)
        items = [
            BatchItem(instance=rand_instance(rng), variant=variant,
                      schedules=bool(i % 2))
            for i in range(6)
        ]
        for g, r in zip(solve_batch(items, xbatch=True),
                        solve_batch(items, xbatch=False)):
            assert_same_output(g, r)

    def test_matches_looped_solve_and_validates(self):
        """xbatch output equals fresh solve() and passes the validator."""
        rng = random.Random(77)
        items = [
            BatchItem(instance=rand_instance(rng), variant=v)
            for v in VARIANTS for _ in range(2)
        ]
        results = solve_batch(items, xbatch=True)
        for item, res in zip(items, results):
            fresh = Instance(m=item.instance.m, setups=item.instance.setups,
                             jobs=item.instance.jobs)
            ref = solve(fresh, item.variant)
            assert_same_output(res, ref)
            cmax = validate_schedule(res.schedule, item.variant)
            assert cmax == ref.makespan

    @pytest.mark.parametrize("seed", range(4))
    def test_without_numpy_lockstep_still_identical(self, seed, monkeypatch):
        monkeypatch.setattr(batchdual, "HAVE_NUMPY", False)
        monkeypatch.setattr(xbatch, "HAVE_NUMPY", False)
        rng = random.Random(400 + seed)
        items = rand_batch(rng, 5)
        for g, r in zip(solve_batch(items, xbatch=True),
                        solve_batch(items, xbatch=False)):
            assert_same_output(g, r)

    def test_overflow_boundary_items(self):
        """Huge-value instances force the scalar tier mid-lockstep."""
        rng = random.Random(31)
        items = [
            BatchItem(instance=rand_instance(rng, scale=BIG), variant=v,
                      schedules=False)
            for v in VARIANTS
        ] + [BatchItem(instance=rand_instance(rng), variant=v) for v in VARIANTS]
        for g, r in zip(solve_batch(items, xbatch=True),
                        solve_batch(items, xbatch=False)):
            assert_same_output(g, r)

    def test_fraction_kernel_takes_sequential_path(self):
        rng = random.Random(13)
        items = rand_batch(rng, 4)
        for g, r in zip(solve_batch(items, kernel="fraction", xbatch=True),
                        solve_batch(items, kernel="fraction", xbatch=False)):
            assert_same_output(g, r)

    def test_shared_reps_table_stays_warm(self):
        rng = random.Random(53)
        items = rand_batch(rng, 5)
        reps_a: dict = {}
        reps_b: dict = {}
        got = solve_batch(items, reps=reps_a, xbatch=True)
        ref = solve_batch(items, reps=reps_b, xbatch=False)
        for g, r in zip(got, ref):
            assert_same_output(g, r)
        assert set(reps_a) == set(reps_b)
        # second pass over the now-warm table is still identical
        for g, r in zip(solve_batch(items, reps=reps_a, xbatch=True),
                        solve_batch(items, reps=reps_b, xbatch=False)):
            assert_same_output(g, r)


# --------------------------------------------------------------------------- #
# error parity: same taxonomy, same first error, either path
# --------------------------------------------------------------------------- #


class TestErrorParity:
    def test_bad_eps_raises_same_error(self):
        rng = random.Random(3)
        good = BatchItem(instance=rand_instance(rng))
        # non-trivial (1 < m < n) so the eps search actually starts
        nontrivial = Instance.build(3, [(2, [3, 4]), (1, [5, 2]), (4, [1, 6])])
        bad = BatchItem(instance=nontrivial, algorithm="eps", eps=Fraction(0))
        for batch in ([bad], [good, bad], [good, bad, good]):
            with pytest.raises(ValueError, match="eps") as seq_err:
                solve_batch(batch, xbatch=False)
            with pytest.raises(ValueError, match="eps") as lock_err:
                solve_batch(batch, xbatch=True)
            assert str(seq_err.value) == str(lock_err.value)

    def test_first_error_wins(self):
        """Two failing items: both paths surface the smallest index's error."""
        rng = random.Random(19)
        bad_eps = BatchItem(instance=rand_instance(rng), algorithm="eps",
                            eps=Fraction(-1))
        bad_algo = BatchItem(instance=rand_instance(rng), algorithm="two",
                             schedules=False)
        # invalid algorithm/mode combos are rejected at validation, before
        # any solve — identical up-front error on both paths
        with pytest.raises(ValueError) as a:
            solve_batch([bad_algo, bad_eps], xbatch=False)
        with pytest.raises(ValueError) as b:
            solve_batch([bad_algo, bad_eps], xbatch=True)
        assert str(a.value) == str(b.value)

    def test_expired_token_raises_solvecancelled_both_paths(self):
        rng = random.Random(23)
        items = [BatchItem(instance=rand_instance(rng)) for _ in range(3)]
        fired = CancelToken()
        fired.cancel()
        cancels = [None, fired, None]
        with pytest.raises(SolveCancelled):
            solve_batch(items, cancels=cancels, xbatch=False)
        with pytest.raises(SolveCancelled):
            solve_batch(items, cancels=cancels, xbatch=True)

    def test_unfired_tokens_do_not_perturb_results(self):
        rng = random.Random(29)
        items = rand_batch(rng, 4)
        cancels = [CancelToken.after(3600.0) for _ in items]
        got = solve_batch(items, cancels=cancels, xbatch=True)
        ref = solve_batch(items, xbatch=False)
        for g, r in zip(got, ref):
            assert_same_output(g, r)


# --------------------------------------------------------------------------- #
# probe-drift regression: lockstep stream == solo stream
# --------------------------------------------------------------------------- #


def record_solo_stream(plan, evaluate):
    """Drive ``plan`` with the real evaluator, recording each probe row."""
    stream = []
    response = None
    while True:
        try:
            req = plan.send(response) if response is not None else next(plan)
        except StopIteration:
            return stream
        for tn, td in req.times:
            stream.append((req.kind, req.mode, tn, td))
        response = evaluate(req)


def record_lockstep_streams(items, monkeypatch):
    """Per-item probe row streams seen by ``BatchDualContext.evaluate``."""
    streams: dict[int, list] = {}
    orig = BatchDualContext.evaluate

    def spy(self, kind, mode, rows):
        for mi, tn, td in rows:
            streams.setdefault(mi, []).append((kind, mode, tn, td))
        return orig(self, kind, mode, rows)

    monkeypatch.setattr(BatchDualContext, "evaluate", spy)
    solve_batch(items, xbatch=True)
    monkeypatch.setattr(BatchDualContext, "evaluate", orig)
    return streams


class TestProbeDriftRegression:
    def test_lockstep_stream_equals_solo_driver_stream(self, monkeypatch):
        """The literal sequential generators emit the same rows lockstep does.

        Items are distinct fingerprints at distinct machine counts, so
        item i is member i of the round contexts; the solo stream comes
        from driving the same plan functions by hand.
        """
        rng = random.Random(189)
        insts = [rand_searchy_instance(rng) for _ in range(4)]
        items = [
            BatchItem(instance=insts[0], variant=Variant.SPLITTABLE),
            BatchItem(instance=insts[1], variant=Variant.PREEMPTIVE),
            BatchItem(instance=insts[2], variant=Variant.SPLITTABLE,
                      schedules=False),
            BatchItem(instance=insts[3], variant=Variant.PREEMPTIVE,
                      schedules=False),
        ]
        # drop any trivial-closed-form item: it never reaches lockstep
        items = [
            it for it in items
            if it.instance.m > 1
        ]
        from repro.algos.batch_api import _grid_safe_cached, _resolve_use_grid

        streams = record_lockstep_streams(items, monkeypatch)
        member = 0
        for item in items:
            inst = item.instance
            # the same grid resolution the coordinator's prelude applies
            grid = (
                not item.schedules
                and _resolve_use_grid(
                    None, "fast", item.variant, inst.c, item.algorithm, item.eps
                )
                and _grid_safe_cached(inst, item.variant)
            )
            if item.variant is Variant.SPLITTABLE:
                plan = flip_plan_splittable(inst, grid=grid)
                evaluate = split_probe_evaluator(
                    inst, fast=True, ctx=inst.fast_ctx(), grid=grid
                )
            else:
                if inst.m >= inst.n:
                    continue  # trivial: no lockstep member for this item
                plan = flip_plan_pmtn(inst, use_base_jump=True, grid=grid)
                evaluate = pmtn_probe_evaluator(
                    inst, fast=True, ctx=inst.fast_ctx(), grid=grid
                )
            solo = record_solo_stream(plan, evaluate)
            assert solo  # every non-trivial flip search probes at least once
            assert streams.get(member, []) == solo
            member += 1
        assert member > 0

    @pytest.mark.parametrize("seed", range(4))
    def test_stream_independent_of_batch_composition(self, seed, monkeypatch):
        """An item's probe stream is the same alone and inside a big batch."""
        rng = random.Random(600 + seed)
        items = [
            BatchItem(instance=rand_searchy_instance(rng),
                      variant=rng.choice(VARIANTS),
                      schedules=rng.random() < 0.5)
            for _ in range(5)
        ]
        batched = record_lockstep_streams(items, monkeypatch)
        # map members by fingerprint/m: rebuild per-item expectation solo
        member = 0
        for item in items:
            inst = item.instance
            if inst.m == 1 or (item.variant is not Variant.SPLITTABLE
                               and inst.m >= inst.n):
                continue  # trivial closed form: not a lockstep member
            solo = record_lockstep_streams([item], monkeypatch)
            assert solo.get(0, []) == batched.get(member, [])
            member += 1

    @pytest.mark.parametrize("seed", range(6))
    def test_accept_calls_identical(self, seed):
        """Probe counts (the paper's complexity measure) never drift."""
        rng = random.Random(800 + seed)
        items = [
            BatchItem(instance=rand_instance(rng), variant=rng.choice(VARIANTS),
                      algorithm=rng.choice(["three_halves", "eps"]),
                      schedules=False)
            for _ in range(6)
        ]
        got = solve_batch(items, xbatch=True)
        ref = solve_batch(items, xbatch=False)
        for g, r in zip(got, ref):
            assert g.accept_calls == r.accept_calls
            assert g == r


# --------------------------------------------------------------------------- #
# scaled-integer plan tier (PR 9): pair plans vs the Fraction kernel
# --------------------------------------------------------------------------- #


def drive_recording(plan, evaluate):
    """Drive ``plan`` to completion, returning ``(probe stream, result)``."""
    from repro.algos.search import drive_plan

    stream = []

    def spy(req):
        for tn, td in req.times:
            stream.append((req.op, req.kind, req.mode, tn, td))
        return evaluate(req)

    return stream, drive_plan(plan, spy)


class TestScaledIntPlanTier:
    """The pair-native probe plans emit bit-identical streams on both kernels.

    The plan generators carry normalized ``(num, den)`` pairs end to end;
    the only Fractions are the ones the fraction-kernel evaluator branch
    rebuilds at its boundary.  Since normalized pairs are canonical per
    rational, the probe values, memo keys (hence hit counts and
    ``accept_calls``) and results must match the Fraction-kernel drive
    exactly — pinned here per variant, with and without numpy.
    """

    def _evaluators(self, inst, variant):
        if variant is Variant.SPLITTABLE:
            return (
                split_probe_evaluator(inst, fast=True, ctx=inst.fast_ctx(), grid=False),
                split_probe_evaluator(inst, fast=False, ctx=None, grid=False),
            )
        return (
            pmtn_probe_evaluator(inst, fast=True, ctx=inst.fast_ctx(), grid=False),
            pmtn_probe_evaluator(inst, fast=False, ctx=None, grid=False),
        )

    def _plan(self, inst, variant):
        if variant is Variant.SPLITTABLE:
            return flip_plan_splittable(inst, grid=False)
        return flip_plan_pmtn(inst, grid=False)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize(
        "variant", [Variant.SPLITTABLE, Variant.PREEMPTIVE]
    )
    def test_flip_plan_stream_identical_across_kernels(self, seed, variant):
        rng = random.Random(2100 + seed)
        inst = rand_searchy_instance(rng)
        fast_eval, frac_eval = self._evaluators(inst, variant)
        fast_stream, fast_res = drive_recording(self._plan(inst, variant), fast_eval)
        frac_stream, frac_res = drive_recording(self._plan(inst, variant), frac_eval)
        assert fast_stream == frac_stream  # probe values, order, memo misses
        assert fast_res == frac_res        # result pairs + accept_calls
        # every emitted probe pair is in lowest terms with a positive den
        from math import gcd

        for _, _, _, tn, td in fast_stream:
            assert td > 0 and gcd(tn, td) == 1

    @pytest.mark.parametrize("variant", [Variant.SPLITTABLE, Variant.PREEMPTIVE])
    def test_flip_plan_streams_without_numpy(self, variant, monkeypatch):
        monkeypatch.setattr(batchdual, "HAVE_NUMPY", False)
        monkeypatch.setattr(xbatch, "HAVE_NUMPY", False)
        rng = random.Random(2200)
        inst = rand_searchy_instance(rng)
        fast_eval, frac_eval = self._evaluators(inst, variant)
        fast_stream, fast_res = drive_recording(self._plan(inst, variant), fast_eval)
        frac_stream, frac_res = drive_recording(self._plan(inst, variant), frac_eval)
        assert fast_stream == frac_stream
        assert fast_res == frac_res

    @pytest.mark.parametrize("seed", range(4))
    def test_eps_and_integer_plan_streams(self, seed):
        """Theorem-2/Theorem-8 plans: same streams on both kernels."""
        from repro.algos.nonpreemptive import nonp_dual_test
        from repro.algos.search import eps_probe_plan, integer_probe_plan
        from repro.core.bounds import t_min
        from repro.core.fastnum import fast_nonp_test
        from repro.core.numeric import fast_fraction

        rng = random.Random(2300 + seed)
        inst = rand_searchy_instance(rng)
        ctx = inst.fast_ctx()

        fast_eval, frac_eval = self._evaluators(inst, Variant.SPLITTABLE)
        tmin = t_min(inst, Variant.SPLITTABLE)
        for eps in (Fraction(1, 3), Fraction(1, 100)):
            fast_stream, fast_res = drive_recording(
                eps_probe_plan(tmin, eps, "split", "", grid=False), fast_eval
            )
            frac_stream, frac_res = drive_recording(
                eps_probe_plan(tmin, eps, "split", "", grid=False), frac_eval
            )
            assert fast_stream == frac_stream
            assert fast_res == frac_res

        def nonp_eval(fast):
            def evaluate(req):
                if fast:
                    return [
                        fast_nonp_test(ctx, tn, td).accepted for tn, td in req.times
                    ]
                return [
                    nonp_dual_test(inst, fast_fraction(tn, td)).accepted
                    for tn, td in req.times
                ]

            return evaluate

        tmin_n = t_min(inst, Variant.NONPREEMPTIVE)
        fast_stream, fast_res = drive_recording(
            integer_probe_plan(tmin_n, "nonp", grid=False), nonp_eval(True)
        )
        frac_stream, frac_res = drive_recording(
            integer_probe_plan(tmin_n, "nonp", grid=False), nonp_eval(False)
        )
        assert fast_stream == frac_stream
        assert fast_res == frac_res

    @pytest.mark.parametrize("variant", [Variant.SPLITTABLE, Variant.PREEMPTIVE])
    def test_grid_and_scalar_plans_agree_on_results(self, variant):
        """grid=True reorders probes into blocks but never changes the flip."""
        rng = random.Random(2400)
        inst = rand_searchy_instance(rng)
        if variant is Variant.SPLITTABLE:
            scalar = drive_recording(
                flip_plan_splittable(inst, grid=False),
                split_probe_evaluator(inst, fast=True, ctx=inst.fast_ctx(), grid=False),
            )
            grid = drive_recording(
                flip_plan_splittable(inst, grid=True),
                split_probe_evaluator(inst, fast=True, ctx=inst.fast_ctx(), grid=True),
            )
        else:
            scalar = drive_recording(
                flip_plan_pmtn(inst, grid=False),
                pmtn_probe_evaluator(inst, fast=True, ctx=inst.fast_ctx(), grid=False),
            )
            grid = drive_recording(
                flip_plan_pmtn(inst, grid=True),
                pmtn_probe_evaluator(inst, fast=True, ctx=inst.fast_ctx(), grid=True),
            )
        assert scalar[1][0] == grid[1][0]  # same flip pair


class TestMemoNormalization:
    """Satellite: memo keys are gcd-reduced, so unnormalized inputs share
    cache entries with their canonical representations."""

    def test_memo_accept_unnormalized_inputs_hit_cache(self):
        from types import SimpleNamespace

        from repro.algos.search import MemoAccept

        evaluated = []

        def accept(T):
            evaluated.append((T.numerator, T.denominator))
            return Fraction(T.numerator, T.denominator) >= 1

        memo = MemoAccept(accept)
        assert memo(Fraction(3, 2)) is True
        # hand-built unnormalized and sign-denormalized representations of 3/2
        assert memo(SimpleNamespace(numerator=6, denominator=4)) is True
        assert memo(SimpleNamespace(numerator=-3, denominator=-2)) is True
        assert memo(Fraction(1, 2)) is False
        assert memo(SimpleNamespace(numerator=2, denominator=4)) is False
        assert memo.calls == 2  # one real evaluation per distinct rational
        assert evaluated == [(3, 2), (1, 2)]

    def test_memo_accept_seed_and_grid_share_normalized_cache(self):
        from types import SimpleNamespace

        from repro.algos.search import MemoAccept

        memo = MemoAccept(lambda T: pytest.fail("scalar path must not run"))
        memo.seed(SimpleNamespace(numerator=4, denominator=8), True)
        assert memo(Fraction(1, 2)) is True
        grid_calls = []
        grid = memo.wrap_grid(lambda cands: [grid_calls.append(c) or True for c in cands])
        # one candidate known (unnormalized alias), one fresh
        out = grid([SimpleNamespace(numerator=2, denominator=4), Fraction(5, 2)])
        assert out == [True, True]
        assert grid_calls == [Fraction(5, 2)]
        assert memo.calls == 1

    def test_plan_accept_normalizes_pairs(self):
        from repro.algos.search import plan_accept

        memo, counted = {}, [0]

        def run(pair):
            gen = plan_accept(memo, counted, "split", "", pair)
            try:
                req = next(gen)
            except StopIteration as stop:
                return stop.value, None
            try:
                gen.send([True])
            except StopIteration as stop:
                return stop.value, req
            pytest.fail("plan_accept yields at most once")

        verdict, req = run((6, 4))
        assert verdict is True and req is not None
        assert req.times == ((3, 2),)  # probe emitted in lowest terms
        # unnormalized and negative-denominator aliases are memo hits
        assert run((3, 2)) == (True, None)
        assert run((-6, -4)) == (True, None)
        assert counted[0] == 1
