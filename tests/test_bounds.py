"""Unit tests for lower bounds and the search window."""

from fractions import Fraction

from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    Instance,
    Variant,
    average_load,
    lower_bound,
    setup_plus_tmax,
    t_max_window,
    t_min,
    trivial_upper_bound,
)

from .conftest import mk


class TestComponents:
    def test_average_load(self):
        inst = mk(4, (2, [3, 4]), (1, [2]))  # N = 3 + 9 = 12
        assert average_load(inst) == 3
        assert average_load(inst.with_machines(5)) == Fraction(12, 5)

    def test_setup_plus_tmax(self):
        inst = mk(2, (2, [3, 4]), (10, [1]))
        assert setup_plus_tmax(inst) == 11  # class 1: 10 + 1

    def test_trivial_upper(self):
        inst = mk(2, (2, [3, 4]), (1, [2]))
        assert trivial_upper_bound(inst) == 12


class TestLowerBound:
    def test_splittable_ignores_job_bound(self):
        # one giant job: splittable can parallelize it, pmtn/nonp cannot
        inst = mk(10, (1, [100]))
        assert lower_bound(inst, Variant.SPLITTABLE) == Fraction(101, 10)
        assert lower_bound(inst, Variant.PREEMPTIVE) == 101
        assert lower_bound(inst, Variant.NONPREEMPTIVE) == 101

    def test_smax_dominates(self):
        inst = mk(10, (50, [1]), (1, [1]))
        assert lower_bound(inst, Variant.SPLITTABLE) == 50
        assert lower_bound(inst, Variant.PREEMPTIVE) == 51

    def test_window(self):
        inst = mk(2, (2, [3, 4]), (1, [2, 2, 2]))
        for v in Variant:
            assert t_max_window(inst, v) == 2 * t_min(inst, v)


@given(
    m=st.integers(1, 6),
    classes=st.lists(
        st.tuples(st.integers(1, 20), st.lists(st.integers(1, 30), min_size=1, max_size=5)),
        min_size=1,
        max_size=5,
    ),
)
def test_bound_ordering(m, classes):
    """splittable LB <= pmtn LB == nonp LB, and all within [smax, N]."""
    inst = Instance.build(m, classes)
    lb_split = lower_bound(inst, Variant.SPLITTABLE)
    lb_pmtn = lower_bound(inst, Variant.PREEMPTIVE)
    lb_nonp = lower_bound(inst, Variant.NONPREEMPTIVE)
    assert lb_split <= lb_pmtn == lb_nonp
    assert lb_split >= inst.smax
    assert lb_nonp <= inst.total_load  # OPT <= N and LB <= OPT
    if m == 1:
        assert lb_split == inst.total_load
