"""Tests for Algorithm 2 / Theorem 4 (nice preemptive instances)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Instance, RejectedMakespanError, Variant, validate_schedule
from repro.core.bounds import t_min
from repro.algos.pmtn_nice import (
    count_for,
    full_view,
    nice_dual_schedule,
    nice_dual_test,
    partition_view,
)

from .conftest import mk


def nice_inst_strategy():
    """Instances that tend to be nice at T in [Tmin, 2Tmin] (no I0exp)."""
    return st.builds(
        Instance.build,
        st.integers(1, 8),
        st.lists(
            st.tuples(
                st.integers(1, 10),
                st.lists(st.integers(1, 20), min_size=1, max_size=5),
            ),
            min_size=1,
            max_size=5,
        ),
    )


class TestNiceDualTest:
    def test_manual_nice_example(self):
        # T = 20: class 0: s=12 > 10, s+P=42 >= 20 → I+exp, α' = floor(30/8)=3
        # class 1: s=4 <= 10 → cheap
        inst = mk(6, (12, [8, 8, 8]), (4, [3, 3]))
        d = nice_dual_test(inst, 20)
        assert d.partition.exp_plus == (0,)
        assert d.partition.cheap == (1,)
        assert d.counts == {0: 3}
        # L_nice = P(J) + 3*12 + 4 = 30 + 36 + 4 = 70 <= 6*20 = 120
        assert d.load == 70
        assert d.machines_needed == 3
        assert d.accepted

    def test_not_nice_raises(self):
        # s+P = 17 ∈ (15, 20) → I0exp nonempty at T=20
        inst = mk(2, (12, [5]))
        with pytest.raises(ValueError):
            nice_dual_test(inst, 20)

    def test_reject_by_machines(self):
        inst = mk(2, (12, [8, 8, 8]), (4, [3, 3]))
        d = nice_dual_test(inst, 20)
        assert not d.accepted and d.machines_needed == 3 > 2

    def test_gamma_counts_leq_alpha_plus_one(self):
        inst = mk(6, (12, [8, 8, 8]), (4, [3, 3]))
        da = nice_dual_test(inst, 20, mode="alpha")
        dg = nice_dual_test(inst, 20, mode="gamma")
        # γ ≤ β ≤ α always; both modes accept here
        assert dg.counts[0] <= da.counts[0] + 1
        assert dg.accepted


class TestNiceSchedule:
    @pytest.mark.parametrize("mode", ["alpha", "gamma"])
    def test_small_example(self, mode):
        inst = mk(6, (12, [8, 8, 8]), (4, [3, 3]))
        T = 20
        sched = nice_dual_schedule(inst, T, mode)
        cmax = validate_schedule(sched, Variant.PREEMPTIVE)
        assert cmax <= Fraction(3, 2) * T

    def test_rejected_raises(self):
        inst = mk(2, (12, [8, 8, 8]), (4, [3, 3]))
        with pytest.raises(RejectedMakespanError):
            nice_dual_schedule(inst, 20)

    @pytest.mark.parametrize("mode", ["alpha", "gamma"])
    def test_exp_minus_pairing_odd(self, mode):
        # three I-exp classes (s > T/2, s+P <= 3T/4), plus cheap filler
        T = 20
        inst = mk(4, (11, [2]), (11, [3]), (12, [1]), (2, [4, 4]))
        d = nice_dual_test(inst, T, mode=mode)
        assert set(d.partition.exp_minus) == {0, 1, 2}
        assert d.accepted
        sched = nice_dual_schedule(inst, T, mode)
        cmax = validate_schedule(sched, Variant.PREEMPTIVE)
        assert cmax <= Fraction(3, 2) * T

    @pytest.mark.parametrize("mode", ["alpha", "gamma"])
    def test_figure2_shape(self, mode):
        """I+exp = {0, 1} spread over α' machines, cheap wrapped above T/2."""
        T = 20
        inst = mk(
            8,
            (12, [8, 8, 8]),      # I+exp: α' = floor(24/8) = 3
            (11, [9, 9]),          # I+exp: α' = floor(18/9) = 2
            (3, [5, 5]),           # cheap
            (4, [2, 2, 2]),        # cheap
        )
        d = nice_dual_test(inst, T, mode=mode)
        assert set(d.partition.exp_plus) == {0, 1}
        assert d.accepted
        sched = nice_dual_schedule(inst, T, mode)
        cmax = validate_schedule(sched, Variant.PREEMPTIVE)
        assert cmax <= Fraction(3, 2) * T
        # cheap processing must all sit at or above T/2
        for p in sched.iter_all():
            if not p.is_setup and p.cls in (2, 3):
                assert p.start >= Fraction(T, 2)

    @settings(max_examples=150, deadline=None)
    @given(inst=nice_inst_strategy(), num=st.integers(0, 8))
    def test_accepted_builds_valid_three_halves(self, inst, num):
        tmin = t_min(inst, Variant.PREEMPTIVE)
        T = tmin + (2 * tmin - tmin) * Fraction(num, 8)
        view = full_view(inst)
        part = partition_view(inst, T, view)
        if not part.is_nice:
            return
        for mode in ("alpha", "gamma"):
            d = nice_dual_test(inst, T, mode=mode)
            if not d.accepted:
                continue
            sched = nice_dual_schedule(inst, T, mode)
            cmax = validate_schedule(sched, Variant.PREEMPTIVE)
            assert cmax <= Fraction(3, 2) * T

    @settings(max_examples=60, deadline=None)
    @given(inst=nice_inst_strategy())
    def test_2tmin_nice_instances_accepted(self, inst):
        """At T = 2*Tmin >= OPT the test must accept (when nice)."""
        T = 2 * t_min(inst, Variant.PREEMPTIVE)
        part = partition_view(inst, T, full_view(inst))
        if part.is_nice:
            assert nice_dual_test(inst, T).accepted


class TestCountFor:
    def test_alpha_matches_classification(self):
        inst = mk(3, (12, [8, 8, 8]))
        assert count_for(inst, Fraction(20), 0, Fraction(24), "alpha") == 3

    def test_gamma_cases(self):
        inst = mk(3, (12, [8, 8, 8]))  # P=24, T=20: β' = 2, rem = 4 <= 8 → γ=2
        assert count_for(inst, Fraction(20), 0, Fraction(24), "gamma") == 2

    def test_gamma_min_one(self):
        inst = mk(3, (18, [4]))  # T=20: P=4 < T/2 → β'=0 → γ=1
        assert count_for(inst, Fraction(20), 0, Fraction(4), "gamma") == 1
