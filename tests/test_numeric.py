"""Unit tests for repro.core.numeric — exact rational helpers."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.numeric import (
    as_time,
    ceil_div,
    fmax,
    frac_ceil,
    frac_floor,
    fsum,
    time_str,
)


class TestAsTime:
    def test_int(self):
        assert as_time(3) == Fraction(3)

    def test_fraction_passthrough(self):
        f = Fraction(7, 2)
        assert as_time(f) is f

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            as_time(0.5)

    def test_string_rejected(self):
        with pytest.raises(TypeError):
            as_time("3")

    def test_bool_is_int(self):
        # bools are ints in Python; accepting them is harmless.
        assert as_time(True) == 1


class TestCeilDiv:
    @pytest.mark.parametrize(
        "num,den,expected",
        [(0, 1, 0), (1, 1, 1), (5, 2, 3), (4, 2, 2), (-1, 2, 0), (-3, 2, -1), (7, 3, 3)],
    )
    def test_values(self, num, den, expected):
        assert ceil_div(num, den) == expected

    def test_den_zero_rejected(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_den_negative_rejected(self):
        with pytest.raises(ValueError):
            ceil_div(1, -2)

    @given(st.integers(-10**9, 10**9), st.integers(1, 10**6))
    def test_matches_math(self, num, den):
        import math

        assert ceil_div(num, den) == math.ceil(Fraction(num, den))


class TestFracCeilFloor:
    @pytest.mark.parametrize(
        "x,cl,fl",
        [
            (Fraction(7, 2), 4, 3),
            (Fraction(-7, 2), -3, -4),
            (Fraction(4), 4, 4),
            (3, 3, 3),
            (Fraction(0), 0, 0),
        ],
    )
    def test_values(self, x, cl, fl):
        assert frac_ceil(x) == cl
        assert frac_floor(x) == fl

    @given(st.fractions())
    def test_sandwich(self, x):
        assert frac_floor(x) <= x <= frac_ceil(x)
        assert frac_ceil(x) - frac_floor(x) in (0, 1)


class TestAggregates:
    def test_fsum(self):
        assert fsum([1, Fraction(1, 2), Fraction(1, 2)]) == 2

    def test_fsum_empty(self):
        assert fsum([]) == 0

    def test_fmax(self):
        assert fmax([1, Fraction(5, 2), 2]) == Fraction(5, 2)

    def test_fmax_default(self):
        assert fmax([], default=7) == 7


class TestTimeStr:
    def test_integer(self):
        assert time_str(Fraction(4)) == "4"

    def test_fraction(self):
        assert time_str(Fraction(7, 2)) == "7/2"

    def test_int_input(self):
        assert time_str(5) == "5"
