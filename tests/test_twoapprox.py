"""Tests for the O(n) 2-approximations (Theorem 1, Lemmas 8 and 9)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Instance, Variant, lower_bound, validate_schedule
from repro.algos.twoapprox import two_approx, two_approx_grouped, two_approx_splittable

from .conftest import mk


def inst_strategy(max_m=6, max_classes=5, max_jobs=6, max_t=30, max_s=15):
    return st.builds(
        Instance.build,
        st.integers(1, max_m),
        st.lists(
            st.tuples(
                st.integers(1, max_s),
                st.lists(st.integers(1, max_t), min_size=1, max_size=max_jobs),
            ),
            min_size=1,
            max_size=max_classes,
        ),
    )


class TestSplittable2Approx:
    def test_simple(self):
        inst = mk(2, (2, [3, 4]), (1, [2, 2, 2]))
        res = two_approx_splittable(inst)
        cmax = validate_schedule(res.schedule, Variant.SPLITTABLE, res.makespan_bound)
        assert cmax <= 2 * lower_bound(inst, Variant.SPLITTABLE)

    def test_single_machine_is_n(self):
        inst = mk(1, (2, [3]), (4, [1, 5]))
        res = two_approx_splittable(inst)
        cmax = validate_schedule(res.schedule, Variant.SPLITTABLE)
        # on one machine the wrap is exactly N above smax... still ≤ 2·N-ish;
        # the real content check: everything scheduled, bound respected
        assert cmax <= res.makespan_bound

    def test_many_machines_splits_jobs(self):
        # one giant job on 4 machines: splittable can spread it
        inst = mk(4, (1, [100]))
        res = two_approx_splittable(inst)
        cmax = validate_schedule(res.schedule, Variant.SPLITTABLE)
        lb = lower_bound(inst, Variant.SPLITTABLE)  # 101/4
        assert cmax <= 2 * lb
        assert cmax < 100  # job genuinely parallelized

    @settings(max_examples=80, deadline=None)
    @given(inst=inst_strategy())
    def test_ratio_and_feasibility(self, inst):
        res = two_approx_splittable(inst)
        cmax = validate_schedule(res.schedule, Variant.SPLITTABLE)
        assert cmax <= 2 * lower_bound(inst, Variant.SPLITTABLE)


class TestGrouped2Approx:
    def test_figure7_shape(self):
        # m = c = 5 as in Figure 7: every class one machine-ish
        inst = mk(5, (3, [4, 4]), (2, [5, 3]), (4, [2, 2, 2]), (1, [6]), (2, [3, 3]))
        res = two_approx_grouped(inst)
        for variant in (Variant.NONPREEMPTIVE, Variant.PREEMPTIVE):
            cmax = validate_schedule(res.schedule, variant)
            assert cmax <= 2 * lower_bound(inst, variant)

    def test_single_machine(self):
        inst = mk(1, (2, [3]), (4, [1, 5]))
        res = two_approx_grouped(inst)
        cmax = validate_schedule(res.schedule, Variant.NONPREEMPTIVE)
        assert cmax == inst.total_load  # everything stacked on machine 0

    def test_no_trailing_setups(self):
        inst = mk(3, (5, [5, 5, 5]), (5, [5, 5, 5]))
        res = two_approx_grouped(inst)
        for u in res.schedule.used_machines():
            items = res.schedule.items_on(u)
            assert not items[-1].is_setup, f"machine {u} ends with a setup"

    def test_stream_ends_on_crossing_item(self):
        # Tmin = max(N/m, s+tmax): craft so the very last job crosses.
        inst = mk(2, (1, [6, 6, 1]))
        res = two_approx_grouped(inst)
        cmax = validate_schedule(res.schedule, Variant.NONPREEMPTIVE)
        assert cmax <= res.makespan_bound

    @settings(max_examples=100, deadline=None)
    @given(inst=inst_strategy())
    def test_ratio_and_feasibility_both_variants(self, inst):
        res = two_approx_grouped(inst)
        cmax = validate_schedule(res.schedule, Variant.NONPREEMPTIVE)
        # non-preemptive feasible ⟹ preemptive feasible
        validate_schedule(res.schedule, Variant.PREEMPTIVE)
        assert cmax <= 2 * lower_bound(inst, Variant.NONPREEMPTIVE)

    @settings(max_examples=40, deadline=None)
    @given(inst=inst_strategy(max_m=3, max_t=8, max_s=3))
    def test_machines_within_m(self, inst):
        res = two_approx_grouped(inst)
        assert len(res.schedule.used_machines()) <= inst.m


class TestDispatch:
    @pytest.mark.parametrize("variant", list(Variant))
    def test_two_approx_dispatch(self, variant):
        inst = mk(3, (2, [3, 4]), (1, [2, 2, 2]))
        res = two_approx(inst, variant)
        cmax = validate_schedule(res.schedule, variant)
        assert cmax <= res.makespan_bound == 2 * res.t_min
