"""Degenerate inputs and cross-variant invariants, end to end."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Instance, Variant, solve
from repro.core import validate_schedule
from repro.core.bounds import t_min
from repro.exact import (
    exact_nonpreemptive_opt,
    exact_preemptive_opt_special,
    exact_splittable_opt,
)
from repro.generators import schedule_first_instance

from .conftest import mk


class TestDegenerateInstances:
    """m=1, c=1, huge m, zero setups, identical everything."""

    @pytest.mark.parametrize("variant", list(Variant))
    def test_single_machine_everything_serial(self, variant):
        inst = mk(1, (3, [5, 2]), (1, [4]))
        res = solve(inst, variant, "three_halves")
        cmax = validate_schedule(res.schedule, variant)
        assert cmax == inst.total_load == 15  # OPT on one machine is N

    @pytest.mark.parametrize("variant", list(Variant))
    def test_single_class_single_job(self, variant):
        inst = mk(2, (4, [6]))
        res = solve(inst, variant, "three_halves")
        cmax = validate_schedule(res.schedule, variant)
        if variant is Variant.SPLITTABLE:
            # may split: OPT = s + P/m = 7; 3/2-approx ≤ 10.5
            assert cmax <= Fraction(21, 2)
        else:
            assert cmax == 10  # trivial path: one job on one machine

    @pytest.mark.parametrize("variant", list(Variant))
    def test_zero_setups_everywhere(self, variant):
        inst = Instance(m=3, setups=(0, 0), jobs=((4, 4, 4), (6, 3)))
        res = solve(inst, variant, "three_halves")
        cmax = validate_schedule(res.schedule, variant)
        # with no setups OPT >= max(tmax, P/m) = max(6, 7) = 7
        assert cmax <= Fraction(3, 2) * max(Fraction(7), Fraction(res.opt_lower_bound))

    def test_huge_machine_count_splittable(self):
        inst = mk(1000, (5, [300]))
        res = solve(inst, Variant.SPLITTABLE, "three_halves")
        cmax = validate_schedule(res.schedule, Variant.SPLITTABLE)
        # OPT = 5 + 300/1000; our guarantee 1.5x
        assert cmax <= Fraction(3, 2) * (5 + Fraction(300, 1000))

    @pytest.mark.parametrize("variant", [Variant.NONPREEMPTIVE, Variant.PREEMPTIVE])
    def test_m_equals_n(self, variant):
        inst = mk(4, (2, [5]), (3, [4]), (1, [7]), (2, [2]))
        res = solve(inst, variant)
        assert res.algorithm == "trivial"
        assert validate_schedule(res.schedule, variant) == 8  # 1 + 7

    def test_identical_classes(self):
        inst = mk(4, *[(3, [5, 5])] * 4)
        for variant in Variant:
            res = solve(inst, variant, "three_halves")
            cmax = validate_schedule(res.schedule, variant)
            # symmetric optimum: one class per machine = 13
            assert cmax <= Fraction(3, 2) * 13

    def test_all_setups_dominate(self):
        """Setups ≫ jobs: setup count decides everything."""
        inst = mk(3, (100, [1]), (100, [1]), (100, [1]), (100, [1]))
        for variant in Variant:
            res = solve(inst, variant, "three_halves")
            cmax = validate_schedule(res.schedule, variant)
            # 4 classes / 3 machines: some machine pays 2 setups: OPT >= 202
            assert cmax >= 202
            assert cmax <= Fraction(3, 2) * Fraction(res.opt_lower_bound)

    def test_single_unit_job(self):
        inst = mk(1, (1, [1]))
        for variant in Variant:
            res = solve(inst, variant, "three_halves")
            assert validate_schedule(res.schedule, variant) == 2


class TestCrossVariantOrdering:
    """OPT_split ≤ OPT_pmtn ≤ OPT_nonp, and the solvers must respect it."""

    @settings(max_examples=40, deadline=None)
    @given(
        inst=st.builds(
            Instance.build,
            st.integers(1, 3),
            st.lists(
                st.tuples(
                    st.integers(1, 8),
                    st.lists(st.integers(1, 10), min_size=1, max_size=3),
                ),
                min_size=1,
                max_size=3,
            ),
        )
    )
    def test_exact_opt_ordering(self, inst):
        if inst.n > 8:
            return
        nonp = Fraction(exact_nonpreemptive_opt(inst))
        split = exact_splittable_opt(inst)
        pmtn = exact_preemptive_opt_special(inst)
        assert split <= nonp
        if pmtn is not None:
            assert split <= pmtn <= nonp
        # certified lower bounds must never exceed the exact optima
        assert Fraction(solve(inst, Variant.NONPREEMPTIVE, "three_halves").opt_lower_bound) <= nonp
        assert Fraction(solve(inst, Variant.SPLITTABLE, "three_halves").opt_lower_bound) <= split

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_schedule_first_certificates_all_variants(self, seed):
        cert = schedule_first_instance(m=3, T0=30, seed=seed)
        for variant in Variant:
            res = solve(cert.instance, variant, "three_halves")
            # T* is a lower bound on OPT <= feasible_makespan
            assert res.opt_lower_bound <= cert.feasible_makespan
            validate_schedule(res.schedule, variant)


class TestDeterminism:
    @pytest.mark.parametrize("variant", list(Variant))
    @pytest.mark.parametrize("algorithm", ["two", "eps", "three_halves"])
    def test_solve_is_deterministic(self, variant, algorithm):
        inst = mk(3, (4, [5, 3]), (2, [2, 2, 6]), (6, [7]))
        a = solve(inst, variant, algorithm)
        b = solve(inst, variant, algorithm)
        assert a.makespan == b.makespan
        assert a.T == b.T
        assert list(a.schedule.iter_all()) == list(b.schedule.iter_all())


class TestWindowInvariant:
    @settings(max_examples=40, deadline=None)
    @given(
        inst=st.builds(
            Instance.build,
            st.integers(1, 6),
            st.lists(
                st.tuples(
                    st.integers(1, 12),
                    st.lists(st.integers(1, 20), min_size=1, max_size=4),
                ),
                min_size=1,
                max_size=4,
            ),
        )
    )
    def test_flip_inside_window(self, inst):
        """Every returned T sits in [T_min, 2 T_min] (Appendix A.2 window)."""
        for variant in Variant:
            res = solve(inst, variant, "three_halves")
            if res.algorithm == "trivial":
                continue
            tmin = t_min(inst, variant)
            assert tmin <= res.T <= 2 * tmin + 1  # +1: integer rounding (Thm 8)