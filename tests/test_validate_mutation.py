"""Mutation tests: corrupt one column entry, both validators must agree.

Each case takes a *valid* columnar schedule, corrupts exactly one entry of
one column (a start, a length, a class, a job index), and asserts that

* the vectorized columnar validator rejects, and
* its error ``reason`` is identical to the scalar validator's on the same
  (materialized) schedule,

in every execution mode (numpy tier when installed, python tier, auto).
This is the sharpest form of the bit-identical-verdicts contract: the two
validators must not only accept the same schedules, they must *fail the
same way*.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

import repro.core.validate as validate_mod
from repro.core import (
    InfeasibleScheduleError,
    JobRef,
    Schedule,
    Variant,
    validate_columns,
    validate_schedule_scalar,
)

from .conftest import full_job_schedule, mk

HAVE_NUMPY = validate_mod._np is not None
MODES = ([True] if HAVE_NUMPY else []) + [False, None]


def valid_schedule() -> Schedule:
    """Two machines, one class each, one split-free batch per machine."""
    inst = mk(2, (2, [3, 4]), (2, [3, 4]))
    return full_job_schedule(
        inst,
        {
            0: [JobRef(0, 0), JobRef(0, 1)],
            1: [JobRef(1, 0), JobRef(1, 1)],
        },
    )


def job_row(cols, machine: int, nth: int = 0) -> int:
    """Index of the ``nth`` job row on ``machine`` (insertion order)."""
    seen = 0
    for k in range(len(cols)):
        if cols.machine[k] == machine and cols.job_idx[k] >= 0:
            if seen == nth:
                return k
            seen += 1
    raise AssertionError("row not found")


def setup_row(cols, machine: int) -> int:
    for k in range(len(cols)):
        if cols.machine[k] == machine and cols.job_idx[k] < 0:
            return k
    raise AssertionError("row not found")


def assert_same_rejection(sched: Schedule, variant: Variant, expected: str):
    """Columnar and scalar validators reject with the same reason tag."""
    cols = sched.columns()
    assert cols is not None
    inst = sched.instance
    for mode in MODES:
        with pytest.raises(InfeasibleScheduleError) as e_cols:
            validate_columns(inst, cols, variant, use_numpy=mode)
        assert e_cols.value.reason == expected, f"columnar mode={mode}"
    with pytest.raises(InfeasibleScheduleError) as e_scalar:
        validate_schedule_scalar(sched, variant)
    assert e_scalar.value.reason == expected
    # identical messages too, not just tags (numpy tier vs scalar)
    for mode in MODES:
        with pytest.raises(InfeasibleScheduleError) as e_cols:
            validate_columns(inst, cols, variant, use_numpy=mode)
        assert str(e_cols.value) == str(e_scalar.value), f"mode={mode}"


class TestSingleEntryCorruption:
    def test_overlap(self):
        sched = valid_schedule()
        cols = sched.columns()
        k = job_row(cols, 0, nth=1)  # second job: pull its start back by 1
        cols.start_num[k] -= 1
        assert_same_rejection(sched, Variant.SPLITTABLE, "overlap")

    def test_negative_start(self):
        sched = valid_schedule()
        cols = sched.columns()
        cols.start_num[setup_row(cols, 0)] = -1
        assert_same_rejection(sched, Variant.SPLITTABLE, "negative-start")

    def test_setup_preempted(self):
        sched = valid_schedule()
        cols = sched.columns()
        cols.length_num[setup_row(cols, 1)] -= 1
        assert_same_rejection(sched, Variant.SPLITTABLE, "setup-preempted")

    def test_missing_setup_via_class_corruption(self):
        # retag one job row to the (structurally identical) other class:
        # the machine is configured for the original class -> setup-missing
        sched = valid_schedule()
        cols = sched.columns()
        k = job_row(cols, 1, nth=1)
        cols.cls[k] = 0
        assert_same_rejection(sched, Variant.SPLITTABLE, "setup-missing")

    def test_short_job_piece(self):
        sched = valid_schedule()
        cols = sched.columns()
        k = job_row(cols, 0, nth=1)  # last item on machine 0: no overlap
        cols.length_num[k] -= 1
        assert_same_rejection(sched, Variant.SPLITTABLE, "job-incomplete")

    def test_piece_too_long(self):
        sched = valid_schedule()
        cols = sched.columns()
        k = job_row(cols, 0, nth=1)
        cols.length_num[k] += 1
        assert_same_rejection(sched, Variant.SPLITTABLE, "piece-too-long")

    def test_empty_piece(self):
        sched = valid_schedule()
        cols = sched.columns()
        cols.length_num[job_row(cols, 0, nth=1)] = 0
        assert_same_rejection(sched, Variant.SPLITTABLE, "empty-piece")

    def test_bad_class(self):
        sched = valid_schedule()
        cols = sched.columns()
        cols.cls[job_row(cols, 0, nth=0)] = 99
        assert_same_rejection(sched, Variant.SPLITTABLE, "bad-class")

    def test_unknown_job(self):
        sched = valid_schedule()
        cols = sched.columns()
        cols.job_idx[job_row(cols, 0, nth=0)] = 99
        assert_same_rejection(sched, Variant.SPLITTABLE, "unknown-job")

    def test_check_order_across_machines(self):
        """Whole-pass ordering: overlap on a *later* machine must win over
        setup-missing on an earlier machine, identically on every tier
        (the scalar validator runs each check as a pass over all
        machines, not machine-by-machine)."""
        inst = mk(2, (2, [3, 4]), (1, [2, 2, 2]))
        sched = Schedule(inst)
        sched.add_job(0, 0, JobRef(1, 0))          # machine 0: no setup
        sched.add_setup(1, 0, 0)                   # machine 1: setup [0,2)
        sched.add_job(1, 1, JobRef(0, 0))          # overlaps the setup
        assert_same_rejection(sched, Variant.SPLITTABLE, "overlap")

    @pytest.mark.parametrize("machine", [-1, 7])
    def test_bad_machine_columnar_only_rule(self, machine):
        # A Schedule can never hold an out-of-range machine (add refuses),
        # so this rule exists only on the raw-columns surface — but it must
        # reject identically on every tier, not diverge or IndexError.
        sched = valid_schedule()
        cols = sched.columns().copy()
        cols.machine[job_row(cols, 0, nth=0)] = machine
        for mode in MODES:
            with pytest.raises(InfeasibleScheduleError) as e:
                validate_columns(
                    sched.instance, cols, Variant.SPLITTABLE, use_numpy=mode
                )
            assert e.value.reason == "bad-machine", f"mode={mode}"


class TestVariantRules:
    def test_job_preempted(self):
        """A job split across machines: fine splittable, rejected nonp."""
        inst = mk(2, (2, [6]), (1, [2]))
        sched = Schedule(inst)
        sched.add_setup(0, 0, 0)
        sched.add_piece(0, 2, JobRef(0, 0), 3)
        sched.add_setup(1, 0, 0)
        sched.add_piece(1, 5, JobRef(0, 0), 3)  # disjoint in time
        sched.add_setup(1, 8, 1)
        sched.add_piece(1, 9, JobRef(1, 0), 2)
        cols = sched.columns()
        assert cols is not None
        for mode in MODES:
            assert validate_columns(inst, cols, Variant.SPLITTABLE, use_numpy=mode) \
                == validate_schedule_scalar(sched, Variant.SPLITTABLE)
            assert validate_columns(inst, cols, Variant.PREEMPTIVE, use_numpy=mode) \
                == validate_schedule_scalar(sched, Variant.PREEMPTIVE)
        assert_same_rejection(sched, Variant.NONPREEMPTIVE, "job-preempted")

    def test_job_parallel(self):
        """Self-overlapping pieces: fine splittable, rejected preemptive."""
        inst = mk(2, (2, [6]), (1, [2]))
        sched = Schedule(inst)
        sched.add_setup(0, 0, 0)
        sched.add_piece(0, 2, JobRef(0, 0), 3)
        sched.add_setup(1, 0, 0)
        sched.add_piece(1, 4, JobRef(0, 0), 3)  # overlaps [4,5) with machine 0
        sched.add_setup(1, 8, 1)
        sched.add_piece(1, 9, JobRef(1, 0), 2)
        cols = sched.columns()
        assert cols is not None
        for mode in MODES:
            assert validate_columns(inst, cols, Variant.SPLITTABLE, use_numpy=mode) \
                == validate_schedule_scalar(sched, Variant.SPLITTABLE)
        assert_same_rejection(sched, Variant.PREEMPTIVE, "job-parallel")

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy tier only")
    def test_kept_rejection_does_not_pin_column_buffers(self):
        """A caller may keep the rejection exception for diagnostics; the
        numpy tier's zero-copy views must not stay alive through its
        traceback and leave the array('q') buffers exported (appending
        to the schedule afterwards would raise BufferError)."""
        sched = valid_schedule()
        cols = sched.columns()
        cols.start_num[job_row(cols, 0, nth=1)] -= 1  # overlap
        kept = []
        with pytest.raises(InfeasibleScheduleError) as e:
            validate_columns(sched.instance, cols, Variant.SPLITTABLE, use_numpy=True)
        kept.append(e.value)  # hold on to the exception like a repair pass
        n_before = len(cols)
        cols.append_scaled(0, 100, 1, 1, 0, -1)  # must not raise BufferError
        assert len(cols) == n_before + 1

    def test_overflow_mode_corruption(self):
        """Object-mode columns (beyond int64) reject identically too."""
        big = 1 << 70
        inst = mk(2, (big, [big]), (1, [2]))
        sched = Schedule(inst)
        sched.add_setup(0, 0, 0)
        sched.add_job(0, big, JobRef(0, 0))
        sched.add_setup(1, 0, 1)
        sched.add_job(1, 1, JobRef(1, 0))
        cols = sched.columns()
        assert cols is not None and not cols.int_mode
        cols.length_num[1] -= 1  # shorten the big job
        assert_same_rejection(sched, Variant.NONPREEMPTIVE, "job-incomplete")
